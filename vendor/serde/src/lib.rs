//! Offline subset of the `serde` facade.
//!
//! Re-exports the no-op derive macros so `#[derive(Serialize, Deserialize)]`
//! and `use serde::{Serialize, Deserialize}` compile without registry access.
//! Swap the workspace `serde` path dependency for the real crates.io package
//! to restore actual serialization support.

pub use serde_derive::{Deserialize, Serialize};
