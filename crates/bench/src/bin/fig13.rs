//! Regenerates Figure 13: (a) T-state generation rate with 100 patches;
//! (b) patches of space needed for one T state per timestep. Also prints
//! the exact 15-to-1 distillation quality curve (our extension).
//!
//! With `--out <dir>`, writes `fig13a`, `fig13b`, and `fig13_distill`
//! CSV/JSON-lines artifacts mirroring the printed tables.

use std::path::PathBuf;

use vlq_bench::{finish_telemetry, telemetry_from_args, usage_exit, Args};
use vlq_magic::distill::distillation_stats;
use vlq_magic::factory::{FactoryProtocol, ProtocolKind};
use vlq_sweep::artifact::Table;

const USAGE: &str = "\
usage: fig13 [--patches N] [--out DIR] [--shard I/N] [--telemetry PATH]
  --patches  patch budget for the rate comparison (default 100)
  --out      write fig13a/fig13b/fig13_distill CSV + JSONL artifacts into DIR
  --shard    write only artifact rows with row index % N == I (merge the
             shard directories back with sweep-merge)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH (fig13 is analytic,
               so its counters are all zero — the schema row set is still
               emitted in full)";

fn main() {
    let args = Args::parse_validated(USAGE, &["patches", "out", "shard", "telemetry"], &[]);
    let patches: f64 = args.get_or_usage(USAGE, "patches", 100.0);
    if !(patches.is_finite() && patches > 0.0) {
        usage_exit(USAGE, &format!("--patches must be positive, got {patches}"));
    }
    let shard = vlq_bench::shard_from_args(&args, USAGE);
    let out_dir: Option<PathBuf> = args.pairs_get("out").map(PathBuf::from);
    let (recorder, telemetry_path) = telemetry_from_args(&args);
    finish_telemetry(&recorder, telemetry_path.as_deref(), "fig13", 0);

    let mut fig13a = Table::new(["protocol", "t_per_step", "vs_small_lattice"]);
    println!("Figure 13(a): T-state production rate with {patches} patches");
    println!(
        "{:<22} {:>14} {:>16}",
        "Protocol", "T per step", "vs Small Lattice"
    );
    let small_rate = FactoryProtocol::new(ProtocolKind::SmallLattice).rate_with_patches(patches);
    for kind in [
        ProtocolKind::FastLattice,
        ProtocolKind::SmallLattice,
        ProtocolKind::VQubitsNatural,
    ] {
        let p = FactoryProtocol::new(kind);
        let rate = p.rate_with_patches(patches);
        println!(
            "{:<22} {:>14.4} {:>15.2}x",
            kind.to_string(),
            rate,
            rate / small_rate
        );
        fig13a.row([
            kind.to_string().into(),
            rate.into(),
            (rate / small_rate).into(),
        ]);
    }
    println!("(paper: VQubits = 1.22x Small Lattice, 1.82x Fast Lattice)");

    let mut fig13b = Table::new(["protocol", "patches"]);
    println!("\nFigure 13(b): space to produce 1 T state per timestep");
    println!("{:<22} {:>10}", "Protocol", "# patches");
    for kind in [
        ProtocolKind::FastLattice,
        ProtocolKind::SmallLattice,
        ProtocolKind::VQubitsNatural,
    ] {
        let p = FactoryProtocol::new(kind);
        let need = p.patches_for_one_t_per_step();
        println!("{:<22} {:>10.0}", kind.to_string(), need);
        fig13b.row([kind.to_string().into(), need.into()]);
    }
    println!("(paper: Fast 180, Small 121, VQubits 99)");

    let mut distill = Table::new(["p_in", "p_out", "first_order_35p3", "acceptance"]);
    println!("\nExtension: exact 15-to-1 distillation quality (GF(2) enumeration)");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "p_in", "p_out", "35*p^3", "accept"
    );
    for p in [1e-4, 1e-3, 5e-3, 1e-2, 2e-2] {
        let s = distillation_stats(p);
        println!(
            "{:<10.0e} {:>12.3e} {:>12.3e} {:>9.4}",
            p,
            s.p_out,
            35.0 * p.powi(3),
            s.acceptance
        );
        distill.row([
            p.into(),
            s.p_out.into(),
            (35.0 * p.powi(3)).into(),
            s.acceptance.into(),
        ]);
    }

    if let Some(dir) = &out_dir {
        fig13a
            .shard(shard)
            .write_dir(dir, "fig13a")
            .expect("write fig13a");
        fig13b
            .shard(shard)
            .write_dir(dir, "fig13b")
            .expect("write fig13b");
        distill
            .shard(shard)
            .write_dir(dir, "fig13_distill")
            .expect("write fig13_distill");
        println!(
            "\nartifacts: fig13a/fig13b/fig13_distill .csv+.jsonl in {}",
            dir.display()
        );
    }
}
