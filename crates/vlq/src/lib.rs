//! # VLQ — Virtualized Logical Qubits
//!
//! A reproduction of the MICRO 2020 paper *"Virtualized Logical Qubits:
//! A 2.5D Architecture for Error-Corrected Quantum Computing"*
//! (Duckering, Baker, Schuster, Chong).
//!
//! The architecture stores surface-code logical qubits in multi-mode
//! resonant cavities attached to a 2D transmon grid. Logical qubits have
//! *virtual addresses* `(stack, mode)`; they are paged into the transmon
//! layer for syndrome extraction (like DRAM refresh) and for logical
//! operations, enabling a fast transversal CNOT between co-located
//! qubits and ~10-20x transmon savings.
//!
//! This crate is the user-facing library, built around a two-phase
//! execution model — *scheduling* emits a typed instruction schedule,
//! and pluggable *executor* backends consume it:
//!
//! * [`machine`] — the [`VlqMachine`] scheduler: stack/mode allocation
//!   and the paging + refresh policy, emitting typed schedules.
//! * [`program`] — a small logical-circuit IR and its compiler
//!   ([`program::compile`]) onto the machine.
//! * [`isa`] — the typed instruction set ([`isa::Instr`],
//!   [`isa::Schedule`]): page-in/out, refresh rounds, transversal and
//!   lattice-surgery CNOTs, moves, magic-state consumption, logical
//!   measurement — each with stack/mode addresses and timestep spans.
//! * [`exec`] — the [`exec::Executor`] backends:
//!   [`exec::CostExecutor`] (latency + the legacy [`MachineReport`]),
//!   [`exec::FrameExecutor`] (Pauli-frame Monte-Carlo decoding
//!   boundary-aware syndrome blocks sized to each instruction's real
//!   round span → quantitative program-level logical error rates),
//!   [`exec::TraceExecutor`] (machine-readable schedule artifacts), and
//!   [`exec::ProgramSweepExecutor`] (program scans on the `vlq-sweep`
//!   work-stealing engine).
//!
//! The substrates re-exported below implement everything the paper's
//! evaluation needs: simulators, schedules, decoders, Monte-Carlo
//! threshold experiments, and magic-state factory models.
//!
//! # Quickstart
//!
//! ```
//! use vlq::exec::{CostExecutor, Executor};
//! use vlq::machine::{MachineConfig, VlqMachine};
//!
//! // A 2x2 grid of stacks, depth-10 cavities, distance-3 Compact patches.
//! let mut m = VlqMachine::new(MachineConfig::compact_demo());
//! let a = m.alloc().unwrap();
//! let b = m.alloc().unwrap();
//! m.cnot(a, b).unwrap();
//!
//! // Phase 2: replay the emitted schedule on a backend of your choice.
//! let schedule = m.into_schedule();
//! let report = CostExecutor.run(&schedule).unwrap();
//! assert!(report.total_timesteps > 0);
//! ```

pub mod exec;
pub mod isa;
pub mod machine;
pub mod program;

pub use exec::{
    CostExecutor, Executor, FrameExecutor, FramePrepared, FrameScratch, ProgramReport,
    TraceExecutor,
};
pub use isa::{Instr, Schedule};
pub use machine::{MachineConfig, MachineReport, RefreshPolicy, VlqMachine};
pub use program::{compile, CompiledProgram, LogicalCircuit, ProgOp};

// Re-export the substrate crates under stable names.
pub use vlq_arch as arch;
pub use vlq_circuit as circuit;
pub use vlq_decoder as decoder;
pub use vlq_magic as magic;
pub use vlq_math as math;
pub use vlq_pauli as pauli;
pub use vlq_qec as qec;
pub use vlq_sim as sim;
pub use vlq_surface as surface;
pub use vlq_surgery as surgery;
pub use vlq_sweep as sweep;
