//! Decoders for the VLQ reproduction.
//!
//! The decoding pipeline mirrors the modern detector-error-model
//! approach:
//!
//! 1. [`graph`] builds a per-sector matching graph by exhaustively
//!    propagating every possible single fault of the noisy circuit and
//!    recording which detectors (and logical observables) it flips,
//!    with edge weights `ln((1-p)/p)`.
//! 2. [`mwpm`] decodes a defect set by Dijkstra distances on that graph
//!    followed by exact minimum-weight perfect matching ([`blossom`]) —
//!    the paper's "usual maximum likelihood \[matching\] decoder".
//! 3. [`unionfind`] offers the weighted Union-Find decoder as a faster
//!    alternative (used in the decoder ablation bench).

pub mod blossom;
pub mod graph;
pub mod mwpm;
pub mod unionfind;

pub use graph::{DecodingGraph, GraphEdge};
pub use mwpm::MwpmDecoder;
pub use unionfind::UnionFindDecoder;

/// Common interface for sector decoders: given the defect list (indices
/// into the sector's detector set), predict whether the logical
/// observable flipped.
pub trait Decoder {
    /// Predicts the observable flip for a defect set.
    fn decode(&self, defects: &[usize]) -> bool;
}

/// Registry of the available decoder implementations.
///
/// This is the single construction seam: every consumer (the `vlq-qec`
/// Monte-Carlo harness, the figure binaries, the ablation benches) turns
/// a `DecoderKind` into a concrete decoder through [`DecoderKind::build`],
/// so adding a decoder means implementing [`Decoder`] and extending this
/// enum — no downstream matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DecoderKind {
    /// Exact minimum-weight perfect matching (paper default).
    #[default]
    Mwpm,
    /// Weighted Union-Find (fast approximate alternative).
    UnionFind,
}

impl DecoderKind {
    /// Every registered decoder, in ablation order.
    pub const ALL: [DecoderKind; 2] = [DecoderKind::Mwpm, DecoderKind::UnionFind];

    /// Short stable name (used by CLI flags and report tables).
    pub fn name(self) -> &'static str {
        match self {
            DecoderKind::Mwpm => "mwpm",
            DecoderKind::UnionFind => "union-find",
        }
    }

    /// Parses the names accepted by the figure binaries' `--decoder` flag.
    pub fn parse(s: &str) -> Option<DecoderKind> {
        match s.to_ascii_lowercase().as_str() {
            "mwpm" | "blossom" | "matching" => Some(DecoderKind::Mwpm),
            "uf" | "unionfind" | "union-find" => Some(DecoderKind::UnionFind),
            _ => None,
        }
    }

    /// Constructs the decoder for a built decoding graph.
    pub fn build(self, graph: &DecodingGraph) -> Box<dyn Decoder + Send + Sync> {
        match self {
            DecoderKind::Mwpm => Box::new(MwpmDecoder::new(graph)),
            DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(graph)),
        }
    }
}

impl std::fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
