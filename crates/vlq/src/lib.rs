//! # VLQ — Virtualized Logical Qubits
//!
//! A reproduction of the MICRO 2020 paper *"Virtualized Logical Qubits:
//! A 2.5D Architecture for Error-Corrected Quantum Computing"*
//! (Duckering, Baker, Schuster, Chong).
//!
//! The architecture stores surface-code logical qubits in multi-mode
//! resonant cavities attached to a 2D transmon grid. Logical qubits have
//! *virtual addresses* `(stack, mode)`; they are paged into the transmon
//! layer for syndrome extraction (like DRAM refresh) and for logical
//! operations, enabling a fast transversal CNOT between co-located
//! qubits and ~10-20x transmon savings.
//!
//! This crate is the user-facing library:
//!
//! * [`machine`] — the [`VlqMachine`]: stack/mode allocation, the
//!   paging + refresh scheduler, logical operations with the paper's
//!   latency model, and execution timelines.
//! * [`program`] — a small logical-circuit IR and compiler onto the
//!   machine.
//!
//! The substrates re-exported below implement everything the paper's
//! evaluation needs: simulators, schedules, decoders, Monte-Carlo
//! threshold experiments, and magic-state factory models.
//!
//! # Quickstart
//!
//! ```
//! use vlq::machine::{MachineConfig, VlqMachine};
//!
//! // A 2x2 grid of stacks, depth-10 cavities, distance-3 Compact patches.
//! let mut m = VlqMachine::new(MachineConfig::compact_demo());
//! let a = m.alloc().unwrap();
//! let b = m.alloc().unwrap();
//! m.cnot(a, b).unwrap();
//! let report = m.finish();
//! assert!(report.total_timesteps > 0);
//! ```

pub mod machine;
pub mod program;

pub use machine::{MachineConfig, MachineReport, RefreshPolicy, VlqMachine};
pub use program::{LogicalCircuit, ProgOp};

// Re-export the substrate crates under stable names.
pub use vlq_arch as arch;
pub use vlq_circuit as circuit;
pub use vlq_decoder as decoder;
pub use vlq_magic as magic;
pub use vlq_math as math;
pub use vlq_pauli as pauli;
pub use vlq_qec as qec;
pub use vlq_sim as sim;
pub use vlq_surface as surface;
pub use vlq_surgery as surgery;
pub use vlq_sweep as sweep;
