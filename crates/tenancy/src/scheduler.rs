//! The multi-tenant merge: admission, instruction interleaving, paging,
//! and per-tenant contention accounting.
//!
//! [`TenantScheduler`] admits N independently compiled programs (each a
//! solo [`Schedule`] against the *same* [`MachineConfig`]) and replays
//! them instruction-by-instruction onto one shared surface:
//!
//! * **Disjoint id spaces** — tenant `i`'s local qubit `n` becomes
//!   global `LogicalId((i << 20) | n)`; tenant 0 keeps its ids verbatim,
//!   which is what makes the N=1 merge byte-identical to the solo
//!   schedule.
//! * **Time sharing** — at every step the tenant whose next instruction
//!   is ready earliest (its local time plus the tenant's accumulated
//!   shift) runs; global start times are monotone, and timeline-spanning
//!   instructions serialize per stack. Waits are charged to the tenant
//!   as queueing delay.
//! * **Cavity paging** — each tenant's solo stack/mode layout is kept
//!   stack-for-stack, but physical modes within a stack are assigned at
//!   page-in time. When a stack is full, the pluggable
//!   [`ReplacementPolicy`] picks a victim: the scheduler emits a
//!   `PageOut` for the victim (charged as an eviction) and a `PageIn`
//!   when the evicted qubit next faults. A swapped-out qubit receives no
//!   refresh rounds — its error-correction clock keeps running, so swap
//!   time counts against the paper's `k`-cycle refresh deadline and
//!   shows up as per-tenant deadline misses.
//!
//! The result is a single merged [`Schedule`] any executor replays
//! unchanged, plus one standalone sub-schedule and a contention report
//! per tenant. The merge is a pure function of its inputs (ordered maps
//! only, no randomness, no clocks), so the same tenants always produce
//! the same bytes.

use std::collections::BTreeMap;

use vlq::arch::address::{ModeIndex, StackCoord, VirtAddr};
use vlq::exec::CostExecutor;
use vlq::isa::{Instr, Schedule};
use vlq::machine::{LogicalId, MachineConfig, MachineError};
use vlq::program::CompiledProgram;
use vlq_telemetry::{Metric, Recorder};

use crate::policy::{PageView, ReplacementPolicy};

/// Bits of the global qubit id reserved for the tenant-local index.
pub const TENANT_ID_BITS: u32 = 20;

/// Most qubits one tenant may allocate (local ids must fit the reserved
/// bits).
pub const MAX_TENANT_QUBITS: u32 = 1 << TENANT_ID_BITS;

/// Most tenants one scheduler admits (the remaining id bits).
pub const MAX_TENANTS: usize = 1 << (32 - TENANT_ID_BITS);

/// Admission and merge errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantError {
    /// `run()` on a scheduler with no admitted tenants.
    NoTenants,
    /// A tenant's program was compiled for a different machine shape.
    ConfigMismatch {
        /// Admission index of the offender.
        tenant: usize,
    },
    /// A tenant uses a local qubit id outside the reserved
    /// [`MAX_TENANT_QUBITS`] space.
    IdSpaceOverflow {
        /// Admission index of the offender.
        tenant: usize,
        /// The oversized local id.
        qubit: LogicalId,
    },
    /// More than [`MAX_TENANTS`] admissions.
    TooManyTenants,
    /// A tenant's solo schedule failed structural validation.
    InvalidSchedule {
        /// Admission index of the offender.
        tenant: usize,
        /// The underlying schedule error.
        source: MachineError,
    },
    /// A stack's every resident page was pinned by the faulting
    /// instruction — the machine shape cannot host this tenant mix.
    StackOvercommitted {
        /// The overcommitted stack.
        stack: StackCoord,
        /// When the fault happened.
        t: u64,
    },
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::NoTenants => write!(f, "no tenants admitted"),
            TenantError::ConfigMismatch { tenant } => {
                write!(
                    f,
                    "tenant #{tenant} was compiled for a different machine config"
                )
            }
            TenantError::IdSpaceOverflow { tenant, qubit } => {
                write!(
                    f,
                    "tenant #{tenant} uses local qubit {qubit:?} outside the \
                     {MAX_TENANT_QUBITS}-id tenant space"
                )
            }
            TenantError::TooManyTenants => {
                write!(f, "more than {MAX_TENANTS} tenants admitted")
            }
            TenantError::InvalidSchedule { tenant, source } => {
                write!(f, "tenant #{tenant} has an invalid solo schedule: {source}")
            }
            TenantError::StackOvercommitted { stack, t } => {
                write!(
                    f,
                    "stack {stack} overcommitted at t={t}: every resident page is pinned"
                )
            }
        }
    }
}

impl std::error::Error for TenantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TenantError::InvalidSchedule { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One program admitted to the shared machine.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Display name (artifact rows, sidecar labels).
    pub name: String,
    /// The solo-compiled program.
    pub program: CompiledProgram,
    /// Scheduling priority (higher = more protected from eviction under
    /// the deadline-aware policy).
    pub priority: u32,
    /// Completion deadline in global timesteps, if the tenant has one.
    pub deadline: Option<u64>,
}

impl TenantSpec {
    /// A best-effort tenant: priority 0, no deadline.
    pub fn new(name: impl Into<String>, program: CompiledProgram) -> Self {
        TenantSpec {
            name: name.into(),
            program,
            priority: 0,
            deadline: None,
        }
    }

    /// Sets the priority (builder style).
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: u64) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Per-tenant contention report (everything deterministic).
#[derive(Clone, Debug)]
pub struct TenantReport {
    /// The tenant's display name.
    pub name: String,
    /// Admission priority.
    pub priority: u32,
    /// Completion deadline, if any.
    pub deadline: Option<u64>,
    /// The tenant's slice of the merged schedule — its own instructions
    /// plus the page traffic injected on its behalf; a valid standalone
    /// [`Schedule`].
    pub subschedule: Schedule,
    /// Timesteps this tenant's instructions waited on other tenants.
    pub queue_delay: u64,
    /// Page-ins injected because a qubit had been evicted.
    pub page_faults: u64,
    /// This tenant's pages evicted by the replacement policy.
    pub evictions: u64,
    /// Error-correction touches (refresh, correction, move, measure)
    /// that found the qubit past its `k`-cycle refresh deadline —
    /// swap-out time counts.
    pub deadline_misses: u64,
    /// Refresh rounds and correction touches dropped because the target
    /// qubit was swapped out.
    pub refresh_skips: u64,
    /// `PageIn` instructions emitted for this tenant (initial + faults).
    pub page_ins: u64,
    /// `PageOut` instructions emitted for this tenant (evictions +
    /// teardown).
    pub page_outs: u64,
    /// The tenant's own instructions that made it into the merge.
    pub instructions: u64,
    /// Global timestep the tenant finished (last instruction end, or
    /// later if the solo schedule carried trailing idle time).
    pub finish_t: u64,
    /// The solo schedule's duration (the no-contention baseline).
    pub ideal_t: u64,
}

impl TenantReport {
    /// Contention slowdown in permille: `finish_t / ideal_t × 1000`
    /// (1000 = no slowdown).
    pub fn slowdown_permille(&self) -> u64 {
        (self.finish_t * 1000)
            .checked_div(self.ideal_t)
            .unwrap_or(1000)
    }

    /// Whether the tenant met its deadline (`None` when it has none).
    pub fn deadline_met(&self) -> Option<bool> {
        self.deadline.map(|d| self.finish_t <= d)
    }

    /// Adds the report's `tenant.*` metrics to a recorder.
    pub fn record(&self, recorder: &Recorder) {
        recorder.add(Metric::TenantQueueDelay, self.queue_delay);
        recorder.add(Metric::TenantDeadlineMisses, self.deadline_misses);
        recorder.add(Metric::TenantEvictions, self.evictions);
        recorder.add(Metric::TenantPageFaults, self.page_faults);
        recorder.add(Metric::TenantRefreshSkips, self.refresh_skips);
        recorder.add(Metric::TenantInstructions, self.instructions);
        recorder.gauge_max(Metric::TenantFinishT, self.finish_t);
        recorder.gauge_max(Metric::TenantIdealT, self.ideal_t);
        recorder.gauge_max(Metric::TenantSlowdownPermille, self.slowdown_permille());
    }

    /// Records the `tenant.*` metrics plus the `cost.*` contention
    /// counters from replaying the tenant's sub-schedule through
    /// [`CostExecutor`] — the full per-tenant sidecar row set.
    ///
    /// # Errors
    ///
    /// Propagates sub-schedule validation errors (none for
    /// scheduler-produced reports).
    pub fn record_full(&self, recorder: &Recorder) -> Result<(), MachineError> {
        self.record(recorder);
        CostExecutor.run_recorded(&self.subschedule, recorder)?;
        Ok(())
    }
}

/// The merged multi-tenant program: one replayable schedule plus the
/// per-tenant contention reports.
#[derive(Clone, Debug)]
pub struct MultiProgram {
    /// The merged schedule (validates; any executor replays it).
    pub schedule: Schedule,
    /// One report per admitted tenant, in admission order.
    pub tenants: Vec<TenantReport>,
}

impl MultiProgram {
    /// Jain-style fairness in permille: the smallest tenant slowdown
    /// over the largest (1000 = perfectly even contention).
    pub fn fairness_permille(&self) -> u64 {
        let slowdowns: Vec<u64> = self
            .tenants
            .iter()
            .map(TenantReport::slowdown_permille)
            .collect();
        match (slowdowns.iter().min(), slowdowns.iter().max()) {
            (Some(&min), Some(&max)) if max > 0 => min * 1000 / max,
            _ => 1000,
        }
    }
}

/// Admits tenants and merges them onto one shared machine (see the
/// module docs for the algorithm).
///
/// # Examples
///
/// ```
/// use vlq::machine::MachineConfig;
/// use vlq::program::{compile, LogicalCircuit};
/// use vlq_tenant::{PolicyKind, TenantScheduler, TenantSpec};
///
/// let config = MachineConfig::compact_demo();
/// let mut sched = TenantScheduler::new(config, PolicyKind::RefreshDeadline.build());
/// for name in ["alice", "bob"] {
///     let program = compile(&LogicalCircuit::ghz(3), config).unwrap();
///     sched.admit(TenantSpec::new(name, program)).unwrap();
/// }
/// let multi = sched.run().unwrap();
/// assert_eq!(multi.tenants.len(), 2);
/// multi.schedule.validate().unwrap();
/// ```
pub struct TenantScheduler {
    config: MachineConfig,
    policy: Box<dyn ReplacementPolicy>,
    tenants: Vec<TenantSpec>,
}

impl TenantScheduler {
    /// A scheduler for one machine shape and replacement policy.
    pub fn new(config: MachineConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
        TenantScheduler {
            config,
            policy,
            tenants: Vec::new(),
        }
    }

    /// The shared machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The replacement policy's stable name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Admits a tenant, returning its admission index.
    ///
    /// # Errors
    ///
    /// Rejects programs compiled for a different machine shape, invalid
    /// solo schedules, local ids outside the tenant space, and
    /// admission past [`MAX_TENANTS`].
    pub fn admit(&mut self, spec: TenantSpec) -> Result<usize, TenantError> {
        let tenant = self.tenants.len();
        if tenant >= MAX_TENANTS {
            return Err(TenantError::TooManyTenants);
        }
        if spec.program.schedule.config() != &self.config {
            return Err(TenantError::ConfigMismatch { tenant });
        }
        spec.program
            .schedule
            .validate()
            .map_err(|source| TenantError::InvalidSchedule { tenant, source })?;
        let mut oversized = None;
        for instr in spec.program.schedule.instrs() {
            instr.for_each_qubit(|q| {
                if q.0 >= MAX_TENANT_QUBITS && oversized.is_none() {
                    oversized = Some(q);
                }
            });
        }
        if let Some(qubit) = oversized {
            return Err(TenantError::IdSpaceOverflow { tenant, qubit });
        }
        self.tenants.push(spec);
        Ok(tenant)
    }

    /// Merges the admitted tenants into one schedule.
    ///
    /// # Errors
    ///
    /// [`TenantError::NoTenants`] without admissions;
    /// [`TenantError::StackOvercommitted`] when a fault finds every
    /// resident page pinned.
    pub fn run(self) -> Result<MultiProgram, TenantError> {
        if self.tenants.is_empty() {
            return Err(TenantError::NoTenants);
        }
        let mut merge = Merge::new(self.config, self.policy.as_ref(), &self.tenants);
        merge.run()?;
        let Merge {
            merged,
            subs,
            counters,
            ..
        } = merge;
        let mut schedule = merged;
        let mut tenants = Vec::with_capacity(self.tenants.len());
        for (i, spec) in self.tenants.iter().enumerate() {
            let ideal_t = spec.program.schedule.duration();
            // Trailing idle time in the solo schedule (e.g. memory-style
            // holds) survives the merge, shifted by the tenant's delay.
            let finish_t = counters[i].finish.max(counters[i].delta + ideal_t);
            let mut subschedule = subs[i].clone();
            subschedule.set_duration(finish_t);
            schedule.set_duration(finish_t);
            tenants.push(TenantReport {
                name: spec.name.clone(),
                priority: spec.priority,
                deadline: spec.deadline,
                subschedule,
                queue_delay: counters[i].queue_delay,
                page_faults: counters[i].page_faults,
                evictions: counters[i].evictions,
                deadline_misses: counters[i].deadline_misses,
                refresh_skips: counters[i].refresh_skips,
                page_ins: counters[i].page_ins,
                page_outs: counters[i].page_outs,
                instructions: counters[i].instructions,
                finish_t,
                ideal_t,
            });
        }
        debug_assert!(schedule.validate().is_ok(), "merged schedule is invalid");
        Ok(MultiProgram { schedule, tenants })
    }
}

/// Residency and accounting state of one global qubit.
#[derive(Clone, Copy, Debug)]
struct QubitState {
    tenant: usize,
    /// Home stack (follows `Move`s; stacks are never remapped).
    stack: StackCoord,
    /// Physical mode when resident.
    mode: Option<u8>,
    last_ec: u64,
    last_use: u64,
    paged_in_at: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Counters {
    queue_delay: u64,
    page_faults: u64,
    evictions: u64,
    deadline_misses: u64,
    refresh_skips: u64,
    page_ins: u64,
    page_outs: u64,
    instructions: u64,
    finish: u64,
    delta: u64,
}

struct Merge<'a> {
    config: MachineConfig,
    k: u64,
    policy: &'a dyn ReplacementPolicy,
    specs: &'a [TenantSpec],
    merged: Schedule,
    subs: Vec<Schedule>,
    counters: Vec<Counters>,
    qubits: BTreeMap<LogicalId, QubitState>,
    /// Physical occupancy per stack: mode → resident global qubit.
    occ: BTreeMap<StackCoord, BTreeMap<u8, LogicalId>>,
    /// Per-stack transmon-layer busy horizon (end of the last
    /// timeline-spanning instruction touching the stack).
    busy: BTreeMap<StackCoord, u64>,
    /// Global monotone start-time floor.
    last_t: u64,
}

fn global_id(tenant: usize, local: LogicalId) -> LogicalId {
    LogicalId(((tenant as u32) << TENANT_ID_BITS) | local.0)
}

impl<'a> Merge<'a> {
    fn new(
        config: MachineConfig,
        policy: &'a dyn ReplacementPolicy,
        specs: &'a [TenantSpec],
    ) -> Self {
        Merge {
            config,
            k: config.k as u64,
            policy,
            specs,
            merged: Schedule::new(config),
            subs: specs.iter().map(|_| Schedule::new(config)).collect(),
            counters: vec![Counters::default(); specs.len()],
            qubits: BTreeMap::new(),
            occ: BTreeMap::new(),
            busy: BTreeMap::new(),
            last_t: 0,
        }
    }

    fn run(&mut self) -> Result<(), TenantError> {
        let n = self.specs.len();
        let mut cursors = vec![0usize; n];
        loop {
            // The tenant whose next instruction is ready earliest runs;
            // ties go to the lowest admission index.
            let next = (0..n)
                .filter(|&i| cursors[i] < self.specs[i].program.schedule.len())
                .min_by_key(|&i| {
                    let instr = &self.specs[i].program.schedule.instrs()[cursors[i]];
                    (instr.t() + self.counters[i].delta, i)
                });
            let Some(ti) = next else { break };
            let instr = self.specs[ti].program.schedule.instrs()[cursors[ti]].clone();
            cursors[ti] += 1;
            self.step(ti, &instr)?;
        }
        Ok(())
    }

    /// Merges one tenant instruction: waits, faults, rewrites, emits.
    fn step(&mut self, ti: usize, instr: &Instr) -> Result<(), TenantError> {
        let local_t = instr.t();
        let ready = local_t + self.counters[ti].delta;
        let span = instr.span();
        let g = |q: LogicalId| global_id(ti, q);

        // Stacks this instruction occupies or allocates in; the start
        // time waits past their busy horizons so no in-flight qubit is
        // ever touched or evicted.
        let mut touched: Vec<StackCoord> = Vec::with_capacity(2);
        match *instr {
            Instr::PageIn { addr, .. } => touched.push(addr.stack),
            Instr::PageOut { .. } | Instr::RefreshRound { .. } | Instr::Correction { .. } => {}
            Instr::TransversalCnot { stack, .. } => touched.push(stack),
            Instr::LatticeSurgeryCnot {
                control_stack,
                target_stack,
                ..
            } => {
                touched.push(control_stack);
                touched.push(target_stack);
            }
            Instr::Move { from, to, .. } => {
                touched.push(from);
                touched.push(to);
            }
            Instr::SurgeryMerge { a, b, .. } | Instr::SurgerySplit { a, b, .. } => {
                touched.push(self.home_stack(g(a)));
                touched.push(self.home_stack(g(b)));
            }
            Instr::Logical1Q { qubit, .. }
            | Instr::ConsumeMagic { qubit, .. }
            | Instr::MeasureLogical { qubit, .. } => touched.push(self.home_stack(g(qubit))),
        }
        let mut start = ready.max(self.last_t);
        for st in &touched {
            start = start.max(self.busy.get(st).copied().unwrap_or(0));
        }

        match *instr {
            Instr::PageIn { qubit, addr, .. } => {
                let gq = g(qubit);
                self.qubits.insert(
                    gq,
                    QubitState {
                        tenant: ti,
                        stack: addr.stack,
                        mode: None,
                        last_ec: start,
                        last_use: start,
                        paged_in_at: start,
                    },
                );
                let mode = self.alloc_mode(addr.stack, start, &[gq])?;
                self.place(gq, addr.stack, mode, start);
                self.emit(
                    ti,
                    Instr::PageIn {
                        qubit: gq,
                        addr: VirtAddr::new(addr.stack, ModeIndex(mode)),
                        t: start,
                    },
                );
                self.counters[ti].page_ins += 1;
                self.counters[ti].instructions += 1;
            }
            Instr::PageOut { qubit, .. } => {
                let gq = g(qubit);
                let state = self.qubits.remove(&gq).expect("validated schedule");
                if let Some(mode) = state.mode {
                    self.occ.entry(state.stack).or_default().remove(&mode);
                    self.emit(
                        ti,
                        Instr::PageOut {
                            qubit: gq,
                            addr: VirtAddr::new(state.stack, ModeIndex(mode)),
                            t: start,
                        },
                    );
                    self.counters[ti].page_outs += 1;
                    self.counters[ti].instructions += 1;
                }
                // Already evicted: its PageOut was emitted at eviction
                // time; the teardown instruction is dropped.
            }
            Instr::RefreshRound {
                stack,
                qubit,
                rounds,
                ..
            } => {
                let gq = g(qubit);
                if self.resident(gq) {
                    self.check_deadline(gq, start);
                    self.qubits.get_mut(&gq).expect("resident").last_ec = start;
                    self.emit(
                        ti,
                        Instr::RefreshRound {
                            stack,
                            qubit: gq,
                            rounds,
                            t: start,
                        },
                    );
                    self.counters[ti].instructions += 1;
                } else {
                    // Can't refresh a swapped-out qubit; its EC clock
                    // keeps running, so a skipped pass past the k-cycle
                    // deadline is itself a miss (the paper's §III-A hard
                    // requirement going unmet while the page is out).
                    self.check_deadline(gq, start);
                    self.counters[ti].refresh_skips += 1;
                }
            }
            Instr::Correction { qubit, .. } => {
                let gq = g(qubit);
                if self.resident(gq) {
                    self.check_deadline(gq, start);
                    self.qubits.get_mut(&gq).expect("resident").last_ec = start;
                    self.emit(
                        ti,
                        Instr::Correction {
                            qubit: gq,
                            t: start,
                        },
                    );
                    self.counters[ti].instructions += 1;
                } else {
                    self.check_deadline(gq, start);
                    self.counters[ti].refresh_skips += 1;
                }
            }
            Instr::Logical1Q { qubit, gate, .. } => {
                let gq = g(qubit);
                self.fault_in(ti, gq, start, &[gq])?;
                self.use_at(gq, start);
                self.emit(
                    ti,
                    Instr::Logical1Q {
                        qubit: gq,
                        gate,
                        t: start,
                    },
                );
                self.counters[ti].instructions += 1;
            }
            Instr::TransversalCnot {
                control,
                target,
                stack,
                ..
            } => {
                let (gc, gt) = (g(control), g(target));
                self.fault_in(ti, gc, start, &[gc, gt])?;
                self.fault_in(ti, gt, start, &[gc, gt])?;
                self.use_at(gc, start);
                self.use_at(gt, start);
                self.emit(
                    ti,
                    Instr::TransversalCnot {
                        control: gc,
                        target: gt,
                        stack,
                        t: start,
                    },
                );
                self.counters[ti].instructions += 1;
            }
            Instr::LatticeSurgeryCnot {
                control,
                target,
                control_stack,
                target_stack,
                ..
            } => {
                let (gc, gt) = (g(control), g(target));
                self.fault_in(ti, gc, start, &[gc, gt])?;
                self.fault_in(ti, gt, start, &[gc, gt])?;
                self.use_at(gc, start);
                self.use_at(gt, start);
                self.emit(
                    ti,
                    Instr::LatticeSurgeryCnot {
                        control: gc,
                        target: gt,
                        control_stack,
                        target_stack,
                        t: start,
                    },
                );
                self.counters[ti].instructions += 1;
            }
            Instr::SurgeryMerge { a, b, .. } | Instr::SurgerySplit { a, b, .. } => {
                let (ga, gb) = (g(a), g(b));
                self.fault_in(ti, ga, start, &[ga, gb])?;
                self.fault_in(ti, gb, start, &[ga, gb])?;
                self.use_at(ga, start);
                self.use_at(gb, start);
                let rewritten = match instr {
                    Instr::SurgeryMerge { .. } => Instr::SurgeryMerge {
                        a: ga,
                        b: gb,
                        t: start,
                    },
                    _ => Instr::SurgerySplit {
                        a: ga,
                        b: gb,
                        t: start,
                    },
                };
                self.emit(ti, rewritten);
                self.counters[ti].instructions += 1;
            }
            Instr::Move {
                qubit, from, to, ..
            } => {
                let gq = g(qubit);
                self.fault_in(ti, gq, start, &[gq])?;
                let old = self.qubits[&gq];
                let mode = self.alloc_mode(to, start, &[gq])?;
                self.occ
                    .entry(old.stack)
                    .or_default()
                    .remove(&old.mode.expect("faulted in above"));
                self.check_deadline(gq, start);
                {
                    let state = self.qubits.get_mut(&gq).expect("faulted in above");
                    state.stack = to;
                    state.mode = Some(mode);
                    state.last_ec = start; // a move is an EC touch
                    state.last_use = start;
                    state.paged_in_at = start;
                }
                self.occ.entry(to).or_default().insert(mode, gq);
                self.emit(
                    ti,
                    Instr::Move {
                        qubit: gq,
                        from,
                        to,
                        to_addr: VirtAddr::new(to, ModeIndex(mode)),
                        t: start,
                    },
                );
                self.counters[ti].instructions += 1;
            }
            Instr::ConsumeMagic { qubit, .. } => {
                let gq = g(qubit);
                self.fault_in(ti, gq, start, &[gq])?;
                self.use_at(gq, start);
                self.emit(
                    ti,
                    Instr::ConsumeMagic {
                        qubit: gq,
                        t: start,
                    },
                );
                self.counters[ti].instructions += 1;
            }
            Instr::MeasureLogical { qubit, .. } => {
                let gq = g(qubit);
                self.fault_in(ti, gq, start, &[gq])?;
                self.check_deadline(gq, start);
                self.use_at(gq, start);
                let state = self.qubits[&gq];
                self.emit(
                    ti,
                    Instr::MeasureLogical {
                        qubit: gq,
                        addr: VirtAddr::new(
                            state.stack,
                            ModeIndex(state.mode.expect("faulted in")),
                        ),
                        t: start,
                    },
                );
                self.counters[ti].instructions += 1;
            }
        }

        self.counters[ti].queue_delay += start - ready;
        self.counters[ti].delta = start - local_t;
        self.counters[ti].finish = self.counters[ti].finish.max(start + span);
        self.last_t = start;
        if span > 0 {
            for st in touched {
                self.busy.insert(st, start + span);
            }
        }
        Ok(())
    }

    fn home_stack(&self, gq: LogicalId) -> StackCoord {
        self.qubits
            .get(&gq)
            .expect("operand paged in by its tenant's validated schedule")
            .stack
    }

    fn resident(&self, gq: LogicalId) -> bool {
        self.qubits.get(&gq).is_some_and(|s| s.mode.is_some())
    }

    fn use_at(&mut self, gq: LogicalId, t: u64) {
        self.qubits.get_mut(&gq).expect("resident operand").last_use = t;
    }

    /// Charges a deadline miss when an EC touch finds the qubit past
    /// the `k`-cycle refresh deadline (swap-out time included — the
    /// injected re-fault `PageIn` deliberately does *not* reset
    /// `last_ec`).
    fn check_deadline(&mut self, gq: LogicalId, t: u64) {
        let state = self.qubits[&gq];
        if t.saturating_sub(state.last_ec) > self.k {
            self.counters[state.tenant].deadline_misses += 1;
        }
    }

    /// Pages a swapped-out qubit back into its home stack.
    fn fault_in(
        &mut self,
        ti: usize,
        gq: LogicalId,
        t: u64,
        pinned: &[LogicalId],
    ) -> Result<(), TenantError> {
        if self.resident(gq) {
            return Ok(());
        }
        let stack = self.home_stack(gq);
        let mode = self.alloc_mode(stack, t, pinned)?;
        self.place(gq, stack, mode, t);
        self.emit(
            ti,
            Instr::PageIn {
                qubit: gq,
                addr: VirtAddr::new(stack, ModeIndex(mode)),
                t,
            },
        );
        self.counters[ti].page_faults += 1;
        self.counters[ti].page_ins += 1;
        Ok(())
    }

    fn place(&mut self, gq: LogicalId, stack: StackCoord, mode: u8, t: u64) {
        self.occ.entry(stack).or_default().insert(mode, gq);
        let state = self.qubits.get_mut(&gq).expect("known qubit");
        state.mode = Some(mode);
        state.paged_in_at = t;
    }

    /// The lowest free physical mode in `stack`, evicting one resident
    /// page per the policy when the stack is at its `k - 1` limit.
    fn alloc_mode(
        &mut self,
        stack: StackCoord,
        t: u64,
        pinned: &[LogicalId],
    ) -> Result<u8, TenantError> {
        let limit = self.config.k - 1; // one mode stays free (§III-D)
        if self.occ.entry(stack).or_default().len() >= limit {
            self.evict_one(stack, t, pinned)?;
        }
        let occ = &self.occ[&stack];
        let mode = (0..self.config.k as u8)
            .find(|m| !occ.contains_key(m))
            .expect("eviction freed a mode");
        Ok(mode)
    }

    fn evict_one(
        &mut self,
        stack: StackCoord,
        t: u64,
        pinned: &[LogicalId],
    ) -> Result<(), TenantError> {
        let pages: Vec<PageView> = self.occ[&stack]
            .iter()
            .filter(|(_, q)| !pinned.contains(q))
            .map(|(&mode, &q)| {
                let s = &self.qubits[&q];
                PageView {
                    tenant: s.tenant,
                    tenant_priority: self.specs[s.tenant].priority,
                    tenant_deadline: self.specs[s.tenant].deadline,
                    qubit: q,
                    stack,
                    mode,
                    paged_in_at: s.paged_in_at,
                    last_use: s.last_use,
                    last_ec: s.last_ec,
                    now: t,
                }
            })
            .collect();
        if pages.is_empty() {
            return Err(TenantError::StackOvercommitted { stack, t });
        }
        let v = self.policy.victim(&pages);
        assert!(v < pages.len(), "policy returned out-of-range victim index");
        let victim = pages[v];
        self.occ.entry(stack).or_default().remove(&victim.mode);
        self.qubits
            .get_mut(&victim.qubit)
            .expect("resident victim")
            .mode = None;
        self.emit(
            victim.tenant,
            Instr::PageOut {
                qubit: victim.qubit,
                addr: VirtAddr::new(stack, ModeIndex(victim.mode)),
                t,
            },
        );
        self.counters[victim.tenant].evictions += 1;
        self.counters[victim.tenant].page_outs += 1;
        Ok(())
    }

    /// Appends to the merged schedule and the owning tenant's
    /// sub-schedule.
    fn emit(&mut self, tenant: usize, instr: Instr) {
        self.subs[tenant].push(instr.clone());
        self.merged.push(instr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use vlq::program::{compile, LogicalCircuit};

    fn demo_config() -> MachineConfig {
        MachineConfig::compact_demo()
    }

    fn ghz_tenant(config: MachineConfig, name: &str) -> TenantSpec {
        TenantSpec::new(name, compile(&LogicalCircuit::ghz(3), config).unwrap())
    }

    #[test]
    fn admission_rejects_config_mismatch() {
        let config = demo_config();
        let mut other = config;
        other.k = 5;
        let mut sched = TenantScheduler::new(config, PolicyKind::RefreshDeadline.build());
        let program = compile(&LogicalCircuit::ghz(2), other).unwrap();
        assert_eq!(
            sched.admit(TenantSpec::new("bad", program)),
            Err(TenantError::ConfigMismatch { tenant: 0 })
        );
    }

    #[test]
    fn run_without_tenants_errors() {
        let sched = TenantScheduler::new(demo_config(), PolicyKind::Lru.build());
        assert_eq!(sched.run().unwrap_err(), TenantError::NoTenants);
    }

    #[test]
    fn single_tenant_merge_is_identity() {
        // N=1 must reproduce today's solo VlqMachine output bit for bit
        // under *every* policy: no contention, no waits, no evictions.
        let config = demo_config();
        for kind in PolicyKind::ALL {
            for circuit in [
                LogicalCircuit::ghz(5),
                LogicalCircuit::teleport(),
                LogicalCircuit::adder(2),
            ] {
                let solo = compile(&circuit, config).unwrap();
                let mut sched = TenantScheduler::new(config, kind.build());
                sched.admit(TenantSpec::new("only", solo.clone())).unwrap();
                let multi = sched.run().unwrap();
                assert_eq!(
                    multi.schedule.instrs(),
                    solo.schedule.instrs(),
                    "{kind} changed the solo instruction stream"
                );
                assert_eq!(multi.schedule.duration(), solo.schedule.duration());
                let report = &multi.tenants[0];
                assert_eq!(report.queue_delay, 0);
                assert_eq!(report.page_faults, 0);
                assert_eq!(report.evictions, 0);
                assert_eq!(report.refresh_skips, 0);
                assert_eq!(report.slowdown_permille(), 1000);
                assert_eq!(report.subschedule.instrs(), solo.schedule.instrs());
            }
        }
    }

    #[test]
    fn two_tenants_merge_and_validate() {
        let config = demo_config();
        let mut sched = TenantScheduler::new(config, PolicyKind::RefreshDeadline.build());
        sched.admit(ghz_tenant(config, "alice")).unwrap();
        sched.admit(ghz_tenant(config, "bob")).unwrap();
        let multi = sched.run().unwrap();
        multi.schedule.validate().unwrap();
        for report in &multi.tenants {
            report.subschedule.validate().unwrap();
            assert!(report.instructions > 0);
            assert!(report.finish_t >= report.ideal_t);
        }
        // Disjoint id spaces: tenant 1's qubits carry the tenant tag.
        let mut saw_tagged = false;
        for instr in multi.schedule.instrs() {
            instr.for_each_qubit(|q| saw_tagged |= q.0 >= MAX_TENANT_QUBITS);
        }
        assert!(saw_tagged);
    }

    #[test]
    fn merge_is_deterministic() {
        let config = demo_config();
        let build = || {
            let mut sched = TenantScheduler::new(config, PolicyKind::Lru.build());
            for name in ["a", "b", "c"] {
                sched.admit(ghz_tenant(config, name)).unwrap();
            }
            sched.run().unwrap()
        };
        let (x, y) = (build(), build());
        assert_eq!(x.schedule.instrs(), y.schedule.instrs());
        for (tx, ty) in x.tenants.iter().zip(&y.tenants) {
            assert_eq!(tx.subschedule.instrs(), ty.subschedule.instrs());
            assert_eq!(tx.queue_delay, ty.queue_delay);
            assert_eq!(tx.deadline_misses, ty.deadline_misses);
        }
    }

    #[test]
    fn contention_thrashes_and_charges_faults() {
        // Three 3-qubit tenants on one capacity-3 stack: 9 live qubits
        // fight for 3 modes, so the merge must page continuously.
        let mut config = demo_config();
        config.stacks_x = 1;
        config.stacks_y = 1;
        config.k = 4;
        let mut sched = TenantScheduler::new(config, PolicyKind::Lru.build());
        for name in ["a", "b", "c"] {
            sched.admit(ghz_tenant(config, name)).unwrap();
        }
        let multi = sched.run().unwrap();
        multi.schedule.validate().unwrap();
        let faults: u64 = multi.tenants.iter().map(|t| t.page_faults).sum();
        let evictions: u64 = multi.tenants.iter().map(|t| t.evictions).sum();
        assert!(faults > 0, "expected page thrash");
        assert!(evictions >= faults, "every fault re-fills an evicted slot");
        assert!(multi.fairness_permille() <= 1000);
    }

    #[test]
    fn tenant_error_display_and_source() {
        use std::error::Error;
        let err = TenantError::InvalidSchedule {
            tenant: 2,
            source: MachineError::OutOfCapacity,
        };
        assert!(err.to_string().contains("#2"));
        assert!(err.source().is_some());
        assert!(TenantError::NoTenants.source().is_none());
    }
}
