//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index). They print aligned
//! text tables to stdout so results can be diffed against
//! EXPERIMENTS.md.

/// Tiny argument parser: `--key value` pairs and flags.
#[derive(Debug, Default)]
pub struct Args {
    pairs: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Args {
    /// Parses `std::env::args`.
    pub fn parse() -> Self {
        let mut pairs = std::collections::HashMap::new();
        let mut flags = std::collections::HashSet::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { pairs, flags }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// String lookup.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.pairs
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Flag presence.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains(key)
    }
}

/// Formats a probability in compact scientific notation.
pub fn sci(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else {
        format!("{p:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.0123), "1.23e-2");
    }
}
