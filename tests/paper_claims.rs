//! Integration tests pinning the paper's quantitative claims.

use vlq::arch::geometry::{baseline_tiling_transmons, patch_cost, Embedding};
use vlq::magic::distill::distillation_stats;
use vlq::magic::factory::{FactoryProtocol, ProtocolKind};
use vlq::surgery::{
    verify_transversal_cnot_statevector, verify_transversal_cnot_tableau, LogicalOp,
};

/// Abstract: "fast transversal application of CNOT operations ... 6x
/// faster than standard lattice surgery CNOTs".
#[test]
fn claim_6x_transversal_cnot() {
    assert_eq!(LogicalOp::transversal_speedup(), 6);
}

/// Abstract: "a novel embedding which saves approximately 10x in
/// transmons with another 2x savings from an additional optimization".
#[test]
fn claim_10x_and_2x_savings() {
    let k = 10;
    let d = 5;
    let nat = patch_cost(Embedding::Natural, d, k);
    let com = patch_cost(Embedding::Compact, d, k);
    let base = patch_cost(Embedding::Baseline2D, d, k);
    let nat_savings = (base.transmons * k) as f64 / nat.transmons as f64;
    assert!(
        (nat_savings - 10.0).abs() < 0.5,
        "natural savings {nat_savings}"
    );
    let extra = nat.transmons as f64 / com.transmons as f64;
    assert!(extra > 1.6 && extra < 2.0, "compact extra savings {extra}");
}

/// Abstract: "a proof-of-concept experimental demonstration of around 10
/// logical qubits, requiring only 11 transmons and 9 attached cavities".
#[test]
fn claim_11_transmons_9_cavities() {
    let c = patch_cost(Embedding::Compact, 3, 10);
    assert_eq!(c.transmons, 11);
    assert_eq!(c.cavities, 9);
    assert_eq!(c.logical_qubits, 10);
}

/// §VII: "generates 1.82x as many T-states as Fast Lattice and 1.22x as
/// many as Small Lattice".
#[test]
fn claim_magic_state_rates() {
    let vq = FactoryProtocol::new(ProtocolKind::VQubitsNatural).rate_with_patches(100.0);
    let fast = FactoryProtocol::new(ProtocolKind::FastLattice).rate_with_patches(100.0);
    let small = FactoryProtocol::new(ProtocolKind::SmallLattice).rate_with_patches(100.0);
    assert!((vq / fast - 1.82).abs() < 0.01);
    assert!((vq / small - 1.22).abs() < 0.01);
}

/// Table II at d = 5 with depth-10 cavities.
#[test]
fn claim_table2() {
    assert_eq!(baseline_tiling_transmons(5, 6, 5), 1499);
    assert_eq!(baseline_tiling_transmons(11, 1, 5), 549);
    let vn = FactoryProtocol::new(ProtocolKind::VQubitsNatural).hardware_cost(5, 10);
    assert_eq!(
        (vn.transmons, vn.cavities, vn.total_qubits()),
        (49, 25, 299)
    );
    let vc = FactoryProtocol::new(ProtocolKind::VQubitsCompact).hardware_cost(5, 10);
    assert_eq!(
        (vc.transmons, vc.cavities, vc.total_qubits()),
        (29, 25, 279)
    );
}

/// §III-B: the transversal CNOT "which we verified via process
/// tomography ... to apply the expected CNOT unitary".
#[test]
fn claim_transversal_cnot_is_logical_cnot() {
    verify_transversal_cnot_tableau(3).unwrap();
    let f = verify_transversal_cnot_statevector(3);
    assert!(f > 1.0 - 1e-9);
}

/// The 15-to-1 protocol underpinning §VII obeys the 35 p^3 law.
#[test]
fn claim_15_to_1_error_suppression() {
    let s = distillation_stats(1e-3);
    let predicted = 35.0 * 1e-9;
    assert!((s.p_out - predicted).abs() / predicted < 0.05);
}
