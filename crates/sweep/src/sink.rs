//! Typed sweep records and the pluggable sinks they stream to.
//!
//! The engine emits one [`SweepRecord`] per grid point, in expansion
//! order (it buffers out-of-order completions), so file sinks produce
//! byte-identical artifacts regardless of worker count or steal order.

use std::io::{self, LineWriter, Write};
use std::path::Path;

use vlq_math::stats::BinomialEstimate;

use crate::artifact::{csv_field, json_f64, json_string};
use crate::spec::SweepPoint;

/// Result of one completed grid point.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRecord {
    /// Index of the point in the spec's expansion order.
    pub index: usize,
    /// The point's coordinates.
    pub point: SweepPoint,
    /// The sweep's base seed (all of the point's chunk seeds derive
    /// from it; a result-determining coordinate, so `--resume` refuses
    /// to reuse rows recorded under a different seed).
    pub base_seed: u64,
    /// Shots actually run.
    pub shots: u64,
    /// Logical failures observed.
    pub failures: u64,
}

impl SweepRecord {
    /// Binomial estimate of the failure rate (`None` for zero shots).
    pub fn estimate(&self) -> Option<BinomialEstimate> {
        (self.shots > 0).then(|| BinomialEstimate::new(self.failures, self.shots))
    }

    /// Point estimate of the logical error rate (0 for zero shots).
    pub fn rate(&self) -> f64 {
        self.estimate().map_or(0.0, |e| e.rate())
    }

    /// Standard error of the rate estimate (0 for zero shots).
    pub fn std_error(&self) -> f64 {
        self.estimate().map_or(0.0, |e| e.std_error())
    }

    /// Effective syndrome-round count (`rounds = d` when unspecified).
    pub fn rounds(&self) -> usize {
        self.point.rounds.unwrap_or(self.point.d)
    }
}

/// Column names shared by the CSV header and the JSON-lines keys.
/// `program` and `seed` are last so pre-existing column indices stay
/// stable.
pub const RECORD_COLUMNS: [&str; 16] = [
    "index",
    "setup",
    "basis",
    "d",
    "p",
    "k",
    "rounds",
    "decoder",
    "knob",
    "knob_value",
    "shots",
    "failures",
    "rate",
    "std_error",
    "program",
    "seed",
];

fn basis_name(record: &SweepRecord) -> &'static str {
    match record.point.basis {
        vlq_surface::schedule::Basis::Z => "z",
        vlq_surface::schedule::Basis::X => "x",
    }
}

/// A streaming consumer of completed sweep records.
pub trait RecordSink {
    /// Consumes one record (called in expansion order).
    fn write(&mut self, record: &SweepRecord) -> io::Result<()>;

    /// Consumes one record together with its measured wall time in
    /// nanoseconds (0 for prefilled/resumed points, which ran no
    /// chunks). The default ignores the timing and delegates to
    /// [`RecordSink::write`]; only timing-aware sinks ([`TimesSink`])
    /// override it.
    fn write_timed(&mut self, record: &SweepRecord, nanos: u64) -> io::Result<()> {
        let _ = nanos;
        self.write(record)
    }

    /// Whether this sink wants per-point wall times. When any attached
    /// sink returns `true` the engine measures point wall time even
    /// without a telemetry recorder.
    fn wants_timing(&self) -> bool {
        false
    }

    /// Flushes any buffered output; called once after the last record.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// CSV sink: header on construction, one row per record.
pub struct CsvSink<W: Write> {
    w: W,
}

impl<W: Write> CsvSink<W> {
    /// Wraps a writer and emits the header line.
    pub fn new(mut w: W) -> io::Result<Self> {
        writeln!(w, "{}", RECORD_COLUMNS.join(","))?;
        Ok(CsvSink { w })
    }
}

impl<W: Write> CsvSink<W> {
    /// Consumes the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl CsvSink<LineWriter<std::fs::File>> {
    /// Creates (or truncates) a CSV file sink at `path`. Line-buffered:
    /// every completed row reaches the file promptly, so an external
    /// supervisor (`sweep-launch`) can poll the artifact for progress.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        CsvSink::new(LineWriter::new(std::fs::File::create(path)?))
    }
}

/// Renders one record as its CSV data row (no header, no trailing
/// newline) — the exact bytes [`CsvSink`] writes for it.
pub fn csv_row(r: &SweepRecord) -> String {
    let (knob, knob_value) = match &r.point.knob {
        Some(kn) => (csv_field(&kn.name), format!("{}", kn.value)),
        None => (String::new(), String::new()),
    };
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
        r.index,
        csv_field(&r.point.setup.to_string()),
        basis_name(r),
        r.point.d,
        r.point.p,
        r.point.k,
        r.rounds(),
        csv_field(r.point.decoder.name()),
        knob,
        knob_value,
        r.shots,
        r.failures,
        r.rate(),
        r.std_error(),
        r.point.program.as_deref().map_or(String::new(), csv_field),
        r.base_seed,
    )
}

impl<W: Write> RecordSink for CsvSink<W> {
    fn write(&mut self, r: &SweepRecord) -> io::Result<()> {
        writeln!(self.w, "{}", csv_row(r))
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// JSON-lines sink: one object per record, keys matching
/// [`RECORD_COLUMNS`].
pub struct JsonlSink<W: Write> {
    w: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(w: W) -> Self {
        JsonlSink { w }
    }
}

impl<W: Write> JsonlSink<W> {
    /// Consumes the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl JsonlSink<LineWriter<std::fs::File>> {
    /// Creates (or truncates) a JSON-lines file sink at `path`.
    /// Line-buffered for the same supervisor-polling reason as
    /// [`CsvSink::create`].
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(JsonlSink::new(LineWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

/// Renders one record as its JSON-lines row (no trailing newline) —
/// the exact bytes [`JsonlSink`] writes for it.
pub fn jsonl_row(r: &SweepRecord) -> String {
    let (knob, knob_value) = match &r.point.knob {
        Some(kn) => (json_string(&kn.name), json_f64(kn.value)),
        None => ("null".to_string(), "null".to_string()),
    };
    format!(
        concat!(
            "{{\"index\":{},\"setup\":{},\"basis\":{},\"d\":{},\"p\":{},\"k\":{},",
            "\"rounds\":{},\"decoder\":{},\"knob\":{},\"knob_value\":{},",
            "\"shots\":{},\"failures\":{},\"rate\":{},\"std_error\":{},",
            "\"program\":{},\"seed\":{}}}"
        ),
        r.index,
        json_string(&r.point.setup.to_string()),
        json_string(basis_name(r)),
        r.point.d,
        json_f64(r.point.p),
        r.point.k,
        r.rounds(),
        json_string(r.point.decoder.name()),
        knob,
        knob_value,
        r.shots,
        r.failures,
        json_f64(r.rate()),
        json_f64(r.std_error()),
        r.point
            .program
            .as_deref()
            .map_or("null".to_string(), json_string),
        r.base_seed,
    )
}

impl<W: Write> RecordSink for JsonlSink<W> {
    fn write(&mut self, r: &SweepRecord) -> io::Result<()> {
        writeln!(self.w, "{}", jsonl_row(r))
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

/// In-memory sink collecting records into a `Vec`.
#[derive(Default)]
pub struct MemorySink {
    records: Vec<SweepRecord>,
}

impl MemorySink {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected records, in emission (= expansion) order.
    pub fn records(&self) -> &[SweepRecord] {
        &self.records
    }

    /// Consumes the sink, returning the records.
    pub fn into_records(self) -> Vec<SweepRecord> {
        self.records
    }
}

impl RecordSink for MemorySink {
    fn write(&mut self, record: &SweepRecord) -> io::Result<()> {
        self.records.push(record.clone());
        Ok(())
    }
}

/// Sink recording per-point wall times in the
/// [`crate::plan::TIMES_SCHEMA`] format the `--shard-by time` cost
/// model consumes: a header line carrying the base seed, then one
/// `{"index":G,"shots":S,"nanos":N}` row per point.
///
/// The nanos column is *not* deterministic (it is a measurement), so
/// times files are calibration inputs, never merged artifacts.
pub struct TimesSink<W: Write> {
    w: W,
    header_written: bool,
}

impl<W: Write> TimesSink<W> {
    /// Wraps a writer; the header is emitted lazily with the first
    /// record's seed.
    pub fn new(w: W) -> Self {
        TimesSink {
            w,
            header_written: false,
        }
    }

    /// Consumes the sink, returning the underlying writer.
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl TimesSink<LineWriter<std::fs::File>> {
    /// Creates (or truncates) a times file sink at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(TimesSink::new(LineWriter::new(std::fs::File::create(
            path,
        )?)))
    }
}

impl<W: Write> RecordSink for TimesSink<W> {
    fn write(&mut self, record: &SweepRecord) -> io::Result<()> {
        self.write_timed(record, 0)
    }

    fn write_timed(&mut self, r: &SweepRecord, nanos: u64) -> io::Result<()> {
        if !self.header_written {
            writeln!(
                self.w,
                "{{\"schema\":\"{}\",\"seed\":{}}}",
                crate::plan::TIMES_SCHEMA,
                r.base_seed
            )?;
            self.header_written = true;
        }
        writeln!(
            self.w,
            "{{\"index\":{},\"shots\":{},\"nanos\":{nanos}}}",
            r.index, r.shots
        )
    }

    fn wants_timing(&self) -> bool {
        true
    }

    fn finish(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlq_decoder::DecoderKind;
    use vlq_surface::schedule::{Basis, Setup};

    fn record() -> SweepRecord {
        SweepRecord {
            index: 3,
            point: SweepPoint {
                setup: Setup::CompactInterleaved,
                basis: Basis::Z,
                d: 5,
                p: 0.002,
                k: 10,
                rounds: None,
                decoder: DecoderKind::Mwpm,
                shots: 1000,
                knob: None,
                program: None,
            },
            base_seed: 2020,
            shots: 1000,
            failures: 25,
        }
    }

    #[test]
    fn csv_row_shape() {
        let mut sink = CsvSink::new(Vec::new()).unwrap();
        sink.write(&record()).unwrap();
        let text = String::from_utf8(sink.w).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), RECORD_COLUMNS.join(","));
        let row = lines.next().unwrap();
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), RECORD_COLUMNS.len());
        assert_eq!(fields[0], "3");
        assert_eq!(fields[1], "compact-int");
        assert_eq!(fields[6], "5"); // rounds defaults to d
        assert_eq!(fields[12], "0.025");
        assert_eq!(fields[14], ""); // memory experiments have no program
    }

    #[test]
    fn program_column_round_trips() {
        let mut rec = record();
        rec.point.program = Some("ghz4".to_string());
        let mut csv = CsvSink::new(Vec::new()).unwrap();
        csv.write(&rec).unwrap();
        let text = String::from_utf8(csv.w).unwrap();
        assert!(text.lines().nth(1).unwrap().ends_with(",ghz4,2020"));
        let mut jsonl = JsonlSink::new(Vec::new());
        jsonl.write(&rec).unwrap();
        let text = String::from_utf8(jsonl.w).unwrap();
        assert!(text.contains("\"program\":\"ghz4\""));
    }

    #[test]
    fn jsonl_row_is_wellformed() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.write(&record()).unwrap();
        let text = String::from_utf8(sink.w).unwrap();
        let line = text.lines().next().unwrap();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"setup\":\"compact-int\""));
        assert!(line.contains("\"knob\":null"));
        assert!(line.contains("\"rate\":0.025"));
    }

    #[test]
    fn times_sink_emits_header_then_rows() {
        let mut sink = TimesSink::new(Vec::new());
        assert!(sink.wants_timing());
        sink.write_timed(&record(), 12345).unwrap();
        let mut r2 = record();
        r2.index = 4;
        sink.write_timed(&r2, 67).unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"schema\":\"vlq-sweep-times-v1\",\"seed\":2020}"
        );
        assert_eq!(lines[1], "{\"index\":3,\"shots\":1000,\"nanos\":12345}");
        assert_eq!(lines[2], "{\"index\":4,\"shots\":1000,\"nanos\":67}");
    }

    #[test]
    fn memory_sink_collects() {
        let mut sink = MemorySink::new();
        sink.write(&record()).unwrap();
        assert_eq!(sink.records().len(), 1);
        assert_eq!(sink.records()[0].failures, 25);
    }
}
