//! Multi-tenant sweeps on the `vlq-sweep` work-stealing engine.
//!
//! Tenant grids ride the existing program-sweep machinery: a sweep
//! point's `program` string of the form `tenants<N>@<policy>` (e.g.
//! `tenants3@lru`) names a standard N-tenant workload mix merged under
//! one replacement policy. Because the program string is already part
//! of the point fingerprint and per-point seed identity, `--resume`,
//! `--shard`, and `sweep-merge` work on tenant sweeps for free.

use vlq::exec::{config_for_setup, FramePrepared};
use vlq::machine::MachineConfig;
use vlq::program::{compile, LogicalCircuit};
use vlq::qec::Parallelism;
use vlq::surface::schedule::Boundary;
use vlq::sweep::{SweepExecutor, SweepPoint};
use vlq_telemetry::Recorder;

use crate::policy::PolicyKind;
use crate::scheduler::{MultiProgram, TenantError, TenantScheduler, TenantSpec};

/// Parses a `tenants<N>@<policy>` program name into its tenant count
/// and policy (`None` for anything else, including `N = 0`).
pub fn parse_tenant_program(name: &str) -> Option<(usize, PolicyKind)> {
    let rest = name.strip_prefix("tenants")?;
    let (count, policy) = rest.split_once('@')?;
    let count: usize = count.parse().ok()?;
    (count > 0).then_some(())?;
    Some((count, PolicyKind::parse(policy)?))
}

/// Renders the `tenants<N>@<policy>` program name for a grid cell (the
/// inverse of [`parse_tenant_program`]).
pub fn tenant_program_name(tenants: usize, policy: PolicyKind) -> String {
    format!("tenants{tenants}@{policy}")
}

/// The machine shape a tenant sweep point merges onto: two stacks
/// (contention over a small shared surface is the point), `d`/`k` from
/// the grid, the setup picking embedding + refresh policy.
///
/// # Panics
///
/// Panics when `point.k < 3`: the standard workload mix needs at least
/// two storage modes per stack to solo-compile (`k = 2` leaves a
/// single storage mode, which cannot hold a 3-qubit program on two
/// stacks).
pub fn machine_config_for_tenants(point: &SweepPoint) -> MachineConfig {
    let (embedding, refresh) = config_for_setup(point.setup);
    assert!(
        point.k >= 3,
        "tenant sweep points need k >= 3 (two storage + one free mode per stack); got k = {}",
        point.k
    );
    MachineConfig {
        stacks_x: 1,
        stacks_y: 2,
        k: point.k,
        d: point.d,
        embedding,
        refresh,
        prefer_transversal: true,
        hw: vlq::arch::params::HardwareParams::with_memory(),
    }
}

/// The standard N-tenant workload mix: slots cycle through GHZ-3,
/// teleportation, and a 1-bit adder (each three qubits, so every tenant
/// solo-fits the two-stack machine). Slot 0 is the latency-sensitive
/// tenant: priority 1 with a deadline of twice its solo duration;
/// everyone else is best-effort.
///
/// # Errors
///
/// Propagates solo-compilation failures (machine too small for the
/// workloads).
pub fn standard_mix(
    tenants: usize,
    config: MachineConfig,
) -> Result<Vec<TenantSpec>, vlq::machine::MachineError> {
    let workloads = [
        LogicalCircuit::ghz(3),
        LogicalCircuit::teleport(),
        LogicalCircuit::adder(1),
    ];
    (0..tenants)
        .map(|i| {
            let program = compile(&workloads[i % workloads.len()], config)?;
            let mut spec = TenantSpec::new(format!("t{i}"), program);
            if i == 0 {
                let ideal = spec.program.schedule.duration();
                spec = spec.with_priority(1).with_deadline(ideal * 2);
            }
            Ok(spec)
        })
        .collect()
}

/// Merges the standard mix for one grid cell.
///
/// # Errors
///
/// Propagates admission and merge errors.
pub fn merge_standard_mix(
    tenants: usize,
    policy: PolicyKind,
    config: MachineConfig,
) -> Result<MultiProgram, TenantError> {
    let mut sched = TenantScheduler::new(config, policy.build());
    let specs = standard_mix(tenants, config).map_err(|source| TenantError::InvalidSchedule {
        tenant: usize::MAX,
        source,
    })?;
    for spec in specs {
        sched.admit(spec)?;
    }
    sched.run()
}

/// [`SweepExecutor`] frame-replaying merged multi-tenant schedules:
/// `prepare` parses the point's `tenants<N>@<policy>` name, merges the
/// standard mix, and builds the block experiments once; chunks replay
/// seeded shots of the *merged* program.
///
/// # Panics
///
/// `prepare` panics on a missing or malformed program name and on
/// merge failures — tenant specs are validated at binary construction,
/// mirroring `ProgramSweepExecutor`'s unknown-program contract.
#[derive(Clone, Debug)]
pub struct TenantSweepExecutor {
    /// Block boundary every exposure is sampled under.
    pub boundary: Boundary,
    /// In-block worker policy every chunk is replayed under.
    pub parallelism: Parallelism,
}

impl Default for TenantSweepExecutor {
    fn default() -> Self {
        TenantSweepExecutor {
            boundary: Boundary::MidCircuit,
            parallelism: Parallelism::serial(),
        }
    }
}

impl TenantSweepExecutor {
    /// An executor sampling under `boundary`.
    pub fn new(boundary: Boundary) -> Self {
        TenantSweepExecutor {
            boundary,
            ..Self::default()
        }
    }

    /// Sets the in-block worker policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl SweepExecutor for TenantSweepExecutor {
    type Prepared = FramePrepared;

    fn prepare(&self, point: &SweepPoint) -> FramePrepared {
        let name = point
            .program
            .as_deref()
            .expect("tenant sweep point without a program name");
        let (tenants, policy) = parse_tenant_program(name)
            .unwrap_or_else(|| panic!("sweep point names malformed tenant program {name:?}"));
        let config = machine_config_for_tenants(point);
        let multi = merge_standard_mix(tenants, policy, config)
            .unwrap_or_else(|e| panic!("tenant mix failed to merge: {e}"));
        FramePrepared::new(multi.schedule, point.p, point.decoder, self.boundary)
    }

    fn run_chunk(
        &self,
        prepared: &FramePrepared,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
    ) -> u64 {
        prepared.run_failures_par(shots, seed, &self.parallelism)
    }

    fn run_chunk_recorded(
        &self,
        prepared: &FramePrepared,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
        recorder: &Recorder,
    ) -> u64 {
        prepared.run_failures_recorded_par(shots, seed, recorder, &self.parallelism)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_program_names_round_trip() {
        for n in [1, 2, 5] {
            for policy in PolicyKind::ALL {
                let name = tenant_program_name(n, policy);
                assert_eq!(parse_tenant_program(&name), Some((n, policy)));
            }
        }
        for bad in [
            "tenants0@lru",
            "tenants@lru",
            "tenants2@fifo",
            "ghz4",
            "tenants2",
        ] {
            assert_eq!(parse_tenant_program(bad), None, "{bad}");
        }
    }

    #[test]
    fn standard_mix_solo_fits_the_two_stack_machine() {
        let point = SweepPoint {
            setup: vlq::surface::schedule::Setup::CompactInterleaved,
            basis: vlq::surface::schedule::Basis::Z,
            d: 3,
            p: 1e-3,
            k: 3,
            rounds: None,
            decoder: vlq::decoder::DecoderKind::UnionFind,
            shots: 10,
            knob: None,
            program: Some("tenants3@lru".into()),
        };
        let config = machine_config_for_tenants(&point);
        let specs = standard_mix(3, config).unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].priority, 1);
        assert!(specs[0].deadline.is_some());
        assert_eq!(specs[1].priority, 0);
        let multi = merge_standard_mix(3, PolicyKind::Lru, config).unwrap();
        multi.schedule.validate().unwrap();
    }
}
