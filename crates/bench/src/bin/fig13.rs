//! Regenerates Figure 13: (a) T-state generation rate with 100 patches;
//! (b) patches of space needed for one T state per timestep. Also prints
//! the exact 15-to-1 distillation quality curve (our extension).

use vlq_bench::Args;
use vlq_magic::distill::distillation_stats;
use vlq_magic::factory::{FactoryProtocol, ProtocolKind};

fn main() {
    let args = Args::parse();
    let patches: f64 = args.get("patches", 100.0);

    println!("Figure 13(a): T-state production rate with {patches} patches");
    println!(
        "{:<22} {:>14} {:>16}",
        "Protocol", "T per step", "vs Small Lattice"
    );
    let small_rate = FactoryProtocol::new(ProtocolKind::SmallLattice).rate_with_patches(patches);
    for kind in [
        ProtocolKind::FastLattice,
        ProtocolKind::SmallLattice,
        ProtocolKind::VQubitsNatural,
    ] {
        let p = FactoryProtocol::new(kind);
        let rate = p.rate_with_patches(patches);
        println!(
            "{:<22} {:>14.4} {:>15.2}x",
            kind.to_string(),
            rate,
            rate / small_rate
        );
    }
    println!("(paper: VQubits = 1.22x Small Lattice, 1.82x Fast Lattice)");

    println!("\nFigure 13(b): space to produce 1 T state per timestep");
    println!("{:<22} {:>10}", "Protocol", "# patches");
    for kind in [
        ProtocolKind::FastLattice,
        ProtocolKind::SmallLattice,
        ProtocolKind::VQubitsNatural,
    ] {
        let p = FactoryProtocol::new(kind);
        println!(
            "{:<22} {:>10.0}",
            kind.to_string(),
            p.patches_for_one_t_per_step()
        );
    }
    println!("(paper: Fast 180, Small 121, VQubits 99)");

    println!("\nExtension: exact 15-to-1 distillation quality (GF(2) enumeration)");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "p_in", "p_out", "35*p^3", "accept"
    );
    for p in [1e-4, 1e-3, 5e-3, 1e-2, 2e-2] {
        let s = distillation_stats(p);
        println!(
            "{:<10.0e} {:>12.3e} {:>12.3e} {:>9.4}",
            p,
            s.p_out,
            35.0 * p.powi(3),
            s.acceptance
        );
    }
}
