//! Verifies the paper's headline operation — the transversal CNOT
//! between logical qubits sharing a stack — by exact stabilizer process
//! identification and by state-vector tomography, then compares its
//! latency against lattice surgery.
//!
//! Run: `cargo run --release --example transversal_cnot`

use vlq::surgery::{
    verify_transversal_cnot_statevector, verify_transversal_cnot_tableau, LogicalOp,
};

fn main() {
    println!("== Process verification ==");
    for d in [3usize, 5, 7] {
        match verify_transversal_cnot_tableau(d) {
            Ok(()) => println!("d={d}: tableau conjugation check PASSED (logical CNOT exactly)"),
            Err(e) => println!("d={d}: FAILED: {e}"),
        }
    }
    let fidelity = verify_transversal_cnot_statevector(3);
    println!(
        "d=3 state-vector tomography over logical basis + superposition inputs: min fidelity {fidelity:.12}"
    );

    println!("\n== Latency (timesteps of d rounds each) ==");
    println!(
        "transversal CNOT (same stack):        {}",
        LogicalOp::TransversalCnot.timesteps()
    );
    println!(
        "move + transversal (cross stack):     {}",
        LogicalOp::MoveTransversalCnot.timesteps()
    );
    println!(
        "lattice-surgery CNOT:                 {}",
        LogicalOp::LatticeSurgeryCnot.timesteps()
    );
    println!(
        "speedup (paper: 6x):                  {}x",
        LogicalOp::transversal_speedup()
    );
}
