//! Steady-state allocation probe for the batched sample→decode path.
//!
//! `BlockSampler::run_shots` holds one `BlockScratch` across batches;
//! after the first few batches have grown every buffer to its working
//! size, further batches must allocate *nothing* (with the Union-Find
//! decoder — MWPM's blossom matcher allocates internally by design).
//! A counting global allocator makes that a hard test, which is why the
//! probe lives in its own integration-test binary with a single test.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vlq_qec::{BlockConfig, BlockSampler, BlockScratch, BlockSpec, DecoderKind, PreparedBlock};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_batches_do_not_allocate() {
    let memory = MemorySpec::standard(Setup::Baseline, 5, 1, Basis::Z);
    let block = PreparedBlock::prepare(
        &BlockConfig::new(BlockSpec::full(memory), 3e-3).with_decoder(DecoderKind::UnionFind),
    );
    // `PreparedBlock`'s own decoder is private; build the same kind for
    // the multi-decoder entry point (the one `run_shots` batches over).
    let decoder = DecoderKind::UnionFind.build(&block.graph);
    let decoders: [&(dyn vlq_decoder::Decoder + Send + Sync); 1] = [decoder.as_ref()];
    let mut scratch = BlockScratch::new();
    // The telemetry contract: an *attached* recorder must not break the
    // zero-steady-state-allocation property (counters are pre-registered
    // atomics; spans and histogram buckets never allocate after setup).
    let recorder = vlq_telemetry::Recorder::attached();
    scratch.set_recorder(recorder.clone());
    const LANES: usize = 256;

    // Warm-up: run the probe seeds once so every buffer (frames,
    // records, defect lists, decoder scratch, prediction words) reaches
    // the high-water mark this workload needs. All allocation must be
    // such one-time growth — never per-batch overhead — so re-running
    // the identical batches must allocate nothing.
    let mut warm_failures = 0u64;
    for seed in 100..112u64 {
        let words = block.sample_failure_words_into(&decoders, LANES, seed, &mut scratch);
        warm_failures += words[0].iter().map(|w| w.count_ones() as u64).sum::<u64>();
    }

    // Steady state: same seeds again, zero allocator calls allowed.
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut failures = 0u64;
    for seed in 100..112u64 {
        let words = block.sample_failure_words_into(&decoders, LANES, seed, &mut scratch);
        failures += words[0].iter().map(|w| w.count_ones() as u64).sum::<u64>();
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "steady-state batches allocated ({warm_failures} warm-up / {failures} steady failures)"
    );
    // The batches did real work (a zero-allocation no-op would also pass
    // the count check).
    assert!(failures > 0, "probe batches produced no failures at all");
    // And the recorder really was live the whole time.
    assert_eq!(
        recorder.value(vlq_telemetry::Metric::SampleBatches),
        24,
        "recorder missed batches"
    );
    assert!(
        recorder.value(vlq_telemetry::Metric::UfGrowthSteps) > 0,
        "recorder saw no decoder work"
    );

    // The same contract with the sample pool attached: pool creation and
    // warm-up may allocate (threads, injector, per-worker scratch
    // growth), but re-running identical pooled batches must not — the
    // pool reuses its slot buffer and queues, workers park on a condvar,
    // and every worker holds its scratch at the high-water mark. Work
    // stealing does not guarantee a given worker touches a batch on any
    // given pass (under load one worker can sit a pass out and first
    // grow its scratch later), so warm-up repeats until a full pass
    // allocates nothing — per-worker growth converges once every worker
    // has participated, while per-batch allocation never does, which
    // the attempt bound turns into a failure.
    let par = vlq_qec::Parallelism::threads(2);
    const POOL_SHOTS: u64 = 2048;
    let mut pooled_warm = 0u64;
    for seed in 200..204u64 {
        pooled_warm += block.run_shots_par(POOL_SHOTS, seed, &par);
    }
    let mut settled = false;
    for _attempt in 0..32 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let mut pooled = 0u64;
        for seed in 200..204u64 {
            pooled += block.run_shots_par(POOL_SHOTS, seed, &par);
        }
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(pooled, pooled_warm, "pooled runs were not deterministic");
        if after == before {
            settled = true;
            break;
        }
    }
    assert!(
        settled,
        "pooled batches kept allocating after 32 warm passes ({pooled_warm} failures/pass)"
    );
    let pooled = pooled_warm;
    assert_eq!(
        pooled,
        (200..204u64)
            .map(|s| block.run_shots(POOL_SHOTS, s))
            .sum::<u64>(),
        "pooled failure counts diverged from serial"
    );
}
