//! T-state factory protocols: throughput and hardware cost (Figure 13,
//! Table II).
//!
//! Three ways to lay out the 15-to-1 circuit:
//!
//! * **Fast Lattice** (paper ref \[21\], Litinski's speed-optimized lattice
//!   surgery): 1 T state every 6 timesteps using 30 patches of space.
//! * **Small Lattice** (paper ref \[12\], Litinski's space-optimized
//!   surgery): 1 T state every 11 timesteps using 11 patches.
//! * **VQubits** (this paper): the whole circuit runs on a *single*
//!   transmon patch with 6 logical qubits stored in the attached
//!   cavities, using transversal CNOTs; 110 timesteps alone, 99 when
//!   pairs of circuits run in lock-step (each producing its own T state,
//!   so a pair yields 2 per 99 steps).
//!
//! Rates normalize per patch of transmons; hardware cost follows the
//! Table II counting (`d = 5`, depth-10 cavities).

use vlq_arch::geometry::{baseline_tiling_transmons, patch_cost, Embedding};

/// Which factory protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Litinski's speed-optimized lattice-surgery factory.
    FastLattice,
    /// Litinski's space-optimized lattice-surgery factory.
    SmallLattice,
    /// The paper's virtualized-qubit factory (Natural embedding).
    VQubitsNatural,
    /// The paper's virtualized-qubit factory (Compact embedding).
    VQubitsCompact,
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProtocolKind::FastLattice => "Fast Lattice",
            ProtocolKind::SmallLattice => "Small Lattice",
            ProtocolKind::VQubitsNatural => "VQubits (natural)",
            ProtocolKind::VQubitsCompact => "VQubits (compact)",
        };
        write!(f, "{s}")
    }
}

/// A factory protocol's resource model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FactoryProtocol {
    /// Protocol identity.
    pub kind: ProtocolKind,
    /// Patches of space one circuit instance occupies.
    pub patches_per_circuit: usize,
    /// Timesteps per T state for one circuit instance.
    pub steps_per_t_state: f64,
}

impl FactoryProtocol {
    /// The paper's three protocols (VQubits natural/compact share the
    /// schedule; they differ only in hardware cost).
    pub fn new(kind: ProtocolKind) -> Self {
        match kind {
            ProtocolKind::FastLattice => FactoryProtocol {
                kind,
                patches_per_circuit: 30,
                steps_per_t_state: 6.0,
            },
            ProtocolKind::SmallLattice => FactoryProtocol {
                kind,
                patches_per_circuit: 11,
                steps_per_t_state: 11.0,
            },
            ProtocolKind::VQubitsNatural | ProtocolKind::VQubitsCompact => FactoryProtocol {
                kind,
                // One patch per circuit; paired lock-step circuits yield
                // one T per 99 steps each (110 standalone).
                patches_per_circuit: 1,
                steps_per_t_state: 99.0,
            },
        }
    }

    /// All four protocols.
    pub fn all() -> [FactoryProtocol; 4] {
        [
            FactoryProtocol::new(ProtocolKind::FastLattice),
            FactoryProtocol::new(ProtocolKind::SmallLattice),
            FactoryProtocol::new(ProtocolKind::VQubitsNatural),
            FactoryProtocol::new(ProtocolKind::VQubitsCompact),
        ]
    }

    /// T states produced per timestep when `patches` patches of space are
    /// filled with copies of the circuit (fractional copies allowed, as
    /// in the paper's Figure 13a normalization).
    pub fn rate_with_patches(&self, patches: f64) -> f64 {
        (patches / self.patches_per_circuit as f64) / self.steps_per_t_state
    }

    /// Same with whole circuits only.
    pub fn rate_with_patches_integer(&self, patches: usize) -> f64 {
        (patches / self.patches_per_circuit) as f64 / self.steps_per_t_state
    }

    /// Patches of space required to sustain one T state per timestep
    /// (Figure 13b).
    pub fn patches_for_one_t_per_step(&self) -> f64 {
        self.patches_per_circuit as f64 * self.steps_per_t_state
    }

    /// Hardware cost at code distance `d` with depth-`k` cavities
    /// (Table II uses `d = 5`, `k = 10`).
    pub fn hardware_cost(&self, d: usize, k: usize) -> HardwareCost {
        match self.kind {
            ProtocolKind::FastLattice => {
                // 30 patches tiled 5 x 6.
                HardwareCost {
                    transmons: baseline_tiling_transmons(5, 6, d),
                    cavities: 0,
                    k,
                }
            }
            ProtocolKind::SmallLattice => HardwareCost {
                transmons: baseline_tiling_transmons(11, 1, d),
                cavities: 0,
                k,
            },
            ProtocolKind::VQubitsNatural => {
                let c = patch_cost(Embedding::Natural, d, k);
                HardwareCost {
                    transmons: c.transmons,
                    cavities: c.cavities,
                    k,
                }
            }
            ProtocolKind::VQubitsCompact => {
                let c = patch_cost(Embedding::Compact, d, k);
                HardwareCost {
                    transmons: c.transmons,
                    cavities: c.cavities,
                    k,
                }
            }
        }
    }
}

/// Transmon/cavity/total-qubit cost of a protocol (Table II row).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareCost {
    /// Transmon count.
    pub transmons: usize,
    /// Cavity count.
    pub cavities: usize,
    /// Cavity depth used for the total.
    pub k: usize,
}

impl HardwareCost {
    /// Total physical qubits: transmons plus `k` storage modes per
    /// cavity.
    pub fn total_qubits(&self) -> usize {
        self.transmons + self.cavities * self.k
    }
}

/// Timestep accounting of the VQubits 15-to-1 schedule (paper §VII):
/// "16 qubit initializations, 15 measurements, 35 CNOT gates and a few
/// other operations ... 110 surface code timesteps", or 99 in lock-step
/// pairs.
///
/// The model: every logical CNOT on the stack is transversal (1 step) but
/// qubits sharing the stack serialize; initializations and measurements
/// cost one step each; interleaved error correction adds the remaining
/// steps (the paper's stated totals are used as the reference).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VQubitsSchedule {
    /// Logical initializations in the circuit.
    pub initializations: usize,
    /// Logical measurements.
    pub measurements: usize,
    /// Logical CNOTs (all transversal).
    pub cnots: usize,
    /// Total steps for a standalone circuit.
    pub steps_standalone: usize,
    /// Steps per circuit when run in lock-step pairs.
    pub steps_paired: usize,
}

impl VQubitsSchedule {
    /// The paper's 15-to-1 schedule.
    pub fn paper() -> Self {
        VQubitsSchedule {
            initializations: 16,
            measurements: 15,
            cnots: 35,
            steps_standalone: 110,
            steps_paired: 99,
        }
    }

    /// A simple serialization model: every operation costs one timestep
    /// on the single stack (transversal CNOTs = 1, initializations and
    /// measurements = 1), plus interleaved error-correction overhead of
    /// one step per logical operation batch. This model reproduces the
    /// paper's totals to within ~20% and documents where the 110 steps
    /// come from; the paper's exact numbers are used for Figure 13.
    pub fn modeled_steps(&self) -> usize {
        // All ops serialize on one stack: inits + cnots + measurements,
        // plus ~40% EC/refresh interleaving overhead observed by the
        // paper (66 ops -> 110 steps).
        let ops = self.initializations + self.measurements + self.cnots;
        ops + (2 * ops).div_ceil(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13a_rates_with_100_patches() {
        // Fractional normalization (paper Figure 13a): Fast 0.556,
        // Small 0.826, VQubits 1.010 T per step.
        let fast = FactoryProtocol::new(ProtocolKind::FastLattice).rate_with_patches(100.0);
        let small = FactoryProtocol::new(ProtocolKind::SmallLattice).rate_with_patches(100.0);
        let vq = FactoryProtocol::new(ProtocolKind::VQubitsNatural).rate_with_patches(100.0);
        assert!((fast - 100.0 / 30.0 / 6.0).abs() < 1e-12);
        assert!((small - 100.0 / 11.0 / 11.0).abs() < 1e-12);
        assert!((vq - 100.0 / 99.0).abs() < 1e-12);
        // Headline ratios: 1.22x over Small, 1.82x over Fast.
        assert!((vq / small - 1.22).abs() < 0.005, "{}", vq / small);
        assert!((vq / fast - 1.82).abs() < 0.005, "{}", vq / fast);
    }

    #[test]
    fn figure13b_space_for_one_t_per_step() {
        // Fast: 180 patches, Small: 121, VQubits: 99.
        assert_eq!(
            FactoryProtocol::new(ProtocolKind::FastLattice).patches_for_one_t_per_step(),
            180.0
        );
        assert_eq!(
            FactoryProtocol::new(ProtocolKind::SmallLattice).patches_for_one_t_per_step(),
            121.0
        );
        assert_eq!(
            FactoryProtocol::new(ProtocolKind::VQubitsNatural).patches_for_one_t_per_step(),
            99.0
        );
    }

    #[test]
    fn table2_hardware_costs() {
        let d = 5;
        let k = 10;
        let fast = FactoryProtocol::new(ProtocolKind::FastLattice).hardware_cost(d, k);
        assert_eq!(fast.transmons, 1499);
        assert_eq!(fast.total_qubits(), 1499);
        let small = FactoryProtocol::new(ProtocolKind::SmallLattice).hardware_cost(d, k);
        assert_eq!(small.transmons, 549);
        let vn = FactoryProtocol::new(ProtocolKind::VQubitsNatural).hardware_cost(d, k);
        assert_eq!(
            (vn.transmons, vn.cavities, vn.total_qubits()),
            (49, 25, 299)
        );
        let vc = FactoryProtocol::new(ProtocolKind::VQubitsCompact).hardware_cost(d, k);
        assert_eq!(
            (vc.transmons, vc.cavities, vc.total_qubits()),
            (29, 25, 279)
        );
    }

    #[test]
    fn integer_copies_rates() {
        // With whole circuits only: Fast fits 3 copies in 100 patches.
        let fast = FactoryProtocol::new(ProtocolKind::FastLattice);
        assert!((fast.rate_with_patches_integer(100) - 3.0 / 6.0).abs() < 1e-12);
        let small = FactoryProtocol::new(ProtocolKind::SmallLattice);
        assert!((small.rate_with_patches_integer(100) - 9.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn vqubits_schedule_model_close_to_paper() {
        let s = VQubitsSchedule::paper();
        assert_eq!(s.initializations + s.measurements + s.cnots, 66);
        let modeled = s.modeled_steps();
        let err = (modeled as f64 - s.steps_standalone as f64).abs() / 110.0;
        assert!(err < 0.2, "modeled {modeled} vs paper 110");
        assert!(s.steps_paired < s.steps_standalone);
    }
}
