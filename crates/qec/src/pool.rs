//! In-block work-stealing thread pool for the batched sample→decode
//! hot path.
//!
//! `vlq-sweep` parallelizes *across* grid points; this module
//! parallelizes *inside* one [`PreparedBlock`]: the 1024-lane batches
//! of [`BlockSampler::run_shots`](crate::BlockSampler::run_shots) are
//! already seeded independently (`seed.wrapping_add(batch_idx)`), so
//! workers can claim batches in any order without perturbing a single
//! sampled bit. The pool mirrors the sweep engine's injector+stealer
//! deques (shared injector refilled into per-worker locals, LIFO local
//! pops, FIFO steals) but keeps three contracts the sweep level never
//! had to:
//!
//! * **Bit-identical at any worker count.** Each batch writes its
//!   failure popcount into a private slot; the submitter reduces the
//!   slots in ascending batch order after *all* workers finish. No
//!   atomic accumulation order, no schedule dependence.
//! * **Zero steady-state allocation.** Workers are long-lived and
//!   parked on a condvar between jobs; the injector, local deques,
//!   result slots, per-worker [`BlockScratch`]es, and per-worker
//!   recorders are all pool-owned and reused. After warm-up, a
//!   `run_shots_par` call allocates nothing
//!   (`crates/qec/tests/alloc_probe.rs` pins this).
//! * **Byte-identical telemetry sidecars.** Each worker records into
//!   its own [`Recorder`]; after the job the submitter drains them into
//!   the caller's recorder in worker-index order
//!   ([`Recorder::drain_into`]). Deterministic metrics are commutative
//!   reductions of schedule-independent work, so the merged values —
//!   and hence the JSONL sidecar — match the serial path byte for byte.
//!   Runtime metrics (steals, worker busy time) land in the stderr
//!   summary only.
//!
//! # Per-worker scratch contract
//!
//! A [`BlockScratch`]'s decoder scratch is only rebuilt when the
//! decoder-list *length* changes — by design, so the steady state stays
//! allocation-free — which means scratch memoised against one decoding
//! graph (e.g. union-find's boundary-parity memo) would be silently
//! reused against a different graph with the same node count. The
//! serial paths construct a fresh scratch per run and never hit this;
//! the pool's scratches are persistent, so every job is keyed by
//! (block identity, decoder list) and any key change clears all worker
//! decoder scratch before sampling. Same block, same decoders — the
//! common steady state — reuses everything.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use vlq_decoder::Decoder;
use vlq_telemetry::{Metric, Recorder};

use crate::{BlockScratch, PreparedBlock};

/// Batch size of the in-block hot path (one pool task = one batch).
pub(crate) const LANES_PER_BATCH: usize = 1024;

/// How many injector tasks a worker moves to its local deque per grab
/// (the sweep engine's constant).
const REFILL_BATCH: usize = 4;

/// Worker-count policy for the in-block sample pool.
///
/// `Parallelism::serial()` (the default) runs the existing
/// single-threaded paths untouched; [`Parallelism::threads`] attaches a
/// shared [`SamplePool`]. Cloning shares the pool (an `Arc` bump), so
/// one pool serves every prepared block of a sweep.
#[derive(Clone, Debug, Default)]
pub struct Parallelism {
    pool: Option<Arc<SamplePool>>,
}

impl Parallelism {
    /// Single-threaded execution (identical to the pre-pool paths).
    pub fn serial() -> Self {
        Parallelism { pool: None }
    }

    /// A pool of `threads` workers; `threads <= 1` means serial (no
    /// pool, no worker threads spawned).
    pub fn threads(threads: usize) -> Self {
        if threads <= 1 {
            Self::serial()
        } else {
            Parallelism {
                pool: Some(Arc::new(SamplePool::new(threads))),
            }
        }
    }

    /// Number of workers batches are spread over (1 when serial).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map_or(1, |p| p.workers())
    }

    /// The attached pool, if any.
    pub fn pool(&self) -> Option<&SamplePool> {
        self.pool.as_deref()
    }
}

/// One submitted job, as seen by the workers.
///
/// The closure and the slot slice live on the submitter's stack / in
/// the pool's locked resources; their lifetimes are erased to `'static`
/// for storage. This is sound because the submitter blocks until every
/// worker has finished the job's epoch (the `active` barrier below), so
/// no worker can touch either borrow after submission returns.
#[derive(Clone, Copy)]
struct Job {
    width: usize,
    slots: &'static [AtomicU64],
    run: &'static (dyn Fn(u64, usize, &[AtomicU64]) + Sync),
    record: bool,
}

struct Coord {
    /// Job generation counter; workers run each epoch exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers still inside the current epoch. The submitter waits for
    /// zero — the barrier the `Job` lifetime erasure relies on.
    active: usize,
    /// Set when a worker unwinds out of a task; the submitter panics
    /// rather than reduce a partial result.
    poisoned: bool,
    shutdown: bool,
}

/// Worker-shared coordination state: job hand-off plus the
/// injector+stealer deques.
struct Core {
    coord: Mutex<Coord>,
    work_cv: Condvar,
    done_cv: Condvar,
    injector: Mutex<VecDeque<u64>>,
    locals: Vec<Mutex<VecDeque<u64>>>,
}

impl Core {
    /// Claims the next batch index: local LIFO pop, then an injector
    /// refill, then FIFO steals from the other workers in ring order.
    /// Returns the task and whether it was stolen.
    fn next_task(&self, me: usize) -> Option<(u64, bool)> {
        if let Some(t) = self.locals[me].lock().expect("local deque").pop_back() {
            return Some((t, false));
        }
        {
            let mut injector = self.injector.lock().expect("injector");
            if let Some(first) = injector.pop_front() {
                let mut local = self.locals[me].lock().expect("local deque");
                for _ in 1..REFILL_BATCH {
                    match injector.pop_front() {
                        Some(t) => local.push_back(t),
                        None => break,
                    }
                }
                return Some((first, false));
            }
        }
        for off in 1..self.locals.len() {
            let victim = (me + off) % self.locals.len();
            if let Some(t) = self.locals[victim]
                .lock()
                .expect("victim deque")
                .pop_front()
            {
                return Some((t, true));
            }
        }
        None
    }
}

/// Per-job reusable buffers, locked for the whole job — the lock that
/// serializes concurrent submitters onto one pool.
struct Resources {
    slots: Vec<AtomicU64>,
    /// Identity of the (block, decoder list) the persistent worker
    /// scratches are currently keyed to (see module docs).
    scratch_key: u64,
}

/// The long-lived in-block worker pool. Construct via
/// [`Parallelism::threads`]; dropped pools shut their workers down and
/// join them.
pub struct SamplePool {
    core: Arc<Core>,
    resources: Mutex<Resources>,
    scratches: Vec<Mutex<BlockScratch>>,
    /// Typed per-worker state for custom [`SamplePool::run_tasks`]
    /// closures (see [`SamplePool::worker_state`]).
    user_states: Vec<Mutex<Box<dyn std::any::Any + Send>>>,
    worker_recorders: Vec<Recorder>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for SamplePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplePool")
            .field("workers", &self.workers())
            .finish_non_exhaustive()
    }
}

impl SamplePool {
    /// Spawns `threads` parked workers (`threads` is clamped to >= 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let core = Arc::new(Core {
            coord: Mutex::new(Coord {
                epoch: 0,
                job: None,
                active: 0,
                poisoned: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        });
        let worker_recorders: Vec<Recorder> = (0..threads).map(|_| Recorder::attached()).collect();
        let handles = (0..threads)
            .map(|w| {
                let core = Arc::clone(&core);
                let recorder = worker_recorders[w].clone();
                std::thread::spawn(move || worker_main(&core, w, &recorder))
            })
            .collect();
        SamplePool {
            core,
            resources: Mutex::new(Resources {
                slots: Vec::new(),
                scratch_key: 0,
            }),
            scratches: (0..threads)
                .map(|_| Mutex::new(BlockScratch::new()))
                .collect(),
            user_states: (0..threads)
                .map(|_| Mutex::new(Box::new(()) as Box<dyn std::any::Any + Send>))
                .collect(),
            worker_recorders,
            handles: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.scratches.len()
    }

    /// Runs `tasks` independent tasks across the workers and reduces
    /// their results deterministically.
    ///
    /// Task `t` must fill all `width` slots of its private window
    /// (`slots[0..width]` as passed to `run`); after every worker has
    /// finished, `out[j]` is the sum of slot `j` over tasks in
    /// *ascending task order* — so the reduction is schedule- and
    /// worker-count-independent whenever the per-task values are.
    /// `run(task, worker, slots)` may be claimed by any worker in any
    /// order; it must be safe under that (the in-block closures are:
    /// batches are independently seeded).
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != width`, and when a task panicked on a
    /// worker (the pool is then poisoned and must be discarded).
    pub fn run_tasks(
        &self,
        tasks: u64,
        width: usize,
        out: &mut [u64],
        run: &(dyn Fn(u64, usize, &[AtomicU64]) + Sync),
    ) {
        let mut res = self.resources.lock().expect("pool resources");
        self.run_tasks_locked(&mut res, tasks, width, out, run, false);
    }

    fn run_tasks_locked(
        &self,
        res: &mut Resources,
        tasks: u64,
        width: usize,
        out: &mut [u64],
        run: &(dyn Fn(u64, usize, &[AtomicU64]) + Sync),
        record: bool,
    ) {
        assert_eq!(out.len(), width, "out must hold one slot per width");
        out.fill(0);
        if tasks == 0 || width == 0 {
            return;
        }
        let need = usize::try_from(tasks).expect("task count fits usize") * width;
        if res.slots.len() < need {
            res.slots.resize_with(need, || AtomicU64::new(0));
        }
        {
            let mut injector = self.core.injector.lock().expect("injector");
            debug_assert!(injector.is_empty(), "previous job drained the injector");
            injector.extend(0..tasks);
        }
        // SAFETY: the borrows escape only into workers' epoch loops,
        // and the `active` barrier below keeps this frame alive (and
        // `res` locked) until every worker has left the epoch.
        let job = unsafe {
            Job {
                width,
                slots: std::mem::transmute::<&[AtomicU64], &'static [AtomicU64]>(
                    &res.slots[..need],
                ),
                run: std::mem::transmute::<
                    &(dyn Fn(u64, usize, &[AtomicU64]) + Sync),
                    &'static (dyn Fn(u64, usize, &[AtomicU64]) + Sync),
                >(run),
                record,
            }
        };
        {
            let mut coord = self.core.coord.lock().expect("pool coord");
            coord.epoch += 1;
            coord.job = Some(job);
            coord.active = self.workers();
            self.core.work_cv.notify_all();
            while coord.active > 0 {
                coord = self.core.done_cv.wait(coord).expect("pool coord");
            }
            coord.job = None;
            assert!(!coord.poisoned, "a pool task panicked on a worker");
        }
        // Deterministic reduction: ascending task (= batch) order. The
        // coord lock round-trip above orders every worker's relaxed
        // slot stores before these loads.
        for t in 0..tasks as usize {
            for (j, o) in out.iter_mut().enumerate() {
                *o += res.slots[t * width + j].load(Ordering::Relaxed);
            }
        }
    }

    /// Runs `f` against worker `worker`'s persistent typed state slot,
    /// installing `init()` the first time (or whenever the stored type
    /// changes). Custom task closures passed to
    /// [`SamplePool::run_tasks`] use this to keep per-worker working
    /// sets — e.g. the `vlq` frame replay's batch scratch — alive
    /// across jobs, so their steady state allocates nothing. Callers
    /// are responsible for invalidating state that is keyed to job
    /// inputs (the same hazard the per-worker [`BlockScratch`] contract
    /// above documents).
    pub fn worker_state<T: std::any::Any + Send, R>(
        &self,
        worker: usize,
        init: impl FnOnce() -> T,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        let mut slot = self.user_states[worker].lock().expect("worker state");
        if !slot.is::<T>() {
            *slot = Box::new(init());
        }
        f(slot.downcast_mut::<T>().expect("state type just installed"))
    }

    /// Runs `shots` of `block` through `decoders` across the workers:
    /// the pooled equivalent of the serial batch loops in
    /// `crates/qec/src/lib.rs`, bit-identical to them (same
    /// `seed.wrapping_add(batch_idx)` seeds, same per-batch pipeline,
    /// failure counts reduced in batch order). One failure count per
    /// decoder lands in `failures`.
    ///
    /// With `recorder` attached, workers record into their own
    /// recorders, drained into `recorder` in worker-index order after
    /// the job — deterministic metrics merge to the serial values;
    /// steal/busy runtime metrics land in the stderr summary only.
    pub(crate) fn run_block_shots(
        &self,
        block: &PreparedBlock,
        decoders: &[&(dyn Decoder + Send + Sync)],
        shots: u64,
        seed: u64,
        recorder: Option<&Recorder>,
        failures: &mut [u64],
    ) {
        let mut res = self.resources.lock().expect("pool resources");
        let record = recorder.is_some_and(Recorder::is_enabled);
        let key = scratch_key(block, decoders);
        let rebuild = res.scratch_key != key;
        res.scratch_key = key;
        for (w, slot) in self.scratches.iter().enumerate() {
            let mut scratch = slot.lock().expect("worker scratch");
            if rebuild {
                scratch.reset_decoder_scratch();
            }
            scratch.set_recorder(if record {
                self.worker_recorders[w].clone()
            } else {
                Recorder::disabled()
            });
        }
        let tasks = shots.div_ceil(LANES_PER_BATCH as u64);
        let run = |batch_idx: u64, worker: usize, slots: &[AtomicU64]| {
            let done = batch_idx * LANES_PER_BATCH as u64;
            let lanes = (shots - done).min(LANES_PER_BATCH as u64) as usize;
            let mut scratch = self.scratches[worker].lock().expect("worker scratch");
            let words = block.sample_failure_words_into(
                decoders,
                lanes,
                seed.wrapping_add(batch_idx),
                &mut scratch,
            );
            for (slot, decoder_words) in slots.iter().zip(words) {
                let count: u64 = decoder_words.iter().map(|w| w.count_ones() as u64).sum();
                slot.store(count, Ordering::Relaxed);
            }
        };
        self.run_tasks_locked(&mut res, tasks, decoders.len(), failures, &run, record);
        if let Some(target) = recorder {
            for worker in &self.worker_recorders {
                worker.drain_into(target);
            }
        }
    }
}

impl Drop for SamplePool {
    fn drop(&mut self) {
        {
            let mut coord = self.core.coord.lock().expect("pool coord");
            coord.shutdown = true;
        }
        self.core.work_cv.notify_all();
        for handle in self.handles.get_mut().expect("pool handles").drain(..) {
            let _ = handle.join();
        }
    }
}

/// Identity of (block, decoder list) a job runs against, used to decide
/// whether persistent worker scratch may be reused. The block's unique
/// id is the load-bearing part (ids are never reused, unlike
/// addresses); the decoder pointers guard the caller-supplied list of
/// `run_shots_with` against in-place swaps.
fn scratch_key(block: &PreparedBlock, decoders: &[&(dyn Decoder + Send + Sync)]) -> u64 {
    let mut key = vlq_sweep::splitmix64(block.identity());
    key = vlq_sweep::splitmix64(key ^ decoders.len() as u64);
    for decoder in decoders {
        let thin = std::ptr::from_ref::<dyn Decoder + Send + Sync>(*decoder).cast::<()>();
        key = vlq_sweep::splitmix64(key ^ thin as usize as u64);
    }
    key
}

fn worker_main(core: &Core, me: usize, recorder: &Recorder) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut coord = core.coord.lock().expect("pool coord");
            loop {
                if coord.shutdown {
                    return;
                }
                if coord.epoch > seen {
                    seen = coord.epoch;
                    // Every worker joins every epoch (the submitter
                    // waits for all of them), so the job is installed.
                    break coord.job.expect("epoch advanced with a job installed");
                }
                coord = core.work_cv.wait(coord).expect("pool coord");
            }
        };
        let started = job.record.then(Instant::now);
        let finished = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            while let Some((task, stolen)) = core.next_task(me) {
                if stolen && job.record {
                    recorder.incr(Metric::PoolSteals);
                }
                let base = usize::try_from(task).expect("task fits usize") * job.width;
                (job.run)(task, me, &job.slots[base..base + job.width]);
            }
        }))
        .is_ok();
        if let Some(started) = started {
            recorder.add(Metric::PoolBusyNanos, started.elapsed().as_nanos() as u64);
        }
        let mut coord = core.coord.lock().expect("pool coord");
        if !finished {
            coord.poisoned = true;
            // Leave any unclaimed work behind; the submitter panics.
            core.injector.lock().expect("injector").clear();
            core.locals[me].lock().expect("local deque").clear();
        }
        coord.active -= 1;
        if coord.active == 0 {
            core.done_cv.notify_all();
        }
    }
}
