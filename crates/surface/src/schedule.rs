//! Syndrome-extraction schedules and memory-experiment circuit
//! generators for all five setups of the paper's evaluation:
//!
//! * Baseline 2D (Figure 2, standard 4-layer CNOT schedule),
//! * Natural all-at-once / interleaved (Figure 5),
//! * Compact all-at-once / interleaved (Figures 7-10).
//!
//! The Compact CNOT ordering reproduces Figure 10 exactly: plaquettes are
//! grouped A/B (Z-type, by column parity) and C/D (X-type); the repeating
//! eight-step pattern is `A0D2, A1D3, A2C0, A3C1, B0C2, B1C3, B2D0, B3D1`,
//! which emerges from giving every plaquette its corners in NW, NE, SE,
//! SW order within its group's step window (A: steps 1-4, B: 5-8,
//! C: 3-6, D: 7-8 then 1-2 of the next round, pipelined).
//!
//! Every generator emits an *ideal* circuit with explicit `Idle` markers
//! (durations from a per-qubit clock), ready for the noise pass, and tags
//! detectors by sector (Z-plaquette vs X-plaquette) for independent
//! decoding.

use std::collections::BTreeMap;

use vlq_arch::params::HardwareParams;
use vlq_circuit::ir::{Circuit, GateClass, Medium};
use vlq_sim::CliffordGate;

use crate::embedding::{corner_data, CompactHost, CompactMerge, Corner};
use crate::layout::{PlaquetteKind, SurfaceLayout};

/// The five evaluated setups (paper §IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Setup {
    /// Surface code on a conventional 2D transmon grid.
    Baseline,
    /// Natural embedding, all `d` rounds per load.
    NaturalAllAtOnce,
    /// Natural embedding, one round per load, cycling through modes.
    NaturalInterleaved,
    /// Compact embedding, rounds back-to-back per mode.
    CompactAllAtOnce,
    /// Compact embedding, one round per mode per cycle.
    CompactInterleaved,
}

impl Setup {
    /// All setups in paper order.
    pub const ALL: [Setup; 5] = [
        Setup::Baseline,
        Setup::NaturalAllAtOnce,
        Setup::NaturalInterleaved,
        Setup::CompactAllAtOnce,
        Setup::CompactInterleaved,
    ];

    /// Whether this setup stores data in cavities.
    pub fn uses_memory(self) -> bool {
        !matches!(self, Setup::Baseline)
    }
}

impl std::fmt::Display for Setup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Setup::Baseline => "baseline",
            Setup::NaturalAllAtOnce => "natural-aao",
            Setup::NaturalInterleaved => "natural-int",
            Setup::CompactAllAtOnce => "compact-aao",
            Setup::CompactInterleaved => "compact-int",
        };
        write!(f, "{s}")
    }
}

/// Which boundaries of a syndrome block contribute noise.
///
/// A memory experiment is prep + `rounds` noisy syndrome rounds +
/// destructive readout. A schedule-replay backend that approximates a
/// short *exposure* (one refresh pass, one surgery timestep) by a whole
/// memory experiment overcounts error: the prep and readout boundary
/// rounds belong to the program's ends, not to every block. `Boundary`
/// selects which ends of a generated block circuit are *noisy*; the
/// instruction structure (and detector schedule) is identical in all
/// four modes, so the decoder sees the same graph topology with fault
/// sites only where the block really is exposed:
///
/// * [`Boundary::Full`] — prep, rounds, and readout all noisy: the
///   classic memory experiment, bit-for-bit.
/// * [`Boundary::Prep`] — noisy prep + rounds; the readout is ideal
///   (the block ends mid-program).
/// * [`Boundary::Readout`] — ideal prep; noisy rounds + readout (the
///   block starts mid-program).
/// * [`Boundary::MidCircuit`] — ideal prep *and* readout: only the
///   syndrome rounds are noisy. The boundary rounds contribute
///   detectors (perfect time-boundary information) but no error, so
///   the sampled failure rate measures exactly `rounds` rounds of
///   exposure — the per-round quantity program-level replay needs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Boundary {
    /// Noisy prep and readout boundaries (the memory experiment).
    Full,
    /// Noisy prep, ideal readout.
    Prep,
    /// Ideal prep, noisy readout.
    Readout,
    /// Ideal prep and readout; only the syndrome rounds carry noise.
    MidCircuit,
}

impl Boundary {
    /// All boundary modes.
    pub const ALL: [Boundary; 4] = [
        Boundary::Full,
        Boundary::Prep,
        Boundary::Readout,
        Boundary::MidCircuit,
    ];

    /// Whether the preparation boundary carries noise.
    pub fn noisy_prep(self) -> bool {
        matches!(self, Boundary::Full | Boundary::Prep)
    }

    /// Whether the readout boundary carries noise.
    pub fn noisy_readout(self) -> bool {
        matches!(self, Boundary::Full | Boundary::Readout)
    }

    /// Parses a stable name (`full`, `prep`, `readout`, `mid-circuit`).
    pub fn parse(s: &str) -> Option<Boundary> {
        match s {
            "full" => Some(Boundary::Full),
            "prep" => Some(Boundary::Prep),
            "readout" => Some(Boundary::Readout),
            "mid-circuit" | "midcircuit" | "mid" => Some(Boundary::MidCircuit),
            _ => None,
        }
    }
}

impl std::fmt::Display for Boundary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Boundary::Full => "full",
            Boundary::Prep => "prep",
            Boundary::Readout => "readout",
            Boundary::MidCircuit => "mid-circuit",
        };
        write!(f, "{s}")
    }
}

/// Memory-experiment basis: which logical state is preserved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Basis {
    /// Prepare/measure logical `|0>`; X errors are fatal; decoded via
    /// Z-plaquette detectors.
    Z,
    /// Prepare/measure logical `|+>`; Z errors are fatal; decoded via
    /// X-plaquette detectors.
    X,
}

impl Basis {
    /// The plaquette kind whose detectors protect this memory.
    pub fn guard_kind(self) -> PlaquetteKind {
        match self {
            Basis::Z => PlaquetteKind::Z,
            Basis::X => PlaquetteKind::X,
        }
    }
}

/// Specification of one memory experiment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemorySpec {
    /// Which setup.
    pub setup: Setup,
    /// Code distance (odd, >= 3).
    pub d: usize,
    /// Cavity depth (modes per cavity); ignored for the baseline.
    pub k: usize,
    /// Number of noisy syndrome rounds (defaults to `d` via
    /// [`MemorySpec::standard`]).
    pub rounds: usize,
    /// Memory basis.
    pub basis: Basis,
}

impl MemorySpec {
    /// The standard configuration: `rounds = d`, as in the paper's
    /// threshold experiments.
    pub fn standard(setup: Setup, d: usize, k: usize, basis: Basis) -> Self {
        MemorySpec {
            setup,
            d,
            k,
            rounds: d,
            basis,
        }
    }
}

/// A generated memory experiment: the ideal circuit plus sector metadata.
#[derive(Clone, Debug)]
pub struct MemoryCircuit {
    /// The ideal circuit (run the noise pass before sampling).
    pub circuit: Circuit,
    /// Detector indices fed by Z-plaquettes (they detect X errors).
    pub z_detectors: Vec<usize>,
    /// Detector indices fed by X-plaquettes (they detect Z errors).
    pub x_detectors: Vec<usize>,
    /// The specification this was generated from.
    pub spec: MemorySpec,
    /// Index (into the *ideal* instruction list) one past the last
    /// preparation instruction: resets, basis rotations, and the initial
    /// store into the cavity modes.
    pub prep_end: usize,
    /// Index of the first readout instruction: the final basis rotation
    /// and destructive data measurement — plus, for the compact
    /// generator only, the extra load of every datum back into its host
    /// (baseline reads transmons directly, and natural's final load is
    /// the last round's own load, emitted inside the round body).
    /// Instructions in `prep_end..body_end` are the syndrome-round
    /// body.
    pub body_end: usize,
}

impl MemoryCircuit {
    /// Detector indices of the sector that guards the logical observable.
    pub fn guard_detectors(&self) -> &[usize] {
        match self.spec.basis {
            Basis::Z => &self.z_detectors,
            Basis::X => &self.x_detectors,
        }
    }

    /// The ideal-instruction index range that carries noise under a
    /// boundary mode (feed it to `NoiseModel::apply_window`). The body
    /// is always noisy; `boundary` gates the prep and readout sections.
    pub fn noise_window(&self, boundary: Boundary) -> (usize, usize) {
        let start = if boundary.noisy_prep() {
            0
        } else {
            self.prep_end
        };
        let end = if boundary.noisy_readout() {
            self.circuit.instructions.len()
        } else {
            self.body_end
        };
        (start, end)
    }
}

/// Per-qubit clock: converts gaps between a qubit's operations into
/// `Idle` instructions in the right medium.
struct Clock {
    last_release: Vec<f64>,
    medium: Vec<Medium>,
}

impl Clock {
    fn new(n: usize) -> Self {
        Clock {
            last_release: vec![0.0; n],
            medium: vec![Medium::Transmon; n],
        }
    }

    /// Marks qubit `q` as engaged at time `start`: any gap since its last
    /// release becomes an Idle instruction.
    fn engage(&mut self, circuit: &mut Circuit, q: usize, start: f64) {
        let gap = start - self.last_release[q];
        if gap > 1e-15 {
            circuit.idle(q, gap, self.medium[q]);
        }
    }

    fn release(&mut self, q: usize, end: f64) {
        if end > self.last_release[q] {
            self.last_release[q] = end;
        }
    }

    /// Suppresses idle accounting up to `t` (the qubit was busy with
    /// other work that is not part of this experiment, e.g. a transmon
    /// serving other cavity modes during a wait).
    fn skip_to(&mut self, q: usize, t: f64) {
        if t > self.last_release[q] {
            self.last_release[q] = t;
        }
    }
}

/// Shared emission helpers.
struct Builder {
    circuit: Circuit,
    clock: Clock,
    hw: HardwareParams,
}

impl Builder {
    fn new(num_qubits: usize, hw: HardwareParams) -> Self {
        Builder {
            circuit: Circuit::new(num_qubits),
            clock: Clock::new(num_qubits),
            hw,
        }
    }

    fn set_medium(&mut self, q: usize, medium: Medium) {
        self.clock.medium[q] = medium;
    }

    fn gate1(&mut self, gate: CliffordGate, start: f64) {
        let (q, _) = gate.qubits();
        self.clock.engage(&mut self.circuit, q, start);
        self.circuit.gate(gate, GateClass::OneQubit);
        self.clock.release(q, start + self.hw.t_gate_1q);
    }

    fn gate2(&mut self, gate: CliffordGate, class: GateClass, start: f64, dur: f64) {
        let (a, b) = gate.qubits();
        let b = b.expect("two-qubit gate");
        self.clock.engage(&mut self.circuit, a, start);
        self.clock.engage(&mut self.circuit, b, start);
        self.circuit.gate(gate, class);
        self.clock.release(a, start + dur);
        self.clock.release(b, start + dur);
    }

    fn reset(&mut self, q: usize, start: f64) {
        self.clock.engage(&mut self.circuit, q, start);
        self.circuit.reset(q);
        self.clock.release(q, start + self.hw.t_reset);
    }

    fn measure(&mut self, q: usize, start: f64) -> usize {
        self.clock.engage(&mut self.circuit, q, start);
        let m = self.circuit.measure(q);
        self.clock.release(q, start + self.hw.t_measure);
        m
    }

    /// Load/store between a transmon and its cavity mode.
    ///
    /// Physically this is a transmon-mediated iSWAP; the iSWAP's extra
    /// local phases (`iSWAP = SWAP · CZ · (S⊗S)`) are deterministic
    /// Cliffords that any real control stack tracks classically, so the
    /// *ideal* circuit uses SWAP semantics while the `LoadStore` class
    /// carries the iSWAP's error and duration (see DESIGN.md).
    fn load_store(&mut self, transmon: usize, mode: usize, start: f64) {
        self.gate2(
            CliffordGate::Swap(transmon, mode),
            GateClass::LoadStore,
            start,
            self.hw.t_load_store,
        );
    }
}

/// Duration of one baseline syndrome round (also used inside Natural).
pub fn baseline_round_duration(hw: &HardwareParams) -> f64 {
    hw.baseline_round_duration()
}

/// Duration of one Compact syndrome round: eight two-qubit steps, each
/// allowing a load and a store around the CNOT.
pub fn compact_round_duration(hw: &HardwareParams) -> f64 {
    8.0 * (2.0 * hw.t_load_store + hw.t_gate_2q_tt)
}

/// Steady-state wait a logical qubit spends in its cavity between its own
/// error-correction activity, for a cavity of depth `k`.
pub fn steady_state_wait(setup: Setup, d: usize, k: usize, hw: &HardwareParams) -> f64 {
    let others = k.saturating_sub(1) as f64;
    match setup {
        Setup::Baseline => 0.0,
        Setup::NaturalAllAtOnce => {
            others * (2.0 * hw.t_load_store + d as f64 * baseline_round_duration(hw))
        }
        Setup::NaturalInterleaved => others * (2.0 * hw.t_load_store + baseline_round_duration(hw)),
        Setup::CompactAllAtOnce => others * (d as f64 * compact_round_duration(hw)),
        Setup::CompactInterleaved => others * compact_round_duration(hw),
    }
}

/// The baseline CNOT ordering: the corner each plaquette kind touches in
/// each of the four layers. X-ancillas sweep `NE, NW, SE, SW` (an "N"
/// path); Z-ancillas sweep `NE, SE, NW, SW` (a "Z" path) — the standard
/// hook-error-safe pairing for the rotated code.
pub const BASELINE_ORDER_X: [Corner; 4] = [Corner::NE, Corner::NW, Corner::SE, Corner::SW];
/// Z-ancilla sweep order (see [`BASELINE_ORDER_X`]).
pub const BASELINE_ORDER_Z: [Corner; 4] = [Corner::NE, Corner::SE, Corner::NW, Corner::SW];

/// Generates the memory-experiment circuit for a specification.
///
/// # Panics
///
/// Panics if the spec is inconsistent (even `d`, `k == 0` for memory
/// setups, zero rounds).
pub fn memory_circuit(spec: MemorySpec, hw: &HardwareParams) -> MemoryCircuit {
    assert!(spec.rounds > 0, "at least one round required");
    match spec.setup {
        Setup::Baseline => baseline_memory(spec, hw),
        Setup::NaturalAllAtOnce | Setup::NaturalInterleaved => natural_memory(spec, hw),
        Setup::CompactAllAtOnce | Setup::CompactInterleaved => compact_memory(spec, hw),
    }
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

fn baseline_memory(spec: MemorySpec, hw: &HardwareParams) -> MemoryCircuit {
    let layout = SurfaceLayout::new(spec.d);
    let n_data = layout.data_coords().len();
    let n_anc = layout.plaquettes().len();
    let mut b = Builder::new(n_data + n_anc, *hw);
    // Qubits: data 0..n_data (transmons), ancilla n_data..n_data+n_anc.
    let anc = |pi: usize| n_data + pi;

    let mut t = 0.0;
    // Init: reset data; H for X basis.
    for q in 0..n_data {
        b.reset(q, t);
    }
    t += hw.t_reset;
    if spec.basis == Basis::X {
        for q in 0..n_data {
            b.gate1(CliffordGate::H(q), t);
        }
        t += hw.t_gate_1q;
    }
    let prep_end = b.circuit.instructions.len();

    let mut meas: Vec<Vec<usize>> = vec![Vec::new(); n_anc];
    for _round in 0..spec.rounds {
        t = baseline_round(&mut b, &layout, &anc, t, &mut meas, |q| q);
    }
    let body_end = b.circuit.instructions.len();

    // Final data readout in the memory basis.
    if spec.basis == Basis::X {
        for q in 0..n_data {
            b.gate1(CliffordGate::H(q), t);
        }
        t += hw.t_gate_1q;
    }
    let data_meas: Vec<usize> = (0..n_data).map(|q| b.measure(q, t)).collect();

    finish_memory(b, spec, &layout, meas, data_meas, prep_end, body_end, |c| {
        layout.data_index(c).expect("data coordinate")
    })
}

/// Emits one baseline-style syndrome round over transmons, returning the
/// new time cursor. `data_qubit` maps a data index (0..d^2) to its qubit
/// id (identity for baseline; transmon ids for Natural).
fn baseline_round(
    b: &mut Builder,
    layout: &SurfaceLayout,
    anc: &dyn Fn(usize) -> usize,
    t0: f64,
    meas: &mut [Vec<usize>],
    data_qubit: impl Fn(usize) -> usize,
) -> f64 {
    let hw = b.hw;
    let mut t = t0;
    // Reset ancillas.
    for pi in 0..layout.plaquettes().len() {
        b.reset(anc(pi), t);
    }
    t += hw.t_reset;
    // H on X ancillas.
    for (pi, p) in layout.plaquettes().iter().enumerate() {
        if p.kind == PlaquetteKind::X {
            b.gate1(CliffordGate::H(anc(pi)), t);
        }
    }
    t += hw.t_gate_1q;
    // Four CNOT layers.
    for layer in 0..4 {
        for (pi, p) in layout.plaquettes().iter().enumerate() {
            let corner = match p.kind {
                PlaquetteKind::X => BASELINE_ORDER_X[layer],
                PlaquetteKind::Z => BASELINE_ORDER_Z[layer],
            };
            let Some(c) = corner_data(p, corner) else {
                continue;
            };
            let dq = data_qubit(layout.data_index(c).expect("data coord"));
            let a = anc(pi);
            let gate = match p.kind {
                PlaquetteKind::X => CliffordGate::Cnot(a, dq),
                PlaquetteKind::Z => CliffordGate::Cnot(dq, a),
            };
            b.gate2(gate, GateClass::TwoQubitTT, t, hw.t_gate_2q_tt);
        }
        t += hw.t_gate_2q_tt;
    }
    // H on X ancillas again.
    for (pi, p) in layout.plaquettes().iter().enumerate() {
        if p.kind == PlaquetteKind::X {
            b.gate1(CliffordGate::H(anc(pi)), t);
        }
    }
    t += hw.t_gate_1q;
    // Measure all ancillas.
    for pi in 0..layout.plaquettes().len() {
        let m = b.measure(anc(pi), t);
        meas[pi].push(m);
    }
    t += hw.t_measure;
    t
}

/// Declares detectors/observable shared by all generators and assembles
/// the result. `data_meas` are the final data measurement indices ordered
/// by data index; `coord_to_data` maps coordinates to data indices.
#[allow(clippy::too_many_arguments)]
fn finish_memory(
    mut b: Builder,
    spec: MemorySpec,
    layout: &SurfaceLayout,
    meas: Vec<Vec<usize>>,
    data_meas: Vec<usize>,
    prep_end: usize,
    body_end: usize,
    coord_to_data: impl Fn((i32, i32)) -> usize,
) -> MemoryCircuit {
    let guard = spec.basis.guard_kind();
    let mut z_detectors = Vec::new();
    let mut x_detectors = Vec::new();
    for (pi, p) in layout.plaquettes().iter().enumerate() {
        let rounds = &meas[pi];
        let sector = match p.kind {
            PlaquetteKind::Z => &mut z_detectors,
            PlaquetteKind::X => &mut x_detectors,
        };
        let (cx, cy) = p.center;
        // Round-0 anchor only for the guarded kind (its first outcome is
        // deterministic on the prepared product state).
        if p.kind == guard {
            sector.push(b.circuit.detector(vec![rounds[0]], (cx, cy, 0)));
        }
        for r in 1..rounds.len() {
            sector.push(
                b.circuit
                    .detector(vec![rounds[r - 1], rounds[r]], (cx, cy, r as i32)),
            );
        }
        // Final comparison against the data readout, guarded kind only.
        if p.kind == guard {
            let mut ms: Vec<usize> = p
                .data
                .iter()
                .map(|&c| data_meas[coord_to_data(c)])
                .collect();
            ms.push(*rounds.last().expect("at least one round"));
            sector.push(b.circuit.detector(ms, (cx, cy, rounds.len() as i32)));
        }
    }
    let support = match spec.basis {
        Basis::Z => layout.logical_z_support(),
        Basis::X => layout.logical_x_support(),
    };
    let obs: Vec<usize> = support.into_iter().map(|di| data_meas[di]).collect();
    b.circuit.observable(obs);
    b.circuit.check().expect("structurally valid circuit");
    debug_assert!(prep_end <= body_end && body_end <= b.circuit.instructions.len());
    MemoryCircuit {
        circuit: b.circuit,
        z_detectors,
        x_detectors,
        spec,
        prep_end,
        body_end,
    }
}

// ---------------------------------------------------------------------
// Natural
// ---------------------------------------------------------------------

fn natural_memory(spec: MemorySpec, hw: &HardwareParams) -> MemoryCircuit {
    assert!(spec.k >= 1, "cavity depth must be >= 1");
    let layout = SurfaceLayout::new(spec.d);
    let n_data = layout.data_coords().len();
    let n_anc = layout.plaquettes().len();
    // Qubits: modes 0..n_data, data transmons n_data..2n_data, ancilla
    // transmons 2n_data..2n_data+n_anc.
    let mut b = Builder::new(2 * n_data + n_anc, *hw);
    let mode = |di: usize| di;
    let dt = |di: usize| n_data + di;
    let anc = |pi: usize| 2 * n_data + pi;
    for di in 0..n_data {
        b.set_medium(mode(di), Medium::Cavity);
    }

    let interleaved = spec.setup == Setup::NaturalInterleaved;
    let wait = steady_state_wait(spec.setup, spec.d, spec.k, hw);
    let mut t = 0.0;

    // Physical init: reset data transmons, H for X basis, store to modes.
    for di in 0..n_data {
        b.reset(dt(di), t);
    }
    t += hw.t_reset;
    if spec.basis == Basis::X {
        for di in 0..n_data {
            b.gate1(CliffordGate::H(dt(di)), t);
        }
        t += hw.t_gate_1q;
    }
    for di in 0..n_data {
        b.load_store(dt(di), mode(di), t);
    }
    t += hw.t_load_store;
    let prep_end = b.circuit.instructions.len();

    let mut meas: Vec<Vec<usize>> = vec![Vec::new(); n_anc];
    let mut loaded = false;
    for round in 0..spec.rounds {
        let new_block = round == 0 || interleaved;
        if new_block {
            // Cavity wait while the other k-1 modes take their turns.
            t += wait;
            for di in 0..n_data {
                b.clock.skip_to(dt(di), t);
            }
            for pi in 0..n_anc {
                b.clock.skip_to(anc(pi), t);
            }
            // Load.
            for di in 0..n_data {
                b.load_store(dt(di), mode(di), t);
            }
            t += hw.t_load_store;
            loaded = true;
        }
        t = baseline_round(&mut b, &layout, &anc, t, &mut meas, dt);
        let last_round = round + 1 == spec.rounds;
        if interleaved && !last_round {
            // Store back; next round reloads after the wait.
            for di in 0..n_data {
                b.load_store(dt(di), mode(di), t);
            }
            t += hw.t_load_store;
            loaded = false;
        }
    }
    assert!(loaded, "data must be loaded for final readout");
    let body_end = b.circuit.instructions.len();

    // Final readout directly from the loaded transmons.
    if spec.basis == Basis::X {
        for di in 0..n_data {
            b.gate1(CliffordGate::H(dt(di)), t);
        }
        t += hw.t_gate_1q;
    }
    let data_meas: Vec<usize> = (0..n_data).map(|di| b.measure(dt(di), t)).collect();

    finish_memory(b, spec, &layout, meas, data_meas, prep_end, body_end, |c| {
        layout.data_index(c).expect("data coordinate")
    })
}

// ---------------------------------------------------------------------
// Compact
// ---------------------------------------------------------------------

/// Compact plaquette groups (Figure 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CompactGroup {
    /// Z-type, even plaquette column: window steps 1-4.
    A,
    /// Z-type, odd column: steps 5-8.
    B,
    /// X-type, even column: steps 3-6.
    C,
    /// X-type, odd column: steps 7-8 then 1-2 (pipelined).
    D,
}

/// Group of a plaquette centered at `(x, y)`.
pub fn compact_group(kind: PlaquetteKind, center: (i32, i32)) -> CompactGroup {
    let u = center.0 / 2;
    match (kind, u % 2 == 0) {
        (PlaquetteKind::Z, true) => CompactGroup::A,
        (PlaquetteKind::Z, false) => CompactGroup::B,
        (PlaquetteKind::X, true) => CompactGroup::C,
        (PlaquetteKind::X, false) => CompactGroup::D,
    }
}

/// The within-round steps (1..=8, with 9/10 denoting steps 1/2 of the
/// next repetition) at which a group performs CNOT indices 0..3.
pub fn group_steps(group: CompactGroup) -> [usize; 4] {
    match group {
        CompactGroup::A => [1, 2, 3, 4],
        CompactGroup::B => [5, 6, 7, 8],
        CompactGroup::C => [3, 4, 5, 6],
        CompactGroup::D => [7, 8, 9, 10],
    }
}

/// Corner order within a plaquette's window, by group.
///
/// Z-groups sweep `NW, SW, SE, NE`; X-groups sweep `NW, NE, SE, SW`.
/// This is the unique (up to symmetry) assignment that satisfies both
/// the resource constraints (a datum may only be loaded into its host
/// transmon while that transmon is not ancilla-active) and the crossing
/// constraints (for every X/Z plaquette pair sharing two data qubits,
/// the X-ancilla's writes must not split the Z-ancilla's reads with odd
/// parity, or the two syndromes entangle and stop being deterministic).
pub fn compact_corner_order(group: CompactGroup) -> [Corner; 4] {
    match group {
        CompactGroup::A | CompactGroup::B => [Corner::NW, Corner::SW, Corner::SE, Corner::NE],
        CompactGroup::C | CompactGroup::D => [Corner::NW, Corner::NE, Corner::SE, Corner::SW],
    }
}

/// One CNOT event of the Compact schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CnotEvent {
    /// Global step index (round * 8 + step - 1; D events spill into the
    /// following round's steps).
    gstep: usize,
    plaquette: usize,
    corner: Corner,
    data: (i32, i32),
}

fn compact_memory(spec: MemorySpec, hw: &HardwareParams) -> MemoryCircuit {
    assert!(spec.k >= 1, "cavity depth must be >= 1");
    let layout = SurfaceLayout::new(spec.d);
    let merge = CompactMerge::new(&layout);
    let n_data = layout.data_coords().len();
    let n_plaq = layout.plaquettes().len();

    // Qubits: modes 0..n_data; plaquette transmons n_data..n_data+n_plaq;
    // own-transmons for unclaimed data appended after.
    let mut own_transmon: BTreeMap<usize, usize> = BTreeMap::new();
    let mut next = n_data + n_plaq;
    for (di, &c) in layout.data_coords().iter().enumerate() {
        if matches!(merge.host_of[&c], CompactHost::OwnTransmon) {
            own_transmon.insert(di, next);
            next += 1;
        }
    }
    let total_qubits = next;
    let mut b = Builder::new(total_qubits, *hw);
    for di in 0..n_data {
        b.set_medium(di, Medium::Cavity);
    }
    let mode = |di: usize| di;
    let plaq_t = |pi: usize| n_data + pi;
    // Host transmon of a data index.
    let host_t = |di: usize| -> usize {
        let c = layout.data_coords()[di];
        match merge.host_of[&c] {
            CompactHost::Plaquette(pi) => plaq_t(pi),
            CompactHost::OwnTransmon => own_transmon[&di],
        }
    };

    let interleaved = spec.setup == Setup::CompactInterleaved;
    let wait = steady_state_wait(spec.setup, spec.d, spec.k, hw);
    let round_dur = compact_round_duration(hw);
    let step_dur = 2.0 * hw.t_load_store + hw.t_gate_2q_tt;
    let rounds = spec.rounds;

    // ------------------------------------------------------------------
    // Precompute all CNOT events over the whole experiment.
    // ------------------------------------------------------------------
    let mut events: Vec<CnotEvent> = Vec::new();
    // Measurement step (global) after which each plaquette's round-r
    // measurement fires, and reset step before its window.
    let mut plaq_round_window: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_plaq]; // (first_gstep, last_gstep)
    for (pi, p) in layout.plaquettes().iter().enumerate() {
        let group = compact_group(p.kind, p.center);
        let steps = group_steps(group);
        let corner_order = compact_corner_order(group);
        for r in 0..rounds {
            let mut first = usize::MAX;
            let mut last = 0usize;
            for (idx, corner) in corner_order.iter().enumerate() {
                let gstep = r * 8 + steps[idx] - 1;
                first = first.min(r * 8 + steps[0] - 1);
                last = last.max(gstep);
                if let Some(c) = corner_data(p, *corner) {
                    events.push(CnotEvent {
                        gstep,
                        plaquette: pi,
                        corner: *corner,
                        data: c,
                    });
                }
            }
            plaq_round_window[pi].push((first, last));
        }
    }
    events.sort_by_key(|e| e.gstep);

    // For each data qubit: the sorted list of gsteps where it is used by
    // a *non-hosting* plaquette (these need the data loaded), used to
    // coalesce loads over consecutive steps.
    let mut load_steps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for e in &events {
        let di = layout.data_index(e.data).expect("data coord");
        let hosted_by_actor = merge.hosted_data[e.plaquette] == Some(e.data);
        if !hosted_by_actor {
            load_steps.entry(di).or_default().push(e.gstep);
        }
    }
    // Runs of consecutive steps -> load at run start, store after run end.
    let mut load_at: BTreeMap<(usize, usize), ()> = BTreeMap::new(); // (gstep, di)
    let mut store_at: BTreeMap<(usize, usize), ()> = BTreeMap::new();
    for (&di, steps) in &load_steps {
        let mut i = 0;
        while i < steps.len() {
            let mut j = i;
            while j + 1 < steps.len() && steps[j + 1] == steps[j] + 1 {
                j += 1;
            }
            load_at.insert((steps[i], di), ());
            store_at.insert((steps[j], di), ());
            i = j + 1;
        }
    }

    // ------------------------------------------------------------------
    // Emit the experiment.
    // ------------------------------------------------------------------
    let mut t = 0.0;
    // Init: reset hosts, H for X basis, store to modes.
    for di in 0..n_data {
        b.reset(host_t(di), t);
    }
    t += hw.t_reset;
    if spec.basis == Basis::X {
        for di in 0..n_data {
            b.gate1(CliffordGate::H(host_t(di)), t);
        }
        t += hw.t_gate_1q;
    }
    for di in 0..n_data {
        b.load_store(host_t(di), mode(di), t);
    }
    t += hw.t_load_store;
    let prep_end = b.circuit.instructions.len();

    // Initial steady-state wait (the qubit's turn comes up).
    t += wait;
    for q in n_data..total_qubits {
        b.clock.skip_to(q, t);
    }

    let t_rounds_start = t;
    // Global step -> start time; interleaved rounds are separated by the
    // inter-round wait.
    let round_start = |r: usize| -> f64 {
        if interleaved {
            t_rounds_start + r as f64 * (round_dur + wait)
        } else {
            t_rounds_start + r as f64 * round_dur
        }
    };
    let gstep_time = |g: usize| -> f64 {
        let r = g / 8;
        let s = g % 8;
        round_start(r) + s as f64 * step_dur
    };

    // Group event streams by gstep for ordered emission.
    let max_gstep = rounds * 8 + 1; // two tail steps for D completion
    let mut meas: Vec<Vec<usize>> = vec![Vec::new(); n_plaq];

    // Reset/H/measure bookkeeping: for each plaquette and round, reset +
    // (H) just before its window's first gstep; (H) + measure right after
    // its last gstep.
    let mut resets: BTreeMap<usize, Vec<usize>> = BTreeMap::new(); // gstep -> plaquettes
    let mut measures: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (pi, windows) in plaq_round_window.iter().enumerate() {
        for &(first, last) in windows {
            resets.entry(first).or_default().push(pi);
            measures.entry(last).or_default().push(pi);
        }
    }

    let mut event_idx = 0usize;
    for g in 0..=max_gstep {
        // Interleaved: transmons sat out the inter-round wait.
        if g % 8 == 0 && g > 0 && interleaved {
            let tw = gstep_time(g);
            for q in n_data..total_qubits {
                b.clock.skip_to(q, tw);
            }
        }
        let t_load = gstep_time(g);
        let t_cnot = t_load + hw.t_load_store;
        let t_store = t_cnot + hw.t_gate_2q_tt;

        // Resets (+H for X plaquettes) at window start, in the load slot.
        if let Some(pis) = resets.get(&g) {
            for &pi in pis {
                b.reset(plaq_t(pi), t_load);
                if layout.plaquettes()[pi].kind == PlaquetteKind::X {
                    b.gate1(CliffordGate::H(plaq_t(pi)), t_load);
                }
            }
        }
        // Loads.
        for (&(gs, di), _) in load_at.range((g, 0)..=(g, usize::MAX)) {
            debug_assert_eq!(gs, g);
            b.load_store(host_t(di), mode(di), t_load);
        }
        // CNOTs.
        while event_idx < events.len() && events[event_idx].gstep == g {
            let e = events[event_idx];
            event_idx += 1;
            let p = &layout.plaquettes()[e.plaquette];
            let a = plaq_t(e.plaquette);
            let di = layout.data_index(e.data).expect("data");
            let in_cavity = merge.hosted_data[e.plaquette] == Some(e.data);
            let (gate, class) = if in_cavity {
                // Transmon-mediated CNOT with the mode qubit.
                let m = mode(di);
                let g = match p.kind {
                    PlaquetteKind::Z => CliffordGate::Cnot(m, a),
                    PlaquetteKind::X => CliffordGate::Cnot(a, m),
                };
                (g, GateClass::TwoQubitTM)
            } else {
                let h = host_t(di);
                let g = match p.kind {
                    PlaquetteKind::Z => CliffordGate::Cnot(h, a),
                    PlaquetteKind::X => CliffordGate::Cnot(a, h),
                };
                (g, GateClass::TwoQubitTT)
            };
            b.gate2(gate, class, t_cnot, hw.t_gate_2q_tt);
        }
        // Stores.
        for (&(gs, di), _) in store_at.range((g, 0)..=(g, usize::MAX)) {
            debug_assert_eq!(gs, g);
            b.load_store(host_t(di), mode(di), t_store);
        }
        // Measures (+H for X plaquettes) at window end, in the store slot.
        if let Some(pis) = measures.get(&g) {
            for &pi in pis {
                if layout.plaquettes()[pi].kind == PlaquetteKind::X {
                    b.gate1(CliffordGate::H(plaq_t(pi)), t_store);
                }
                let m = b.measure(plaq_t(pi), t_store);
                meas[pi].push(m);
            }
        }
    }

    // Final readout: load everything into the hosts and measure.
    let body_end = b.circuit.instructions.len();
    let t_final = gstep_time(max_gstep) + step_dur;
    for di in 0..n_data {
        b.load_store(host_t(di), mode(di), t_final);
    }
    let mut t2 = t_final + hw.t_load_store;
    if spec.basis == Basis::X {
        for di in 0..n_data {
            b.gate1(CliffordGate::H(host_t(di)), t2);
        }
        t2 += hw.t_gate_1q;
    }
    let data_meas: Vec<usize> = (0..n_data).map(|di| b.measure(host_t(di), t2)).collect();

    finish_memory(b, spec, &layout, meas, data_meas, prep_end, body_end, |c| {
        layout.data_index(c).expect("data coordinate")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vlq_circuit::exec::validate_with_tableau;
    use vlq_circuit::ir::Instruction;

    fn hw() -> HardwareParams {
        HardwareParams::with_memory()
    }

    /// Every setup x basis at d=3 must pass tableau validation: all
    /// detectors deterministic-zero and the observable deterministic.
    #[test]
    fn all_setups_validate_at_d3() {
        for setup in Setup::ALL {
            for basis in [Basis::Z, Basis::X] {
                let spec = MemorySpec::standard(setup, 3, 4, basis);
                let mc = memory_circuit(spec, &hw());
                for seed in 0..3u64 {
                    let mut rng = SmallRng::seed_from_u64(seed);
                    let report = validate_with_tableau(&mc.circuit, &mut rng);
                    assert!(
                        report.passed(),
                        "{setup} {basis:?} seed {seed}: violated {:?}",
                        report.violated_detectors
                    );
                    assert_eq!(
                        report.observable_bits,
                        vec![false],
                        "{setup} {basis:?}: observable must be deterministic 0"
                    );
                }
            }
        }
    }

    #[test]
    fn all_setups_validate_at_d5() {
        for setup in Setup::ALL {
            let spec = MemorySpec::standard(setup, 5, 10, Basis::Z);
            let mc = memory_circuit(spec, &hw());
            let mut rng = SmallRng::seed_from_u64(9);
            let report = validate_with_tableau(&mc.circuit, &mut rng);
            assert!(report.passed(), "{setup}: {:?}", report.violated_detectors);
        }
    }

    #[test]
    fn detector_counts() {
        // Guarded kind: rounds+1 detectors per plaquette; other kind:
        // rounds-1.
        for setup in Setup::ALL {
            let d = 3;
            let spec = MemorySpec::standard(setup, d, 4, Basis::Z);
            let mc = memory_circuit(spec, &hw());
            let n_half = (d * d - 1) / 2;
            assert_eq!(mc.z_detectors.len(), n_half * (d + 1), "{setup}");
            assert_eq!(mc.x_detectors.len(), n_half * (d - 1), "{setup}");
            assert_eq!(
                mc.circuit.detectors.len(),
                mc.z_detectors.len() + mc.x_detectors.len()
            );
        }
    }

    #[test]
    fn compact_groups_match_figure10_pairing() {
        // Within one round, step s (1..=8) must host exactly the pairs of
        // Figure 10: A0D2, A1D3, A2C0, A3C1, B0C2, B1C3, B2D0, B3D1.
        let expected: [&[(CompactGroup, usize)]; 8] = [
            &[(CompactGroup::A, 0), (CompactGroup::D, 2)],
            &[(CompactGroup::A, 1), (CompactGroup::D, 3)],
            &[(CompactGroup::A, 2), (CompactGroup::C, 0)],
            &[(CompactGroup::A, 3), (CompactGroup::C, 1)],
            &[(CompactGroup::B, 0), (CompactGroup::C, 2)],
            &[(CompactGroup::B, 1), (CompactGroup::C, 3)],
            &[(CompactGroup::B, 2), (CompactGroup::D, 0)],
            &[(CompactGroup::B, 3), (CompactGroup::D, 1)],
        ];
        for group in [
            CompactGroup::A,
            CompactGroup::B,
            CompactGroup::C,
            CompactGroup::D,
        ] {
            let steps = group_steps(group);
            for (idx, &s) in steps.iter().enumerate() {
                // Map spill-over steps 9, 10 to 1, 2.
                let s_mod = if s > 8 { s - 8 } else { s };
                assert!(
                    expected[s_mod - 1].contains(&(group, idx)),
                    "group {group:?} index {idx} lands at step {s_mod}, expected {:?}",
                    expected[s_mod - 1]
                );
            }
        }
    }

    /// No transmon may be used twice in the same (gstep, substep) slot of
    /// the Compact schedule, and loaded data must never overlap its host
    /// plaquette's ancilla window.
    #[test]
    fn compact_schedule_is_conflict_free() {
        for d in [3usize, 5, 7] {
            let spec = MemorySpec::standard(Setup::CompactInterleaved, d, 3, Basis::Z);
            let mc = memory_circuit(spec, &hw());
            // Replay instructions, tracking per-qubit usage in order;
            // since we emit slots in time order, a conflict shows up as a
            // 2q gate touching a qubit that is mid-measurement... the
            // tableau validation already catches logical conflicts; here
            // we check the static invariant that each CNOT's qubits are
            // distinct and measurements are followed by resets before the
            // qubit is next used as an ancilla target of a fresh parity.
            let mut measured_pending: std::collections::HashSet<usize> =
                std::collections::HashSet::new();
            for inst in &mc.circuit.instructions {
                match *inst {
                    Instruction::Measure { qubit, .. } => {
                        measured_pending.insert(qubit);
                    }
                    Instruction::Reset { qubit } => {
                        measured_pending.remove(&qubit);
                    }
                    Instruction::Gate { gate, .. } => {
                        if let CliffordGate::Cnot(a, b) = gate {
                            // A measured-but-not-reset transmon must not
                            // be used as a parity target again.
                            assert!(
                                !(measured_pending.contains(&a) && measured_pending.contains(&b)),
                                "d={d}: CNOT({a},{b}) on two stale qubits"
                            );
                        }
                        // Loads into measured transmons are fine (the
                        // swap replaces the state) — clear staleness.
                        if let CliffordGate::Swap(a, b) = gate {
                            measured_pending.remove(&a);
                            measured_pending.remove(&b);
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn interleaved_has_more_loads_than_all_at_once() {
        let hwp = hw();
        let aao = memory_circuit(
            MemorySpec::standard(Setup::NaturalAllAtOnce, 3, 4, Basis::Z),
            &hwp,
        );
        let int = memory_circuit(
            MemorySpec::standard(Setup::NaturalInterleaved, 3, 4, Basis::Z),
            &hwp,
        );
        let count_loadstores = |mc: &MemoryCircuit| {
            mc.circuit
                .instructions
                .iter()
                .filter(|i| {
                    matches!(
                        i,
                        Instruction::Gate {
                            class: GateClass::LoadStore,
                            ..
                        }
                    )
                })
                .count()
        };
        // AAO: init store + 1 load = 2 layers; INT: init store + d loads +
        // (d-1) stores = 2d layers.
        assert_eq!(count_loadstores(&aao), 2 * 9);
        assert_eq!(count_loadstores(&int), 6 * 9);
    }

    #[test]
    fn steady_state_waits_scale_with_k() {
        let hwp = hw();
        let w1 = steady_state_wait(Setup::NaturalInterleaved, 3, 1, &hwp);
        assert_eq!(w1, 0.0);
        let w10 = steady_state_wait(Setup::NaturalInterleaved, 3, 10, &hwp);
        let w20 = steady_state_wait(Setup::NaturalInterleaved, 3, 20, &hwp);
        assert!(w10 > 0.0);
        assert!((w20 / w10 - 19.0 / 9.0).abs() < 1e-9);
        assert_eq!(steady_state_wait(Setup::Baseline, 3, 10, &hwp), 0.0);
        // AAO waits are ~d times the interleaved waits.
        let aao = steady_state_wait(Setup::NaturalAllAtOnce, 5, 10, &hwp);
        let int = steady_state_wait(Setup::NaturalInterleaved, 5, 10, &hwp);
        assert!(aao > 4.0 * int && aao < 5.5 * int);
    }

    #[test]
    fn cavity_idles_present_in_memory_setups() {
        let spec = MemorySpec::standard(Setup::NaturalInterleaved, 3, 10, Basis::Z);
        let mc = memory_circuit(spec, &hw());
        let cavity_idle: f64 = mc
            .circuit
            .instructions
            .iter()
            .filter_map(|i| match i {
                Instruction::Idle {
                    duration,
                    medium: Medium::Cavity,
                    ..
                } => Some(*duration),
                _ => None,
            })
            .sum();
        assert!(cavity_idle > 0.0, "memory setups must idle in the cavity");
        // Baseline has no cavity idles.
        let base = memory_circuit(
            MemorySpec::standard(Setup::Baseline, 3, 10, Basis::Z),
            &hw(),
        );
        let base_cavity = base.circuit.instructions.iter().any(|i| {
            matches!(
                i,
                Instruction::Idle {
                    medium: Medium::Cavity,
                    ..
                }
            )
        });
        assert!(!base_cavity);
    }

    #[test]
    fn compact_uses_tm_gates_and_tt_gates() {
        let spec = MemorySpec::standard(Setup::CompactInterleaved, 3, 4, Basis::Z);
        let mc = memory_circuit(spec, &hw());
        let mut tm = 0usize;
        let mut tt = 0usize;
        for i in &mc.circuit.instructions {
            if let Instruction::Gate {
                gate: CliffordGate::Cnot(..),
                class,
            } = i
            {
                match class {
                    GateClass::TwoQubitTM => tm += 1,
                    GateClass::TwoQubitTT => tt += 1,
                    _ => {}
                }
            }
        }
        // Per round: one in-cavity CNOT per non-orphan plaquette (6 at
        // d=3), the rest transmon-transmon.
        assert_eq!(tm, 3 * 6, "transmon-mode CNOTs");
        let total_cnots_per_round: usize = SurfaceLayout::new(3)
            .plaquettes()
            .iter()
            .map(|p| p.data.len())
            .sum();
        assert_eq!(tm + tt, 3 * total_cnots_per_round);
    }

    #[test]
    fn compact_round_duration_longer_than_baseline() {
        let hwp = hw();
        assert!(compact_round_duration(&hwp) > baseline_round_duration(&hwp));
        assert!((compact_round_duration(&hwp) - 8.0 * 500e-9).abs() < 1e-12);
    }
}
