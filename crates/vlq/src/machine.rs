//! The virtualized-logical-qubit machine: addressing, paging, refresh
//! scheduling — the *scheduler* half of the two-phase execution model.
//!
//! The machine models the paper's architectural rules (§III-D):
//!
//! * every stack keeps one cavity mode **free** for moves and surgery
//!   ancillas;
//! * every stored logical qubit must receive error correction at least
//!   once every `k` scheduler cycles (its *refresh deadline*) — the
//!   DRAM-refresh analogy;
//! * co-located qubits interact via the 1-timestep transversal CNOT;
//!   cross-stack interactions either move a qubit into the partner stack
//!   (move + transversal, 2-3 timesteps) or use lattice surgery
//!   (6 timesteps), whichever the policy prefers;
//! * moves traverse the free modes along the path, so intersecting moves
//!   serialize.
//!
//! Since the scheduling/execution split, the machine no longer
//! accumulates costs eagerly: every operation appends typed
//! [`crate::isa::Instr`]uctions to a [`Schedule`], and any
//! [`crate::exec::Executor`] backend consumes it. The legacy
//! [`VlqMachine::finish`] entry point is a thin wrapper that replays
//! the schedule through [`crate::exec::CostExecutor`], reproducing the
//! pre-split [`MachineReport`] exactly.

use std::collections::BTreeMap;

use vlq_arch::address::{ModeIndex, StackCoord, VirtAddr};
use vlq_arch::geometry::{patch_cost, Embedding};
use vlq_arch::params::HardwareParams;
use vlq_surgery::LogicalOp;

use crate::isa::{Instr, LogicalGate1Q, Schedule};

/// Machine-level errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// No stack has a free mode (beyond the reserved one).
    OutOfCapacity,
    /// Unknown logical qubit handle.
    UnknownQubit(LogicalId),
    /// Operation on a deallocated qubit.
    Deallocated(LogicalId),
    /// A stack coordinate outside the machine's grid.
    UnknownStack(StackCoord),
    /// An instruction start time earlier than its predecessor's.
    TimeReversal {
        /// The offending start time.
        t: u64,
        /// The preceding instruction's start time.
        previous: u64,
    },
    /// Two timeline-spanning instructions claim the same logical qubit
    /// in overlapping spans (schedule validation; span-0 bookkeeping is
    /// exempt).
    OverlappingClaim {
        /// The doubly-claimed qubit.
        qubit: LogicalId,
        /// Index of the instruction holding the claim.
        first_index: usize,
        /// Index of the instruction that violated it.
        second_index: usize,
    },
    /// A schedule-level failure: the underlying error plus which
    /// instruction triggered it (schedule validation and replay).
    Schedule {
        /// Index of the instruction in the schedule.
        index: usize,
        /// The instruction's mnemonic.
        instr: &'static str,
        /// The underlying cause (exposed via
        /// [`std::error::Error::source`]).
        source: Box<MachineError>,
    },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::OutOfCapacity => write!(f, "no free cavity mode available"),
            MachineError::UnknownQubit(id) => write!(f, "unknown logical qubit {id:?}"),
            MachineError::Deallocated(id) => write!(f, "logical qubit {id:?} was measured"),
            MachineError::UnknownStack(s) => write!(f, "stack {s} is outside the machine grid"),
            MachineError::TimeReversal { t, previous } => {
                write!(
                    f,
                    "instruction at t={t} starts before its predecessor (t={previous})"
                )
            }
            MachineError::OverlappingClaim {
                qubit,
                first_index,
                second_index,
            } => {
                write!(
                    f,
                    "logical qubit {qubit:?} claimed by overlapping instructions \
                     #{first_index} and #{second_index}"
                )
            }
            MachineError::Schedule {
                index,
                instr,
                source,
            } => {
                write!(f, "schedule instruction #{index} ({instr}): {source}")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Schedule { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

/// Handle to an allocated logical qubit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LogicalId(pub u32);

/// How the scheduler interleaves error correction (paper §III-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// One syndrome round per mode per cycle (paper: Interleaved).
    #[default]
    Interleaved,
    /// All `d` rounds per mode per block (paper: All-at-once).
    AllAtOnce,
}

/// Machine configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineConfig {
    /// Stacks in x.
    pub stacks_x: u32,
    /// Stacks in y.
    pub stacks_y: u32,
    /// Cavity depth (modes per cavity).
    pub k: usize,
    /// Code distance.
    pub d: usize,
    /// Which embedding the stacks use.
    pub embedding: Embedding,
    /// Refresh policy.
    pub refresh: RefreshPolicy,
    /// Prefer move+transversal over lattice surgery for cross-stack
    /// CNOTs (both are supported; the paper shows transversal wins).
    pub prefer_transversal: bool,
    /// Hardware timing parameters.
    pub hw: HardwareParams,
}

impl MachineConfig {
    /// A small demo machine: 2x2 stacks, k = 10, d = 3, Compact.
    pub fn compact_demo() -> Self {
        MachineConfig {
            stacks_x: 2,
            stacks_y: 2,
            k: 10,
            d: 3,
            embedding: Embedding::Compact,
            refresh: RefreshPolicy::Interleaved,
            prefer_transversal: true,
            hw: HardwareParams::with_memory(),
        }
    }

    /// Logical-qubit capacity: every stack keeps one mode free (moves and
    /// surgery ancillas, §III-D).
    pub fn capacity(&self) -> usize {
        (self.stacks_x * self.stacks_y) as usize * (self.k - 1)
    }

    /// Total transmons of the machine.
    pub fn total_transmons(&self) -> usize {
        (self.stacks_x * self.stacks_y) as usize
            * patch_cost(self.embedding, self.d, self.k).transmons
    }

    /// Total cavities of the machine.
    pub fn total_cavities(&self) -> usize {
        (self.stacks_x * self.stacks_y) as usize
            * patch_cost(self.embedding, self.d, self.k).cavities
    }
}

/// One scheduled event on the machine timeline (the legacy rendering of
/// a replayed schedule; see [`crate::exec::CostExecutor`]).
#[derive(Clone, Debug, PartialEq)]
pub enum TimelineEvent {
    /// A logical operation at `(start_timestep, op, qubits)`.
    Op(u64, LogicalOp, Vec<LogicalId>),
    /// A refresh pass over a stack's modes.
    Refresh(u64, StackCoord, usize),
    /// A qubit moved between stacks.
    Move(u64, LogicalId, StackCoord, StackCoord),
}

/// Execution statistics and timeline.
#[derive(Clone, Debug, Default)]
pub struct MachineReport {
    /// Total elapsed logical timesteps.
    pub total_timesteps: u64,
    /// Transversal CNOTs executed.
    pub transversal_cnots: u64,
    /// Lattice-surgery CNOTs executed.
    pub surgery_cnots: u64,
    /// Move operations executed.
    pub moves: u64,
    /// Refresh passes executed (one pass = one mode's round(s)).
    pub refresh_passes: u64,
    /// Worst refresh staleness observed (scheduler cycles since last EC).
    pub max_staleness: u64,
    /// Refresh-deadline misses: refresh passes that found a stored qubit
    /// stale past the `k`-cycle deadline (paper §III-A's hard
    /// requirement; always 0 under the built-in policies).
    pub deadline_misses: u64,
    /// Full event timeline.
    pub timeline: Vec<TimelineEvent>,
}

#[derive(Clone, Debug)]
struct QubitState {
    addr: VirtAddr,
    alive: bool,
}

/// The virtualized-logical-qubit machine (scheduler).
#[derive(Clone, Debug)]
pub struct VlqMachine {
    config: MachineConfig,
    qubits: BTreeMap<LogicalId, QubitState>,
    /// Occupancy per stack: mode -> qubit.
    stacks: BTreeMap<StackCoord, BTreeMap<u8, LogicalId>>,
    next_id: u32,
    clock: u64,
    schedule: Schedule,
    /// Round-robin refresh cursor per stack.
    refresh_cursor: BTreeMap<StackCoord, usize>,
}

impl VlqMachine {
    /// Creates a machine.
    pub fn new(config: MachineConfig) -> Self {
        assert!(config.k >= 2, "need at least one usable + one free mode");
        let mut stacks = BTreeMap::new();
        for x in 0..config.stacks_x {
            for y in 0..config.stacks_y {
                stacks.insert(StackCoord::new(x, y), BTreeMap::new());
            }
        }
        VlqMachine {
            config,
            qubits: BTreeMap::new(),
            stacks,
            next_id: 0,
            clock: 0,
            schedule: Schedule::new(config),
            refresh_cursor: BTreeMap::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Current logical timestep.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// The schedule emitted so far.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Finishes scheduling and returns the typed instruction schedule,
    /// ready for any [`crate::exec::Executor`] backend.
    pub fn into_schedule(mut self) -> Schedule {
        self.schedule.set_duration(self.clock);
        self.schedule
    }

    /// Allocates a logical qubit, preferring the emptiest stack (spreads
    /// refresh load).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::OutOfCapacity`] when every stack is full.
    pub fn alloc(&mut self) -> Result<LogicalId, MachineError> {
        let limit = self.config.k - 1; // one mode stays free
        let best = self
            .stacks
            .iter()
            .filter(|(_, occ)| occ.len() < limit)
            .min_by_key(|(_, occ)| occ.len())
            .map(|(&s, _)| s)
            .ok_or(MachineError::OutOfCapacity)?;
        self.alloc_in(best)
    }

    /// Allocates into a specific stack if it has room.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::UnknownStack`] for coordinates outside the
    /// grid and [`MachineError::OutOfCapacity`] when the stack is full.
    pub fn alloc_in(&mut self, stack: StackCoord) -> Result<LogicalId, MachineError> {
        let limit = self.config.k - 1;
        let k = self.config.k as u8;
        let occ = self
            .stacks
            .get_mut(&stack)
            .ok_or(MachineError::UnknownStack(stack))?;
        if occ.len() >= limit {
            return Err(MachineError::OutOfCapacity);
        }
        let mode = (0..k)
            .find(|m| !occ.contains_key(m))
            .ok_or(MachineError::OutOfCapacity)?;
        let id = LogicalId(self.next_id);
        self.next_id += 1;
        occ.insert(mode, id);
        let addr = VirtAddr::new(stack, ModeIndex(mode));
        self.qubits.insert(id, QubitState { addr, alive: true });
        self.schedule.push(Instr::PageIn {
            qubit: id,
            addr,
            t: self.clock,
        });
        Ok(id)
    }

    /// The qubit's current virtual address.
    pub fn address_of(&self, id: LogicalId) -> Result<VirtAddr, MachineError> {
        Ok(self.check_alive(id)?.addr)
    }

    fn check_alive(&self, id: LogicalId) -> Result<&QubitState, MachineError> {
        let q = self.qubits.get(&id).ok_or(MachineError::UnknownQubit(id))?;
        if !q.alive {
            return Err(MachineError::Deallocated(id));
        }
        Ok(q)
    }

    /// Advances the clock by `steps` timesteps, running background
    /// refresh (every elapsed timestep refreshes one mode per stack in
    /// round-robin order — the Interleaved policy — or a whole stack
    /// block under All-at-once).
    pub fn advance(&mut self, steps: u64) {
        for _ in 0..steps {
            self.clock += 1;
            let stacks: Vec<StackCoord> = self.stacks.keys().copied().collect();
            for s in stacks {
                self.refresh_one(s);
            }
        }
        self.schedule.set_duration(self.clock);
    }

    fn refresh_one(&mut self, stack: StackCoord) {
        let occupied: Vec<LogicalId> = self.stacks[&stack].values().copied().collect();
        if occupied.is_empty() {
            return;
        }
        let cursor = self.refresh_cursor.entry(stack).or_insert(0);
        let idx = *cursor % occupied.len();
        *cursor = (*cursor + 1) % occupied.len().max(1);
        let id = occupied[idx];
        let rounds = match self.config.refresh {
            RefreshPolicy::Interleaved => 1,
            // A block refreshes one mode completely; with d rounds per
            // block the mode stays fresh for k cycles.
            RefreshPolicy::AllAtOnce => self.config.d,
        };
        self.schedule.push(Instr::RefreshRound {
            stack,
            qubit: id,
            rounds,
            t: self.clock,
        });
    }

    fn touch(&mut self, id: LogicalId) {
        self.schedule.push(Instr::Correction {
            qubit: id,
            t: self.clock,
        });
    }

    /// Executes a logical CNOT between two qubits.
    ///
    /// Same stack: transversal (1 timestep). Different stacks: either
    /// move + transversal + move-back (3 timesteps) or lattice surgery
    /// (6 timesteps), per the `prefer_transversal` policy.
    ///
    /// # Errors
    ///
    /// Propagates address errors.
    pub fn cnot(&mut self, control: LogicalId, target: LogicalId) -> Result<(), MachineError> {
        let ca = self.check_alive(control)?.addr;
        let ta = self.check_alive(target)?.addr;
        if ca.stack == ta.stack {
            self.schedule.push(Instr::TransversalCnot {
                control,
                target,
                stack: ca.stack,
                t: self.clock,
            });
            self.advance(LogicalOp::TransversalCnot.timesteps() as u64);
            // The transversal CNOT doubles as a correction round for
            // both participants.
            self.touch(control);
            self.touch(target);
            return Ok(());
        }
        if self.config.prefer_transversal && self.occupancy(ta.stack) < self.config.k - 1 {
            // Move control into target's stack (through the free modes),
            // interact, move back. When the destination stack is full the
            // condition above routes the CNOT through lattice surgery
            // instead (which needs no destination mode).
            self.move_qubit(control, ta.stack)?;
            self.schedule.push(Instr::TransversalCnot {
                control,
                target,
                stack: ta.stack,
                t: self.clock,
            });
            self.advance(LogicalOp::TransversalCnot.timesteps() as u64);
            self.move_qubit(control, ca.stack)?;
            self.touch(control);
            self.touch(target);
        } else {
            self.schedule.push(Instr::LatticeSurgeryCnot {
                control,
                target,
                control_stack: ca.stack,
                target_stack: ta.stack,
                t: self.clock,
            });
            self.advance(LogicalOp::LatticeSurgeryCnot.timesteps() as u64);
            self.touch(control);
            self.touch(target);
        }
        Ok(())
    }

    /// Moves a qubit to another stack (1 timestep; uses the destination's
    /// free mode).
    ///
    /// # Errors
    ///
    /// Fails when the destination has no free mode.
    pub fn move_qubit(&mut self, id: LogicalId, dest: StackCoord) -> Result<(), MachineError> {
        let from = self.check_alive(id)?.addr;
        if from.stack == dest {
            return Ok(());
        }
        let limit = self.config.k - 1;
        {
            let occ = self
                .stacks
                .get(&dest)
                .ok_or(MachineError::UnknownStack(dest))?;
            if occ.len() >= limit {
                return Err(MachineError::OutOfCapacity);
            }
        }
        // Release the source mode.
        self.stacks
            .get_mut(&from.stack)
            .ok_or(MachineError::UnknownStack(from.stack))?
            .remove(&from.mode.0);
        let k = self.config.k as u8;
        let occ = self
            .stacks
            .get_mut(&dest)
            .ok_or(MachineError::UnknownStack(dest))?;
        let mode = (0..k)
            .find(|m| !occ.contains_key(m))
            .ok_or(MachineError::OutOfCapacity)?;
        occ.insert(mode, id);
        let to_addr = VirtAddr::new(dest, ModeIndex(mode));
        if let Some(q) = self.qubits.get_mut(&id) {
            q.addr = to_addr;
        }
        self.schedule.push(Instr::Move {
            qubit: id,
            from: from.stack,
            to: dest,
            to_addr,
            t: self.clock,
        });
        self.advance(LogicalOp::Move.timesteps() as u64);
        Ok(())
    }

    /// Applies a transversal single-qubit logical gate (defaults to H;
    /// see [`VlqMachine::logical_1q`] for an explicit gate choice): one
    /// timestep.
    ///
    /// # Errors
    ///
    /// Propagates address errors.
    pub fn single_qubit_gate(&mut self, id: LogicalId) -> Result<(), MachineError> {
        self.logical_1q(id, LogicalGate1Q::H)
    }

    /// Applies a named transversal single-qubit logical gate (1
    /// timestep). The gate identity matters to frame-replay backends
    /// (error propagation through H differs from X/Z); the cost model
    /// treats all of them as the 1-timestep transversal class.
    ///
    /// # Errors
    ///
    /// Propagates address errors.
    pub fn logical_1q(&mut self, id: LogicalId, gate: LogicalGate1Q) -> Result<(), MachineError> {
        self.check_alive(id)?;
        self.schedule.push(Instr::Logical1Q {
            qubit: id,
            gate,
            t: self.clock,
        });
        self.advance(LogicalOp::Initialize.timesteps() as u64);
        self.touch(id);
        Ok(())
    }

    /// Consumes one magic state to apply a T gate by teleportation
    /// (2 timesteps: transversal interaction + measurement).
    ///
    /// # Errors
    ///
    /// Propagates address errors.
    pub fn consume_magic(&mut self, id: LogicalId) -> Result<(), MachineError> {
        self.check_alive(id)?;
        self.schedule.push(Instr::ConsumeMagic {
            qubit: id,
            t: self.clock,
        });
        // Matches the legacy two-step eager path: the interaction and
        // the measurement each advance one timestep and each double as a
        // correction touch.
        self.advance(1);
        self.touch(id);
        self.advance(1);
        self.touch(id);
        Ok(())
    }

    /// Measures a logical qubit destructively, freeing its mode.
    ///
    /// # Errors
    ///
    /// Propagates address errors.
    pub fn measure(&mut self, id: LogicalId) -> Result<(), MachineError> {
        let addr = self.check_alive(id)?.addr;
        self.schedule.push(Instr::MeasureLogical {
            qubit: id,
            addr,
            t: self.clock,
        });
        self.advance(LogicalOp::Measure.timesteps() as u64);
        self.stacks
            .get_mut(&addr.stack)
            .ok_or(MachineError::UnknownStack(addr.stack))?
            .remove(&addr.mode.0);
        if let Some(q) = self.qubits.get_mut(&id) {
            q.alive = false;
        }
        self.schedule.push(Instr::PageOut {
            qubit: id,
            addr,
            t: self.clock,
        });
        Ok(())
    }

    /// Finishes execution and returns the legacy cost report (replays
    /// the emitted schedule through [`crate::exec::CostExecutor`]).
    pub fn finish(self) -> MachineReport {
        crate::exec::replay_costs(&self.into_schedule())
    }

    /// Occupancy of a stack (modes in use).
    pub fn occupancy(&self, stack: StackCoord) -> usize {
        self.stacks.get(&stack).map_or(0, BTreeMap::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> VlqMachine {
        VlqMachine::new(MachineConfig::compact_demo())
    }

    #[test]
    fn capacity_reserves_free_mode() {
        let cfg = MachineConfig::compact_demo();
        assert_eq!(cfg.capacity(), 4 * 9);
        let mut m = VlqMachine::new(cfg);
        for _ in 0..cfg.capacity() {
            m.alloc().unwrap();
        }
        assert_eq!(m.alloc(), Err(MachineError::OutOfCapacity));
    }

    #[test]
    fn same_stack_cnot_is_transversal() {
        let mut m = demo();
        let s = StackCoord::new(0, 0);
        let a = m.alloc_in(s).unwrap();
        let b = m.alloc_in(s).unwrap();
        m.cnot(a, b).unwrap();
        let r = m.finish();
        assert_eq!(r.transversal_cnots, 1);
        assert_eq!(r.surgery_cnots, 0);
        assert_eq!(r.moves, 0);
        assert_eq!(r.total_timesteps, 1);
    }

    #[test]
    fn cross_stack_cnot_moves_and_returns() {
        let mut m = demo();
        let a = m.alloc_in(StackCoord::new(0, 0)).unwrap();
        let b = m.alloc_in(StackCoord::new(1, 1)).unwrap();
        m.cnot(a, b).unwrap();
        assert_eq!(m.address_of(a).unwrap().stack, StackCoord::new(0, 0));
        let r = m.finish();
        assert_eq!(r.transversal_cnots, 1);
        assert_eq!(r.moves, 2);
        // move + cnot + move = 3 timesteps.
        assert_eq!(r.total_timesteps, 3);
    }

    #[test]
    fn surgery_policy_uses_lattice_surgery() {
        let mut cfg = MachineConfig::compact_demo();
        cfg.prefer_transversal = false;
        let mut m = VlqMachine::new(cfg);
        let a = m.alloc_in(StackCoord::new(0, 0)).unwrap();
        let b = m.alloc_in(StackCoord::new(1, 0)).unwrap();
        m.cnot(a, b).unwrap();
        let r = m.finish();
        assert_eq!(r.surgery_cnots, 1);
        assert_eq!(r.total_timesteps, 6);
    }

    #[test]
    fn refresh_keeps_staleness_bounded() {
        let mut m = demo();
        // Fill one stack with 5 qubits and idle a long time.
        let s = StackCoord::new(0, 0);
        for _ in 0..5 {
            m.alloc_in(s).unwrap();
        }
        m.advance(100);
        let r = m.finish();
        assert!(r.refresh_passes >= 100);
        // Round-robin over 5 modes: staleness stays near 5 cycles, far
        // below the k = 10 deadline.
        assert!(r.max_staleness <= 6, "staleness {}", r.max_staleness);
        assert_eq!(r.deadline_misses, 0);
    }

    #[test]
    fn measure_frees_the_mode() {
        let mut m = demo();
        let s = StackCoord::new(0, 0);
        let ids: Vec<_> = (0..9).map(|_| m.alloc_in(s).unwrap()).collect();
        assert_eq!(m.occupancy(s), 9);
        m.measure(ids[0]).unwrap();
        assert_eq!(m.occupancy(s), 8);
        assert!(m.alloc_in(s).is_ok());
        assert_eq!(
            m.cnot(ids[0], ids[1]),
            Err(MachineError::Deallocated(ids[0]))
        );
    }

    #[test]
    fn full_destination_falls_back_to_surgery() {
        // When the partner stack has no free mode beyond the reserved
        // one, a cross-stack CNOT routes through lattice surgery instead
        // of failing.
        let mut cfg = MachineConfig::compact_demo();
        cfg.stacks_x = 2;
        cfg.stacks_y = 1;
        cfg.k = 3; // capacity 2 per stack
        let mut m = VlqMachine::new(cfg);
        let a = m.alloc_in(StackCoord::new(0, 0)).unwrap();
        let _a2 = m.alloc_in(StackCoord::new(0, 0)).unwrap();
        let b = m.alloc_in(StackCoord::new(1, 0)).unwrap();
        let _b2 = m.alloc_in(StackCoord::new(1, 0)).unwrap();
        m.cnot(a, b).unwrap();
        let r = m.finish();
        assert_eq!(r.surgery_cnots, 1);
        assert_eq!(r.moves, 0);
    }

    #[test]
    fn hardware_totals_match_geometry() {
        let cfg = MachineConfig::compact_demo();
        // 4 stacks x (d^2 + d - 1 = 11) transmons.
        assert_eq!(cfg.total_transmons(), 44);
        assert_eq!(cfg.total_cavities(), 36);
    }

    #[test]
    fn unknown_stack_is_a_typed_error() {
        let mut m = demo();
        let bogus = StackCoord::new(9, 9);
        assert_eq!(m.alloc_in(bogus), Err(MachineError::UnknownStack(bogus)));
        let a = m.alloc().unwrap();
        assert_eq!(
            m.move_qubit(a, bogus),
            Err(MachineError::UnknownStack(bogus))
        );
    }

    #[test]
    fn machine_emits_valid_schedules() {
        let mut m = demo();
        let a = m.alloc().unwrap();
        let b = m.alloc().unwrap();
        m.single_qubit_gate(a).unwrap();
        m.cnot(a, b).unwrap();
        m.consume_magic(b).unwrap();
        m.measure(a).unwrap();
        m.measure(b).unwrap();
        let schedule = m.into_schedule();
        schedule.validate().unwrap();
        assert!(schedule.duration() > 0);
    }

    #[test]
    fn schedule_error_exposes_source() {
        use std::error::Error;
        let err = MachineError::Schedule {
            index: 3,
            instr: "move",
            source: Box::new(MachineError::OutOfCapacity),
        };
        let source = err.source().expect("schedule errors carry a source");
        assert_eq!(source.to_string(), "no free cavity mode available");
        assert!(err.to_string().contains("#3"));
        assert!(err.to_string().contains("move"));
    }
}
