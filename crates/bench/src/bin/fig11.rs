//! Regenerates Figure 11: error-threshold curves for the baseline and
//! the four 2.5D variants.
//!
//! Usage:
//!   cargo run --release -p vlq-bench --bin fig11 -- \
//!     [--trials N] [--dmax D] [--decoder mwpm|uf] [--setup name] [--basis z|x]
//!
//! The paper runs 2,000,000 trials per point over d in {3..11}; defaults
//! here are laptop-scale (see EXPERIMENTS.md for the recorded runs).

use vlq_bench::{sci, Args};
use vlq_qec::{estimate_threshold, threshold_scan, DecoderKind};
use vlq_surface::schedule::{Basis, Setup};

fn main() {
    let args = Args::parse();
    let trials: u64 = args.get("trials", 20_000);
    let dmax: usize = args.get("dmax", 7);
    let k: usize = args.get("k", 10);
    let seed: u64 = args.get("seed", 2020);
    let decoder_arg = args.get_str("decoder", "mwpm");
    let decoder = DecoderKind::parse(&decoder_arg).unwrap_or_else(|| {
        eprintln!("unknown --decoder {decoder_arg:?}; accepted: mwpm|blossom|matching, uf|unionfind|union-find");
        std::process::exit(2);
    });
    let basis = match args.get_str("basis", "z").as_str() {
        "x" => Basis::X,
        _ => Basis::Z,
    };
    let only: Option<String> = {
        let s = args.get_str("setup", "");
        (!s.is_empty()).then_some(s)
    };

    let distances: Vec<usize> = [3usize, 5, 7, 9, 11]
        .into_iter()
        .filter(|&d| d <= dmax)
        .collect();
    // Wide sweep: the baseline crosses near 1e-2; under this model's
    // conservative memory-serialization timing the 2.5D setups cross
    // lower (1e-3 to 7e-3), so the sweep covers both decades.
    let rates = [8e-4, 1.2e-3, 2e-3, 3e-3, 5e-3, 8e-3, 1.2e-2, 1.6e-2];

    println!(
        "Figure 11: thresholds ({} trials/point, decoder {:?}, basis {:?}, k={k})",
        trials, decoder, basis
    );
    for setup in Setup::ALL {
        if let Some(ref name) = only {
            if setup.to_string() != *name {
                continue;
            }
        }
        let scan = threshold_scan(setup, basis, &distances, &rates, k, trials, seed, decoder);
        println!("\n-- {setup} --");
        print!("{:>8}", "p \\ d");
        for &d in &distances {
            print!("{d:>12}");
        }
        println!();
        for (pi, &p) in rates.iter().enumerate() {
            print!("{:>8}", sci(p));
            for &d in &distances {
                let rate = scan.curve(d)[pi];
                print!("{:>12}", sci(rate));
            }
            println!();
        }
        match estimate_threshold(&scan) {
            Some(th) => {
                let paper = match setup {
                    Setup::Baseline | Setup::NaturalAllAtOnce => 0.009,
                    _ => 0.008,
                };
                println!("threshold ~ {} (paper: {paper})", sci(th));
            }
            None => println!("threshold: no crossing in scanned range"),
        }
    }
}
