//! Telemetry must observe without perturbing, and its deterministic
//! sidecar must not depend on how work was scheduled.
//!
//! Two contracts pinned here:
//! - `run_shots_recorded` returns bit-identical failure counts to
//!   `run_shots` (recording never touches RNG streams or iteration
//!   order), and
//! - the deterministic JSONL report of a swept workload is
//!   byte-identical across worker counts (every sidecar metric is a
//!   commutative reduction of seed-deterministic per-chunk work).

use vlq_qec::{run_sweep_with, BlockConfig, BlockSampler, BlockSpec, DecoderKind, PreparedBlock};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};
use vlq_sweep::{SweepEngine, SweepSpec};
use vlq_telemetry::{Metric, Recorder};

fn probe_spec() -> SweepSpec {
    SweepSpec::new()
        .setups([Setup::Baseline, Setup::CompactInterleaved])
        .distances([3, 5])
        .error_rates([3e-3, 6e-3])
        .decoders([DecoderKind::UnionFind])
        .shots(1500)
        .base_seed(7)
}

fn sidecar_with_workers(workers: usize) -> (String, Vec<vlq_sweep::SweepRecord>) {
    let recorder = Recorder::attached();
    let engine = SweepEngine::with_workers(workers).with_recorder(recorder.clone());
    let records = run_sweep_with(&probe_spec(), &engine, &mut []).expect("no sinks");
    (recorder.deterministic_jsonl("probe", 7), records)
}

#[test]
fn deterministic_sidecar_is_byte_identical_across_worker_counts() {
    let (one, records_one) = sidecar_with_workers(1);
    for workers in [2, 4] {
        let (other, records) = sidecar_with_workers(workers);
        assert_eq!(records_one, records, "{workers} workers changed records");
        assert_eq!(one, other, "{workers} workers changed the sidecar");
    }
    // The sidecar is not vacuous: the swept workload must show up in it.
    assert!(one.contains("\"schema\": \"vlq-telemetry/v1\""));
    assert!(one.contains("\"metric\": \"decoder.defects_per_lane\""));
    assert!(
        one.contains("\"metric\": \"sweep.points_completed\", \"kind\": \"counter\", \"value\": 8")
    );
    // Runtime-class metrics (timings, steal counts) never leak into it.
    assert!(!one.contains("nanos"));
    assert!(!one.contains("sweep.steals"));
}

#[test]
fn recording_never_perturbs_failure_counts() {
    let memory = MemorySpec::standard(Setup::Baseline, 5, 1, Basis::Z);
    let block = PreparedBlock::prepare(
        &BlockConfig::new(BlockSpec::full(memory), 4e-3).with_decoder(DecoderKind::UnionFind),
    );
    let plain = block.run_shots(3000, 11);
    let recorder = Recorder::attached();
    let recorded = block.run_shots_recorded(3000, 11, &recorder);
    assert_eq!(plain, recorded, "recording changed the sampled failures");
    assert_eq!(recorder.value(Metric::SampleLanes), 3000);
    assert_eq!(recorder.value(Metric::BlockFailures), plain);
    let defects = recorder
        .hist(Metric::DefectsPerLane)
        .expect("defect histogram recorded");
    assert_eq!(defects.count, 3000, "one histogram entry per lane");
    // A disabled recorder takes the same path and also changes nothing.
    let disabled = block.run_shots_recorded(3000, 11, &Recorder::disabled());
    assert_eq!(plain, disabled);
}
