//! `sweep-merge`: recombine sharded sweep artifacts, or verify one
//! artifact's internal consistency — the CI-facing companion of the
//! figure binaries' `--shard i/N` flag.
//!
//! Merge mode takes N shard `--out` directories *in shard order*
//! (`0/N` first) and interleaves their rows back into global point
//! order, after validating that the shards parse strictly, agree on
//! seed and spec fingerprint (via the `.meta.json` sidecars), and hold
//! exactly the interleaving index pattern. Because shard rows are the
//! byte-for-byte rows the full run would have produced, the merged
//! CSV/JSONL (and sidecar) are byte-identical to an unsharded run's —
//! and the merged JSONL is a valid `--resume` cache.
//!
//! Verify mode (`--verify`) checks a single artifact: strict row
//! parsing, row counts, a uniform seed column, and byte-level CSV↔JSONL
//! agreement — replacing the python one-liner CI used to carry.
//!
//! Every validation failure is a typed error printed to stderr with
//! exit code 2 (the same contract as bad flags).

use std::path::PathBuf;

use vlq_bench::{usage_exit, Args};
use vlq_sweep::{merge_artifacts_with_plan, verify_artifact, MergeError, VerifyExpectations};

const USAGE: &str = "\
usage: sweep-merge --stem STEM --out DIR [--plan PATH] SHARD_DIR...
       sweep-merge --verify --stem STEM [--expect-rows N] [--expect-seed S]
                   [--expect-shots N] DIR
  --stem         artifact stem (fig11 reads/writes fig11.csv + fig11.jsonl)
  --out          directory for the merged artifacts (merge mode)
  --plan         shard-plan file the shards ran under (merge mode; validates
                 each shard holds exactly its planned points instead of the
                 stride pattern — plan-stamped sidecars are detected even
                 without this flag)
  --verify       check one artifact directory instead of merging
  --expect-rows  verify: require exactly N data rows
  --expect-seed  verify: require the uniform seed column to equal S
  --expect-shots verify: require every record to have run N shots
  Shard directories must be passed in shard order (0/N first). Any
  validation failure (malformed rows, seed or spec-fingerprint
  mismatch, index gaps) prints a typed error and exits 2.";

fn fail(e: &MergeError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(2);
}

fn main() {
    let (args, dirs) = Args::parse_validated_positional(
        USAGE,
        &[
            "stem",
            "out",
            "plan",
            "expect-rows",
            "expect-seed",
            "expect-shots",
        ],
        &["verify"],
    );
    let Some(stem) = args.pairs_get("stem") else {
        usage_exit(USAGE, "--stem is required");
    };

    if args.has("verify") {
        let [dir] = &dirs[..] else {
            usage_exit(USAGE, "--verify takes exactly one artifact directory");
        };
        for merge_only in ["out", "plan"] {
            if args.pairs_get(merge_only).is_some() {
                usage_exit(USAGE, &format!("--{merge_only} is a merge-mode flag"));
            }
        }
        let expect = VerifyExpectations {
            rows: args
                .pairs_get("expect-rows")
                .map(|_| args.get_or_usage(USAGE, "expect-rows", 0usize)),
            seed: args
                .pairs_get("expect-seed")
                .map(|_| args.get_or_usage(USAGE, "expect-seed", 0u64)),
            shots: args
                .pairs_get("expect-shots")
                .map(|_| args.get_or_usage(USAGE, "expect-shots", 0u64)),
        };
        let dir = PathBuf::from(dir);
        match verify_artifact(&dir, &stem, &expect) {
            Ok(report) => {
                let seed = report.seed.map_or("(empty)".to_string(), |s| s.to_string());
                println!(
                    "verified {stem} in {}: {} rows, seed {seed}, CSV and JSONL agree",
                    dir.display(),
                    report.rows
                );
            }
            Err(e) => fail(&e),
        }
        return;
    }

    for verify_only in ["expect-rows", "expect-seed", "expect-shots"] {
        if args.pairs_get(verify_only).is_some() {
            usage_exit(USAGE, &format!("--{verify_only} requires --verify"));
        }
    }
    let Some(out) = args.pairs_get("out") else {
        usage_exit(USAGE, "merge mode requires --out");
    };
    if dirs.is_empty() {
        usage_exit(USAGE, "merge mode requires at least one shard directory");
    }
    let shard_dirs: Vec<PathBuf> = dirs.iter().map(PathBuf::from).collect();
    let out = PathBuf::from(out);
    let plan = args.pairs_get("plan").map(|path| {
        vlq_sweep::ShardPlan::load(std::path::Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("error: --plan {path}: {e}");
            std::process::exit(2);
        })
    });
    match merge_artifacts_with_plan(&shard_dirs, &stem, &out, plan.as_ref()) {
        Ok(report) => {
            let seed = report.seed.map_or("(none)".to_string(), |s| s.to_string());
            println!(
                "merged {} shard(s) of {stem} into {}: {} rows, seed {seed}{}",
                report.shards,
                out.display(),
                report.rows,
                if report.meta {
                    ", sidecar validated"
                } else {
                    ""
                }
            );
        }
        Err(e) => fail(&e),
    }
}
