//! Golden pins for the raw `sample_batch` detector/observable words.
//!
//! Captured immediately before the batched sample→decode refactor
//! (scratch-reusing `SampleScratch` pipeline + word-level gauge
//! randomization). The scratch path and the word-XOR gauge kernel must
//! draw the same RNG words in the same order and pack the same bits;
//! these values pin that on a real memory circuit (CompactInterleaved,
//! which exercises SWAP-based load/store and gauge randomization). The
//! test lives in `vlq-qec` rather than `vlq-circuit` because building a
//! realistic circuit needs the surface/arch layers above it.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vlq_arch::params::HardwareParams;
use vlq_circuit::exec::{sample_batch, sample_batch_into, SampleScratch};
use vlq_circuit::noise::NoiseModel;
use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

const LANES: usize = 130;
const SEED: u64 = 77;
const DETECTORS: usize = 24;
const WORDS_PER_DETECTOR: usize = 3;
const FINGERPRINT: u64 = 11840796706460355150;
const DET0: [u64; 3] = [1206964975013265424, 72067627148738592, 0];
const DET7: [u64; 3] = [2305878797599129601, 4506348448788481, 0];
const OBS0: [u64; 3] = [13430562195096216577, 2974663481700459073, 0];

fn noisy_circuit() -> vlq_circuit::ir::Circuit {
    let spec = MemorySpec::standard(Setup::CompactInterleaved, 3, 4, Basis::Z);
    let mc = memory_circuit(spec, &HardwareParams::with_memory());
    NoiseModel::memory_at_scale(4e-3).apply(&mc.circuit)
}

fn fingerprint(detectors: &[Vec<u64>]) -> u64 {
    let mut acc = 0u64;
    for (d, words) in detectors.iter().enumerate() {
        for (w, &word) in words.iter().enumerate() {
            acc = acc
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(word ^ (d as u64) ^ ((w as u64) << 32));
        }
    }
    acc
}

#[test]
fn sample_batch_words_match_pre_refactor_bits() {
    let noisy = noisy_circuit();
    let mut rng = SmallRng::seed_from_u64(SEED);
    let res = sample_batch(&noisy, LANES, &mut rng);
    assert_eq!(res.detectors.len(), DETECTORS);
    assert_eq!(res.detectors[0].len(), WORDS_PER_DETECTOR);
    assert_eq!(fingerprint(&res.detectors), FINGERPRINT);
    assert_eq!(res.detectors[0], DET0);
    assert_eq!(res.detectors[7], DET7);
    assert_eq!(res.observables[0], OBS0);
}

#[test]
fn reused_sample_scratch_matches_pins_after_other_batches() {
    // A scratch that already sampled other batch shapes (different lane
    // counts, stale accumulator contents) must still reproduce the
    // pinned words exactly: reuse may never leak state across batches.
    let noisy = noisy_circuit();
    let mut scratch = SampleScratch::new();
    for warm_lanes in [7usize, 192, 130] {
        let mut rng = SmallRng::seed_from_u64(99);
        sample_batch_into(&noisy, warm_lanes, &mut rng, &mut scratch);
    }
    let mut rng = SmallRng::seed_from_u64(SEED);
    sample_batch_into(&noisy, LANES, &mut rng, &mut scratch);
    let res = &scratch.result;
    assert_eq!(fingerprint(&res.detectors), FINGERPRINT);
    assert_eq!(res.detectors[0], DET0);
    assert_eq!(res.detectors[7], DET7);
    assert_eq!(res.observables[0], OBS0);
}
