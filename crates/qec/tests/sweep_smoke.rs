//! Smoke-sweep: a small threshold-style grid (the CI shape — d ∈ {3,5},
//! two error rates, both decoders) streamed to real file sinks, with
//! the artifacts parsed back and checked for shape and content.

use vlq_decoder::DecoderKind;
use vlq_qec::run_sweep_with;
use vlq_surface::schedule::Setup;
use vlq_sweep::{CsvSink, JsonlSink, RecordSink, SweepEngine, SweepSpec, RECORD_COLUMNS};

#[test]
fn small_grid_artifacts_parse_with_expected_rows() {
    let spec = SweepSpec::new()
        .setups([Setup::Baseline])
        .distances([3, 5])
        .error_rates([5e-3, 1e-2])
        .decoders([DecoderKind::Mwpm, DecoderKind::UnionFind])
        .shots(200)
        .base_seed(3);
    let expected_rows = spec.len();
    assert_eq!(expected_rows, 8);

    let dir = std::env::temp_dir().join(format!("vlq-sweep-smoke-{}", std::process::id()));
    let csv_path = dir.join("smoke.csv");
    let jsonl_path = dir.join("smoke.jsonl");
    {
        let mut csv = CsvSink::create(&csv_path).unwrap();
        let mut jsonl = JsonlSink::create(&jsonl_path).unwrap();
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut csv, &mut jsonl];
        let records = run_sweep_with(&spec, &SweepEngine::default(), &mut sinks).unwrap();
        assert_eq!(records.len(), expected_rows);
    }

    // CSV: header + one row per point; every field of every row parses.
    let csv_text = std::fs::read_to_string(&csv_path).unwrap();
    let lines: Vec<&str> = csv_text.lines().collect();
    assert_eq!(lines.len(), 1 + expected_rows);
    assert_eq!(lines[0], RECORD_COLUMNS.join(","));
    for (i, line) in lines[1..].iter().enumerate() {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), RECORD_COLUMNS.len(), "row {i}: {line}");
        assert_eq!(fields[0].parse::<usize>().unwrap(), i);
        let d: usize = fields[3].parse().unwrap();
        assert!(d == 3 || d == 5);
        let p: f64 = fields[4].parse().unwrap();
        assert!(p == 5e-3 || p == 1e-2);
        let shots: u64 = fields[10].parse().unwrap();
        let failures: u64 = fields[11].parse().unwrap();
        let rate: f64 = fields[12].parse().unwrap();
        assert_eq!(shots, 200);
        assert!(failures <= shots);
        assert!((rate - failures as f64 / shots as f64).abs() < 1e-12);
    }

    // JSONL: one object per point with matching keys and balanced braces
    // (no JSON parser in the offline vendor set; shape-check by hand).
    let jsonl_text = std::fs::read_to_string(&jsonl_path).unwrap();
    let jlines: Vec<&str> = jsonl_text.lines().collect();
    assert_eq!(jlines.len(), expected_rows);
    for (i, line) in jlines.iter().enumerate() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line {i}");
        for key in RECORD_COLUMNS {
            assert!(
                line.contains(&format!("\"{key}\":")),
                "line {i} missing {key}"
            );
        }
        assert!(line.contains(&format!("\"index\":{i},")));
    }

    std::fs::remove_dir_all(&dir).ok();
}
