//! Hardware timing and error-rate parameters (paper Table I).
//!
//! All durations are in seconds. The paper gives coherence times and gate
//! durations for two device families: plain transmon grids (the baseline)
//! and transmons with attached memory cavities (the 2.5D architecture).
//!
//! For the threshold experiments the paper derives *every* error rate
//! from one scale: `p`, the probability of an SC-SC (transmon-transmon)
//! two-qubit gate error, varying "all gate errors and coherence times
//! together". [`ErrorRates::from_scale`] implements that convention; the
//! precise per-knob mapping is documented on the method (and recorded in
//! DESIGN.md since Table I does not pin it down completely).

use serde::{Deserialize, Serialize};

/// Device timing parameters (Table I of the paper), in seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HardwareParams {
    /// Transmon relaxation time `T1,t` (paper: 100 us).
    pub t1_transmon: f64,
    /// Cavity-mode relaxation time `T1,c` (paper: 1 ms; infinite for the
    /// baseline device which has no cavities).
    pub t1_cavity: f64,
    /// Transmon-transmon two-qubit gate duration (paper: 200 ns).
    pub t_gate_2q_tt: f64,
    /// Single-qubit gate duration (paper: 50 ns).
    pub t_gate_1q: f64,
    /// Transmon-mode two-qubit gate duration (paper: 200 ns).
    pub t_gate_2q_tm: f64,
    /// Load/store (transmon-mediated iSWAP) duration (paper: 150 ns).
    pub t_load_store: f64,
    /// Measurement duration. Table I omits it; we assume 300 ns
    /// (documented in DESIGN.md) and expose it for sensitivity sweeps.
    pub t_measure: f64,
    /// Reset duration. The paper assumes fast, clean active reset; 0 here.
    pub t_reset: f64,
}

impl HardwareParams {
    /// Table I parameters for the baseline transmon-only device.
    pub fn baseline() -> Self {
        HardwareParams {
            t1_transmon: 100e-6,
            t1_cavity: f64::INFINITY,
            t_gate_2q_tt: 200e-9,
            t_gate_1q: 50e-9,
            t_gate_2q_tm: f64::NAN, // no cavities on the baseline device
            t_load_store: f64::NAN,
            t_measure: 300e-9,
            t_reset: 0.0,
        }
    }

    /// Table I parameters for the transmon + memory-cavity device.
    pub fn with_memory() -> Self {
        HardwareParams {
            t1_transmon: 100e-6,
            t1_cavity: 1e-3,
            t_gate_2q_tt: 200e-9,
            t_gate_1q: 50e-9,
            t_gate_2q_tm: 200e-9,
            t_load_store: 150e-9,
            t_measure: 300e-9,
            t_reset: 0.0,
        }
    }

    /// Duration of one syndrome-extraction round on the baseline layout:
    /// ancilla H layers (2 single-qubit layers), four CNOT layers, and
    /// measurement + reset.
    pub fn baseline_round_duration(&self) -> f64 {
        2.0 * self.t_gate_1q + 4.0 * self.t_gate_2q_tt + self.t_measure + self.t_reset
    }
}

impl Default for HardwareParams {
    fn default() -> Self {
        HardwareParams::with_memory()
    }
}

/// Pauli error probabilities for each operation class.
///
/// `Idle` errors are *not* listed here: they are computed per-instruction
/// from durations and the [`HardwareParams`] coherence times (scaled by
/// [`ErrorRates::t1_scale`]).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ErrorRates {
    /// SC-SC (transmon-transmon) two-qubit gate error — the headline `p`.
    pub p_2q_tt: f64,
    /// SC-mode (transmon-cavity) two-qubit gate error.
    pub p_2q_tm: f64,
    /// Load/store (iSWAP) error.
    pub p_load_store: f64,
    /// Single-qubit gate error.
    pub p_1q: f64,
    /// Measurement readout flip probability.
    pub p_measure: f64,
    /// Reset error (prepares the wrong computational state).
    pub p_reset: f64,
    /// Multiplier applied to both T1 times when computing idle errors:
    /// `T1_eff = T1 * t1_scale`. Scaling coherence *down* as gate errors
    /// go *up* implements the paper's "vary all gate errors and coherence
    /// times together".
    pub t1_scale: f64,
}

/// The operating point at which Table I coherence times are taken to
/// hold: the paper's "typical operating point below threshold".
pub const REFERENCE_ERROR_RATE: f64 = 2e-3;

impl ErrorRates {
    /// Derives all error rates from the single physical error scale `p`
    /// (the SC-SC two-qubit gate error), following the paper's
    /// methodology:
    ///
    /// * all two-qubit-class errors (SC-SC, SC-mode, load/store) equal `p`,
    /// * single-qubit gates are 10x better (`p/10`, the usual transmon
    ///   calibration ratio),
    /// * measurement flips with probability `p`,
    /// * reset errors are absorbed into the paper's "efficient reset"
    ///   assumption (0),
    /// * coherence times scale inversely with `p` so that at
    ///   `p = REFERENCE_ERROR_RATE` they equal Table I.
    ///
    /// # Examples
    ///
    /// ```
    /// use vlq_arch::params::{ErrorRates, REFERENCE_ERROR_RATE};
    ///
    /// let r = ErrorRates::from_scale(REFERENCE_ERROR_RATE);
    /// assert_eq!(r.p_2q_tt, 2e-3);
    /// assert_eq!(r.p_1q, 2e-4);
    /// assert!((r.t1_scale - 1.0).abs() < 1e-12);
    /// ```
    pub fn from_scale(p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "error scale must be a probability");
        ErrorRates {
            p_2q_tt: p,
            p_2q_tm: p,
            p_load_store: p,
            p_1q: p / 10.0,
            p_measure: p,
            p_reset: 0.0,
            t1_scale: if p > 0.0 {
                REFERENCE_ERROR_RATE / p
            } else {
                f64::INFINITY
            },
        }
    }

    /// All-zero error rates (noiseless execution; useful in tests).
    pub fn noiseless() -> Self {
        ErrorRates {
            p_2q_tt: 0.0,
            p_2q_tm: 0.0,
            p_load_store: 0.0,
            p_1q: 0.0,
            p_measure: 0.0,
            p_reset: 0.0,
            t1_scale: f64::INFINITY,
        }
    }

    /// Effective transmon T1 after scaling.
    pub fn effective_t1_transmon(&self, hw: &HardwareParams) -> f64 {
        hw.t1_transmon * self.t1_scale
    }

    /// Effective cavity T1 after scaling.
    pub fn effective_t1_cavity(&self, hw: &HardwareParams) -> f64 {
        hw.t1_cavity * self.t1_scale
    }
}

impl Default for ErrorRates {
    fn default() -> Self {
        ErrorRates::from_scale(REFERENCE_ERROR_RATE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let b = HardwareParams::baseline();
        assert_eq!(b.t1_transmon, 100e-6);
        assert!(b.t1_cavity.is_infinite());
        assert_eq!(b.t_gate_2q_tt, 200e-9);
        assert_eq!(b.t_gate_1q, 50e-9);

        let m = HardwareParams::with_memory();
        assert_eq!(m.t1_cavity, 1e-3);
        assert_eq!(m.t_gate_2q_tm, 200e-9);
        assert_eq!(m.t_load_store, 150e-9);
    }

    #[test]
    fn cavity_t1_is_10x_transmon() {
        // The paper: "qubits stored in the cavity... longer coherence
        // times by about one order of magnitude".
        let m = HardwareParams::with_memory();
        assert!((m.t1_cavity / m.t1_transmon - 10.0).abs() < 1e-9);
    }

    #[test]
    fn round_duration_is_sum_of_layers() {
        let b = HardwareParams::baseline();
        let expected = 2.0 * 50e-9 + 4.0 * 200e-9 + 300e-9;
        assert!((b.baseline_round_duration() - expected).abs() < 1e-15);
    }

    #[test]
    fn scale_derivation() {
        let r = ErrorRates::from_scale(4e-3);
        assert_eq!(r.p_2q_tt, 4e-3);
        assert_eq!(r.p_2q_tm, 4e-3);
        assert_eq!(r.p_load_store, 4e-3);
        assert_eq!(r.p_1q, 4e-4);
        assert_eq!(r.p_measure, 4e-3);
        // Doubling p halves coherence.
        assert!((r.t1_scale - 0.5).abs() < 1e-12);
        let hw = HardwareParams::with_memory();
        assert!((r.effective_t1_cavity(&hw) - 0.5e-3).abs() < 1e-12);
    }

    #[test]
    fn noiseless_is_all_zero() {
        let r = ErrorRates::noiseless();
        assert_eq!(r.p_2q_tt, 0.0);
        assert_eq!(r.p_1q, 0.0);
        assert!(r.t1_scale.is_infinite());
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn from_scale_rejects_bad_input() {
        let _ = ErrorRates::from_scale(1.5);
    }

    #[test]
    fn serde_roundtrip() {
        let r = ErrorRates::from_scale(1e-3);
        let json = serde_json_like(&r);
        assert!(json.contains("p_2q_tt"));
    }

    // We avoid depending on serde_json; a Debug representation is enough
    // to confirm the derives compile and fields are visible.
    fn serde_json_like(r: &ErrorRates) -> String {
        format!("{r:?}")
    }
}
