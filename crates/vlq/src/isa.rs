//! The typed VLQ instruction set: replayable schedules.
//!
//! The two-phase execution model splits *scheduling* from *execution*:
//! [`crate::machine::VlqMachine`] (and [`crate::program::compile`]) act
//! as schedulers that emit a [`Schedule`] — an ordered list of typed
//! [`Instr`]uctions, each carrying stack/mode addresses and timestep
//! positions — and the pluggable backends in [`crate::exec`] consume
//! the schedule:
//!
//! * [`crate::exec::CostExecutor`] replays it against the paper's
//!   latency model and reproduces the legacy
//!   [`crate::machine::MachineReport`] exactly;
//! * [`crate::exec::FrameExecutor`] replays it on the Pauli-frame
//!   simulator with a [`vlq_circuit::noise::NoiseModel`], running the
//!   decoder per refresh round, and reports program-level logical error
//!   rates;
//! * [`crate::exec::TraceExecutor`] renders it as a
//!   [`vlq_sweep::artifact::Table`] for diffing and visualization.
//!
//! Instruction latencies come from the [`vlq_surgery::LogicalOp`] cost
//! model (one timestep = `d` syndrome-extraction rounds), so the ISA and
//! the lattice-surgery layer can never disagree about spans.

use vlq_arch::address::{StackCoord, VirtAddr};
use vlq_surgery::LogicalOp;

use crate::machine::{LogicalId, MachineConfig, MachineError};

/// A transversal single-logical-qubit gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LogicalGate1Q {
    /// Logical Pauli X (transversal).
    X,
    /// Logical Pauli Z (transversal).
    Z,
    /// Logical Hadamard (transversal + patch rotation, 1-timestep class).
    H,
}

/// One typed, addressed, time-stamped instruction of a VLQ schedule.
///
/// Every variant carries `t`, the logical timestep at which it starts;
/// its duration is [`Instr::span`] timesteps. Bookkeeping instructions
/// (`PageIn`, `PageOut`, `Correction`, `RefreshRound`) have span 0: they
/// happen *within* the background refresh cycle at `t` rather than
/// occupying the stack's transmon layer for a full timestep.
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// A logical qubit is paged into a cavity mode (allocation /
    /// initialization to a fresh logical state).
    PageIn {
        /// The qubit.
        qubit: LogicalId,
        /// Its virtual address.
        addr: VirtAddr,
        /// Start timestep.
        t: u64,
    },
    /// A logical qubit leaves the machine (its mode is freed).
    PageOut {
        /// The qubit.
        qubit: LogicalId,
        /// The address being vacated.
        addr: VirtAddr,
        /// Start timestep.
        t: u64,
    },
    /// One background error-correction pass: `rounds` syndrome rounds on
    /// one stored qubit of `stack` (the DRAM-refresh analogy; paper
    /// §III-A).
    RefreshRound {
        /// The stack being refreshed.
        stack: StackCoord,
        /// The qubit receiving this pass.
        qubit: LogicalId,
        /// Syndrome rounds in this pass (1 under Interleaved, `d` under
        /// All-at-once).
        rounds: usize,
        /// Scheduler cycle of the pass.
        t: u64,
    },
    /// A logical operation doubled as an error-correction touch for
    /// `qubit` at `t` (e.g. the transversal CNOT corrects both
    /// participants). Resets the refresh-deadline clock without a
    /// dedicated refresh pass.
    Correction {
        /// The corrected qubit.
        qubit: LogicalId,
        /// Cycle of the touch.
        t: u64,
    },
    /// A transversal single-qubit logical gate.
    Logical1Q {
        /// Target qubit.
        qubit: LogicalId,
        /// Which gate.
        gate: LogicalGate1Q,
        /// Start timestep.
        t: u64,
    },
    /// The transversal CNOT between two co-located qubits (paper §III-B).
    TransversalCnot {
        /// Control qubit.
        control: LogicalId,
        /// Target qubit.
        target: LogicalId,
        /// The shared stack.
        stack: StackCoord,
        /// Start timestep.
        t: u64,
    },
    /// A lattice-surgery CNOT between qubits in different stacks
    /// (Figures 4/9); macro-instruction for the 6-step merge/split
    /// sequence.
    LatticeSurgeryCnot {
        /// Control qubit.
        control: LogicalId,
        /// Target qubit.
        target: LogicalId,
        /// Control's stack.
        control_stack: StackCoord,
        /// Target's stack.
        target_stack: StackCoord,
        /// Start timestep.
        t: u64,
    },
    /// A lattice-surgery merge of two patches (half of a surgery CNOT;
    /// primitive form for hand-built schedules).
    SurgeryMerge {
        /// First patch.
        a: LogicalId,
        /// Second patch.
        b: LogicalId,
        /// Start timestep.
        t: u64,
    },
    /// A lattice-surgery split (primitive form).
    SurgerySplit {
        /// First patch.
        a: LogicalId,
        /// Second patch.
        b: LogicalId,
        /// Start timestep.
        t: u64,
    },
    /// A qubit moves between stacks through the reserved free modes.
    Move {
        /// The moved qubit.
        qubit: LogicalId,
        /// Source stack.
        from: StackCoord,
        /// Destination stack.
        to: StackCoord,
        /// Destination address.
        to_addr: VirtAddr,
        /// Start timestep.
        t: u64,
    },
    /// Magic-state consumption (a T gate by teleportation: one
    /// transversal interaction with the factory output plus a
    /// measurement).
    ConsumeMagic {
        /// The qubit receiving the T gate.
        qubit: LogicalId,
        /// Start timestep.
        t: u64,
    },
    /// Destructive logical measurement.
    MeasureLogical {
        /// Measured qubit.
        qubit: LogicalId,
        /// Its address at measurement time.
        addr: VirtAddr,
        /// Start timestep.
        t: u64,
    },
}

impl Instr {
    /// The instruction's start timestep.
    pub fn t(&self) -> u64 {
        match *self {
            Instr::PageIn { t, .. }
            | Instr::PageOut { t, .. }
            | Instr::RefreshRound { t, .. }
            | Instr::Correction { t, .. }
            | Instr::Logical1Q { t, .. }
            | Instr::TransversalCnot { t, .. }
            | Instr::LatticeSurgeryCnot { t, .. }
            | Instr::SurgeryMerge { t, .. }
            | Instr::SurgerySplit { t, .. }
            | Instr::Move { t, .. }
            | Instr::ConsumeMagic { t, .. }
            | Instr::MeasureLogical { t, .. } => t,
        }
    }

    /// Latency in timesteps, from the [`LogicalOp`] cost model.
    /// Bookkeeping instructions (page-in/out, refresh, correction) take
    /// no timeline span of their own.
    pub fn span(&self) -> u64 {
        match self {
            Instr::PageIn { .. }
            | Instr::PageOut { .. }
            | Instr::RefreshRound { .. }
            | Instr::Correction { .. } => 0,
            Instr::Logical1Q { .. } => LogicalOp::Initialize.timesteps() as u64,
            Instr::TransversalCnot { .. } => LogicalOp::TransversalCnot.timesteps() as u64,
            Instr::LatticeSurgeryCnot { .. } => LogicalOp::LatticeSurgeryCnot.timesteps() as u64,
            Instr::SurgeryMerge { .. } => LogicalOp::Merge.timesteps() as u64,
            Instr::SurgerySplit { .. } => LogicalOp::Split.timesteps() as u64,
            Instr::Move { .. } => LogicalOp::Move.timesteps() as u64,
            Instr::ConsumeMagic { .. } => LogicalOp::ConsumeMagic.timesteps() as u64,
            Instr::MeasureLogical { .. } => LogicalOp::Measure.timesteps() as u64,
        }
    }

    /// Short stable mnemonic (trace artifacts, error messages).
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instr::PageIn { .. } => "page-in",
            Instr::PageOut { .. } => "page-out",
            Instr::RefreshRound { .. } => "refresh",
            Instr::Correction { .. } => "correction",
            Instr::Logical1Q { .. } => "logical-1q",
            Instr::TransversalCnot { .. } => "transversal-cnot",
            Instr::LatticeSurgeryCnot { .. } => "surgery-cnot",
            Instr::SurgeryMerge { .. } => "surgery-merge",
            Instr::SurgerySplit { .. } => "surgery-split",
            Instr::Move { .. } => "move",
            Instr::ConsumeMagic { .. } => "consume-magic",
            Instr::MeasureLogical { .. } => "measure",
        }
    }

    /// The logical qubits the instruction acts on (bookkeeping targets
    /// included), in operand order.
    ///
    /// Allocates a fresh `Vec` per call; hot paths should prefer
    /// [`Instr::for_each_qubit`].
    pub fn qubits(&self) -> Vec<LogicalId> {
        let mut out = Vec::with_capacity(self.num_qubits());
        self.for_each_qubit(|q| out.push(q));
        out
    }

    /// Visits the instruction's logical-qubit operands in operand order
    /// without allocating (the hot-path form of [`Instr::qubits`]).
    pub fn for_each_qubit(&self, mut f: impl FnMut(LogicalId)) {
        match *self {
            Instr::PageIn { qubit, .. }
            | Instr::PageOut { qubit, .. }
            | Instr::RefreshRound { qubit, .. }
            | Instr::Correction { qubit, .. }
            | Instr::Logical1Q { qubit, .. }
            | Instr::Move { qubit, .. }
            | Instr::ConsumeMagic { qubit, .. }
            | Instr::MeasureLogical { qubit, .. } => f(qubit),
            Instr::TransversalCnot {
                control, target, ..
            }
            | Instr::LatticeSurgeryCnot {
                control, target, ..
            } => {
                f(control);
                f(target);
            }
            Instr::SurgeryMerge { a, b, .. } | Instr::SurgerySplit { a, b, .. } => {
                f(a);
                f(b);
            }
        }
    }

    /// Number of logical-qubit operands (1 or 2).
    pub fn num_qubits(&self) -> usize {
        match self {
            Instr::TransversalCnot { .. }
            | Instr::LatticeSurgeryCnot { .. }
            | Instr::SurgeryMerge { .. }
            | Instr::SurgerySplit { .. } => 2,
            _ => 1,
        }
    }
}

/// A typed, replayable VLQ instruction schedule.
///
/// Produced by [`crate::machine::VlqMachine`] /
/// [`crate::program::compile`], or built by hand for custom workloads;
/// consumed by any [`crate::exec::Executor`] backend.
///
/// # Examples
///
/// ```
/// use vlq::isa::{Instr, Schedule};
/// use vlq::machine::{LogicalId, MachineConfig};
/// use vlq::arch::address::{ModeIndex, StackCoord, VirtAddr};
///
/// let mut s = Schedule::new(MachineConfig::compact_demo());
/// let q = LogicalId(0);
/// let addr = VirtAddr::new(StackCoord::new(0, 0), ModeIndex(0));
/// s.push(Instr::PageIn { qubit: q, addr, t: 0 });
/// s.push(Instr::MeasureLogical { qubit: q, addr, t: 3 });
/// s.push(Instr::PageOut { qubit: q, addr, t: 4 });
/// assert!(s.validate().is_ok());
/// assert_eq!(s.duration(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Schedule {
    config: MachineConfig,
    instrs: Vec<Instr>,
    duration: u64,
}

impl Schedule {
    /// An empty schedule for a machine shape.
    pub fn new(config: MachineConfig) -> Self {
        Schedule {
            config,
            instrs: Vec::new(),
            duration: 0,
        }
    }

    /// The machine configuration the schedule targets.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The instruction list, in emission (= execution) order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the schedule holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Total makespan in timesteps (covers trailing idle cycles beyond
    /// the last instruction).
    pub fn duration(&self) -> u64 {
        self.duration
    }

    /// Extends the makespan (idle time after the last instruction).
    pub fn set_duration(&mut self, duration: u64) {
        self.duration = self.duration.max(duration);
    }

    /// Appends an instruction, growing the makespan to cover it.
    pub fn push(&mut self, instr: Instr) {
        self.duration = self.duration.max(instr.t() + instr.span());
        self.instrs.push(instr);
    }

    /// Counts instructions matching a predicate.
    pub fn count(&self, pred: impl Fn(&Instr) -> bool) -> usize {
        self.instrs.iter().filter(|i| pred(i)).count()
    }

    /// Structural validation: time-ordering, qubit lifetimes, and
    /// exclusive claims.
    ///
    /// Checks that start times never decrease, that every instruction
    /// addresses qubits currently paged in, that page-ins don't collide
    /// with live qubits, and that no two timeline-spanning instructions
    /// claim the same logical qubit in overlapping spans (a qubit is
    /// claimed for the half-open interval `[t, t + span)`; span-0
    /// bookkeeping — refreshes, corrections, paging — is exempt, since
    /// the background refresh cycle legitimately touches qubits during
    /// logical operations). Machine-emitted schedules are valid by
    /// construction; this is the safety net for hand-built and merged
    /// multi-tenant ones.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Schedule`] wrapping the underlying
    /// per-qubit error and naming the offending instruction; span
    /// conflicts surface as [`MachineError::OverlappingClaim`] carrying
    /// both instruction indices.
    pub fn validate(&self) -> Result<(), MachineError> {
        let mut live: std::collections::BTreeSet<LogicalId> = std::collections::BTreeSet::new();
        // Last exclusive claim per qubit: (claim end, claiming index).
        let mut claims: std::collections::BTreeMap<LogicalId, (u64, usize)> =
            std::collections::BTreeMap::new();
        let mut last_t = 0u64;
        for (index, instr) in self.instrs.iter().enumerate() {
            let at_instr = |source: MachineError| MachineError::Schedule {
                index,
                instr: instr.mnemonic(),
                source: Box::new(source),
            };
            if instr.t() < last_t {
                return Err(at_instr(MachineError::TimeReversal {
                    t: instr.t(),
                    previous: last_t,
                }));
            }
            last_t = instr.t();
            match instr {
                Instr::PageIn { qubit, .. } => {
                    if !live.insert(*qubit) {
                        return Err(at_instr(MachineError::UnknownQubit(*qubit)));
                    }
                }
                Instr::PageOut { qubit, .. } => {
                    if !live.remove(qubit) {
                        return Err(at_instr(MachineError::Deallocated(*qubit)));
                    }
                }
                other => {
                    let t = other.t();
                    let span = other.span();
                    let mut err = None;
                    other.for_each_qubit(|q| {
                        if err.is_some() {
                            return;
                        }
                        if !live.contains(&q) {
                            err = Some(MachineError::UnknownQubit(q));
                        } else if span > 0 {
                            if let Some(&(end, first_index)) = claims.get(&q) {
                                if t < end {
                                    err = Some(MachineError::OverlappingClaim {
                                        qubit: q,
                                        first_index,
                                        second_index: index,
                                    });
                                }
                            }
                        }
                    });
                    if let Some(source) = err {
                        return Err(at_instr(source));
                    }
                    if span > 0 {
                        other.for_each_qubit(|q| {
                            claims.insert(q, (t + span, index));
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlq_arch::address::ModeIndex;

    fn addr(x: u32, y: u32, m: u8) -> VirtAddr {
        VirtAddr::new(StackCoord::new(x, y), ModeIndex(m))
    }

    #[test]
    fn spans_follow_the_cost_model() {
        let q = LogicalId(0);
        let r = LogicalId(1);
        let a = addr(0, 0, 0);
        assert_eq!(
            Instr::PageIn {
                qubit: q,
                addr: a,
                t: 0
            }
            .span(),
            0
        );
        assert_eq!(
            Instr::TransversalCnot {
                control: q,
                target: r,
                stack: a.stack,
                t: 0
            }
            .span(),
            1
        );
        assert_eq!(
            Instr::LatticeSurgeryCnot {
                control: q,
                target: r,
                control_stack: a.stack,
                target_stack: StackCoord::new(1, 0),
                t: 0
            }
            .span(),
            6
        );
        assert_eq!(Instr::ConsumeMagic { qubit: q, t: 0 }.span(), 2);
    }

    #[test]
    fn push_tracks_duration() {
        let mut s = Schedule::new(MachineConfig::compact_demo());
        let q = LogicalId(0);
        s.push(Instr::PageIn {
            qubit: q,
            addr: addr(0, 0, 0),
            t: 0,
        });
        s.push(Instr::ConsumeMagic { qubit: q, t: 3 });
        assert_eq!(s.duration(), 5);
        s.set_duration(2); // never shrinks
        assert_eq!(s.duration(), 5);
        s.set_duration(9);
        assert_eq!(s.duration(), 9);
    }

    #[test]
    fn validate_catches_use_before_page_in() {
        let mut s = Schedule::new(MachineConfig::compact_demo());
        s.push(Instr::Correction {
            qubit: LogicalId(7),
            t: 0,
        });
        let err = s.validate().unwrap_err();
        match err {
            MachineError::Schedule {
                index,
                instr,
                source,
            } => {
                assert_eq!(index, 0);
                assert_eq!(instr, "correction");
                assert_eq!(*source, MachineError::UnknownQubit(LogicalId(7)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validate_catches_time_reversal() {
        let mut s = Schedule::new(MachineConfig::compact_demo());
        let q = LogicalId(0);
        s.push(Instr::PageIn {
            qubit: q,
            addr: addr(0, 0, 0),
            t: 5,
        });
        s.push(Instr::Correction { qubit: q, t: 2 });
        assert!(matches!(
            s.validate(),
            Err(MachineError::Schedule { index: 1, .. })
        ));
    }

    #[test]
    fn for_each_qubit_matches_qubits() {
        let q = LogicalId(3);
        let r = LogicalId(5);
        let samples = [
            Instr::PageIn {
                qubit: q,
                addr: addr(0, 0, 0),
                t: 0,
            },
            Instr::TransversalCnot {
                control: q,
                target: r,
                stack: StackCoord::new(0, 0),
                t: 1,
            },
            Instr::SurgeryMerge { a: r, b: q, t: 2 },
            Instr::ConsumeMagic { qubit: r, t: 3 },
        ];
        for instr in &samples {
            let mut visited = Vec::new();
            instr.for_each_qubit(|id| visited.push(id));
            assert_eq!(visited, instr.qubits());
            assert_eq!(visited.len(), instr.num_qubits());
        }
    }

    #[test]
    fn validate_rejects_overlapping_claims() {
        let mut s = Schedule::new(MachineConfig::compact_demo());
        let q = LogicalId(0);
        let r = LogicalId(1);
        s.push(Instr::PageIn {
            qubit: q,
            addr: addr(0, 0, 0),
            t: 0,
        });
        s.push(Instr::PageIn {
            qubit: r,
            addr: addr(0, 0, 1),
            t: 0,
        });
        // Surgery claims both qubits for [0, 6); a gate on q at t = 2
        // lands inside the claim.
        s.push(Instr::LatticeSurgeryCnot {
            control: q,
            target: r,
            control_stack: StackCoord::new(0, 0),
            target_stack: StackCoord::new(1, 0),
            t: 0,
        });
        s.push(Instr::Logical1Q {
            qubit: q,
            gate: LogicalGate1Q::H,
            t: 2,
        });
        match s.validate().unwrap_err() {
            MachineError::Schedule { index, source, .. } => {
                assert_eq!(index, 3);
                assert_eq!(
                    *source,
                    MachineError::OverlappingClaim {
                        qubit: q,
                        first_index: 2,
                        second_index: 3,
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn validate_exempts_bookkeeping_from_claims() {
        // The machine emits refresh rounds and correction touches during
        // logical-op spans; those must not count as conflicting claims,
        // and a back-to-back op at the claim's end boundary is legal.
        let mut s = Schedule::new(MachineConfig::compact_demo());
        let q = LogicalId(0);
        s.push(Instr::PageIn {
            qubit: q,
            addr: addr(0, 0, 0),
            t: 0,
        });
        s.push(Instr::ConsumeMagic { qubit: q, t: 0 }); // claims [0, 2)
        s.push(Instr::RefreshRound {
            stack: StackCoord::new(0, 0),
            qubit: q,
            rounds: 1,
            t: 1,
        });
        s.push(Instr::Correction { qubit: q, t: 2 });
        s.push(Instr::Logical1Q {
            qubit: q,
            gate: LogicalGate1Q::H,
            t: 2, // the consume claim ends at 2 (half-open)
        });
        s.validate().unwrap();
    }

    #[test]
    fn validate_accepts_measure_before_page_out() {
        // The machine emits MeasureLogical at t and PageOut one cycle
        // later (the mode is freed after the readout completes).
        let mut s = Schedule::new(MachineConfig::compact_demo());
        let q = LogicalId(0);
        let a = addr(0, 0, 0);
        s.push(Instr::PageIn {
            qubit: q,
            addr: a,
            t: 0,
        });
        s.push(Instr::MeasureLogical {
            qubit: q,
            addr: a,
            t: 4,
        });
        s.push(Instr::PageOut {
            qubit: q,
            addr: a,
            t: 5,
        });
        s.validate().unwrap();
    }
}
