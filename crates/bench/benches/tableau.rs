//! Stabilizer-tableau benchmarks: gate application and schedule
//! validation cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vlq_arch::HardwareParams;
use vlq_circuit::exec::validate_with_tableau;
use vlq_sim::{CliffordGate, Tableau};
use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

fn bench_gates(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau-gates");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("cnot-chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut t = Tableau::new(n);
                t.apply(CliffordGate::H(0));
                for i in 1..n {
                    t.apply(CliffordGate::Cnot(i - 1, i));
                }
                t
            })
        });
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau-validate");
    group.sample_size(10);
    for setup in [Setup::Baseline, Setup::CompactInterleaved] {
        let spec = MemorySpec::standard(setup, 3, 4, Basis::Z);
        let hw = if setup.uses_memory() {
            HardwareParams::with_memory()
        } else {
            HardwareParams::baseline()
        };
        let mc = memory_circuit(spec, &hw);
        group.bench_function(format!("{setup}-d3"), |b| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(3);
                validate_with_tableau(&mc.circuit, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gates, bench_validation);
criterion_main!(benches);
