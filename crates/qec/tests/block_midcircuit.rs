//! Mid-circuit block behavior: boundary noise really is excluded, and
//! the resulting per-round rates are quantitative (below the
//! full-experiment rate, suppressed with distance).

use vlq_circuit::ir::Instruction;
use vlq_qec::{BlockConfig, BlockSampler, BlockSpec, Boundary, DecoderKind, PreparedBlock};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};

fn prepared(setup: Setup, d: usize, k: usize, p: f64, boundary: Boundary) -> PreparedBlock {
    let spec = BlockSpec {
        memory: MemorySpec::standard(setup, d, k, Basis::Z),
        boundary,
    };
    PreparedBlock::prepare(&BlockConfig::new(spec, p).with_decoder(DecoderKind::UnionFind))
}

fn noise_mass(block: &PreparedBlock) -> f64 {
    block
        .noisy
        .instructions
        .iter()
        .map(|i| match *i {
            Instruction::Noise1 { p, .. } | Instruction::Noise2 { p, .. } => p,
            Instruction::Measure { flip_prob, .. } => flip_prob,
            _ => 0.0,
        })
        .sum()
}

/// Each boundary mode strips exactly its ideal end's fault sites: the
/// instruction stream, detector schedule, and decoder-graph node set
/// are identical across modes, but the total noise mass is strictly
/// ordered Full > Prep, Readout > MidCircuit > 0.
#[test]
fn boundary_modes_share_structure_and_order_noise_mass() {
    for setup in [
        Setup::Baseline,
        Setup::NaturalInterleaved,
        Setup::CompactInterleaved,
    ] {
        let get = |b: Boundary| prepared(setup, 3, 3, 2e-3, b);
        let (full, prep, readout, mid) = (
            get(Boundary::Full),
            get(Boundary::Prep),
            get(Boundary::Readout),
            get(Boundary::MidCircuit),
        );
        // Same ideal structure: detectors and graph nodes don't move.
        for b in [&prep, &readout, &mid] {
            assert_eq!(
                b.memory.circuit.detectors.len(),
                full.memory.circuit.detectors.len()
            );
            assert_eq!(b.graph.num_nodes(), full.graph.num_nodes(), "{setup}");
        }
        // Strictly ordered noise mass.
        let (mf, mp, mr, mm) = (
            noise_mass(&full),
            noise_mass(&prep),
            noise_mass(&readout),
            noise_mass(&mid),
        );
        // Readout always carries measurement noise, so stripping it is
        // strict; the prep section can be noiseless (baseline-Z prep is
        // bare resets with p_reset = 0), so those comparisons are >=.
        assert!(mf > mp, "{setup}: full {mf} !> prep {mp}");
        assert!(
            mf >= mr && mr > mm,
            "{setup}: full {mf} >= readout {mr} > mid {mm} violated"
        );
        assert!(mp >= mm, "{setup}: prep {mp} !>= mid {mm}");
        assert!(mf > mm, "{setup}: full {mf} !> mid {mm}");
        assert!(mm > 0.0, "{setup}: mid-circuit body must still be noisy");
        // No fault escapes the decoder in any mode (ideal boundaries
        // keep every remaining fault detectable).
        for boundary in Boundary::ALL {
            assert_eq!(
                get(boundary).graph.undetectable_logical_mass,
                0.0,
                "{setup} {boundary}: undetectable logical faults"
            );
        }
    }
}

/// The redesign's acceptance property: the *per-round* mid-circuit
/// logical error rate sits strictly below the full memory-experiment
/// rate at the same `(d, p)` — short exposures no longer pay the
/// prep/readout boundary tax.
#[test]
fn per_round_mid_circuit_rate_is_below_full_experiment_rate() {
    let shots = 20_000u64;
    for (setup, k, p) in [
        (Setup::Baseline, 1usize, 3e-3),
        (Setup::NaturalInterleaved, 3, 3e-3),
    ] {
        let full = prepared(setup, 3, k, p, Boundary::Full).run_shots(shots, 2020);
        let mid = prepared(setup, 3, k, p, Boundary::MidCircuit).run_shots(shots, 2020);
        let full_rate = full as f64 / shots as f64;
        let per_round_mid = (mid as f64 / shots as f64) / 3.0;
        assert!(
            per_round_mid < full_rate,
            "{setup}: per-round mid {per_round_mid:.4e} !< full {full_rate:.4e}"
        );
        // The whole-block rate is below the full experiment too (same
        // rounds, strictly less noise).
        assert!(mid < full, "{setup}: mid block {mid} !< full {full}");
    }
}

/// Mid-circuit per-round rates keep the fundamental QEC property at
/// the paper's operating point: deeper codes are better, p = 1e-3.
#[test]
fn per_round_mid_circuit_rate_decreases_with_distance() {
    let shots = 60_000u64;
    let p = 1e-3;
    let rate = |d: usize| {
        let failures = prepared(Setup::Baseline, d, 1, p, Boundary::MidCircuit).run_shots(shots, 7);
        (failures as f64 / shots as f64) / d as f64
    };
    let (r3, r5) = (rate(3), rate(5));
    assert!(
        r3 > r5,
        "per-round mid-circuit rate must fall with d: d3 {r3:.4e} !> d5 {r5:.4e}"
    );
}
