//! Threshold demonstration: scans the physical error rate for two code
//! distances on the baseline and the Compact-Interleaved setups and
//! prints where the curves cross (a fast, small-scale Figure 11).
//!
//! Run: `cargo run --release --example threshold_demo`

use vlq::qec::{estimate_threshold, threshold_scan, DecoderKind};
use vlq::surface::schedule::{Basis, Setup};

fn main() {
    let distances = [3usize, 5];
    let rates = [4e-3, 6e-3, 9e-3, 1.3e-2, 1.8e-2];
    let trials = 8_000;

    for setup in [Setup::Baseline, Setup::CompactInterleaved] {
        println!("== {setup} ==");
        let scan = threshold_scan(
            setup,
            Basis::Z,
            &distances,
            &rates,
            10,
            trials,
            42,
            DecoderKind::Mwpm,
        );
        print!("{:>9}", "p");
        for &d in &distances {
            print!("   d={d}: LER");
        }
        println!();
        for (i, &p) in rates.iter().enumerate() {
            print!("{p:>9.1e}");
            for &d in &distances {
                print!("   {:>9.2e}", scan.curve(d)[i]);
            }
            println!();
        }
        match estimate_threshold(&scan) {
            Some(t) => println!("threshold estimate: {t:.2e} (paper: ~8e-3 to 9e-3)\n"),
            None => println!("no crossing found in range\n"),
        }
    }
}
