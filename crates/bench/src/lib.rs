//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one artifact of the paper's
//! evaluation (see DESIGN.md's experiment index). They print aligned
//! text tables to stdout so results can be diffed against
//! EXPERIMENTS.md, and with `--out <dir>` additionally write
//! machine-readable CSV/JSON-lines artifacts (via `vlq-sweep`) so
//! future PRs can regression-diff evaluation numbers.

/// Tiny argument parser: `--key value` pairs and `--flag`s.
#[derive(Debug, Default)]
pub struct Args {
    pairs: std::collections::HashMap<String, String>,
    flags: std::collections::HashSet<String>,
}

impl Args {
    /// Parses `std::env::args` permissively (unknown keys are kept,
    /// nothing exits). Prefer [`Args::parse_validated`] in binaries.
    pub fn parse() -> Self {
        let mut pairs = std::collections::HashMap::new();
        let mut flags = std::collections::HashSet::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.insert(key.to_string(), argv[i + 1].clone());
                    i += 2;
                } else {
                    flags.insert(key.to_string());
                    i += 1;
                }
            } else {
                i += 1;
            }
        }
        Args { pairs, flags }
    }

    /// Parses `std::env::args` strictly: `keys` name the flags that take
    /// a value, `flags` the boolean ones. Unknown flags, missing values,
    /// and stray positional arguments print `usage` to stderr and exit
    /// with status 2.
    pub fn parse_validated(usage: &str, keys: &[&str], flags: &[&str]) -> Self {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let (args, positionals) = Self::parse_argv(&argv, usage, keys, flags, false);
        debug_assert!(positionals.is_empty());
        args
    }

    /// [`Args::parse_validated`] for binaries that also take positional
    /// arguments (`sweep-merge`'s shard directories); returns them in
    /// order alongside the parsed flags.
    pub fn parse_validated_positional(
        usage: &str,
        keys: &[&str],
        flags: &[&str],
    ) -> (Self, Vec<String>) {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        Self::parse_argv(&argv, usage, keys, flags, true)
    }

    /// [`Args::parse_validated`] for binaries that forward a verbatim
    /// tail to a child process (`sweep-launch`): everything after the
    /// first bare `--` separator is returned unparsed, everything
    /// before it is validated as usual.
    pub fn parse_validated_passthrough(
        usage: &str,
        keys: &[&str],
        flags: &[&str],
    ) -> (Self, Vec<String>) {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let (head, tail) = match argv.iter().position(|a| a == "--") {
            Some(sep) => (&argv[..sep], argv[sep + 1..].to_vec()),
            None => (&argv[..], Vec::new()),
        };
        let (args, positionals) = Self::parse_argv(head, usage, keys, flags, false);
        debug_assert!(positionals.is_empty());
        (args, tail)
    }

    fn parse_argv(
        argv: &[String],
        usage: &str,
        keys: &[&str],
        flags: &[&str],
        allow_positional: bool,
    ) -> (Self, Vec<String>) {
        let mut out = Args::default();
        let mut positionals = Vec::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            let Some(key) = a.strip_prefix("--") else {
                if allow_positional {
                    positionals.push(a.clone());
                    i += 1;
                    continue;
                }
                usage_exit(usage, &format!("unexpected argument {a:?}"));
            };
            if flags.contains(&key) {
                out.flags.insert(key.to_string());
                i += 1;
            } else if keys.contains(&key) {
                // Values may be negative numbers ("-5") but never
                // another option ("--x").
                match argv.get(i + 1) {
                    Some(v) if !v.starts_with("--") => {
                        out.pairs.insert(key.to_string(), v.clone());
                        i += 2;
                    }
                    _ => usage_exit(usage, &format!("--{key} requires a value")),
                }
            } else {
                usage_exit(usage, &format!("unknown flag --{key}"));
            }
        }
        (out, positionals)
    }

    /// Typed lookup with default. Silently falls back on parse failure;
    /// prefer [`Args::get_or_usage`] in binaries.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.pairs
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Typed lookup with default; an unparseable value prints `usage`
    /// and exits with status 2.
    pub fn get_or_usage<T: std::str::FromStr>(&self, usage: &str, key: &str, default: T) -> T {
        match self.pairs.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| usage_exit(usage, &format!("invalid value {v:?} for --{key}"))),
        }
    }

    /// Optional string lookup (no default).
    pub fn pairs_get(&self, key: &str) -> Option<String> {
        self.pairs.get(key).cloned()
    }

    /// String lookup.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.pairs
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// Flag presence.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains(key)
    }
}

/// Prints an error plus usage to stderr and exits with status 2 (the
/// figure binaries' contract for bad invocations).
pub fn usage_exit(usage: &str, error: &str) -> ! {
    eprintln!("error: {error}\n{usage}");
    std::process::exit(2);
}

/// Builds the sweep engine a Monte-Carlo binary should use from its
/// `--workers` / `--quiet` flags (shared by fig11 and fig12).
pub fn engine_from_args(args: &Args, usage: &str) -> vlq_sweep::SweepEngine {
    let mut engine = match args.pairs_get("workers") {
        Some(_) => {
            let workers: usize = args.get_or_usage(usage, "workers", 0);
            if workers == 0 {
                usage_exit(usage, "--workers must be >= 1");
            }
            vlq_sweep::SweepEngine::with_workers(workers)
        }
        None => vlq_sweep::SweepEngine::default(),
    };
    engine.progress = !args.has("quiet");
    engine
}

/// Resolves a `--<key> N|auto` count flag: `None` when absent,
/// `available_parallelism` for `auto` (with a stderr note recording the
/// resolved value — provenance for runs sharing artifacts), the number
/// otherwise. Exits 2 (usage) on `0` or a non-numeric non-`auto` value.
pub fn count_from_args(args: &Args, usage: &str, key: &str) -> Option<usize> {
    let raw = args.pairs_get(key)?;
    let n = if raw == "auto" {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        eprintln!("note: --{key} auto resolved to {n}");
        n
    } else {
        raw.parse()
            .unwrap_or_else(|_| usage_exit(usage, &format!("invalid value {raw:?} for --{key}")))
    };
    if n == 0 {
        usage_exit(usage, &format!("--{key} must be >= 1"));
    }
    Some(n)
}

/// Parses the `--threads N|auto` flag into an in-block worker policy
/// ([`vlq_qec::Parallelism`]): absent or `1` means serial; `N >= 2`
/// attaches a shared sample pool spreading each chunk's 1024-lane
/// batches across `N` workers; `auto` resolves via
/// `std::thread::available_parallelism` (the resolved value is noted on
/// stderr). Results and deterministic telemetry are bit-identical
/// either way, so `--threads` composes freely with `--workers`,
/// `--shard`, and `--resume`. Exits 2 (usage) on `--threads 0` or a
/// non-numeric value other than `auto`.
pub fn threads_from_args(args: &Args, usage: &str) -> vlq_qec::Parallelism {
    match count_from_args(args, usage, "threads") {
        Some(threads) => vlq_qec::Parallelism::threads(threads),
        None => vlq_qec::Parallelism::serial(),
    }
}

/// Parses the `--telemetry PATH` flag: an attached recorder (plus the
/// sidecar path) when given, a disabled recorder otherwise. Pair with
/// [`finish_telemetry`] after the run.
pub fn telemetry_from_args(args: &Args) -> (vlq_telemetry::Recorder, Option<std::path::PathBuf>) {
    match args.pairs_get("telemetry") {
        Some(path) => (
            vlq_telemetry::Recorder::attached(),
            Some(std::path::PathBuf::from(path)),
        ),
        None => (vlq_telemetry::Recorder::disabled(), None),
    }
}

/// Writes the deterministic telemetry JSONL sidecar and prints the
/// human-readable summary (which includes the runtime-class metrics) to
/// stderr. No-op when `--telemetry` was absent.
///
/// The sidecar holds only deterministic-class metrics, so for a fixed
/// seed it is byte-identical across `--workers` counts — CI pins this.
pub fn finish_telemetry(
    recorder: &vlq_telemetry::Recorder,
    path: Option<&std::path::Path>,
    bin: &str,
    seed: u64,
) {
    let Some(path) = path else { return };
    std::fs::write(path, recorder.deterministic_jsonl(bin, seed))
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    eprint!("{}", recorder.summary());
    eprintln!("note: telemetry sidecar written to {}", path.display());
}

/// Parses the `--shard i/N` flag of a sweep-backed binary (default: the
/// full `0/1` shard). An unparsable or out-of-range spec prints `usage`
/// and exits with status 2.
pub fn shard_from_args(args: &Args, usage: &str) -> vlq_sweep::ShardSpec {
    match args.pairs_get("shard") {
        None => vlq_sweep::ShardSpec::FULL,
        Some(s) => s
            .parse()
            .unwrap_or_else(|e| usage_exit(usage, &format!("--shard: {e}"))),
    }
}

/// Loads the `--resume` cache of a sweep-backed binary: completed grid
/// points from a previous run's `<out>/<stem>.jsonl` artifact.
///
/// Must be called *before* [`OutSinks::from_args`], which truncates the
/// artifact files. Returns an empty cache when `--resume` is absent;
/// exits with usage status 2 when `--resume` is given without `--out`.
/// A missing artifact (nothing to resume from) is fine — the run is
/// simply a full one. A *damaged* artifact (truncated or garbled rows)
/// or one sampled under a different base seed than `expected_seed` is
/// a typed [`vlq_sweep::ArtifactError`]: the binary reports it and
/// exits 2 rather than silently resampling or splicing seeds.
pub fn resume_cache_from_args(
    args: &Args,
    usage: &str,
    stem: &str,
    expected_seed: u64,
) -> vlq_sweep::ResumeCache {
    if !args.has("resume") {
        return vlq_sweep::ResumeCache::new();
    }
    let Some(dir) = args.pairs_get("out") else {
        usage_exit(
            usage,
            "--resume requires --out (the artifact to resume from)",
        );
    };
    let path = std::path::Path::new(&dir).join(format!("{stem}.jsonl"));
    if !path.exists() {
        eprintln!(
            "note: resume: no {} yet, running the full sweep",
            path.display()
        );
        return vlq_sweep::ResumeCache::new();
    }
    match vlq_sweep::ResumeCache::load_jsonl_expecting(&path, expected_seed) {
        Ok(cache) => {
            eprintln!(
                "note: resume: loaded {} completed point(s) from {}",
                cache.len(),
                path.display()
            );
            cache
        }
        Err(e) => {
            eprintln!("error: --resume rejected: {e}");
            eprintln!("note: rerun without --resume to regenerate the artifact");
            std::process::exit(2);
        }
    }
}

/// How many of the points a sharded run owns the resume cache
/// satisfies (`opts` carries the shard, the plan, and the global
/// numbering offset, exactly as passed to the engine).
pub fn resumed_points(
    spec: &vlq_sweep::SweepSpec,
    cache: &vlq_sweep::ResumeCache,
    opts: &vlq_sweep::RunOptions,
) -> usize {
    if cache.is_empty() {
        return 0;
    }
    spec.expand()
        .iter()
        .enumerate()
        .filter(|(i, _)| opts.owns(opts.index_offset + i))
        .filter(|(_, pt)| cache.failures_for(pt, spec.base_seed).is_some())
        .count()
}

/// Parses the `--plan PATH` flag of a sweep-backed binary: an explicit
/// [`vlq_sweep::ShardPlan`] (written by `sweep-launch --shard-by time`)
/// overriding the default stride sharding. The plan file is
/// self-checking (schema tag + fingerprint); a malformed plan, or one
/// whose shard count disagrees with `--shard i/N`, prints `usage` and
/// exits 2. Returns `None` when the flag is absent.
pub fn plan_from_args(
    args: &Args,
    usage: &str,
    shard: vlq_sweep::ShardSpec,
) -> Option<vlq_sweep::ShardPlan> {
    let path = args.pairs_get("plan")?;
    let plan = vlq_sweep::ShardPlan::load(std::path::Path::new(&path))
        .unwrap_or_else(|e| usage_exit(usage, &format!("--plan: {e}")));
    if plan.count() != shard.count {
        usage_exit(
            usage,
            &format!(
                "--plan has {} shards but --shard says {}/{}",
                plan.count(),
                shard.index,
                shard.count
            ),
        );
    }
    Some(plan)
}

/// The optional `--out` CSV + JSON-lines sink pair of a Monte-Carlo
/// binary (shared by fig11 and fig12), plus the optional `--times`
/// wall-time sink feeding the `--shard-by time` cost model.
pub struct OutSinks {
    /// The `--out` directory, if given.
    pub dir: Option<std::path::PathBuf>,
    stem: String,
    csv: Option<vlq_sweep::CsvSink<std::io::LineWriter<std::fs::File>>>,
    jsonl: Option<vlq_sweep::JsonlSink<std::io::LineWriter<std::fs::File>>>,
    times: Option<vlq_sweep::TimesSink<std::io::LineWriter<std::fs::File>>>,
}

impl OutSinks {
    /// Creates `<stem>.csv` / `<stem>.jsonl` sinks under the `--out`
    /// directory (inert when the flag is absent) and a
    /// [`vlq_sweep::TimesSink`] at the `--times` path when given.
    pub fn from_args(args: &Args, stem: &str) -> OutSinks {
        let dir = args.pairs_get("out").map(std::path::PathBuf::from);
        let (csv, jsonl) = match &dir {
            Some(d) => (
                Some(
                    vlq_sweep::CsvSink::create(&d.join(format!("{stem}.csv")))
                        .unwrap_or_else(|e| panic!("create {stem}.csv: {e}")),
                ),
                Some(
                    vlq_sweep::JsonlSink::create(&d.join(format!("{stem}.jsonl")))
                        .unwrap_or_else(|e| panic!("create {stem}.jsonl: {e}")),
                ),
            ),
            None => (None, None),
        };
        let times = args.pairs_get("times").map(|p| {
            vlq_sweep::TimesSink::create(std::path::Path::new(&p))
                .unwrap_or_else(|e| panic!("create {p}: {e}"))
        });
        OutSinks {
            dir,
            stem: stem.to_string(),
            csv,
            jsonl,
            times,
        }
    }

    /// The sink list to hand to the engine (empty when `--out` absent).
    pub fn as_dyn(&mut self) -> Vec<&mut dyn vlq_sweep::RecordSink> {
        let mut sinks: Vec<&mut dyn vlq_sweep::RecordSink> = Vec::new();
        if let Some(s) = self.csv.as_mut() {
            sinks.push(s);
        }
        if let Some(s) = self.jsonl.as_mut() {
            sinks.push(s);
        }
        if let Some(s) = self.times.as_mut() {
            sinks.push(s);
        }
        sinks
    }

    /// Writes the `<stem>.meta.json` sidecar recording the sweep's
    /// identity (seed, spec fingerprint, full point count, shard) so
    /// `sweep-merge` can validate shard compatibility. No-op without
    /// `--out`.
    pub fn write_meta(&self, meta: &vlq_sweep::SweepMeta) {
        if let Some(dir) = &self.dir {
            meta.write(dir, &self.stem)
                .unwrap_or_else(|e| panic!("write {}.meta.json: {e}", self.stem));
        }
    }

    /// Prints the artifact paths (call once, after the sweep).
    pub fn announce(&self) {
        if let Some(dir) = &self.dir {
            println!(
                "\nartifacts: {} and {}",
                dir.join(format!("{}.csv", self.stem)).display(),
                dir.join(format!("{}.jsonl", self.stem)).display()
            );
        }
    }
}

/// Accumulates the `.meta.json` identity of a sweep binary's artifact
/// across the (one or more) specs it streams into it: fig11 absorbs a
/// single spec, fig12 one per panel. The fingerprint chain and point
/// total are over the *full* grids, so every shard of the same
/// invocation writes the same identity.
#[derive(Clone, Copy, Debug)]
pub struct MetaBuilder {
    seed: u64,
    shard: vlq_sweep::ShardSpec,
    fingerprint: u64,
    points: u64,
    plan: Option<u64>,
}

impl MetaBuilder {
    /// A builder for a run under `seed` executing `shard`.
    pub fn new(seed: u64, shard: vlq_sweep::ShardSpec) -> Self {
        MetaBuilder {
            seed,
            shard,
            fingerprint: 0,
            points: 0,
            plan: None,
        }
    }

    /// Records the explicit shard plan's fingerprint (`--plan`), so
    /// `sweep-merge` validates the disjoint cover instead of the
    /// default stride layout. Stride plans have no fingerprint and
    /// leave the sidecar unchanged.
    pub fn with_plan(mut self, plan: Option<&vlq_sweep::ShardPlan>) -> Self {
        self.plan = plan.and_then(vlq_sweep::ShardPlan::fingerprint);
        self
    }

    /// Folds one spec's full grid into the artifact identity.
    pub fn absorb(&mut self, spec: &vlq_sweep::SweepSpec) {
        self.fingerprint = vlq_sweep::combine_fingerprints(self.fingerprint, spec.fingerprint());
        self.points += spec.len() as u64;
    }

    /// The finished sidecar value.
    pub fn build(&self) -> vlq_sweep::SweepMeta {
        vlq_sweep::SweepMeta {
            seed: self.seed,
            spec_fingerprint: self.fingerprint,
            points: self.points,
            shard: self.shard,
            plan: self.plan,
        }
    }
}

/// Parses a comma-separated list of floats (for `--rates`-style flags).
pub fn parse_f64_list(s: &str) -> Option<Vec<f64>> {
    let vals: Result<Vec<f64>, _> = s.split(',').map(|t| t.trim().parse()).collect();
    vals.ok().filter(|v| !v.is_empty())
}

/// Formats a probability in compact scientific notation.
pub fn sci(p: f64) -> String {
    if p == 0.0 {
        "0".to_string()
    } else {
        format!("{p:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.0123), "1.23e-2");
    }

    #[test]
    fn validated_parse_accepts_known_keys_and_flags() {
        let (a, pos) = Args::parse_argv(
            &argv(&["--trials", "100", "--quiet", "--seed", "-5"]),
            "usage",
            &["trials", "seed"],
            &["quiet"],
            false,
        );
        assert_eq!(a.get::<u64>("trials", 0), 100);
        assert_eq!(a.get_str("seed", ""), "-5");
        assert!(a.has("quiet"));
        assert!(pos.is_empty());
    }

    #[test]
    fn positional_parse_collects_in_order() {
        let (a, pos) = Args::parse_argv(
            &argv(&["shard0", "--stem", "fig11", "shard1", "shard2"]),
            "usage",
            &["stem"],
            &[],
            true,
        );
        assert_eq!(a.get_str("stem", ""), "fig11");
        assert_eq!(pos, vec!["shard0", "shard1", "shard2"]);
    }

    #[test]
    fn f64_list_parses() {
        assert_eq!(parse_f64_list("1e-3, 2e-3"), Some(vec![1e-3, 2e-3]));
        assert_eq!(parse_f64_list("1e-3,x"), None);
        assert_eq!(parse_f64_list(""), None);
    }
}
