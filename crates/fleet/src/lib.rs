//! Self-driving shard-fleet supervision for the sweep binaries.
//!
//! A fleet run takes one sweep invocation (any of the figure binaries'
//! flag surfaces) and drives it as `N` shard *processes*: the
//! supervisor spawns each child with `--out <fleet>/shard<i>
//! --shard i/N --resume --quiet` appended after the user's own flags
//! (the flag parser's later-wins rule makes these authoritative), polls
//! the children's JSONL artifacts for liveness, restarts dead or
//! stalled shards from their salvaged resume caches with capped
//! exponential backoff, and finally recombines the shard artifacts with
//! [`vlq_sweep::merge_artifacts_with_plan`] — so a fleet run's merged
//! CSV/JSONL/`.meta.json` are byte-identical to a single-process run's,
//! *including* after a mid-run crash.
//!
//! Crash recovery leans entirely on guarantees the sweep stack already
//! makes: per-point seeding is position-independent (a restarted shard
//! re-derives identical bytes), the JSONL artifact doubles as the
//! resume cache, and the sinks are line-buffered (a killed process
//! leaves at most one torn line, which [`vlq_sweep::salvage_jsonl`]
//! truncates away before the restart resumes).
//!
//! Everything schedule-dependent (restart counts, backoff waits, poll
//! counts, per-shard walls) is recorded as `fleet.*` *runtime* metrics
//! on a [`vlq_telemetry::Recorder`] — stderr-summary only, never in
//! deterministic sidecars, so telemetry artifacts stay byte-stable
//! across `--procs` values on clean runs.

use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use vlq_sweep::{merge_artifacts, merge_artifacts_with_plan, salvage_jsonl, MergeError, ShardPlan};
use vlq_telemetry::{merge_deterministic_jsonl, Metric, Recorder, SidecarMergeError};

/// Schema tag of the `<stem>.fleet.json` provenance sidecar.
pub const FLEET_SCHEMA: &str = "vlq-fleet/v1";

/// What to launch: one sweep invocation, fanned out over `procs`
/// shard processes.
#[derive(Clone, Debug)]
pub struct FleetSpec {
    /// Child executable to spawn.
    pub bin: PathBuf,
    /// The child's short name (`fig11`, ...) for provenance sidecars.
    pub bin_name: String,
    /// Artifact stem the child writes under `--out` (`fig11`,
    /// `prog1-full`, ...).
    pub stem: String,
    /// Fleet output directory: shard `i` runs in `<out>/shard<i>`, and
    /// the merged artifacts land in `<out>` itself.
    pub out: PathBuf,
    /// Number of shard processes.
    pub procs: usize,
    /// The user's own child flags, passed through *before* the
    /// supervisor's authoritative `--out/--shard/--resume/--quiet`.
    pub passthrough: Vec<String>,
    /// Cost-balanced shard plan (file the children read via `--plan`,
    /// plus the parsed plan the merge validates against). `None` is the
    /// default `index % N` stride.
    pub plan: Option<(PathBuf, ShardPlan)>,
    /// How the plan was chosen (`stride` or `time`), for the sidecar.
    pub shard_by: String,
    /// Collect per-shard deterministic telemetry sidecars and merge
    /// them into `<out>/<stem>.telemetry.jsonl`. The merged sidecar is
    /// byte-identical to a single-process run's only for *clean* runs:
    /// a killed child's unflushed metrics are lost, and its resumed
    /// points never re-run.
    pub telemetry: bool,
    /// Additional stride-sharded table stems to merge (`tenants1`
    /// also writes `tenants1-report`). Always merged by stride: generic
    /// tables do not carry plan sidecars.
    pub extra_stems: Vec<String>,
}

/// Supervision policy: polling cadence, stall detection, restart
/// budget, and backoff shape.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Artifact-poll interval.
    pub poll: Duration,
    /// A live child whose JSONL has not grown for this long is killed
    /// and restarted (counts against `max_restarts`).
    pub stall: Duration,
    /// Restarts allowed *per shard* before the fleet gives up.
    pub max_restarts: u32,
    /// First-restart backoff; doubles per restart of the same shard.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Fault-injection hook: kill one shard once its JSONL reaches a
    /// line count (exercises the recovery path deterministically).
    pub chaos_kill: Option<ChaosKill>,
    /// Suppress the supervisor's stderr `note:` lines.
    pub quiet: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            poll: Duration::from_millis(50),
            stall: Duration::from_secs(300),
            max_restarts: 3,
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(10),
            chaos_kill: None,
            quiet: false,
        }
    }
}

/// One-shot fault injection: kill shard `shard` once its JSONL artifact
/// holds at least `lines` complete lines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaosKill {
    /// Shard index to kill.
    pub shard: usize,
    /// Line-count trigger.
    pub lines: usize,
}

impl ChaosKill {
    /// Parses the `--chaos-kill I@LINES` flag form.
    pub fn parse(s: &str) -> Option<ChaosKill> {
        let (shard, lines) = s.split_once('@')?;
        Some(ChaosKill {
            shard: shard.trim().parse().ok()?,
            lines: lines.trim().parse().ok()?,
        })
    }
}

/// Everything a fleet run can fail on, typed so `sweep-launch` prints
/// exactly one contract violation.
#[derive(Debug)]
pub enum FleetError {
    /// Filesystem failure at a path.
    Io(PathBuf, io::Error),
    /// A shard process could not be spawned at all.
    Spawn {
        /// Shard index.
        shard: usize,
        /// The spawn failure.
        err: io::Error,
    },
    /// A shard kept failing past its restart budget.
    ShardFailed {
        /// Shard index.
        shard: usize,
        /// Restarts consumed before giving up.
        restarts: u32,
        /// The last exit status, rendered.
        status: String,
    },
    /// The shard artifacts did not recombine.
    Merge(MergeError),
    /// The per-shard telemetry sidecars did not merge.
    Telemetry(SidecarMergeError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            FleetError::Spawn { shard, err } => write!(f, "spawn shard {shard}: {err}"),
            FleetError::ShardFailed {
                shard,
                restarts,
                status,
            } => write!(
                f,
                "shard {shard} failed after {restarts} restart(s) (last status: {status})"
            ),
            FleetError::Merge(e) => write!(f, "merge: {e}"),
            FleetError::Telemetry(e) => write!(f, "telemetry merge: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<MergeError> for FleetError {
    fn from(e: MergeError) -> Self {
        FleetError::Merge(e)
    }
}

/// What a completed fleet run did.
#[derive(Clone, Debug)]
pub struct FleetReport {
    /// Shard processes supervised.
    pub procs: usize,
    /// Total restarts across all shards.
    pub restarts: u32,
    /// Stall-triggered kills (subset of `restarts`).
    pub stalls: u32,
    /// Data rows in the merged artifact.
    pub rows: usize,
    /// Fingerprint of the shard plan, when one was used.
    pub plan: Option<u64>,
}

/// The working directory of shard `index` under a fleet `out` dir.
pub fn shard_dir(out: &Path, index: usize) -> PathBuf {
    out.join(format!("shard{index}"))
}

/// The full child argv for shard `index`: the user's passthrough flags
/// first, then the supervisor's authoritative overrides (the parser's
/// later-wins rule means a user `--out`/`--shard` cannot escape the
/// fleet layout).
pub fn child_args(spec: &FleetSpec, index: usize) -> Vec<String> {
    let dir = shard_dir(&spec.out, index);
    let mut argv = spec.passthrough.clone();
    argv.extend([
        "--out".to_string(),
        dir.display().to_string(),
        "--shard".to_string(),
        format!("{index}/{}", spec.procs),
        "--resume".to_string(),
        "--quiet".to_string(),
    ]);
    if let Some((path, _)) = &spec.plan {
        argv.extend(["--plan".to_string(), path.display().to_string()]);
    }
    if spec.telemetry {
        argv.extend([
            "--telemetry".to_string(),
            dir.join(format!("{}.telemetry.jsonl", spec.stem))
                .display()
                .to_string(),
        ]);
    }
    argv
}

/// Minimal single-quote shell quoting for `--emit-cmds` output.
fn shell_quote(arg: &str) -> String {
    let plain = !arg.is_empty()
        && arg
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || "_-./,=@%+:".contains(c));
    if plain {
        arg.to_string()
    } else {
        format!("'{}'", arg.replace('\'', "'\\''"))
    }
}

/// The shell command lines `supervise` would run, one per shard — the
/// `--emit-cmds` escape hatch for running shards on machines the
/// supervisor cannot reach (recombine with `sweep-merge`).
pub fn render_commands(spec: &FleetSpec) -> Vec<String> {
    (0..spec.procs)
        .map(|i| {
            let mut parts = vec![shell_quote(&spec.bin.display().to_string())];
            parts.extend(child_args(spec, i).iter().map(|a| shell_quote(a)));
            parts.join(" ")
        })
        .collect()
}

/// The deterministic `<stem>.fleet.json` provenance sidecar: how the
/// run was fanned out (schema, binary, stem, process count, sharding
/// mode, plan fingerprint). Contains no wall-clock state, so reruns of
/// the same launch write identical bytes.
pub fn fleet_sidecar(spec: &FleetSpec) -> String {
    let plan = spec
        .plan
        .as_ref()
        .and_then(|(_, p)| p.fingerprint())
        .map_or("null".to_string(), |fp| format!("\"{fp:016x}\""));
    format!(
        "{{\"schema\": \"{FLEET_SCHEMA}\", \"bin\": \"{}\", \"stem\": \"{}\", \"procs\": {}, \
         \"shard_by\": \"{}\", \"plan\": {plan}}}\n",
        spec.bin_name, spec.stem, spec.procs, spec.shard_by
    )
}

/// Resolves a sibling binary of the current executable (the fleet
/// launcher and the figure binaries install into one directory).
pub fn sibling_binary(name: &str) -> io::Result<PathBuf> {
    let exe = std::env::current_exe()?;
    let dir = exe.parent().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "executable has no parent directory",
        )
    })?;
    let path = dir.join(name);
    if path.is_file() {
        Ok(path)
    } else {
        Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{name} not found next to {}", exe.display()),
        ))
    }
}

/// Backoff before restart number `n` (1-based) of one shard:
/// `base * 2^(n-1)`, capped.
fn backoff_delay(config: &FleetConfig, n: u32) -> Duration {
    let exp = config
        .backoff_base
        .saturating_mul(1u32.checked_shl(n.saturating_sub(1)).unwrap_or(u32::MAX));
    exp.min(config.backoff_cap)
}

/// Complete (newline-terminated) lines currently in a file; 0 when the
/// file does not exist yet. This is the liveness signal: the sinks are
/// line-buffered, so a healthy shard's count grows point by point.
fn count_lines(path: &Path) -> usize {
    match std::fs::read(path) {
        Ok(bytes) => bytes.iter().filter(|&&b| b == b'\n').count(),
        Err(_) => 0,
    }
}

/// Per-shard supervision state.
struct Proc {
    dir: PathBuf,
    jsonl: PathBuf,
    child: Option<Child>,
    restarts: u32,
    lines: usize,
    last_progress: Instant,
    started: Instant,
    backoff_until: Option<Instant>,
    done: bool,
}

/// Runs the fleet to completion: spawn every shard, poll, restart on
/// crash or stall, then merge the shard artifacts (and telemetry
/// sidecars, when collected) into `spec.out` and write the
/// `<stem>.fleet.json` provenance sidecar. All scheduling observations
/// land on `recorder` as runtime-class `fleet.*` metrics.
pub fn supervise(
    spec: &FleetSpec,
    config: &FleetConfig,
    recorder: &Recorder,
) -> Result<FleetReport, FleetError> {
    assert!(spec.procs >= 1, "a fleet needs at least one shard");
    std::fs::create_dir_all(&spec.out).map_err(|e| FleetError::Io(spec.out.clone(), e))?;
    recorder.gauge_max(Metric::FleetProcs, spec.procs as u64);

    let mut procs: Vec<Proc> = (0..spec.procs)
        .map(|i| {
            let dir = shard_dir(&spec.out, i);
            std::fs::create_dir_all(&dir).map_err(|e| FleetError::Io(dir.clone(), e))?;
            let jsonl = dir.join(format!("{}.jsonl", spec.stem));
            let now = Instant::now();
            Ok(Proc {
                dir,
                jsonl,
                child: None,
                restarts: 0,
                lines: 0,
                last_progress: now,
                started: now,
                backoff_until: None,
                done: false,
            })
        })
        .collect::<Result<_, FleetError>>()?;

    let mut stalls = 0u32;
    let mut chaos_armed = config.chaos_kill;
    let result = run_loop(
        spec,
        config,
        recorder,
        &mut procs,
        &mut stalls,
        &mut chaos_armed,
    );
    if result.is_err() {
        for p in &mut procs {
            if let Some(child) = &mut p.child {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
    result?;

    let dirs: Vec<PathBuf> = procs.iter().map(|p| p.dir.clone()).collect();
    let merged = match &spec.plan {
        Some((_, plan)) => merge_artifacts_with_plan(&dirs, &spec.stem, &spec.out, Some(plan))?,
        None => merge_artifacts(&dirs, &spec.stem, &spec.out)?,
    };
    for stem in &spec.extra_stems {
        merge_artifacts(&dirs, stem, &spec.out)?;
    }
    if spec.telemetry {
        let name = format!("{}.telemetry.jsonl", spec.stem);
        let docs: Vec<String> = dirs
            .iter()
            .map(|d| {
                let path = d.join(&name);
                std::fs::read_to_string(&path).map_err(|e| FleetError::Io(path, e))
            })
            .collect::<Result<_, FleetError>>()?;
        let doc_refs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let merged_doc = merge_deterministic_jsonl(&doc_refs).map_err(FleetError::Telemetry)?;
        let path = spec.out.join(&name);
        std::fs::write(&path, merged_doc).map_err(|e| FleetError::Io(path, e))?;
    }
    let sidecar_path = spec.out.join(format!("{}.fleet.json", spec.stem));
    std::fs::write(&sidecar_path, fleet_sidecar(spec))
        .map_err(|e| FleetError::Io(sidecar_path, e))?;

    Ok(FleetReport {
        procs: spec.procs,
        restarts: procs.iter().map(|p| p.restarts).sum(),
        stalls,
        rows: merged.rows,
        plan: spec.plan.as_ref().and_then(|(_, p)| p.fingerprint()),
    })
}

/// The poll loop: returns once every shard has exited successfully, or
/// with the first unrecoverable failure (children are reaped by the
/// caller on error).
fn run_loop(
    spec: &FleetSpec,
    config: &FleetConfig,
    recorder: &Recorder,
    procs: &mut [Proc],
    stalls: &mut u32,
    chaos_armed: &mut Option<ChaosKill>,
) -> Result<(), FleetError> {
    for i in 0..procs.len() {
        spawn_shard(spec, procs, i)?;
    }
    loop {
        if procs.iter().all(|p| p.done) {
            return Ok(());
        }
        recorder.incr(Metric::FleetPolls);
        let now = Instant::now();
        for i in 0..procs.len() {
            if procs[i].done {
                continue;
            }
            if let Some(until) = procs[i].backoff_until {
                if now < until {
                    continue;
                }
                procs[i].backoff_until = None;
                spawn_shard(spec, procs, i)?;
                continue;
            }
            let child = procs[i].child.as_mut().expect("active shard has a child");
            match child.try_wait() {
                Ok(Some(status)) if status.success() => {
                    procs[i].done = true;
                    procs[i].child = None;
                    let wall = procs[i].started.elapsed();
                    recorder.observe(Metric::FleetShardWallNanos, wall.as_nanos() as u64);
                    if !config.quiet {
                        eprintln!(
                            "note: fleet: shard {i}/{} done in {:.1}s ({} restart(s))",
                            spec.procs,
                            wall.as_secs_f64(),
                            procs[i].restarts
                        );
                    }
                }
                Ok(Some(status)) => {
                    procs[i].child = None;
                    restart_shard(spec, config, recorder, procs, i, &status.to_string())?;
                }
                Ok(None) => {
                    let lines = count_lines(&procs[i].jsonl);
                    if let Some(chaos) = *chaos_armed {
                        if chaos.shard == i && lines >= chaos.lines {
                            *chaos_armed = None;
                            if !config.quiet {
                                eprintln!("note: fleet: chaos-kill shard {i} at {lines} line(s)");
                            }
                            let _ = child.kill();
                            // The kill surfaces as a failed exit on the
                            // next poll and takes the restart path.
                        }
                    }
                    if lines > procs[i].lines {
                        procs[i].lines = lines;
                        procs[i].last_progress = now;
                    } else if now.duration_since(procs[i].last_progress) > config.stall {
                        *stalls += 1;
                        recorder.incr(Metric::FleetStalls);
                        let child = procs[i].child.as_mut().expect("stalled shard has a child");
                        let _ = child.kill();
                        let _ = child.wait();
                        procs[i].child = None;
                        restart_shard(spec, config, recorder, procs, i, "stalled")?;
                    }
                }
                Err(e) => {
                    return Err(FleetError::Spawn { shard: i, err: e });
                }
            }
        }
        std::thread::sleep(config.poll);
    }
}

fn spawn_shard(spec: &FleetSpec, procs: &mut [Proc], i: usize) -> Result<(), FleetError> {
    let child = Command::new(&spec.bin)
        .args(child_args(spec, i))
        .stdout(Stdio::null())
        .spawn()
        .map_err(|err| FleetError::Spawn { shard: i, err })?;
    let now = Instant::now();
    procs[i].child = Some(child);
    procs[i].lines = count_lines(&procs[i].jsonl);
    procs[i].last_progress = now;
    Ok(())
}

/// Salvages the dead shard's artifact and schedules its restart (or
/// gives up once the budget is spent).
fn restart_shard(
    spec: &FleetSpec,
    config: &FleetConfig,
    recorder: &Recorder,
    procs: &mut [Proc],
    i: usize,
    status: &str,
) -> Result<(), FleetError> {
    if procs[i].restarts >= config.max_restarts {
        return Err(FleetError::ShardFailed {
            shard: i,
            restarts: procs[i].restarts,
            status: status.to_string(),
        });
    }
    procs[i].restarts += 1;
    recorder.incr(Metric::FleetRestarts);
    // A killed writer leaves at most one torn trailing line; dropping it
    // makes the JSONL a valid resume cache again. A missing artifact
    // (killed before the first flush) is fine — the restart starts over.
    let salvage = match salvage_jsonl(&procs[i].jsonl) {
        Ok((kept, dropped)) => format!("salvaged {kept} row(s), dropped {dropped}"),
        Err(e) if e.kind() == io::ErrorKind::NotFound => "no artifact yet".to_string(),
        Err(e) => return Err(FleetError::Io(procs[i].jsonl.clone(), e)),
    };
    let delay = backoff_delay(config, procs[i].restarts);
    recorder.add(Metric::FleetBackoffNanos, delay.as_nanos() as u64);
    if !config.quiet {
        eprintln!(
            "note: fleet: shard {i}/{} {status}; restart {}/{} in {:.1}s ({salvage})",
            spec.procs,
            procs[i].restarts,
            config.max_restarts,
            delay.as_secs_f64()
        );
    }
    procs[i].backoff_until = Some(Instant::now() + delay);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_spec(out: &Path, procs: usize) -> FleetSpec {
        FleetSpec {
            bin: PathBuf::from("/bin/true"),
            bin_name: "unit".to_string(),
            stem: "unit".to_string(),
            out: out.to_path_buf(),
            procs,
            passthrough: vec!["--trials".to_string(), "10".to_string()],
            plan: None,
            shard_by: "stride".to_string(),
            telemetry: false,
            extra_stems: Vec::new(),
        }
    }

    #[test]
    fn chaos_kill_parses_the_flag_form() {
        assert_eq!(
            ChaosKill::parse("1@3"),
            Some(ChaosKill { shard: 1, lines: 3 })
        );
        assert_eq!(
            ChaosKill::parse("0@0"),
            Some(ChaosKill { shard: 0, lines: 0 })
        );
        for bad in ["", "1", "@", "1@", "@3", "x@3", "1@y", "1@3@5"] {
            assert_eq!(ChaosKill::parse(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let config = FleetConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(350),
            ..FleetConfig::default()
        };
        assert_eq!(backoff_delay(&config, 1), Duration::from_millis(100));
        assert_eq!(backoff_delay(&config, 2), Duration::from_millis(200));
        assert_eq!(backoff_delay(&config, 3), Duration::from_millis(350));
        assert_eq!(backoff_delay(&config, 30), Duration::from_millis(350));
        // Huge restart counts must not overflow the shift.
        assert_eq!(backoff_delay(&config, 200), Duration::from_millis(350));
    }

    #[test]
    fn child_args_append_authoritative_overrides() {
        let out = PathBuf::from("/tmp/fleet");
        let mut spec = test_spec(&out, 3);
        spec.telemetry = true;
        spec.plan = Some((out.join("unit.plan.json"), ShardPlan::stride(3)));
        let args = child_args(&spec, 1);
        // Passthrough first, supervisor flags after (later wins).
        assert_eq!(&args[..2], &["--trials".to_string(), "10".to_string()]);
        let shard_at = args.iter().position(|a| a == "--shard").unwrap();
        assert_eq!(args[shard_at + 1], "1/3");
        let out_at = args.iter().position(|a| a == "--out").unwrap();
        assert_eq!(args[out_at + 1], "/tmp/fleet/shard1");
        assert!(args.contains(&"--resume".to_string()));
        assert!(args.contains(&"--quiet".to_string()));
        let plan_at = args.iter().position(|a| a == "--plan").unwrap();
        assert_eq!(args[plan_at + 1], "/tmp/fleet/unit.plan.json");
        let tel_at = args.iter().position(|a| a == "--telemetry").unwrap();
        assert_eq!(args[tel_at + 1], "/tmp/fleet/shard1/unit.telemetry.jsonl");
    }

    #[test]
    fn rendered_commands_quote_only_what_needs_it() {
        let mut spec = test_spec(Path::new("/tmp/fleet"), 2);
        spec.passthrough = vec!["--rates".to_string(), "5e-3,1e-2".to_string()];
        let cmds = render_commands(&spec);
        assert_eq!(cmds.len(), 2);
        assert!(cmds[0].starts_with("/bin/true --rates 5e-3,1e-2 --out /tmp/fleet/shard0"));
        assert!(cmds[1].contains("--shard 1/2"));
        // A space forces quoting; an embedded quote is escaped.
        assert_eq!(shell_quote("a b"), "'a b'");
        assert_eq!(shell_quote("it's"), "'it'\\''s'");
    }

    #[test]
    fn fleet_sidecar_is_deterministic_provenance() {
        let mut spec = test_spec(Path::new("/tmp/fleet"), 4);
        assert_eq!(
            fleet_sidecar(&spec),
            "{\"schema\": \"vlq-fleet/v1\", \"bin\": \"unit\", \"stem\": \"unit\", \
             \"procs\": 4, \"shard_by\": \"stride\", \"plan\": null}\n"
        );
        let plan = ShardPlan::from_costs(2, &[3, 1, 2, 1]);
        let fp = plan.fingerprint().unwrap();
        spec.plan = Some((PathBuf::from("/tmp/fleet/unit.plan.json"), plan));
        spec.shard_by = "time".to_string();
        assert_eq!(
            fleet_sidecar(&spec),
            format!(
                "{{\"schema\": \"vlq-fleet/v1\", \"bin\": \"unit\", \"stem\": \"unit\", \
                 \"procs\": 4, \"shard_by\": \"time\", \"plan\": \"{fp:016x}\"}}\n"
            )
        );
    }

    #[test]
    fn count_lines_ignores_a_torn_tail() {
        let dir = std::env::temp_dir().join("vlq-fleet-count-lines");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.jsonl");
        assert_eq!(count_lines(&dir.join("missing.jsonl")), 0);
        std::fs::write(&path, "a\nb\n").unwrap();
        assert_eq!(count_lines(&path), 2);
        std::fs::write(&path, "a\nb\ntorn").unwrap();
        assert_eq!(count_lines(&path), 2);
    }
}
