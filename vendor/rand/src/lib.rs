//! Offline, dependency-free subset of the `rand` 0.9 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: [`RngCore`], [`SeedableRng`],
//! the extension trait [`Rng`] (`random`, `random_range`, `random_bool`),
//! and [`rngs::SmallRng`] backed by xoshiro256++ — the same generator family
//! the real `rand::rngs::SmallRng` uses on 64-bit targets. Deterministic
//! seeding via `seed_from_u64` matches the SplitMix64 expansion the real
//! crate uses, so seeded simulation results are stable across machines.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types producible uniformly at random from an RNG (`rng.random::<T>()`).
pub trait StandardUniform: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types usable as `random_range` endpoints.
pub trait UniformSampled: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSampled for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "random_range: empty range");
                let span = (high_excl as i128 - low as i128) as u128;
                // Debiased multiply-shift rejection (Lemire).
                let zone = u128::from(u64::MAX) + 1;
                let reject = (zone % span) as u64;
                loop {
                    let x = rng.next_u64();
                    let m = x as u128 * span;
                    if (m as u64) >= reject || reject == 0 {
                        return (low as i128 + (m >> 64) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
        low + f64::sample(rng) * (high_excl - low)
    }
}

/// Range shapes accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSampled> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = (*self.start(), *self.end());
                if high == <$t>::MAX {
                    // Avoid overflow of the exclusive bound: shift down.
                    if low == <$t>::MIN {
                        return <$t>::sample(rng);
                    }
                    return <$t>::sample_range(rng, low - 1, high) + 1;
                }
                <$t>::sample_range(rng, low, high + 1)
            }
        }
    )*};
}

impl_inclusive_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — matches the real `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&y));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_frequency() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }
}
