//! Matching-graph construction by exhaustive single-fault enumeration.
//!
//! Every noise instruction of a noisy circuit defines a set of
//! elementary faults (3 Paulis for a 1-qubit channel, 15 for a 2-qubit
//! channel, one flip per measurement). Each fault is propagated
//! deterministically ([`vlq_circuit::exec::propagate_fault`]) to find
//! the detectors and observables it flips. Within one decoding sector
//! (Z-plaquette or X-plaquette detectors), a fault flips at most two
//! detectors for graphlike noise; faults that flip more are decomposed
//! into known graphlike edges, as modern detector-error-model tooling
//! does.

use std::collections::{BTreeMap, HashMap};

use vlq_circuit::exec::{propagate_fault, FaultSite};
use vlq_circuit::ir::{Circuit, Instruction};
use vlq_math::stats::{log_odds_weight, xor_probability};
use vlq_pauli::Pauli;

/// Virtual boundary node id inside [`DecodingGraph`].
pub const BOUNDARY: usize = usize::MAX;

/// One edge of the decoding graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphEdge {
    /// Total probability that some fault flips exactly this detector
    /// pair (XOR-accumulated).
    pub probability: f64,
    /// Matching weight `ln((1-p)/p)`.
    pub weight: f64,
    /// Whether traversing this edge flips the logical observable.
    pub flips_observable: bool,
}

/// A per-sector decoding graph over `num_nodes` detectors plus a virtual
/// boundary.
#[derive(Clone, Debug)]
pub struct DecodingGraph {
    num_nodes: usize,
    /// Edge map keyed by `(a, b)` with `a < b` (`b` may be [`BOUNDARY`]).
    ///
    /// Ordered map on purpose: [`DecodingGraph::adjacency`] and
    /// [`DecodingGraph::iter_edges`] must yield a deterministic order,
    /// because approximate decoders (union-find's first-contact growth)
    /// break distance ties by visit order — with a hash map, two builds
    /// of the same circuit could decode the same syndrome differently.
    edges: BTreeMap<(usize, usize), GraphEdge>,
    /// Count of faults that produced more than two sector detectors and
    /// needed decomposition.
    pub decomposed_faults: usize,
    /// Probability mass of faults that flipped the observable with *no*
    /// sector detectors (should be ~0 for a sound circuit).
    pub undetectable_logical_mass: f64,
}

impl DecodingGraph {
    /// Number of detector nodes (excluding the boundary).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges (including boundary edges).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Looks up an edge.
    pub fn edge(&self, a: usize, b: usize) -> Option<&GraphEdge> {
        self.edges.get(&ordered(a, b))
    }

    /// Iterates over `((a, b), edge)` pairs; `b` may be [`BOUNDARY`].
    pub fn iter_edges(&self) -> impl Iterator<Item = (&(usize, usize), &GraphEdge)> {
        self.edges.iter()
    }

    /// Adjacency list form: `adj[node] = [(neighbor-or-BOUNDARY, weight,
    /// flips_observable)]`.
    pub fn adjacency(&self) -> Vec<Vec<(usize, f64, bool)>> {
        let mut adj = vec![Vec::new(); self.num_nodes];
        for (&(a, b), e) in &self.edges {
            if b == BOUNDARY {
                adj[a].push((BOUNDARY, e.weight, e.flips_observable));
            } else {
                adj[a].push((b, e.weight, e.flips_observable));
                adj[b].push((a, e.weight, e.flips_observable));
            }
        }
        adj
    }

    fn accumulate(&mut self, a: usize, b: usize, p: f64, obs: bool) {
        let key = ordered(a, b);
        let entry = self.edges.entry(key).or_insert(GraphEdge {
            probability: 0.0,
            weight: f64::INFINITY,
            flips_observable: obs,
        });
        // Keep the observable parity of the dominant contribution; in a
        // sound surface-code circuit all contributions to one edge agree.
        entry.probability = xor_probability(entry.probability, p);
        entry.weight = log_odds_weight(entry.probability);
    }

    /// Builds the decoding graph for the *guard* sector of a noisy
    /// circuit (the sector whose errors flip the memory observable):
    /// observable flips are attributed to the edges.
    pub fn build(circuit: &Circuit, sector_detectors: &[usize]) -> Self {
        Self::build_with_attribution(circuit, sector_detectors, true)
    }

    /// Builds the decoding graph for a non-guard sector: the observable
    /// is attributed to the other sector's components, so every edge here
    /// carries `flips_observable = false`.
    pub fn build_non_guard(circuit: &Circuit, sector_detectors: &[usize]) -> Self {
        Self::build_with_attribution(circuit, sector_detectors, false)
    }

    /// Builds the decoding graph for a sector of a noisy circuit.
    ///
    /// `sector_detectors` lists the global detector indices that belong
    /// to the sector, in the order that defines the graph's node ids.
    ///
    /// A single fault (e.g. a Y error) can flip detectors in both
    /// sectors; its observable flip belongs to the component in the
    /// guard sector (for a Z memory, only the X-error component can flip
    /// the logical Z). `attribute_observable` selects whether this graph
    /// receives those attributions.
    ///
    /// # Panics
    ///
    /// Panics if a fault flips more than two sector detectors and cannot
    /// be decomposed into existing graphlike edges.
    pub fn build_with_attribution(
        circuit: &Circuit,
        sector_detectors: &[usize],
        attribute_observable: bool,
    ) -> Self {
        let mut sector_index: HashMap<usize, usize> = HashMap::new();
        for (i, &d) in sector_detectors.iter().enumerate() {
            sector_index.insert(d, i);
        }
        let mut graph = DecodingGraph {
            num_nodes: sector_detectors.len(),
            edges: BTreeMap::new(),
            decomposed_faults: 0,
            undetectable_logical_mass: 0.0,
        };
        // Collect (sector detector list, obs flip, probability) per fault;
        // multi-detector faults wait for the second pass.
        let mut pending: Vec<(Vec<usize>, bool, f64)> = Vec::new();
        for_each_fault(circuit, |site, p| {
            if p <= 0.0 {
                return;
            }
            let effect = propagate_fault(circuit, site);
            let dets: Vec<usize> = effect
                .detectors
                .iter()
                .filter_map(|d| sector_index.get(d).copied())
                .collect();
            let obs = attribute_observable && effect.observables.contains(&0);
            match dets.len() {
                0 => {
                    if obs {
                        graph.undetectable_logical_mass += p;
                    }
                }
                1 => graph.accumulate(dets[0], BOUNDARY, p, obs),
                2 => graph.accumulate(dets[0], dets[1], p, obs),
                _ => pending.push((dets, obs, p)),
            }
        });
        // Second pass: decompose multi-detector faults into existing
        // graphlike edges (pairs or boundary singletons) whose combined
        // observable parity matches.
        for (dets, obs, p) in pending {
            graph.decomposed_faults += 1;
            let parts = decompose(&graph, &dets, obs).unwrap_or_else(|| {
                panic!(
                    "fault with detectors {dets:?} (obs {obs}) cannot be \
                     decomposed into graphlike edges"
                )
            });
            for (a, b, part_obs) in parts {
                graph.accumulate(a, b, p, part_obs);
            }
        }
        graph
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Enumerates every elementary fault of a noisy circuit.
pub fn for_each_fault(circuit: &Circuit, mut visit: impl FnMut(FaultSite, f64)) {
    for (at, inst) in circuit.instructions.iter().enumerate() {
        match *inst {
            Instruction::Noise1 { qubit, p } => {
                for pauli in Pauli::ERRORS {
                    visit(FaultSite::Pauli1 { at, qubit, pauli }, p / 3.0);
                }
            }
            Instruction::Noise2 { a, b, p } => {
                for pa in Pauli::ALL {
                    for pb in Pauli::ALL {
                        if pa == Pauli::I && pb == Pauli::I {
                            continue;
                        }
                        visit(
                            FaultSite::Pauli2 {
                                at,
                                a: (a, pa),
                                b: (b, pb),
                            },
                            p / 15.0,
                        );
                    }
                }
            }
            Instruction::Measure { flip_prob, .. } if flip_prob > 0.0 => {
                visit(FaultSite::MeasureFlip { at }, flip_prob);
            }
            _ => {}
        }
    }
}

/// Tries to split a multi-detector fault into existing edges. Searches
/// pairings of the (<= 4 in practice) detectors, allowing boundary
/// singletons, such that every part is an existing edge and the XOR of
/// part observable-parities equals the fault's.
fn decompose(
    graph: &DecodingGraph,
    dets: &[usize],
    obs: bool,
) -> Option<Vec<(usize, usize, bool)>> {
    fn search(
        graph: &DecodingGraph,
        remaining: &[usize],
        acc: &mut Vec<(usize, usize, bool)>,
        out: &mut Option<Vec<(usize, usize, bool)>>,
        target_obs: bool,
    ) {
        if out.is_some() {
            return;
        }
        if remaining.is_empty() {
            let parity = acc.iter().fold(false, |x, e| x ^ e.2);
            if parity == target_obs {
                *out = Some(acc.clone());
            }
            return;
        }
        let first = remaining[0];
        // Pair `first` with another remaining detector.
        for i in 1..remaining.len() {
            let other = remaining[i];
            if let Some(e) = graph.edge(first, other) {
                let rest: Vec<usize> = remaining
                    .iter()
                    .copied()
                    .filter(|&d| d != first && d != other)
                    .collect();
                acc.push((first, other, e.flips_observable));
                search(graph, &rest, acc, out, target_obs);
                acc.pop();
            }
        }
        // Or send it to the boundary.
        if let Some(e) = graph.edge(first, BOUNDARY) {
            acc.push((first, BOUNDARY, e.flips_observable));
            search(graph, &remaining[1..], acc, out, target_obs);
            acc.pop();
        }
    }
    let mut acc = Vec::new();
    let mut out = None;
    search(graph, dets, &mut acc, &mut out, obs);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlq_arch::params::{ErrorRates, HardwareParams};
    use vlq_circuit::noise::NoiseModel;
    use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

    fn noisy_baseline(d: usize, p: f64) -> (Circuit, Vec<usize>, Vec<usize>) {
        let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
        let mc = memory_circuit(spec, &HardwareParams::baseline());
        let noisy = NoiseModel::baseline_at_scale(p).apply(&mc.circuit);
        (noisy, mc.z_detectors, mc.x_detectors)
    }

    #[test]
    fn baseline_graph_structure() {
        let (noisy, z_dets, _) = noisy_baseline(3, 1e-3);
        let g = DecodingGraph::build(&noisy, &z_dets);
        assert_eq!(g.num_nodes(), z_dets.len());
        assert!(
            g.num_edges() > z_dets.len(),
            "graph should be connected-ish"
        );
        // No undetectable logical errors in a sound circuit.
        assert!(g.undetectable_logical_mass == 0.0);
        // Boundary edges must exist (side plaquettes see single-detector
        // faults).
        let has_boundary = g.iter_edges().any(|(&(_, b), _)| b == BOUNDARY);
        assert!(has_boundary);
    }

    #[test]
    fn all_weights_positive_and_finite() {
        let (noisy, z_dets, _) = noisy_baseline(3, 2e-3);
        let g = DecodingGraph::build(&noisy, &z_dets);
        for (_, e) in g.iter_edges() {
            assert!(e.probability > 0.0 && e.probability < 0.5);
            assert!(e.weight.is_finite() && e.weight > 0.0);
        }
    }

    #[test]
    fn observable_edges_touch_logical_support() {
        // Some edges must flip the observable (the logical-Z column data
        // errors), and some must not.
        let (noisy, z_dets, _) = noisy_baseline(3, 1e-3);
        let g = DecodingGraph::build(&noisy, &z_dets);
        let flipping = g.iter_edges().filter(|(_, e)| e.flips_observable).count();
        let silent = g.iter_edges().filter(|(_, e)| !e.flips_observable).count();
        assert!(flipping > 0);
        assert!(silent > 0);
    }

    #[test]
    fn x_sector_never_flips_z_observable() {
        // In a Z-basis memory, the logical flip belongs to the guard
        // (Z-plaquette) sector; the X-sector graph carries none.
        let (noisy, _, x_dets) = noisy_baseline(3, 1e-3);
        let g = DecodingGraph::build_non_guard(&noisy, &x_dets);
        for (_, e) in g.iter_edges() {
            assert!(!e.flips_observable);
        }
        // Y faults on logical-support data make the naive attribution
        // differ: with guard attribution on the X sector, some edges
        // would claim the observable.
        let g_wrong = DecodingGraph::build(&noisy, &x_dets);
        assert!(g_wrong.iter_edges().any(|(_, e)| e.flips_observable));
    }

    #[test]
    fn memory_setups_produce_sound_graphs() {
        for setup in [Setup::NaturalInterleaved, Setup::CompactInterleaved] {
            let spec = MemorySpec::standard(setup, 3, 3, Basis::Z);
            let mc = memory_circuit(spec, &HardwareParams::with_memory());
            let noisy = NoiseModel::memory_at_scale(2e-3).apply(&mc.circuit);
            let g = DecodingGraph::build(&noisy, &mc.z_detectors);
            assert_eq!(
                g.undetectable_logical_mass, 0.0,
                "{setup}: undetectable logical faults"
            );
            for (_, e) in g.iter_edges() {
                assert!(e.weight.is_finite());
            }
        }
    }

    #[test]
    fn higher_noise_means_lower_weights() {
        let (noisy_lo, z_lo, _) = noisy_baseline(3, 1e-3);
        let (noisy_hi, z_hi, _) = noisy_baseline(3, 8e-3);
        let g_lo = DecodingGraph::build(&noisy_lo, &z_lo);
        let g_hi = DecodingGraph::build(&noisy_hi, &z_hi);
        // Compare a common edge.
        let (&key, e_lo) = g_lo.iter_edges().next().unwrap();
        let e_hi = g_hi.edge(key.0, key.1).expect("same structure");
        assert!(e_hi.weight < e_lo.weight);
    }

    #[test]
    fn fault_enumeration_counts() {
        let mut c = Circuit::new(2);
        c.instructions
            .push(Instruction::Noise1 { qubit: 0, p: 0.1 });
        c.instructions
            .push(Instruction::Noise2 { a: 0, b: 1, p: 0.1 });
        let m = c.measure(0);
        // Give the measurement a flip probability manually.
        if let Instruction::Measure { flip_prob, .. } = &mut c.instructions[2] {
            *flip_prob = 0.05;
        }
        let _ = m;
        let mut count = 0;
        let mut total_p = 0.0;
        for_each_fault(&c, |_, p| {
            count += 1;
            total_p += p;
        });
        assert_eq!(count, 3 + 15 + 1);
        assert!((total_p - (0.1 + 0.1 + 0.05)).abs() < 1e-12);
    }

    #[test]
    fn noiseless_circuit_has_empty_graph() {
        let spec = MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z);
        let mc = memory_circuit(spec, &HardwareParams::baseline());
        let model = NoiseModel::new(HardwareParams::baseline(), ErrorRates::noiseless());
        let noisy = model.apply(&mc.circuit);
        let g = DecodingGraph::build(&noisy, &mc.z_detectors);
        assert_eq!(g.num_edges(), 0);
    }
}
