//! Program-level error-rate sweeps: GHZ / teleport / adder workloads
//! scanned across code distance × physical error rate on the
//! `vlq-sweep` work-stealing engine (the ROADMAP's `prog1` surface).
//!
//! Each grid point compiles the named logical program onto a machine at
//! the point's `(setup, d, k)`, then frame-replays the schedule through
//! `vlq::exec::ProgramSweepExecutor`: every instruction samples a
//! boundary-aware syndrome block sized to its actual round span
//! (`--boundary mid-circuit`, the quantitative default) or a legacy
//! whole-memory-experiment block (`--boundary full`, the pre-block
//! approximation) — see `docs/executors.md`.
//!
//! Flags mirror the other figure binaries: `--out` writes CSV/JSONL
//! artifacts, `--resume` reuses completed points, `--shard I/N` splits
//! the grid across machines for `sweep-merge` recombination.

use vlq::exec::{program_by_name, ProgramSweepExecutor};
use vlq::qec::DecoderKind;
use vlq::surface::schedule::{Basis, Boundary, Setup};
use vlq::sweep::{RunOptions, SweepRecord, SweepSpec};
use vlq_bench::{
    engine_from_args, finish_telemetry, parse_f64_list, plan_from_args, resume_cache_from_args,
    resumed_points, sci, shard_from_args, telemetry_from_args, threads_from_args, usage_exit, Args,
    MetaBuilder, OutSinks,
};

const USAGE: &str = "\
usage: prog1 [--trials N] [--dmax D] [--k K] [--seed S]
             [--programs P1,P2,...] [--setup NAME|all] [--decoder mwpm|uf]
             [--boundary mid-circuit|full|prep|readout] [--rates P1,P2,...]
             [--workers N] [--threads N|auto] [--out DIR] [--resume]
             [--shard I/N] [--plan PATH] [--times PATH]
             [--telemetry PATH] [--quiet]
  --programs  registered workloads (default ghz4,teleport,adder2;
              ghz<N>/adder<N> accept any width)
  --setup     one of baseline|natural-aao|natural-int|compact-aao|compact-int|all
  --k         cavity depth (>= 2: one storage + one free mode per stack)
  --boundary  syndrome-block boundary model (default mid-circuit: interior
              blocks are boundary-light, program ends charge real
              prep/readout noise; full = legacy per-timestep memory exps)
  --rates     comma-separated physical error rates (default: 8e-4,2e-3,5e-3)
  --out       write <stem>.csv and <stem>.jsonl sweep artifacts into DIR
              (stem: prog1 for the default boundary, prog1-<boundary>
              otherwise, so different boundary models never mix)
  --resume    skip grid points already present in DIR/<stem>.jsonl (needs --out)
  --shard     run only grid points with index % N == I (same global numbering
              and seeds as the full run; `sweep-merge` restores full artifacts)
  --plan      explicit shard-plan file (from `sweep-launch --shard-by time`):
              this shard runs the grid points the plan assigns it instead of
              the stride rule (needs --shard; seeds and bytes are unchanged)
  --times     record per-point wall times (nanos) to PATH in the
              vlq-sweep-times-v1 format the time-based planner calibrates from
  --threads   in-block sample-pool workers per chunk (default 1; `auto` uses
              available_parallelism; results and sidecars are bit-identical
              at any value)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH and print a runtime
               summary to stderr (sidecar is byte-stable across --workers and
               --threads)";

fn main() {
    let args = Args::parse_validated(
        USAGE,
        &[
            "trials",
            "dmax",
            "k",
            "seed",
            "programs",
            "setup",
            "decoder",
            "boundary",
            "rates",
            "workers",
            "threads",
            "out",
            "shard",
            "plan",
            "times",
            "telemetry",
        ],
        &["quiet", "resume"],
    );
    let quick = std::env::var("VLQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    let trials: u64 = args.get_or_usage(USAGE, "trials", if quick { 200 } else { 2000 });
    let dmax: usize = args.get_or_usage(USAGE, "dmax", if quick { 3 } else { 5 });
    let k: usize = args.get_or_usage(USAGE, "k", 4);
    if k < 2 {
        usage_exit(
            USAGE,
            "--k must be >= 2 (one storage + one free mode per stack)",
        );
    }
    let seed: u64 = args.get_or_usage(USAGE, "seed", 2020);

    let programs: Vec<String> = args
        .get_str("programs", "ghz4,teleport,adder2")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if programs.is_empty() {
        usage_exit(USAGE, "--programs names no workloads");
    }
    for name in &programs {
        if program_by_name(name).is_none() {
            usage_exit(
                USAGE,
                &format!(
                    "unknown program {name:?}; registered: ghz<N>, adder<N>, teleport (N >= 2/1)"
                ),
            );
        }
    }

    let decoder_arg = args.get_str("decoder", "uf");
    let decoder = DecoderKind::parse(&decoder_arg).unwrap_or_else(|| {
        usage_exit(
            USAGE,
            &format!(
                "unknown --decoder {decoder_arg:?}; accepted: \
                 mwpm|blossom|matching, uf|unionfind|union-find"
            ),
        )
    });

    let boundary_arg = args.get_str("boundary", "mid-circuit");
    let boundary = Boundary::parse(&boundary_arg).unwrap_or_else(|| {
        usage_exit(
            USAGE,
            &format!(
                "unknown --boundary {boundary_arg:?}; accepted: mid-circuit|full|prep|readout"
            ),
        )
    });

    let setup_arg = args.get_str("setup", "compact-int");
    let setups: Vec<Setup> = if setup_arg == "all" {
        Setup::ALL.to_vec()
    } else {
        match Setup::ALL.into_iter().find(|s| s.to_string() == setup_arg) {
            Some(s) => vec![s],
            None => usage_exit(
                USAGE,
                &format!(
                    "unknown --setup {setup_arg:?}; accepted: {}|all",
                    Setup::ALL.map(|s| s.to_string()).join("|")
                ),
            ),
        }
    };

    let distances: Vec<usize> = [3usize, 5, 7, 9]
        .into_iter()
        .filter(|&d| d <= dmax)
        .collect();
    if distances.is_empty() {
        usage_exit(USAGE, &format!("--dmax {dmax} leaves no distances to scan"));
    }
    let rates: Vec<f64> = match args.pairs_get("rates") {
        None => vec![8e-4, 2e-3, 5e-3],
        Some(s) => parse_f64_list(&s)
            .unwrap_or_else(|| usage_exit(USAGE, &format!("invalid --rates {s:?}"))),
    };

    let spec = SweepSpec::new()
        .programs(programs.iter().cloned())
        .setups(setups.iter().copied())
        .bases([Basis::Z])
        .distances(distances.iter().copied())
        .ks([k])
        .decoders([decoder])
        .error_rates(rates.iter().copied())
        .shots(trials)
        .base_seed(seed);

    let (recorder, telemetry_path) = telemetry_from_args(&args);
    let engine = engine_from_args(&args, USAGE).with_recorder(recorder.clone());
    let par = threads_from_args(&args, USAGE);
    let shard = shard_from_args(&args, USAGE);
    let plan = plan_from_args(&args, USAGE, shard);
    let opts = RunOptions {
        shard,
        index_offset: 0,
        plan,
    };
    // The boundary model changes every sampled value but is not a grid
    // coordinate (not in SweepPoint, so not in the seed/fingerprint
    // identity). Tag it into the artifact stem instead, so a --resume
    // or sweep-merge can never silently splice records sampled under
    // different boundary models: mid-circuit (the default) keeps the
    // plain `prog1` stem, every other model gets `prog1-<boundary>`.
    let stem = if boundary == Boundary::MidCircuit {
        "prog1".to_string()
    } else {
        format!("prog1-{boundary}")
    };
    // Read the previous artifact (if resuming) before the sinks
    // truncate it.
    let cache = resume_cache_from_args(&args, USAGE, &stem, seed);
    let skipped = resumed_points(&spec, &cache, &opts);
    if skipped > 0 {
        let owned = (0..spec.len()).filter(|&i| opts.owns(i)).count();
        eprintln!("note: resume: {skipped}/{owned} points already complete");
    }
    let mut out = OutSinks::from_args(&args, &stem);
    let mut meta = MetaBuilder::new(seed, shard).with_plan(opts.plan.as_ref());
    meta.absorb(&spec);
    out.write_meta(&meta.build());
    let executor = ProgramSweepExecutor::new(boundary).with_parallelism(par);
    let records = engine
        .run_opts(&spec, &executor, &mut out.as_dyn(), &cache, &opts)
        .expect("sweep artifacts");
    finish_telemetry(&recorder, telemetry_path.as_deref(), "prog1", seed);

    println!(
        "prog1: program-level logical error rates ({trials} trials/point, decoder {decoder}, \
         boundary {boundary}, k={k}, {} points)",
        records.len()
    );
    if !shard.is_full() {
        println!(
            "shard {shard}: {} of {} grid points (tables are printed by full runs \
             or after sweep-merge)",
            records.len(),
            spec.len()
        );
        out.announce();
        return;
    }
    let rate_of = |program: &str, setup: Setup, d: usize, p: f64| -> f64 {
        records
            .iter()
            .find(|r: &&SweepRecord| {
                r.point.program.as_deref() == Some(program)
                    && r.point.setup == setup
                    && r.point.d == d
                    && r.point.p == p
            })
            .map_or(f64::NAN, SweepRecord::rate)
    };
    for program in &programs {
        for &setup in &setups {
            println!("\n-- {program} on {setup} --");
            print!("{:>8}", "p \\ d");
            for &d in &distances {
                print!("{d:>12}");
            }
            println!();
            for &p in &rates {
                print!("{:>8}", sci(p));
                for &d in &distances {
                    print!("{:>12}", sci(rate_of(program, setup, d, p)));
                }
                println!();
            }
        }
    }
    out.announce();
}
