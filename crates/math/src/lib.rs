//! Mathematical substrates for the VLQ (Virtualized Logical Qubits)
//! reproduction.
//!
//! This crate deliberately has no dependencies: it provides the small,
//! self-contained pieces of mathematics the rest of the workspace builds
//! on:
//!
//! * [`gf2`] — bit-packed linear algebra over GF(2) (rank, kernel, solving
//!   linear systems), used by the Pauli algebra, the classical-code
//!   machinery behind magic-state distillation, and schedule validation.
//! * [`rm`] — Reed-Muller code generator matrices, used to construct the
//!   15-qubit quantum Reed-Muller code of the 15-to-1 distillation
//!   protocol.
//! * [`stats`] — binomial confidence intervals and log-odds weights for
//!   Monte-Carlo logical-error-rate estimation and decoder edge weights.
//!
//! # Examples
//!
//! ```
//! use vlq_math::gf2::BitMatrix;
//!
//! let mut m = BitMatrix::zeros(2, 3);
//! m.set(0, 0, true);
//! m.set(0, 2, true);
//! m.set(1, 1, true);
//! assert_eq!(m.rank(), 2);
//! ```

pub mod gf2;
pub mod rm;
pub mod stats;

pub use gf2::{BitMatrix, BitVec};
