//! Multi-tenant contention sweeps: the standard tenant workload mix
//! (GHZ-3 / teleport / 1-bit adder slots) merged onto one two-stack
//! machine under each replacement policy, scanned across tenant count ×
//! policy × code distance × physical error rate.
//!
//! Two artifact families come out of one run:
//!
//! * the usual sweep CSV/JSONL (`tenants1.csv` / `tenants1.jsonl`):
//!   program-level logical error rates of the *merged* schedule,
//!   frame-replayed per grid point through
//!   `vlq_tenant::TenantSweepExecutor`;
//! * the contention report (`tenants1-report.csv` / `.jsonl`): one row
//!   per tenant per (setup, d, tenants, policy) cell with queueing
//!   delay, page traffic, refresh-deadline misses, and slowdown — built
//!   deterministically on the main thread, so it is byte-identical
//!   across `--workers` counts.
//!
//! With `--telemetry PATH`, per-tenant sidecars land next to the main
//! one at `PATH`-derived `-tenant<i>` names for the most contended cell.

use vlq::machine::MachineConfig;
use vlq::qec::DecoderKind;
use vlq::surface::schedule::{Basis, Setup};
use vlq::sweep::artifact::{Table, Value};
use vlq::sweep::{RunOptions, SweepPoint, SweepRecord, SweepSpec};
use vlq_bench::{
    engine_from_args, finish_telemetry, parse_f64_list, plan_from_args, resume_cache_from_args,
    resumed_points, sci, shard_from_args, telemetry_from_args, threads_from_args, usage_exit, Args,
    MetaBuilder, OutSinks,
};
use vlq_telemetry::Recorder;
use vlq_tenant::{
    machine_config_for_tenants, merge_standard_mix, tenant_program_name, MultiProgram, PolicyKind,
    TenantSweepExecutor,
};

const USAGE: &str = "\
usage: tenants1 [--trials N] [--tenants N1,N2,...] [--policies P1,P2,...|all]
                [--dmax D] [--k K] [--seed S] [--setup NAME|all]
                [--decoder mwpm|uf] [--rates P1,P2,...] [--workers N]
                [--threads N|auto] [--out DIR] [--resume] [--shard I/N]
                [--plan PATH] [--times PATH] [--telemetry PATH] [--quiet]
  --tenants   concurrent-program counts to scan (default 2,3; each >= 1;
              slots cycle ghz3,teleport,adder1 with slot 0 the deadline
              tenant)
  --policies  replacement policies (default all =
              refresh-deadline,lru,deadline-priority)
  --setup     one of baseline|natural-aao|natural-int|compact-aao|compact-int|all
  --k         cavity depth (>= 3: two storage + one free mode per stack)
  --rates     comma-separated physical error rates (default: 8e-4,2e-3,5e-3)
  --out       write tenants1.{csv,jsonl} sweep artifacts plus the
              tenants1-report.{csv,jsonl} per-tenant contention report
              into DIR
  --resume    skip grid points already present in DIR/tenants1.jsonl
              (needs --out)
  --shard     run only grid points with index % N == I and write only
              report rows with row index % N == I (sweep-merge restores
              both artifacts)
  --plan      explicit shard-plan file (from `sweep-launch --shard-by time`):
              this shard runs the grid points the plan assigns it instead of
              the stride rule (needs --shard; the tenants1-report table
              stays stride-sharded; seeds and bytes are unchanged)
  --times     record per-point wall times (nanos) to PATH in the
              vlq-sweep-times-v1 format the time-based planner calibrates from
  --threads   in-block sample-pool workers per chunk (default 1; `auto` uses
              available_parallelism; results and sidecars are bit-identical
              at any value)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH plus per-tenant
               sidecars (<PATH minus .jsonl>-tenant<i>.jsonl) for the most
               contended cell; all sidecars are byte-stable across --workers
               and --threads";

/// The machine a report cell merges onto (same shape the sweep executor
/// uses for its grid points).
fn cell_config(setup: Setup, d: usize, k: usize, decoder: DecoderKind) -> MachineConfig {
    let point = SweepPoint {
        setup,
        basis: Basis::Z,
        d,
        p: 0.0,
        k,
        rounds: None,
        decoder,
        shots: 0,
        knob: None,
        program: None,
    };
    machine_config_for_tenants(&point)
}

fn merged_or_exit(tenants: usize, policy: PolicyKind, config: MachineConfig) -> MultiProgram {
    merge_standard_mix(tenants, policy, config).unwrap_or_else(|e| {
        eprintln!("error: tenant mix failed to merge: {e}");
        std::process::exit(1);
    })
}

const REPORT_COLUMNS: [&str; 20] = [
    "setup",
    "d",
    "k",
    "tenants",
    "policy",
    "tenant",
    "name",
    "priority",
    "deadline",
    "queue_delay",
    "page_ins",
    "page_outs",
    "page_faults",
    "evictions",
    "deadline_misses",
    "refresh_skips",
    "instructions",
    "finish_t",
    "ideal_t",
    "slowdown_permille",
];

fn main() {
    let args = Args::parse_validated(
        USAGE,
        &[
            "trials",
            "tenants",
            "policies",
            "dmax",
            "k",
            "seed",
            "setup",
            "decoder",
            "rates",
            "workers",
            "threads",
            "out",
            "shard",
            "plan",
            "times",
            "telemetry",
        ],
        &["quiet", "resume"],
    );
    let quick = std::env::var("VLQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    let trials: u64 = args.get_or_usage(USAGE, "trials", if quick { 100 } else { 1000 });
    let dmax: usize = args.get_or_usage(USAGE, "dmax", if quick { 3 } else { 5 });
    let k: usize = args.get_or_usage(USAGE, "k", 4);
    if k < 3 {
        usage_exit(
            USAGE,
            "--k must be >= 3 (two storage + one free mode per stack)",
        );
    }
    let seed: u64 = args.get_or_usage(USAGE, "seed", 2020);

    let tenants_arg = args.get_str("tenants", if quick { "2" } else { "2,3" });
    let tenant_counts: Vec<usize> = {
        let parsed: Option<Vec<usize>> = tenants_arg
            .split(',')
            .map(|t| t.trim().parse().ok().filter(|&n| n >= 1))
            .collect();
        match parsed {
            Some(v) if !v.is_empty() => v,
            _ => usage_exit(
                USAGE,
                &format!("invalid --tenants {tenants_arg:?}; expected comma-separated counts >= 1"),
            ),
        }
    };

    let policies_arg = args.get_str("policies", "all");
    let policies: Vec<PolicyKind> = if policies_arg == "all" {
        PolicyKind::ALL.to_vec()
    } else {
        let parsed: Option<Vec<PolicyKind>> = policies_arg
            .split(',')
            .map(|t| PolicyKind::parse(t.trim()))
            .collect();
        match parsed {
            Some(v) if !v.is_empty() => v,
            _ => usage_exit(
                USAGE,
                &format!(
                    "invalid --policies {policies_arg:?}; accepted: {}|all",
                    PolicyKind::ALL.map(|p| p.name()).join(",")
                ),
            ),
        }
    };

    let decoder_arg = args.get_str("decoder", "uf");
    let decoder = DecoderKind::parse(&decoder_arg).unwrap_or_else(|| {
        usage_exit(
            USAGE,
            &format!(
                "unknown --decoder {decoder_arg:?}; accepted: \
                 mwpm|blossom|matching, uf|unionfind|union-find"
            ),
        )
    });

    let setup_arg = args.get_str("setup", "compact-int");
    let setups: Vec<Setup> = if setup_arg == "all" {
        Setup::ALL.to_vec()
    } else {
        match Setup::ALL.into_iter().find(|s| s.to_string() == setup_arg) {
            Some(s) => vec![s],
            None => usage_exit(
                USAGE,
                &format!(
                    "unknown --setup {setup_arg:?}; accepted: {}|all",
                    Setup::ALL.map(|s| s.to_string()).join("|")
                ),
            ),
        }
    };

    let distances: Vec<usize> = [3usize, 5, 7, 9]
        .into_iter()
        .filter(|&d| d <= dmax)
        .collect();
    if distances.is_empty() {
        usage_exit(USAGE, &format!("--dmax {dmax} leaves no distances to scan"));
    }
    let rates: Vec<f64> = match args.pairs_get("rates") {
        None => vec![8e-4, 2e-3, 5e-3],
        Some(s) => parse_f64_list(&s)
            .unwrap_or_else(|| usage_exit(USAGE, &format!("invalid --rates {s:?}"))),
    };

    let programs: Vec<String> = tenant_counts
        .iter()
        .flat_map(|&n| policies.iter().map(move |&p| tenant_program_name(n, p)))
        .collect();
    let spec = SweepSpec::new()
        .programs(programs.iter().cloned())
        .setups(setups.iter().copied())
        .bases([Basis::Z])
        .distances(distances.iter().copied())
        .ks([k])
        .decoders([decoder])
        .error_rates(rates.iter().copied())
        .shots(trials)
        .base_seed(seed);

    let (recorder, telemetry_path) = telemetry_from_args(&args);
    let engine = engine_from_args(&args, USAGE).with_recorder(recorder.clone());
    let par = threads_from_args(&args, USAGE);
    let shard = shard_from_args(&args, USAGE);
    let plan = plan_from_args(&args, USAGE, shard);
    let opts = RunOptions {
        shard,
        index_offset: 0,
        plan,
    };
    let cache = resume_cache_from_args(&args, USAGE, "tenants1", seed);
    let skipped = resumed_points(&spec, &cache, &opts);
    if skipped > 0 {
        let owned = (0..spec.len()).filter(|&i| opts.owns(i)).count();
        eprintln!("note: resume: {skipped}/{owned} points already complete");
    }
    let mut out = OutSinks::from_args(&args, "tenants1");
    let mut meta = MetaBuilder::new(seed, shard).with_plan(opts.plan.as_ref());
    meta.absorb(&spec);
    out.write_meta(&meta.build());

    // The contention report does not depend on the error rate or the
    // Monte-Carlo trials: the merge is a pure function of the machine
    // shape, tenant count, and policy. Build every cell once on the
    // main thread (deterministic, worker-independent), keeping the
    // merged programs around for the human summary and the per-tenant
    // telemetry sidecars.
    let mut report = Table::new(REPORT_COLUMNS);
    let mut cells: Vec<(Setup, usize, usize, PolicyKind, MultiProgram)> = Vec::new();
    for &setup in &setups {
        for &d in &distances {
            for &n in &tenant_counts {
                for &policy in &policies {
                    let config = cell_config(setup, d, k, decoder);
                    let multi = merged_or_exit(n, policy, config);
                    for (i, t) in multi.tenants.iter().enumerate() {
                        report.row([
                            setup.to_string().into(),
                            d.into(),
                            k.into(),
                            n.into(),
                            policy.name().into(),
                            i.into(),
                            t.name.clone().into(),
                            u64::from(t.priority).into(),
                            t.deadline.map_or(Value::Null, Into::into),
                            t.queue_delay.into(),
                            t.page_ins.into(),
                            t.page_outs.into(),
                            t.page_faults.into(),
                            t.evictions.into(),
                            t.deadline_misses.into(),
                            t.refresh_skips.into(),
                            t.instructions.into(),
                            t.finish_t.into(),
                            t.ideal_t.into(),
                            t.slowdown_permille().into(),
                        ]);
                    }
                    cells.push((setup, d, n, policy, multi));
                }
            }
        }
    }
    if let Some(dir) = &out.dir {
        report
            .shard(shard)
            .write_dir(dir, "tenants1-report")
            .unwrap_or_else(|e| {
                eprintln!("error: write tenants1-report artifacts: {e}");
                std::process::exit(1);
            });
    }

    let executor = TenantSweepExecutor::default().with_parallelism(par);
    let records = engine
        .run_opts(&spec, &executor, &mut out.as_dyn(), &cache, &opts)
        .expect("sweep artifacts");
    finish_telemetry(&recorder, telemetry_path.as_deref(), "tenants1", seed);

    // Per-tenant sidecars for the most contended cell (max tenant
    // count, first policy, first setup, smallest distance): one
    // recorder per tenant, tenant.* contention counters plus the
    // cost.* replay of that tenant's standalone sub-schedule.
    if let Some(path) = &telemetry_path {
        let n = *tenant_counts.iter().max().expect("nonempty tenant counts");
        let multi = merged_or_exit(
            n,
            policies[0],
            cell_config(setups[0], distances[0], k, decoder),
        );
        let base = path.to_string_lossy();
        let base = base.strip_suffix(".jsonl").unwrap_or(&base).to_string();
        for (i, t) in multi.tenants.iter().enumerate() {
            let tenant_recorder = Recorder::attached();
            t.record_full(&tenant_recorder).unwrap_or_else(|e| {
                eprintln!("error: tenant {i} sub-schedule replay failed: {e}");
                std::process::exit(1);
            });
            let tenant_path = format!("{base}-tenant{i}.jsonl");
            std::fs::write(
                &tenant_path,
                tenant_recorder.deterministic_jsonl("tenants1", seed),
            )
            .unwrap_or_else(|e| {
                eprintln!("error: write {tenant_path}: {e}");
                std::process::exit(1);
            });
            eprintln!("note: tenant {i} telemetry sidecar written to {tenant_path}");
        }
    }

    println!(
        "tenants1: multi-tenant contention + merged-program error rates \
         ({trials} trials/point, decoder {decoder}, k={k}, {} points)",
        records.len()
    );
    if !shard.is_full() {
        println!(
            "shard {shard}: {} of {} grid points (tables are printed by full runs \
             or after sweep-merge)",
            records.len(),
            spec.len()
        );
        out.announce();
        return;
    }

    for &setup in &setups {
        for &d in &distances {
            println!("\n-- contention on {setup}, d={d} (t0 = deadline tenant) --");
            println!(
                "{:>24} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9}",
                "cell", "t0 queue", "t0 miss", "faults", "evicts", "slowdown", "fairness"
            );
            for (s, cd, n, policy, multi) in &cells {
                if *s != setup || *cd != d {
                    continue;
                }
                let t0 = &multi.tenants[0];
                let faults: u64 = multi.tenants.iter().map(|t| t.page_faults).sum();
                let evictions: u64 = multi.tenants.iter().map(|t| t.evictions).sum();
                println!(
                    "{:>24} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9}",
                    tenant_program_name(*n, *policy),
                    t0.queue_delay,
                    t0.deadline_misses,
                    faults,
                    evictions,
                    t0.slowdown_permille(),
                    multi.fairness_permille()
                );
            }
        }
    }

    let rate_of = |program: &str, setup: Setup, d: usize, p: f64| -> f64 {
        records
            .iter()
            .find(|r: &&SweepRecord| {
                r.point.program.as_deref() == Some(program)
                    && r.point.setup == setup
                    && r.point.d == d
                    && r.point.p == p
            })
            .map_or(f64::NAN, SweepRecord::rate)
    };
    for program in &programs {
        for &setup in &setups {
            println!("\n-- {program} on {setup} --");
            print!("{:>8}", "p \\ d");
            for &d in &distances {
                print!("{d:>12}");
            }
            println!();
            for &p in &rates {
                print!("{:>8}", sci(p));
                for &d in &distances {
                    print!("{:>12}", sci(rate_of(program, setup, d, p)));
                }
                println!();
            }
        }
    }
    out.announce();
}
