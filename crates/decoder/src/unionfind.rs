//! Weighted Union-Find decoder (Delfosse-Nickerson style).
//!
//! Clusters grow outward from defects in weight units; odd clusters keep
//! growing until they merge with another odd cluster or touch the
//! boundary. Once every cluster is neutral, defects are paired *within*
//! their cluster by shortest paths, which determines the predicted
//! logical flip. Union-Find trades a little accuracy for near-linear
//! decoding time; the `decoder` Criterion bench and the `fig11
//! --decoder uf` ablation quantify the trade against exact MWPM.
//!
//! # Scratch reuse
//!
//! Every per-decode array lives in a [`UfScratch`] sized to the graph.
//! [`UnionFindDecoder::decode_with`] resets only the entries dirtied by
//! the previous decode (the touched-node list), so a steady-state decode
//! costs O(nodes reached), not O(graph), and allocates nothing. The
//! one-shot [`Decoder::decode`] path builds a fresh scratch per call and
//! is bit-identical.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vlq_telemetry::{Metric, Recorder};

use crate::graph::{DecodingGraph, BOUNDARY};
use crate::{Decoder, DecoderScratch};

/// Per-node `(neighbor, weight, flips_observable)` contact lists recorded
/// while growing clusters.
type GrowthForest = Vec<Vec<(usize, f64, bool)>>;

/// The static decoding-graph adjacency list: per-node
/// `(neighbor, weight, flips_observable)` entries. Same shape as a
/// [`GrowthForest`], but fixed at construction rather than per decode.
type AdjacencyList = Vec<Vec<(usize, f64, bool)>>;

/// The Union-Find decoder.
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    adjacency: AdjacencyList,
    num_nodes: usize,
}

/// Reusable working set for [`UnionFindDecoder::decode_with`]: the
/// union-find arrays, the growth front, the contact forest, and the
/// pairing buffers, all sized to the graph (index `num_nodes` is the
/// virtual boundary node).
#[derive(Debug)]
pub struct UfScratch {
    num_nodes: usize,
    // Union-find state.
    parent: Vec<usize>,
    /// Defect-count parity per root.
    parity: Vec<bool>,
    /// Whether the cluster has absorbed the boundary.
    boundary: Vec<bool>,
    // Growth state.
    owner: Vec<usize>,
    dist: Vec<f64>,
    /// Observable parity of the growth path from the owner defect.
    path_parity: Vec<bool>,
    contacts: GrowthForest,
    heap: BinaryHeap<GrowItem>,
    /// Number of clusters that are still odd and boundary-free,
    /// maintained incrementally by [`UfScratch::union`]. Zero exactly
    /// when every defect's cluster is neutral (a cluster with odd
    /// parity always contains a defect), so growth can stop without
    /// re-scanning the defect list after every popped node.
    odd_clusters: usize,
    /// Nodes dirtied by the current decode; reset walks only these.
    touched: Vec<usize>,
    // Pairing state.
    roots: Vec<(usize, usize)>,
    pairs: Vec<(usize, usize, f64, bool)>,
    /// Per-node "still unpaired" flags; all false between clusters.
    unpaired: Vec<bool>,
    // Dijkstra-to-boundary fallback (rare; full reset per use).
    bp_dist: Vec<f64>,
    bp_parity: Vec<bool>,
    bp_heap: BinaryHeap<GrowItem>,
    /// Memoized `boundary_parity` answers (0 = unknown, 1 = false,
    /// 2 = true). A pure function of the graph and the source node, so
    /// this survives across decodes — deliberately NOT touched by
    /// `reset` — and heavy-load batches answer the fallback once per
    /// node instead of once per defect.
    bp_memo: Vec<u8>,
    /// Telemetry sink (disabled by default: one branch per record).
    recorder: Recorder,
}

impl UfScratch {
    /// Fresh scratch for a graph with `num_nodes` detector nodes.
    ///
    /// Heap, contact, and pairing buffers get small up-front capacities:
    /// their sizes depend on the defect load, and first-touch growth
    /// would otherwise trickle allocations across many steady-state
    /// decodes before every node's buffer has been exercised.
    pub fn new(num_nodes: usize) -> Self {
        let n = num_nodes;
        UfScratch {
            num_nodes,
            parent: (0..=n).collect(),
            parity: vec![false; n + 1],
            boundary: (0..=n).map(|i| i == n).collect(),
            owner: vec![usize::MAX; n + 1],
            dist: vec![f64::INFINITY; n + 1],
            path_parity: vec![false; n + 1],
            contacts: (0..=n).map(|_| Vec::with_capacity(8)).collect(),
            heap: BinaryHeap::with_capacity(2 * (n + 1)),
            odd_clusters: 0,
            touched: Vec::with_capacity(n + 1),
            roots: Vec::with_capacity(16),
            pairs: Vec::with_capacity(16),
            unpaired: vec![false; n + 1],
            bp_dist: vec![f64::INFINITY; n + 1],
            bp_parity: vec![false; n + 1],
            bp_heap: BinaryHeap::with_capacity(n + 1),
            bp_memo: vec![0; n + 1],
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder; see [`DecoderScratch::set_recorder`].
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
    }

    /// Restores the invariant state by undoing only the entries the
    /// previous decode touched.
    fn reset(&mut self) {
        let n = self.num_nodes;
        for k in 0..self.touched.len() {
            let t = self.touched[k];
            self.parent[t] = t;
            self.parity[t] = false;
            self.boundary[t] = t == n;
            self.owner[t] = usize::MAX;
            self.dist[t] = f64::INFINITY;
            self.path_parity[t] = false;
            self.contacts[t].clear();
        }
        self.touched.clear();
        self.heap.clear();
        self.odd_clusters = 0;
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let odd = |p: bool, bd: bool| usize::from(p && !bd);
        let before =
            odd(self.parity[ra], self.boundary[ra]) + odd(self.parity[rb], self.boundary[rb]);
        self.parent[rb] = ra;
        let p = self.parity[ra] ^ self.parity[rb];
        self.parity[ra] = p;
        let bd = self.boundary[ra] || self.boundary[rb];
        self.boundary[ra] = bd;
        // Every still-odd root is counted, so the subtraction is safe.
        self.odd_clusters -= before;
        self.odd_clusters += odd(p, bd);
    }
}

/// Stable sort that avoids `slice::sort_by`'s merge-buffer allocation
/// for the typical small case (keeping the batch decode loop
/// allocation-free) and falls back to it for the rare large cluster
/// where O(len²) insertion would dominate. Any two stable sorts produce
/// the identical permutation, so the cutover never changes results.
fn stable_sort_by<T: Copy>(items: &mut [T], less: impl Fn(&T, &T) -> bool) {
    const INSERTION_CUTOFF: usize = 32;
    if items.len() > INSERTION_CUTOFF {
        items.sort_by(|a, b| {
            if less(a, b) {
                Ordering::Less
            } else if less(b, a) {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        });
        return;
    }
    for i in 1..items.len() {
        let item = items[i];
        let mut j = i;
        while j > 0 && less(&item, &items[j - 1]) {
            items[j] = items[j - 1];
            j -= 1;
        }
        items[j] = item;
    }
}

impl UnionFindDecoder {
    /// Builds a decoder for a sector graph.
    pub fn new(graph: &DecodingGraph) -> Self {
        UnionFindDecoder {
            adjacency: graph.adjacency(),
            num_nodes: graph.num_nodes(),
        }
    }

    /// [`Decoder::decode`] against caller-owned scratch: bit-identical
    /// prediction, O(nodes reached) reset cost, no allocation in steady
    /// state.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was built for a different graph size.
    pub fn decode_with(&self, defects: &[usize], scratch: &mut UfScratch) -> bool {
        assert_eq!(
            scratch.num_nodes, self.num_nodes,
            "UfScratch built for a different graph"
        );
        if defects.is_empty() {
            return false;
        }
        scratch.reset();
        let (growth_steps, odd_peak) = self.grow(defects, scratch);
        if scratch.recorder.is_enabled() {
            scratch.recorder.add(Metric::UfGrowthSteps, growth_steps);
            scratch
                .recorder
                .add(Metric::UfTouchedNodes, scratch.touched.len() as u64);
            scratch
                .recorder
                .gauge_max(Metric::UfOddClusterPeak, odd_peak);
        }
        self.pair_and_predict(defects, scratch)
    }

    /// Grows clusters until all are neutral, recording for every node
    /// reached the defect it was reached from with path parity (the
    /// growth forest lands in `scratch.contacts`). Returns the number
    /// of growth steps (heap pops) and the peak odd-cluster count, for
    /// telemetry.
    fn grow(&self, defects: &[usize], scratch: &mut UfScratch) -> (u64, u64) {
        let n = self.num_nodes;
        let boundary_node = n;
        // Multi-source Dijkstra-style growth: each defect grows a region;
        // when two regions meet (edge fully covered from both sides, here
        // approximated by first contact), the clusters merge.
        for &d in defects {
            scratch.touched.push(d);
            scratch.parity[d] = true;
            scratch.owner[d] = d;
            scratch.dist[d] = 0.0;
            scratch.odd_clusters += 1;
            scratch.heap.push(GrowItem {
                dist: 0.0,
                node: d,
                src: d,
            });
        }
        let mut growth_steps = 0u64;
        let mut odd_peak = scratch.odd_clusters as u64;
        while let Some(GrowItem {
            dist: dcur,
            node,
            src,
        }) = scratch.heap.pop()
        {
            growth_steps += 1;
            odd_peak = odd_peak.max(scratch.odd_clusters as u64);
            if scratch.owner[node] != src && scratch.owner[node] != usize::MAX {
                continue;
            }
            if node == boundary_node {
                continue;
            }
            for &(nb, w, obs) in &self.adjacency[node] {
                let nbi = if nb == BOUNDARY { boundary_node } else { nb };
                let nd = dcur + w;
                if scratch.owner[nbi] == usize::MAX {
                    scratch.touched.push(nbi);
                    scratch.owner[nbi] = src;
                    scratch.dist[nbi] = nd;
                    scratch.path_parity[nbi] = scratch.path_parity[node] ^ obs;
                    scratch.union(src, nbi);
                    if nbi != boundary_node {
                        scratch.heap.push(GrowItem {
                            dist: nd,
                            node: nbi,
                            src,
                        });
                    }
                } else if scratch.find(scratch.owner[nbi]) != scratch.find(src) {
                    // Two regions touch: merge their clusters and record
                    // the contact (total path defect->defect parity).
                    let contact_parity = scratch.path_parity[node] ^ obs ^ scratch.path_parity[nbi];
                    let contact_dist = nd + scratch.dist[nbi];
                    let other = scratch.owner[nbi];
                    scratch.union(src, other);
                    scratch.contacts[src].push((other, contact_dist, contact_parity));
                    scratch.contacts[other].push((src, contact_dist, contact_parity));
                }
            }
            // Stop early if every defect's cluster is neutral. The
            // incrementally maintained odd-cluster count hits zero at
            // exactly the same pop as the original per-defect
            // `is_neutral` re-scan, without the O(defects) walk.
            if scratch.odd_clusters == 0 {
                break;
            }
        }
        // Boundary contact: a region that reached the boundary records a
        // contact to the virtual boundary defect for its owner.
        if scratch.owner[boundary_node] != usize::MAX {
            let d = scratch.owner[boundary_node];
            let bc = (
                boundary_node,
                scratch.dist[boundary_node],
                scratch.path_parity[boundary_node],
            );
            scratch.contacts[d].push(bc);
        }
        (growth_steps, odd_peak)
    }

    /// Predicts the logical flip by pairing defects within clusters along
    /// the recorded contact forest.
    fn pair_and_predict(&self, defects: &[usize], scratch: &mut UfScratch) -> bool {
        let boundary_node = self.num_nodes;
        // Group defects by cluster root: stable-sorted (root, defect)
        // pairs give the same ascending-root, insertion-ordered grouping
        // a BTreeMap<root, Vec<defect>> would, without the tree.
        scratch.roots.clear();
        for &d in defects {
            let r = scratch.find(d);
            scratch.roots.push((r, d));
        }
        stable_sort_by(&mut scratch.roots, |a, b| a.0 < b.0);
        let mut flip = false;
        let mut i = 0;
        while i < scratch.roots.len() {
            let mut j = i + 1;
            while j < scratch.roots.len() && scratch.roots[j].0 == scratch.roots[i].0 {
                j += 1;
            }
            // Pair members greedily along contact edges (spanning-tree
            // peeling): repeatedly take the cheapest contact between two
            // unpaired members; leftovers go to the boundary contact.
            scratch.pairs.clear();
            for k in i..j {
                let m = scratch.roots[k].1;
                scratch.unpaired[m] = true;
                for &(other, d, p) in &scratch.contacts[m] {
                    if other != boundary_node && m < other {
                        scratch.pairs.push((m, other, d, p));
                    }
                }
            }
            stable_sort_by(&mut scratch.pairs, |a, b| {
                a.2.partial_cmp(&b.2).unwrap_or(Ordering::Equal) == Ordering::Less
            });
            for idx in 0..scratch.pairs.len() {
                let (a, b, _, p) = scratch.pairs[idx];
                if scratch.unpaired[a] && scratch.unpaired[b] {
                    scratch.unpaired[a] = false;
                    scratch.unpaired[b] = false;
                    flip ^= p;
                }
            }
            // Remaining defects: send to boundary via their recorded (or
            // nearest) boundary parity.
            for k in i..j {
                let m = scratch.roots[k].1;
                if scratch.unpaired[m] {
                    scratch.unpaired[m] = false;
                    let recorded = scratch.contacts[m]
                        .iter()
                        .find(|(other, _, _)| *other == boundary_node)
                        .map(|&(_, _, p)| p);
                    match recorded {
                        Some(p) => flip ^= p,
                        // Fall back to a direct Dijkstra to the boundary.
                        None => flip ^= self.boundary_parity(m, scratch),
                    }
                }
            }
            i = j;
        }
        flip
    }

    /// Dijkstra fallback: observable parity of the shortest path from a
    /// node to the boundary. Pure in the graph and `src`, so answers are
    /// memoized in the scratch across decodes.
    fn boundary_parity(&self, src: usize, scratch: &mut UfScratch) -> bool {
        match scratch.bp_memo[src] {
            1 => return false,
            2 => return true,
            _ => {}
        }
        let parity = self.boundary_parity_dijkstra(src, scratch);
        scratch.bp_memo[src] = if parity { 2 } else { 1 };
        parity
    }

    fn boundary_parity_dijkstra(&self, src: usize, scratch: &mut UfScratch) -> bool {
        let n = self.num_nodes;
        scratch.bp_dist.fill(f64::INFINITY);
        scratch.bp_parity.fill(false);
        scratch.bp_heap.clear();
        scratch.bp_dist[src] = 0.0;
        scratch.bp_heap.push(GrowItem {
            dist: 0.0,
            node: src,
            src,
        });
        while let Some(GrowItem { dist: d, node, .. }) = scratch.bp_heap.pop() {
            if node == n {
                return scratch.bp_parity[n];
            }
            if d > scratch.bp_dist[node] {
                continue;
            }
            for &(nb, w, obs) in &self.adjacency[node] {
                let nbi = if nb == BOUNDARY { n } else { nb };
                if d + w < scratch.bp_dist[nbi] {
                    scratch.bp_dist[nbi] = d + w;
                    scratch.bp_parity[nbi] = scratch.bp_parity[node] ^ obs;
                    scratch.bp_heap.push(GrowItem {
                        dist: d + w,
                        node: nbi,
                        src,
                    });
                }
            }
        }
        false
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, defects: &[usize]) -> bool {
        if defects.is_empty() {
            return false;
        }
        let mut scratch = UfScratch::new(self.num_nodes);
        self.decode_with(defects, &mut scratch)
    }

    fn make_scratch(&self) -> DecoderScratch {
        DecoderScratch::UnionFind(Box::new(UfScratch::new(self.num_nodes)))
    }

    fn decode_batch(
        &self,
        defects_per_lane: &[Vec<usize>],
        scratch: &mut DecoderScratch,
        out: &mut [u64],
    ) {
        match scratch {
            DecoderScratch::UnionFind(s) if s.num_nodes == self.num_nodes => {
                // The span owns its own recorder handle, so the borrow
                // of `s` stays free for the per-lane decode loop.
                let _span = s.recorder.span(Metric::DecodeBatchNanos);
                let words = defects_per_lane.len().div_ceil(64);
                out[..words].fill(0);
                for (lane, defects) in defects_per_lane.iter().enumerate() {
                    if !defects.is_empty() && self.decode_with(defects, s) {
                        out[lane / 64] |= 1u64 << (lane % 64);
                    }
                }
            }
            _ => crate::decode_batch_fallback(self, defects_per_lane, out),
        }
    }
}

struct GrowItem {
    dist: f64,
    node: usize,
    src: usize,
}

impl PartialEq for GrowItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for GrowItem {}
impl PartialOrd for GrowItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GrowItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

impl std::fmt::Debug for GrowItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GrowItem")
            .field("dist", &self.dist)
            .field("node", &self.node)
            .field("src", &self.src)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DecodingGraph;
    use crate::mwpm::MwpmDecoder;
    use vlq_arch::params::HardwareParams;
    use vlq_circuit::noise::NoiseModel;
    use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

    fn graph_for(d: usize, p: f64) -> DecodingGraph {
        let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
        let mc = memory_circuit(spec, &HardwareParams::baseline());
        let noisy = NoiseModel::baseline_at_scale(p).apply(&mc.circuit);
        DecodingGraph::build(&noisy, &mc.z_detectors)
    }

    #[test]
    fn empty_defects_no_flip() {
        let g = graph_for(3, 1e-3);
        let dec = UnionFindDecoder::new(&g);
        assert!(!dec.decode(&[]));
    }

    #[test]
    fn agrees_with_mwpm_on_single_faults() {
        let g = graph_for(3, 1e-3);
        let uf = UnionFindDecoder::new(&g);
        let mw = MwpmDecoder::new(&g);
        for (&(a, b), _) in g.iter_edges() {
            let defects: Vec<usize> = if b == crate::graph::BOUNDARY {
                vec![a]
            } else {
                vec![a, b]
            };
            assert_eq!(
                uf.decode(&defects),
                mw.decode(&defects),
                "disagree on edge ({a},{b})"
            );
        }
    }

    #[test]
    fn mostly_agrees_with_mwpm_on_random_sparse_defects() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let g = graph_for(5, 2e-3);
        let uf = UnionFindDecoder::new(&g);
        let mw = MwpmDecoder::new(&g);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut agree = 0;
        let trials = 200;
        for _ in 0..trials {
            // Sparse random defect sets (2-4 defects).
            let k = rng.random_range(1..3usize) * 2;
            let mut defects: Vec<usize> = Vec::new();
            while defects.len() < k {
                let d = rng.random_range(0..g.num_nodes());
                if !defects.contains(&d) {
                    defects.push(d);
                }
            }
            if uf.decode(&defects) == mw.decode(&defects) {
                agree += 1;
            }
        }
        // UF is approximate, but on sparse defects it should agree with
        // MWPM the vast majority of the time.
        assert!(agree * 10 >= trials * 8, "agreement {agree}/{trials}");
    }

    /// A scratch reused across many decodes must give the same answer
    /// as a fresh scratch per decode (the touched-list reset is exact).
    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let g = graph_for(5, 2e-3);
        let uf = UnionFindDecoder::new(&g);
        let mut rng = SmallRng::seed_from_u64(17);
        let mut reused = UfScratch::new(g.num_nodes());
        for _ in 0..300 {
            let k = rng.random_range(0..7usize);
            let mut defects: Vec<usize> = Vec::new();
            while defects.len() < k {
                let d = rng.random_range(0..g.num_nodes());
                if !defects.contains(&d) {
                    defects.push(d);
                }
            }
            defects.sort_unstable();
            let fresh = uf.decode(&defects);
            let hot = if defects.is_empty() {
                false
            } else {
                uf.decode_with(&defects, &mut reused)
            };
            assert_eq!(fresh, hot, "defects {defects:?}");
        }
    }
}
