//! Pauli-frame simulation.
//!
//! A Pauli frame tracks the *difference* between the noisy run and the
//! ideal (noiseless) reference run of a Clifford circuit: a Pauli error on
//! each qubit, propagated through the circuit's Clifford gates. Because
//! reference measurement outcomes of the memory experiments are
//! deterministic, a frame determines every detection event directly.
//!
//! Two engines share the same gate semantics:
//!
//! * [`FrameBatch`] — bit-parallel over 64 shots per machine word; used
//!   for Monte-Carlo sampling.
//! * [`SingleFrame`] — one scalar frame; used to propagate individual
//!   faults deterministically when building the decoder's matching graph.
//!
//! Gate conjugation here is sign-free (frames live in the Pauli group
//! modulo phase); the phase-exact algebra lives in [`crate::tableau`].

use rand::Rng;
use vlq_math::BitVec;
use vlq_pauli::Pauli;

use crate::CliffordGate;

/// Visits the lanes selected by independent Bernoulli(p) draws, using
/// geometric skipping so the cost is proportional to the number of hits
/// rather than the number of lanes.
pub fn for_each_bernoulli_hit<R: Rng + ?Sized>(
    rng: &mut R,
    p: f64,
    n_lanes: usize,
    mut visit: impl FnMut(usize),
) {
    if p <= 0.0 || n_lanes == 0 {
        return;
    }
    if p >= 1.0 {
        for i in 0..n_lanes {
            visit(i);
        }
        return;
    }
    let ln_q = (1.0 - p).ln();
    let mut i = 0usize;
    loop {
        // u in (0, 1] so ln(u) is finite and <= 0.
        let u = 1.0 - rng.random::<f64>();
        let skip = (u.ln() / ln_q).floor();
        if !skip.is_finite() || skip >= (n_lanes - i) as f64 {
            return;
        }
        i += skip as usize;
        visit(i);
        i += 1;
        if i >= n_lanes {
            return;
        }
    }
}

/// A batch of Pauli frames, 64 shots per `u64` word.
///
/// # Examples
///
/// ```
/// use vlq_sim::{CliffordGate, FrameBatch};
///
/// let mut fb = FrameBatch::new(2, 64);
/// fb.set_pauli(0, 5, vlq_pauli::Pauli::X); // X error on qubit 0, shot 5
/// fb.apply(CliffordGate::Cnot(0, 1));      // propagates to qubit 1
/// let flips = fb.measure_z(1);
/// assert_eq!(flips[0], 1 << 5);
/// ```
#[derive(Clone, Debug)]
pub struct FrameBatch {
    n_qubits: usize,
    n_lanes: usize,
    words_per_qubit: usize,
    /// X bit-planes, `n_qubits * words_per_qubit` words.
    x: Vec<u64>,
    /// Z bit-planes.
    z: Vec<u64>,
    /// Reusable buffer of Bernoulli hit lanes for the noise channels.
    /// Hits must be collected *before* the per-hit Pauli draws — the
    /// skip draws and Pauli draws may not interleave or the RNG stream
    /// (and every golden pin downstream) changes — so the buffer is
    /// unavoidable; keeping it here makes steady-state noise
    /// application allocation-free.
    hits: Vec<usize>,
}

impl Default for FrameBatch {
    /// An empty (0-qubit, 0-lane) batch; reshape with
    /// [`FrameBatch::reset`] before use.
    fn default() -> Self {
        FrameBatch::new(0, 0)
    }
}

impl FrameBatch {
    /// Creates an all-identity frame batch.
    pub fn new(n_qubits: usize, n_lanes: usize) -> Self {
        let words_per_qubit = n_lanes.div_ceil(64).max(1);
        FrameBatch {
            n_qubits,
            n_lanes,
            words_per_qubit,
            x: vec![0; n_qubits * words_per_qubit],
            z: vec![0; n_qubits * words_per_qubit],
            hits: Vec::new(),
        }
    }

    /// Reinitializes to an all-identity batch of the given shape,
    /// reusing the existing plane buffers when their capacity allows —
    /// bit-identical to a fresh [`FrameBatch::new`], without the
    /// allocation once the batch has reached its high-water size.
    pub fn reset(&mut self, n_qubits: usize, n_lanes: usize) {
        let words_per_qubit = n_lanes.div_ceil(64).max(1);
        self.n_qubits = n_qubits;
        self.n_lanes = n_lanes;
        self.words_per_qubit = words_per_qubit;
        let len = n_qubits * words_per_qubit;
        self.x.clear();
        self.x.resize(len, 0);
        self.z.clear();
        self.z.resize(len, 0);
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of shot lanes.
    pub fn num_lanes(&self) -> usize {
        self.n_lanes
    }

    /// Clears every frame back to identity.
    pub fn clear(&mut self) {
        self.x.fill(0);
        self.z.fill(0);
    }

    #[inline]
    fn range(&self, q: usize) -> std::ops::Range<usize> {
        let w = self.words_per_qubit;
        q * w..(q + 1) * w
    }

    /// The Pauli carried by `(qubit, lane)`.
    pub fn pauli(&self, qubit: usize, lane: usize) -> Pauli {
        let w = self.words_per_qubit;
        let idx = qubit * w + lane / 64;
        let bit = 1u64 << (lane % 64);
        Pauli::from_xz(self.x[idx] & bit != 0, self.z[idx] & bit != 0)
    }

    /// Multiplies the given Pauli into `(qubit, lane)`.
    pub fn set_pauli(&mut self, qubit: usize, lane: usize, p: Pauli) {
        let w = self.words_per_qubit;
        let idx = qubit * w + lane / 64;
        let bit = 1u64 << (lane % 64);
        let (px, pz) = p.xz();
        if px {
            self.x[idx] ^= bit;
        }
        if pz {
            self.z[idx] ^= bit;
        }
    }

    /// Applies a Clifford gate to every lane at once.
    pub fn apply(&mut self, gate: CliffordGate) {
        use CliffordGate::*;
        match gate {
            H(q) => {
                let r = self.range(q);
                for i in r {
                    std::mem::swap(&mut self.x[i], &mut self.z[i]);
                }
            }
            S(q) | SDag(q) => {
                let r = self.range(q);
                for i in r {
                    self.z[i] ^= self.x[i];
                }
            }
            X(_) | Y(_) | Z(_) => {
                // Pauli gates commute with frames up to sign; no-op.
            }
            Cnot(c, t) => {
                let w = self.words_per_qubit;
                for k in 0..w {
                    self.x[t * w + k] ^= self.x[c * w + k];
                    self.z[c * w + k] ^= self.z[t * w + k];
                }
            }
            Cz(a, b) => {
                let w = self.words_per_qubit;
                for k in 0..w {
                    self.z[b * w + k] ^= self.x[a * w + k];
                    self.z[a * w + k] ^= self.x[b * w + k];
                }
            }
            Swap(a, b) => {
                let w = self.words_per_qubit;
                for k in 0..w {
                    self.x.swap(a * w + k, b * w + k);
                    self.z.swap(a * w + k, b * w + k);
                }
            }
            ISwap(a, b) => {
                // iSWAP = SWAP · CZ · (S⊗S).
                self.apply(CliffordGate::S(a));
                self.apply(CliffordGate::S(b));
                self.apply(CliffordGate::Cz(a, b));
                self.apply(CliffordGate::Swap(a, b));
            }
        }
    }

    /// Z-basis measurement: returns the per-lane outcome-flip words (the
    /// frame's X component on `qubit`). The frame itself is unchanged —
    /// call [`FrameBatch::reset_qubit`] afterwards for measure+reset ops.
    pub fn measure_z(&self, qubit: usize) -> Vec<u64> {
        self.x[self.range(qubit)].to_vec()
    }

    /// [`FrameBatch::measure_z`] into a caller-owned buffer (cleared
    /// first), so steady-state sampling reuses record storage.
    pub fn measure_z_into(&self, qubit: usize, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.x[self.range(qubit)]);
    }

    /// Measurement-projection gauge: XORs one fresh random word per
    /// lane word into the Z plane of `qubit` (a uniformly random Z on
    /// every lane). Draws exactly one `u64` per word, in word order;
    /// bits beyond `n_lanes` in the final partial word are masked off —
    /// a stray tail Z would propagate through H/CZ/iSWAP into the X
    /// planes and corrupt failure-word popcounts.
    pub fn randomize_z<R: Rng + ?Sized>(&mut self, qubit: usize, rng: &mut R) {
        let n = self.n_lanes;
        let r = self.range(qubit);
        let zs = &mut self.z[r];
        let last = zs.len() - 1;
        let tail = n % 64;
        for (w, zw) in zs.iter_mut().enumerate() {
            let mask: u64 = rng.random();
            let keep = if w < last || (tail == 0 && n > 0) {
                !0u64
            } else if tail == 0 {
                0 // n_lanes == 0: draw for stream parity, apply nothing
            } else {
                (1u64 << tail) - 1
            };
            *zw ^= mask & keep;
        }
    }

    /// Clears the frame on `qubit` (after a reset the qubit's error is
    /// gone by definition).
    pub fn reset_qubit(&mut self, qubit: usize) {
        let r = self.range(qubit);
        self.x[r.clone()].fill(0);
        self.z[r].fill(0);
    }

    /// The packed X-component words of `qubit` (one bit per lane).
    pub fn x_words(&self, qubit: usize) -> &[u64] {
        &self.x[self.range(qubit)]
    }

    /// The packed Z-component words of `qubit`.
    pub fn z_words(&self, qubit: usize) -> &[u64] {
        &self.z[self.range(qubit)]
    }

    /// XORs packed per-lane X flips into `qubit` (logical-level error
    /// injection: one bit per lane, e.g. a block of decoded syndrome
    /// rounds whose residual was a logical X).
    pub fn xor_x_words(&mut self, qubit: usize, flips: &[u64]) {
        let r = self.range(qubit);
        for (dst, src) in self.x[r].iter_mut().zip(flips) {
            *dst ^= src;
        }
    }

    /// XORs packed per-lane Z flips into `qubit`.
    pub fn xor_z_words(&mut self, qubit: usize, flips: &[u64]) {
        let r = self.range(qubit);
        for (dst, src) in self.z[r].iter_mut().zip(flips) {
            *dst ^= src;
        }
    }

    /// Depolarizing noise on one qubit: with probability `p` per lane,
    /// multiplies a uniformly random non-identity Pauli into the frame.
    pub fn apply_1q_noise<R: Rng + ?Sized>(&mut self, qubit: usize, p: f64, rng: &mut R) {
        let n = self.n_lanes;
        let w = self.words_per_qubit;
        // All skip draws happen before any Pauli draw (see `hits` docs).
        self.hits.clear();
        let hits = &mut self.hits;
        for_each_bernoulli_hit(rng, p, n, |lane| hits.push(lane));
        for &lane in &self.hits {
            let which = rng.random_range(0..3u8);
            let idx = qubit * w + lane / 64;
            let bit = 1u64 << (lane % 64);
            match which {
                0 => self.x[idx] ^= bit, // X
                1 => self.z[idx] ^= bit, // Z
                _ => {
                    self.x[idx] ^= bit; // Y
                    self.z[idx] ^= bit;
                }
            }
        }
    }

    /// Two-qubit depolarizing noise: with probability `p` per lane,
    /// multiplies a uniformly random non-identity two-qubit Pauli (1 of
    /// 15) into the frame.
    pub fn apply_2q_noise<R: Rng + ?Sized>(&mut self, a: usize, b: usize, p: f64, rng: &mut R) {
        let n = self.n_lanes;
        let w = self.words_per_qubit;
        // All skip draws happen before any Pauli draw (see `hits` docs).
        self.hits.clear();
        let hits = &mut self.hits;
        for_each_bernoulli_hit(rng, p, n, |lane| hits.push(lane));
        for &lane in &self.hits {
            // 1..16 encodes (pa, pb) != (I, I) via two 2-bit fields.
            let code = rng.random_range(1..16u8);
            let pa = code & 0b11;
            let pb = code >> 2;
            let word = lane / 64;
            let bit = 1u64 << (lane % 64);
            if pa & 0b01 != 0 {
                self.x[a * w + word] ^= bit;
            }
            if pa & 0b10 != 0 {
                self.z[a * w + word] ^= bit;
            }
            if pb & 0b01 != 0 {
                self.x[b * w + word] ^= bit;
            }
            if pb & 0b10 != 0 {
                self.z[b * w + word] ^= bit;
            }
        }
    }

    /// XORs Bernoulli(p) flips into a measurement record (classical
    /// readout error).
    pub fn apply_record_noise<R: Rng + ?Sized>(
        record: &mut [u64],
        n_lanes: usize,
        p: f64,
        rng: &mut R,
    ) {
        for_each_bernoulli_hit(rng, p, n_lanes, |lane| {
            record[lane / 64] ^= 1u64 << (lane % 64);
        });
    }
}

/// A single scalar Pauli frame over `n` qubits, for deterministic fault
/// propagation.
///
/// # Examples
///
/// ```
/// use vlq_sim::{CliffordGate, SingleFrame};
/// use vlq_pauli::Pauli;
///
/// let mut f = SingleFrame::new(3);
/// f.mul_pauli(0, Pauli::X);
/// f.apply(CliffordGate::Cnot(0, 1));
/// assert_eq!(f.pauli(1), Pauli::X);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SingleFrame {
    x: BitVec,
    z: BitVec,
}

impl SingleFrame {
    /// Identity frame on `n` qubits.
    pub fn new(n: usize) -> Self {
        SingleFrame {
            x: BitVec::zeros(n),
            z: BitVec::zeros(n),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the frame is the identity.
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.z.is_zero()
    }

    /// The Pauli on `qubit`.
    pub fn pauli(&self, qubit: usize) -> Pauli {
        Pauli::from_xz(self.x.get(qubit), self.z.get(qubit))
    }

    /// Multiplies `p` into the frame at `qubit`.
    pub fn mul_pauli(&mut self, qubit: usize, p: Pauli) {
        let (px, pz) = p.xz();
        if px {
            self.x.flip(qubit);
        }
        if pz {
            self.z.flip(qubit);
        }
    }

    /// X component at `qubit` (flips Z-basis measurements).
    pub fn x_bit(&self, qubit: usize) -> bool {
        self.x.get(qubit)
    }

    /// Z component at `qubit`.
    pub fn z_bit(&self, qubit: usize) -> bool {
        self.z.get(qubit)
    }

    /// Clears the frame at `qubit`.
    pub fn reset_qubit(&mut self, qubit: usize) {
        self.x.set(qubit, false);
        self.z.set(qubit, false);
    }

    /// Applies a Clifford gate (same semantics as [`FrameBatch`]).
    pub fn apply(&mut self, gate: CliffordGate) {
        use CliffordGate::*;
        match gate {
            H(q) => {
                let (xb, zb) = (self.x.get(q), self.z.get(q));
                self.x.set(q, zb);
                self.z.set(q, xb);
            }
            S(q) | SDag(q) => {
                if self.x.get(q) {
                    self.z.flip(q);
                }
            }
            X(_) | Y(_) | Z(_) => {}
            Cnot(c, t) => {
                if self.x.get(c) {
                    self.x.flip(t);
                }
                if self.z.get(t) {
                    self.z.flip(c);
                }
            }
            Cz(a, b) => {
                if self.x.get(a) {
                    self.z.flip(b);
                }
                if self.x.get(b) {
                    self.z.flip(a);
                }
            }
            Swap(a, b) => {
                let (xa, za) = (self.x.get(a), self.z.get(a));
                let (xb, zb) = (self.x.get(b), self.z.get(b));
                self.x.set(a, xb);
                self.z.set(a, zb);
                self.x.set(b, xa);
                self.z.set(b, za);
            }
            ISwap(a, b) => {
                self.apply(CliffordGate::S(a));
                self.apply(CliffordGate::S(b));
                self.apply(CliffordGate::Cz(a, b));
                self.apply(CliffordGate::Swap(a, b));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn single_frame_cnot_propagation() {
        // X on control copies to target; Z on target copies to control.
        let mut f = SingleFrame::new(2);
        f.mul_pauli(0, Pauli::X);
        f.apply(CliffordGate::Cnot(0, 1));
        assert_eq!(f.pauli(0), Pauli::X);
        assert_eq!(f.pauli(1), Pauli::X);

        let mut f = SingleFrame::new(2);
        f.mul_pauli(1, Pauli::Z);
        f.apply(CliffordGate::Cnot(0, 1));
        assert_eq!(f.pauli(0), Pauli::Z);
        assert_eq!(f.pauli(1), Pauli::Z);
    }

    #[test]
    fn single_frame_h_exchanges_xz() {
        let mut f = SingleFrame::new(1);
        f.mul_pauli(0, Pauli::X);
        f.apply(CliffordGate::H(0));
        assert_eq!(f.pauli(0), Pauli::Z);
        f.apply(CliffordGate::H(0));
        assert_eq!(f.pauli(0), Pauli::X);
        // Y is preserved.
        let mut f = SingleFrame::new(1);
        f.mul_pauli(0, Pauli::Y);
        f.apply(CliffordGate::H(0));
        assert_eq!(f.pauli(0), Pauli::Y);
    }

    #[test]
    fn iswap_mixes_sectors() {
        // An X error on the transmon becomes a Y-component on the mode
        // after a load (iSWAP) — this is why both decoding sectors see it.
        let mut f = SingleFrame::new(2);
        f.mul_pauli(0, Pauli::X);
        f.apply(CliffordGate::ISwap(0, 1));
        assert_eq!(f.pauli(0), Pauli::Z);
        assert_eq!(f.pauli(1), Pauli::Y);
    }

    /// Frames agree with tableau conjugation modulo sign for all gates and
    /// all single-Pauli inputs.
    #[test]
    fn frame_matches_tableau_conjugation() {
        use crate::tableau::conjugate_row;
        use vlq_pauli::PauliString;
        let gates = [
            CliffordGate::H(0),
            CliffordGate::S(0),
            CliffordGate::SDag(1),
            CliffordGate::Cnot(0, 1),
            CliffordGate::Cz(0, 1),
            CliffordGate::Swap(0, 1),
            CliffordGate::ISwap(0, 1),
        ];
        for gate in gates {
            for pa in Pauli::ALL {
                for pb in Pauli::ALL {
                    let mut frame = SingleFrame::new(2);
                    frame.mul_pauli(0, pa);
                    frame.mul_pauli(1, pb);
                    frame.apply(gate);

                    let mut row = PauliString::identity(2);
                    row.set_pauli(0, pa);
                    row.set_pauli(1, pb);
                    conjugate_row(&mut row, gate);

                    assert_eq!(
                        (frame.pauli(0), frame.pauli(1)),
                        (row.pauli(0), row.pauli(1)),
                        "gate {gate:?} on ({pa:?},{pb:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn batch_matches_single_frame() {
        let mut rng = SmallRng::seed_from_u64(11);
        use rand::Rng;
        let n = 5;
        let lanes = 130;
        let mut batch = FrameBatch::new(n, lanes);
        let mut singles: Vec<SingleFrame> = (0..lanes).map(|_| SingleFrame::new(n)).collect();
        // Random initial errors.
        for (lane, single) in singles.iter_mut().enumerate() {
            for q in 0..n {
                let p = Pauli::ALL[rng.random_range(0..4usize)];
                single.mul_pauli(q, p);
                batch.set_pauli(q, lane, p);
            }
        }
        let gates = [
            CliffordGate::H(0),
            CliffordGate::Cnot(0, 1),
            CliffordGate::ISwap(1, 2),
            CliffordGate::Cz(2, 3),
            CliffordGate::Swap(3, 4),
            CliffordGate::S(4),
        ];
        for g in gates {
            batch.apply(g);
            for s in &mut singles {
                s.apply(g);
            }
        }
        for (lane, s) in singles.iter().enumerate() {
            for q in 0..n {
                assert_eq!(batch.pauli(q, lane), s.pauli(q), "lane {lane}, qubit {q}");
            }
        }
    }

    #[test]
    fn measure_and_reset() {
        let mut fb = FrameBatch::new(2, 100);
        fb.set_pauli(0, 3, Pauli::X);
        fb.set_pauli(0, 64, Pauli::Y);
        fb.set_pauli(0, 65, Pauli::Z); // Z does not flip a Z measurement
        let rec = fb.measure_z(0);
        assert_eq!(rec[0], 1 << 3);
        assert_eq!(rec[1], 1 << 0);
        fb.reset_qubit(0);
        assert_eq!(fb.pauli(0, 3), Pauli::I);
        assert_eq!(fb.pauli(0, 64), Pauli::I);
    }

    #[test]
    fn word_level_injection_matches_per_lane() {
        let mut a = FrameBatch::new(2, 130);
        let mut b = FrameBatch::new(2, 130);
        let flips = [0b1011u64, 0, 1 << 1];
        a.xor_x_words(1, &flips);
        a.xor_z_words(0, &flips);
        for (w, word) in flips.iter().enumerate() {
            for bit in 0..64 {
                if word >> bit & 1 == 1 {
                    b.set_pauli(1, w * 64 + bit, Pauli::X);
                    b.set_pauli(0, w * 64 + bit, Pauli::Z);
                }
            }
        }
        assert_eq!(a.x_words(1), b.x_words(1));
        assert_eq!(a.z_words(0), b.z_words(0));
        // Double injection cancels (XOR semantics).
        a.xor_x_words(1, &flips);
        assert_eq!(a.x_words(1), &[0, 0, 0]);
    }

    #[test]
    fn bernoulli_hit_statistics() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 10_000;
        let p = 0.05;
        let mut count = 0usize;
        let reps = 20;
        for _ in 0..reps {
            for_each_bernoulli_hit(&mut rng, p, n, |_| count += 1);
        }
        let mean = count as f64 / reps as f64;
        let expected = p * n as f64; // 500
                                     // 5-sigma tolerance: sigma ~ sqrt(n p (1-p) / reps) ~ 4.9.
        assert!(
            (mean - expected).abs() < 5.0 * (n as f64 * p * (1.0 - p) / reps as f64).sqrt(),
            "mean {mean} too far from {expected}"
        );
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut hits = vec![];
        for_each_bernoulli_hit(&mut rng, 0.0, 100, |i| hits.push(i));
        assert!(hits.is_empty());
        for_each_bernoulli_hit(&mut rng, 1.0, 5, |i| hits.push(i));
        assert_eq!(hits, vec![0, 1, 2, 3, 4]);
        for_each_bernoulli_hit(&mut rng, 0.5, 0, |i| hits.push(i));
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn noise_rates_are_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let lanes = 64 * 2000;
        let mut fb = FrameBatch::new(1, lanes);
        fb.apply_1q_noise(0, 0.01, &mut rng);
        let errors = (0..lanes).filter(|&l| fb.pauli(0, l) != Pauli::I).count();
        let expected = 0.01 * lanes as f64;
        assert!(
            (errors as f64 - expected).abs() < 5.0 * (lanes as f64 * 0.01f64).sqrt(),
            "errors {errors} vs expected {expected}"
        );
        // All three Paulis occur.
        let mut seen = std::collections::HashSet::new();
        for l in 0..lanes {
            let p = fb.pauli(0, l);
            if p != Pauli::I {
                seen.insert(p);
            }
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn two_qubit_noise_hits_both_qubits() {
        let mut rng = SmallRng::seed_from_u64(5);
        let lanes = 64 * 1000;
        let mut fb = FrameBatch::new(2, lanes);
        fb.apply_2q_noise(0, 1, 0.05, &mut rng);
        let mut pair_kinds = std::collections::HashSet::new();
        for l in 0..lanes {
            let pair = (fb.pauli(0, l), fb.pauli(1, l));
            if pair != (Pauli::I, Pauli::I) {
                pair_kinds.insert(pair);
            }
        }
        // All 15 non-identity pairs should appear at this sample size.
        assert_eq!(pair_kinds.len(), 15);
    }

    /// Pins the exact RNG draw order of the noise channels: captured
    /// from the pre-scratch-buffer implementation (hits collected into
    /// a fresh `Vec` per call). The reusable buffer must not change a
    /// single bit or consume a single extra draw.
    #[test]
    fn noise_golden_rng_stream_is_unchanged() {
        let mut fb = FrameBatch::new(3, 130);
        let mut rng = SmallRng::seed_from_u64(1234);
        fb.apply_1q_noise(0, 0.07, &mut rng);
        fb.apply_2q_noise(1, 2, 0.05, &mut rng);
        fb.apply_1q_noise(2, 0.3, &mut rng);
        assert_eq!(fb.x_words(0), &[134742016, 4328521920, 0]);
        assert_eq!(fb.z_words(0), &[524288, 137438953536, 0]);
        assert_eq!(fb.x_words(1), &[4398046511120, 25165824, 0]);
        assert_eq!(fb.z_words(1), &[4398046511104, 2305843009230471233, 0]);
        assert_eq!(fb.x_words(2), &[9047333040586752, 46724919736402441, 0]);
        assert_eq!(fb.z_words(2), &[36139299548475394, 6955246743269146688, 0]);
        // The RNG must land in the identical state (no extra draws).
        use rand::Rng;
        assert_eq!(rng.random::<u64>(), 16532659614797596628);
    }

    /// The masked word-XOR gauge randomization consumes the same draws
    /// as the old per-bit loop and produces the same planes.
    #[test]
    fn randomize_z_matches_per_bit_reference() {
        use rand::Rng;
        for lanes in [1usize, 63, 64, 65, 130, 192] {
            let mut fast = FrameBatch::new(2, lanes);
            let mut slow = FrameBatch::new(2, lanes);
            let mut rng_a = SmallRng::seed_from_u64(77);
            let mut rng_b = SmallRng::seed_from_u64(77);
            fast.randomize_z(1, &mut rng_a);
            let words = lanes.div_ceil(64).max(1);
            for w in 0..words {
                let mask: u64 = rng_b.random();
                for bit in 0..64 {
                    if mask >> bit & 1 == 1 {
                        let lane = w * 64 + bit;
                        if lane < lanes {
                            slow.set_pauli(1, lane, Pauli::Z);
                        }
                    }
                }
            }
            assert_eq!(fast.z_words(1), slow.z_words(1), "lanes {lanes}");
            assert_eq!(fast.x_words(1), slow.x_words(1), "lanes {lanes}");
            assert_eq!(rng_a.random::<u64>(), rng_b.random::<u64>());
        }
    }

    #[test]
    fn record_noise_flips_bits() {
        let mut rng = SmallRng::seed_from_u64(9);
        let lanes = 6400;
        let mut record = vec![0u64; lanes / 64];
        FrameBatch::apply_record_noise(&mut record, lanes, 0.1, &mut rng);
        let flips: u32 = record.iter().map(|w| w.count_ones()).sum();
        assert!(flips > 400 && flips < 900, "flips {flips}");
    }
}
