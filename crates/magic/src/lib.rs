//! Magic-state distillation on the VLQ architecture (paper §VII).
//!
//! Two halves:
//!
//! * [`distill`] — the 15-to-1 T-state distillation protocol on the
//!   15-qubit quantum Reed-Muller code, with an *exact* GF(2) analysis
//!   of its output error (`p_out ≈ 35 p^3`) and acceptance rate.
//! * [`factory`] — throughput/space models of the three factory layouts
//!   the paper compares: Fast Lattice (Litinski's speed-optimized
//!   surgery), Small Lattice (Litinski's space-optimized surgery), and
//!   VQubits (the paper's single-stack factory using transversal CNOTs),
//!   reproducing Figure 13 and Table II.

pub mod distill;
pub mod factory;

pub use distill::{distillation_stats, DistillationStats};
pub use factory::{FactoryProtocol, ProtocolKind};
