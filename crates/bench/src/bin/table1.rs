//! Regenerates Table I: hardware parameters of the two device models.
//!
//! With `--out <dir>`, writes `table1.csv` / `table1.jsonl` artifacts
//! (values in SI seconds, `null`/empty for absent parameters).

use std::path::PathBuf;

use vlq_arch::HardwareParams;
use vlq_bench::{finish_telemetry, telemetry_from_args, Args};
use vlq_sweep::artifact::{Table, Value};

const USAGE: &str = "\
usage: table1 [--out DIR] [--shard I/N] [--telemetry PATH]
  --out    write table1.csv and table1.jsonl artifacts into DIR
  --shard  write only artifact rows with row index % N == I (merge the
           shard directories back with sweep-merge)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH (table1 is
               analytic, so its counters are all zero)";

fn main() {
    let args = Args::parse_validated(USAGE, &["out", "shard", "telemetry"], &[]);
    let shard = vlq_bench::shard_from_args(&args, USAGE);
    let out_dir: Option<PathBuf> = args.pairs_get("out").map(PathBuf::from);
    let (recorder, telemetry_path) = telemetry_from_args(&args);
    finish_telemetry(&recorder, telemetry_path.as_deref(), "table1", 0);

    let b = HardwareParams::baseline();
    let m = HardwareParams::with_memory();
    let mut table = Table::new(["parameter", "baseline_transmons", "transmons_with_memory"]);
    println!("Table I: starting-point coherence times and constant gate times");
    println!(
        "{:<28} {:>18} {:>22}",
        "Parameter", "Baseline Transmons", "Transmons with Memory"
    );
    let mut row = |name: &str, bv: f64, mv: f64, unit: &str, scale: f64| {
        let fmt = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else if v.is_infinite() {
                "inf".to_string()
            } else {
                format!("{:.0} {unit}", v * scale)
            }
        };
        println!("{:<28} {:>18} {:>22}", name, fmt(bv), fmt(mv));
        // Artifact rows carry raw SI values; NaN renders as null/empty.
        let cell = |v: f64| {
            if v.is_nan() {
                Value::Null
            } else {
                Value::Num(v)
            }
        };
        table.row([name.into(), cell(bv), cell(mv)]);
    };
    row(
        "T1,t (transmon T1)",
        b.t1_transmon,
        m.t1_transmon,
        "us",
        1e6,
    );
    row("T1,c (cavity T1)", b.t1_cavity, m.t1_cavity, "us", 1e6);
    row(
        "dt-t (2q SC-SC gate)",
        b.t_gate_2q_tt,
        m.t_gate_2q_tt,
        "ns",
        1e9,
    );
    row("dt (1q gate)", b.t_gate_1q, m.t_gate_1q, "ns", 1e9);
    row(
        "dt-m (2q SC-mode gate)",
        b.t_gate_2q_tm,
        m.t_gate_2q_tm,
        "ns",
        1e9,
    );
    row(
        "dl/s (load/store)",
        b.t_load_store,
        m.t_load_store,
        "ns",
        1e9,
    );
    println!();
    println!(
        "Assumed beyond Table I (see DESIGN.md): t_measure = {:.0} ns, t_reset = {:.0} ns",
        m.t_measure * 1e9,
        m.t_reset * 1e9
    );
    println!("Paper values: T1,t 100 us | T1,c 1 ms | 200 ns | 50 ns | 200 ns | 150 ns");

    if let Some(dir) = &out_dir {
        table
            .shard(shard)
            .write_dir(dir, "table1")
            .expect("write table1");
        println!(
            "artifacts: table1.csv and table1.jsonl in {}",
            dir.display()
        );
    }
}
