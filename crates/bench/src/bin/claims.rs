//! Checks the paper's headline architectural claims (DESIGN.md items C1,
//! C2, A2): transversal CNOT speed and verification, hardware savings,
//! smallest Compact instance, and the merge-direction connectivity
//! ablation.
//!
//! With `--out <dir>`, writes `claims.csv` / `claims.jsonl` artifacts:
//! one row per checked quantity with the computed value, the expected
//! value (where the paper pins one), and a pass flag.

use std::path::PathBuf;

use vlq_arch::geometry::{patch_cost, transmon_savings_vs_baseline, Embedding};
use vlq_bench::{finish_telemetry, telemetry_from_args, Args};
use vlq_surface::embedding::compact_interaction_graph;
use vlq_surface::layout::SurfaceLayout;
use vlq_surgery::{
    verify_transversal_cnot_statevector, verify_transversal_cnot_tableau, LogicalOp,
};
use vlq_sweep::artifact::{Table, Value};

const USAGE: &str = "\
usage: claims [--out DIR] [--shard I/N] [--telemetry PATH]
  --out    write claims.csv and claims.jsonl artifacts into DIR
  --shard  write only artifact rows with row index % N == I (merge the
           shard directories back with sweep-merge)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH (claims is
               analytic, so its counters are all zero)";

fn main() {
    let args = Args::parse_validated(USAGE, &["out", "shard", "telemetry"], &[]);
    let shard = vlq_bench::shard_from_args(&args, USAGE);
    let (recorder, telemetry_path) = telemetry_from_args(&args);
    finish_telemetry(&recorder, telemetry_path.as_deref(), "claims", 0);
    let out_dir: Option<PathBuf> = args.pairs_get("out").map(PathBuf::from);
    let mut table = Table::new(["claim", "quantity", "value", "expected", "pass"]);

    println!("== C1: transversal CNOT ==");
    let t_trans = LogicalOp::TransversalCnot.timesteps();
    let t_ls = LogicalOp::LatticeSurgeryCnot.timesteps();
    println!(
        "latency: transversal = {t_trans} timestep, lattice surgery = {t_ls} timesteps ({}x)",
        LogicalOp::transversal_speedup()
    );
    table.row([
        "C1".into(),
        "transversal_cnot_timesteps".into(),
        t_trans.into(),
        1usize.into(),
        (t_trans == 1).into(),
    ]);
    table.row([
        "C1".into(),
        "lattice_surgery_cnot_timesteps".into(),
        t_ls.into(),
        Value::Null,
        (t_ls > t_trans).into(),
    ]);
    verify_transversal_cnot_tableau(3).expect("tableau process check d=3");
    verify_transversal_cnot_tableau(5).expect("tableau process check d=5");
    let f = verify_transversal_cnot_statevector(3);
    println!("process verification: tableau exact at d=3,5; statevector tomography d=3 min fidelity = {f:.12}");
    table.row([
        "C1".into(),
        "statevector_min_fidelity_d3".into(),
        f.into(),
        1.0.into(),
        ((f - 1.0).abs() < 1e-9).into(),
    ]);

    println!("\n== C2: hardware savings ==");
    for d in [3usize, 5, 7] {
        let nat = patch_cost(Embedding::Natural, d, 10);
        let com = patch_cost(Embedding::Compact, d, 10);
        let sav_nat = transmon_savings_vs_baseline(Embedding::Natural, d, 10);
        let sav_com = transmon_savings_vs_baseline(Embedding::Compact, d, 10);
        println!(
            "d={d}: natural {} transmons + {} cavities | compact {} transmons + {} cavities | savings {:.1}x / {:.1}x",
            nat.transmons, nat.cavities, com.transmons, com.cavities, sav_nat, sav_com,
        );
        table.row([
            "C2".into(),
            format!("transmon_savings_natural_d{d}").into(),
            sav_nat.into(),
            Value::Null,
            (sav_nat > 1.0).into(),
        ]);
        table.row([
            "C2".into(),
            format!("transmon_savings_compact_d{d}").into(),
            sav_com.into(),
            Value::Null,
            (sav_com > sav_nat).into(),
        ]);
    }
    let c = patch_cost(Embedding::Compact, 3, 10);
    println!(
        "smallest Compact instance: {} transmons, {} cavities for ~10 logical qubits (paper: 11 and 9)",
        c.transmons, c.cavities
    );
    assert_eq!((c.transmons, c.cavities), (11, 9));
    table.row([
        "C2".into(),
        "smallest_compact_transmons".into(),
        c.transmons.into(),
        11usize.into(),
        (c.transmons == 11).into(),
    ]);
    table.row([
        "C2".into(),
        "smallest_compact_cavities".into(),
        c.cavities.into(),
        9usize.into(),
        (c.cavities == 9).into(),
    ]);

    println!("\n== A2: merge-direction ablation (paper SIII-C) ==");
    for d in [5usize, 7] {
        let layout = SurfaceLayout::new(d);
        let paper = compact_interaction_graph(&layout, false);
        let naive = compact_interaction_graph(&layout, true);
        println!(
            "d={d}: paper pairing max degree {} ({} directions) | naive same-corner max degree {} ({} directions)",
            paper.max_degree(),
            paper.num_edge_directions(),
            naive.max_degree(),
            naive.num_edge_directions(),
        );
        assert!(paper.max_degree() <= 4);
        assert!(naive.max_degree() > 4);
        table.row([
            "A2".into(),
            format!("paper_pairing_max_degree_d{d}").into(),
            paper.max_degree().into(),
            Value::Null,
            (paper.max_degree() <= 4).into(),
        ]);
        table.row([
            "A2".into(),
            format!("naive_pairing_max_degree_d{d}").into(),
            naive.max_degree().into(),
            Value::Null,
            (naive.max_degree() > 4).into(),
        ]);
    }
    println!("\nAll claims verified.");

    if let Some(dir) = &out_dir {
        table
            .shard(shard)
            .write_dir(dir, "claims")
            .expect("write claims");
        println!(
            "artifacts: claims.csv and claims.jsonl in {}",
            dir.display()
        );
    }
}
