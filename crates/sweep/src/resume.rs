//! Resuming sweeps from existing JSON-lines artifacts.
//!
//! Deterministic per-point seeding means a grid point's result depends
//! only on the spec and the base seed — never on which run computed it.
//! A [`ResumeCache`] therefore lets a figure binary skip every grid
//! point already present in a previous `--out` artifact and still emit
//! byte-identical final artifacts: cached points are emitted from the
//! cache, missing points are computed, and the merged record stream is
//! written in expansion order as usual.
//!
//! The vendored `serde` is a no-op facade, so the JSONL rows (flat
//! objects of strings/numbers/nulls/bools, written by
//! [`crate::sink::JsonlSink`]) are parsed by hand.

use std::collections::HashMap;
use std::io::{self, BufRead};
use std::path::Path;

use crate::spec::SweepPoint;

/// The identity of a completed grid point, as recoverable from one
/// artifact row. `shots` and the sweep's base `seed` are part of the
/// key: a record with a different shot count — or sampled under a
/// different seed — is not a valid substitute.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ResumeKey {
    setup: String,
    basis: String,
    d: u64,
    /// Bit pattern of the physical error rate (exact float identity).
    p_bits: u64,
    k: u64,
    rounds: u64,
    decoder: String,
    knob: Option<(String, u64)>,
    program: Option<String>,
    shots: u64,
    seed: u64,
}

impl ResumeKey {
    /// The key a sweep point will be recorded under when run with
    /// `base_seed`.
    pub fn of_point(pt: &SweepPoint, base_seed: u64) -> Self {
        ResumeKey {
            setup: pt.setup.to_string(),
            basis: match pt.basis {
                vlq_surface::schedule::Basis::Z => "z".to_string(),
                vlq_surface::schedule::Basis::X => "x".to_string(),
            },
            d: pt.d as u64,
            p_bits: pt.p.to_bits(),
            k: pt.k as u64,
            rounds: pt.rounds.unwrap_or(pt.d) as u64,
            decoder: pt.decoder.name().to_string(),
            knob: pt
                .knob
                .as_ref()
                .map(|kn| (kn.name.clone(), kn.value.to_bits())),
            program: pt.program.clone(),
            shots: pt.shots,
            seed: base_seed,
        }
    }
}

/// Completed points loaded from a previous artifact: key → failures.
#[derive(Clone, Debug, Default)]
pub struct ResumeCache {
    completed: HashMap<ResumeKey, u64>,
}

impl ResumeCache {
    /// An empty cache (every point runs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// The cached failure count for a point, if its exact coordinates
    /// (including shots and the base seed) were completed before.
    pub fn failures_for(&self, pt: &SweepPoint, base_seed: u64) -> Option<u64> {
        self.completed
            .get(&ResumeKey::of_point(pt, base_seed))
            .copied()
    }

    /// Loads a cache from a `JsonlSink`-format artifact. Rows that
    /// don't parse as sweep records are skipped (robustness against
    /// truncated final lines from interrupted runs).
    ///
    /// # Errors
    ///
    /// I/O errors reading the file.
    pub fn load_jsonl(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let mut cache = ResumeCache::new();
        for line in io::BufReader::new(file).lines() {
            let line = line?;
            let Some(obj) = parse_flat_json(&line) else {
                continue;
            };
            let Some(key) = key_of_row(&obj) else {
                continue;
            };
            if let Some(JsonValue::Num(f)) = obj.get("failures") {
                cache.completed.insert(key, *f as u64);
            }
        }
        Ok(cache)
    }
}

fn key_of_row(obj: &HashMap<String, JsonValue>) -> Option<ResumeKey> {
    let s = |k: &str| -> Option<String> {
        match obj.get(k)? {
            JsonValue::Str(v) => Some(v.clone()),
            _ => None,
        }
    };
    let n = |k: &str| -> Option<f64> {
        match obj.get(k)? {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    };
    let knob = match (obj.get("knob"), obj.get("knob_value")) {
        (Some(JsonValue::Str(name)), Some(JsonValue::Num(v))) => Some((name.clone(), v.to_bits())),
        _ => None,
    };
    let program = match obj.get("program") {
        Some(JsonValue::Str(name)) => Some(name.clone()),
        _ => None,
    };
    Some(ResumeKey {
        setup: s("setup")?,
        basis: s("basis")?,
        d: n("d")? as u64,
        p_bits: n("p")?.to_bits(),
        k: n("k")? as u64,
        rounds: n("rounds")? as u64,
        decoder: s("decoder")?,
        knob,
        program,
        shots: n("shots")? as u64,
        // Rows from before the seed column existed don't parse — a
        // conservative full rerun beats silently mixing seeds.
        seed: n("seed")? as u64,
    })
}

/// A parsed flat-JSON value (no nested containers — the record schema
/// is flat by construction).
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

/// Parses one flat JSON object (`{"key":value,...}` with string,
/// number, boolean, and null values). Returns `None` on any syntax it
/// doesn't recognize.
fn parse_flat_json(line: &str) -> Option<HashMap<String, JsonValue>> {
    let mut chars = line.trim().chars().peekable();
    let mut out = HashMap::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                return chars.next().is_none().then_some(out);
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = parse_value(&mut chars)?;
        out.insert(key, value);
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    s.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<JsonValue> {
    match *chars.peek()? {
        '"' => Some(JsonValue::Str(parse_string(chars)?)),
        'n' => {
            for expect in "null".chars() {
                if chars.next()? != expect {
                    return None;
                }
            }
            Some(JsonValue::Null)
        }
        't' | 'f' => {
            let word = if *chars.peek()? == 't' {
                "true"
            } else {
                "false"
            };
            for expect in word.chars() {
                if chars.next()? != expect {
                    return None;
                }
            }
            Some(JsonValue::Bool(word == "true"))
        }
        _ => {
            let mut num = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || "+-.eE".contains(c) {
                    num.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            num.parse().ok().map(JsonValue::Num)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{JsonlSink, RecordSink, SweepRecord};
    use vlq_decoder::DecoderKind;
    use vlq_surface::schedule::{Basis, Setup};

    fn point(d: usize, p: f64) -> SweepPoint {
        SweepPoint {
            setup: Setup::CompactInterleaved,
            basis: Basis::Z,
            d,
            p,
            k: 10,
            rounds: None,
            decoder: DecoderKind::UnionFind,
            shots: 500,
            knob: None,
            program: None,
        }
    }

    #[test]
    fn parses_sink_output_back() {
        let records = vec![
            SweepRecord {
                index: 0,
                point: point(3, 1e-3),
                base_seed: 2020,
                shots: 500,
                failures: 7,
            },
            SweepRecord {
                index: 1,
                point: SweepPoint {
                    program: Some("ghz4".to_string()),
                    ..point(5, 2e-3)
                },
                base_seed: 2020,
                shots: 500,
                failures: 2,
            },
        ];
        let mut sink = JsonlSink::new(Vec::new());
        for r in &records {
            sink.write(r).unwrap();
        }
        let dir = std::env::temp_dir().join("vlq-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("records.jsonl");
        std::fs::write(&path, sink.into_inner()).unwrap();

        let cache = ResumeCache::load_jsonl(&path).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.failures_for(&records[0].point, 2020), Some(7));
        assert_eq!(cache.failures_for(&records[1].point, 2020), Some(2));
        // Different shots, distance, seed, or program: no match.
        let mut other = records[0].point.clone();
        other.shots = 501;
        assert_eq!(cache.failures_for(&other, 2020), None);
        assert_eq!(cache.failures_for(&point(7, 1e-3), 2020), None);
        assert_eq!(
            cache.failures_for(&records[0].point, 2021),
            None,
            "rows sampled under another base seed must not be reused"
        );
    }

    #[test]
    fn garbage_lines_are_skipped() {
        let dir = std::env::temp_dir().join("vlq-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n{\"d\":3\n{\"truncated\":").unwrap();
        let cache = ResumeCache::load_jsonl(&path).unwrap();
        assert!(cache.is_empty());
    }

    #[test]
    fn flat_json_parser_handles_escapes_and_types() {
        let obj =
            parse_flat_json("{\"a\":\"x\\\"y\",\"b\":-1.5e-3,\"c\":null,\"d\":true}").unwrap();
        assert_eq!(obj["a"], JsonValue::Str("x\"y".to_string()));
        assert_eq!(obj["b"], JsonValue::Num(-1.5e-3));
        assert_eq!(obj["c"], JsonValue::Null);
        assert_eq!(obj["d"], JsonValue::Bool(true));
        assert!(parse_flat_json("{\"a\":1} trailing").is_none());
    }
}
