//! Regenerates Figure 12: sensitivity of the Compact, Interleaved logical
//! error rate to each error source at the p = 2e-3 operating point.
//!
//! Each panel expands into a `SweepSpec` (knob axis) and runs on the
//! `vlq-sweep` work-stealing engine. With `--out <dir>` all panels'
//! records stream into `fig12.csv` / `fig12.jsonl` (the `knob` and
//! `knob_value` columns identify the panel).
//!
//! Panels: sc-sc-error, load-store-error, sc-mode-error, cavity-t1,
//! transmon-t1, load-store-duration, cavity-size.

use vlq_bench::{
    engine_from_args, finish_telemetry, plan_from_args, resume_cache_from_args, resumed_points,
    sci, shard_from_args, telemetry_from_args, threads_from_args, usage_exit, Args, MetaBuilder,
    OutSinks,
};
use vlq_qec::{run_sweep_opts_par, sensitivity_spec, DecoderKind, Knob};
use vlq_surface::schedule::Setup;
use vlq_sweep::{RunOptions, SweepRecord};

const USAGE: &str = "\
usage: fig12 [--panel NAME|all] [--trials N] [--dmax D] [--seed S]
             [--extended] [--workers N] [--threads N|auto] [--out DIR]
             [--resume] [--shard I/N] [--plan PATH] [--times PATH]
             [--telemetry PATH] [--quiet]
  --panel    one of sc-sc-error|load-store-error|sc-mode-error|cavity-t1|
             transmon-t1|load-store-duration|cavity-size|all
  --extended push the cavity-size panel past the paper's plotted range
  --out      write fig12.csv and fig12.jsonl sweep artifacts into DIR
  --resume   skip panel points already present in DIR/fig12.jsonl (needs --out;
             deterministic seeding keeps resumed artifacts byte-identical)
  --shard    run only points with global index % N == I (points are numbered
             across all panels; `sweep-merge` restores full artifacts)
  --plan     explicit shard-plan file (from `sweep-launch --shard-by time`):
             this shard runs the points the plan assigns it (needs --shard)
  --times    record per-point wall times (nanos) to PATH in the
             vlq-sweep-times-v1 format the time-based planner calibrates from
  --threads  in-block sample-pool workers per chunk (default 1; `auto` uses
             available_parallelism; results and sidecars are bit-identical
             at any value)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH and print a runtime
               summary to stderr (sidecar is byte-stable across --workers and
               --threads)";

fn values_for(knob: Knob, extended: bool) -> Vec<f64> {
    match knob {
        Knob::ScScError | Knob::LoadStoreError | Knob::ScModeError => {
            vec![1e-5, 1e-4, 1e-3, 2e-3, 5e-3, 1e-2]
        }
        Knob::CavityT1 => vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
        Knob::TransmonT1 => vec![1e-5, 1e-4, 1e-3, 1e-2, 1e-1],
        Knob::LoadStoreDuration => vec![1e-7, 1e-6, 1e-5, 1e-4],
        Knob::CavitySize => {
            if extended {
                // C3: push past the paper's plotted range to find where
                // cavity decoherence starts dominating (paper: k ~ 150).
                vec![5.0, 10.0, 20.0, 30.0, 60.0, 100.0, 150.0, 250.0]
            } else {
                vec![5.0, 10.0, 20.0, 30.0]
            }
        }
    }
}

fn main() {
    let args = Args::parse_validated(
        USAGE,
        &[
            "panel",
            "trials",
            "dmax",
            "seed",
            "workers",
            "threads",
            "out",
            "shard",
            "plan",
            "times",
            "telemetry",
        ],
        &["extended", "quiet", "resume"],
    );
    let trials: u64 = args.get_or_usage(USAGE, "trials", 10_000);
    let dmax: usize = args.get_or_usage(USAGE, "dmax", 5);
    let seed: u64 = args.get_or_usage(USAGE, "seed", 2020);
    let extended = args.has("extended");

    let panel_arg = args.get_str("panel", "all");
    let knobs: Vec<Knob> = if panel_arg == "all" {
        Knob::ALL.to_vec()
    } else {
        match Knob::parse(&panel_arg) {
            Some(k) => vec![k],
            None => usage_exit(
                USAGE,
                &format!(
                    "unknown --panel {panel_arg:?}; accepted: {}|all",
                    Knob::ALL.map(|k| k.name()).join("|")
                ),
            ),
        }
    };

    let distances: Vec<usize> = [3usize, 5, 7, 9, 11]
        .into_iter()
        .filter(|&d| d <= dmax)
        .collect();
    if distances.is_empty() {
        usage_exit(USAGE, &format!("--dmax {dmax} leaves no distances to scan"));
    }

    let (recorder, telemetry_path) = telemetry_from_args(&args);
    let engine = engine_from_args(&args, USAGE).with_recorder(recorder.clone());
    let par = threads_from_args(&args, USAGE);
    let shard = shard_from_args(&args, USAGE);
    let plan = plan_from_args(&args, USAGE, shard);
    // Read the previous artifact (if resuming) before the sinks
    // truncate it.
    let cache = resume_cache_from_args(&args, USAGE, "fig12", seed);
    let mut out = OutSinks::from_args(&args, "fig12");
    let mut meta = MetaBuilder::new(seed, shard).with_plan(plan.as_ref());

    println!(
        "Figure 12: Compact-Interleaved sensitivity at operating point p=2e-3 ({trials} trials/point)"
    );
    // Points are numbered globally across panels (each panel's spec
    // starts at the running offset), so `--shard`/`sweep-merge` see one
    // consistent index space in the shared artifact.
    let mut index_offset = 0usize;
    for knob in knobs {
        let values = values_for(knob, extended);
        println!(
            "\n-- panel: {knob} (reference value {}) --",
            sci(knob.reference_value())
        );
        let spec = sensitivity_spec(
            Setup::CompactInterleaved,
            knob,
            &values,
            &distances,
            trials,
            seed,
            DecoderKind::Mwpm,
        );
        let opts = RunOptions {
            shard,
            index_offset,
            plan: plan.clone(),
        };
        index_offset += spec.len();
        meta.absorb(&spec);
        let owned = (0..spec.len())
            .filter(|i| opts.owns(opts.index_offset + i))
            .count();
        let skipped = resumed_points(&spec, &cache, &opts);
        if skipped > 0 {
            eprintln!("note: resume: {skipped}/{owned} points already complete");
        }
        let records = run_sweep_opts_par(&spec, &engine, &mut out.as_dyn(), &cache, &opts, &par)
            .expect("sweep artifacts");
        if !shard.is_full() {
            println!(
                "shard {shard}: {} of {} panel points (tables are printed by full \
                 runs or after sweep-merge)",
                records.len(),
                spec.len()
            );
            continue;
        }

        let find = |d: usize, v: f64| -> &SweepRecord {
            records
                .iter()
                .find(|r| r.point.d == d && r.point.knob.as_ref().is_some_and(|kn| kn.value == v))
                .expect("point")
        };
        print!("{:>12}", "value \\ d");
        for &d in &distances {
            print!("{d:>12}");
        }
        println!();
        for &v in &values {
            print!("{:>12}", sci(v));
            for &d in &distances {
                print!("{:>12}", sci(find(d, v).rate()));
            }
            println!();
        }
    }
    finish_telemetry(&recorder, telemetry_path.as_deref(), "fig12", seed);
    out.write_meta(&meta.build());
    out.announce();
}
