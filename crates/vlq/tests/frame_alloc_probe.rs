//! Steady-state allocation probe for the frame-replay program path.
//!
//! `FramePrepared::run_failures_scratch` holds one `FrameScratch`
//! across batches (and `run_failures_par` holds one per pool worker);
//! after the first few batches have grown every buffer — the logical
//! Pauli frames, the failure accumulator, and one `BlockScratch` per
//! sampled syndrome block — to its working size, further batches must
//! allocate *nothing* (with the Union-Find decoder — MWPM's blossom
//! matcher allocates internally by design). A counting global allocator
//! makes that a hard test, which is why the probe lives in its own
//! integration-test binary, mirroring `crates/qec/tests/alloc_probe.rs`
//! for the memory-block path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vlq::machine::MachineConfig;
use vlq::program::{compile, LogicalCircuit};
use vlq::qec::Parallelism;
use vlq::surface::schedule::Boundary;
use vlq::{decoder::DecoderKind, FramePrepared, FrameScratch};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn prepared(boundary: Boundary) -> FramePrepared {
    let compiled = compile(&LogicalCircuit::ghz(2), MachineConfig::compact_demo()).unwrap();
    FramePrepared::new(compiled.schedule, 3e-3, DecoderKind::UnionFind, boundary)
}

#[test]
fn steady_state_frame_batches_do_not_allocate() {
    let prep = prepared(Boundary::MidCircuit);
    const SHOTS: u64 = 256;
    let mut scratch = FrameScratch::new();

    // Warm-up: run the probe seeds once so every buffer (frames,
    // accumulators, per-block sample/decode scratch) reaches the
    // high-water mark this workload needs. All allocation must be such
    // one-time growth — never per-batch or per-exposure overhead — so
    // re-running the identical batches must allocate nothing.
    let mut warm = 0u64;
    for seed in 100..112u64 {
        warm += prep.run_failures_scratch(SHOTS, seed, &mut scratch);
    }

    // Steady state: same seeds again, zero allocator calls allowed.
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut steady = 0u64;
    for seed in 100..112u64 {
        steady += prep.run_failures_scratch(SHOTS, seed, &mut scratch);
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state frame batches allocated ({warm} warm-up / {steady} steady failures)"
    );
    assert_eq!(steady, warm, "scratch reuse changed the sampled bits");
    // The batches did real work, and scratch reuse is bit-identical to
    // the fresh-scratch entry point.
    assert!(warm > 0, "probe batches produced no failures at all");
    assert_eq!(
        warm,
        (100..112u64)
            .map(|s| prep.run_failures(SHOTS, s))
            .sum::<u64>(),
        "scratch path diverged from run_failures"
    );

    // The legacy Boundary::Full replay shares the scratch machinery
    // (whole-memory-experiment blocks, same per-block keying).
    let legacy = prepared(Boundary::Full);
    let mut legacy_scratch = FrameScratch::new();
    let mut legacy_warm = 0u64;
    for seed in 100..106u64 {
        legacy_warm += legacy.run_failures_scratch(SHOTS, seed, &mut legacy_scratch);
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    let mut legacy_steady = 0u64;
    for seed in 100..106u64 {
        legacy_steady += legacy.run_failures_scratch(SHOTS, seed, &mut legacy_scratch);
    }
    let after = ALLOC_CALLS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state legacy batches allocated ({legacy_warm} warm-up / {legacy_steady} steady)"
    );
    assert_eq!(legacy_steady, legacy_warm);

    // The same contract under the in-block worker pool: pool creation
    // and warm-up may allocate (threads, queues, per-worker scratch
    // growth), but once every worker's FrameScratch has grown to the
    // high-water mark in its typed pool slot, re-running identical
    // pooled batches must not allocate. Work stealing does not
    // guarantee a given worker touches a batch on any given pass
    // (under load one worker can sit a whole pass out and first grow
    // its scratch later), so warm-up repeats until a full pass
    // allocates nothing — one-time per-worker growth converges after
    // each worker has participated once, while per-batch allocation
    // never does, which the attempt bound turns into a failure.
    // 2048 shots = 2 equal 1024-lane batches, so every (worker, batch)
    // pairing replays identical shapes.
    let par = Parallelism::threads(2);
    const POOL_SHOTS: u64 = 2048;
    let mut pooled_warm = 0u64;
    for seed in 200..206u64 {
        pooled_warm += prep.run_failures_par(POOL_SHOTS, seed, &par);
    }
    let mut settled = false;
    for _attempt in 0..32 {
        let before = ALLOC_CALLS.load(Ordering::Relaxed);
        let mut pooled = 0u64;
        for seed in 200..206u64 {
            pooled += prep.run_failures_par(POOL_SHOTS, seed, &par);
        }
        let after = ALLOC_CALLS.load(Ordering::Relaxed);
        assert_eq!(pooled, pooled_warm, "pooled runs were not deterministic");
        if after == before {
            settled = true;
            break;
        }
    }
    assert!(
        settled,
        "pooled frame batches kept allocating after 32 warm passes ({pooled_warm} failures/pass)"
    );
    let pooled = pooled_warm;
    assert_eq!(
        pooled,
        (200..206u64)
            .map(|s| prep.run_failures(POOL_SHOTS, s))
            .sum::<u64>(),
        "pooled failure counts diverged from serial"
    );
}
