//! Decoders for the VLQ reproduction.
//!
//! The decoding pipeline mirrors the modern detector-error-model
//! approach:
//!
//! 1. [`graph`] builds a per-sector matching graph by exhaustively
//!    propagating every possible single fault of the noisy circuit and
//!    recording which detectors (and logical observables) it flips,
//!    with edge weights `ln((1-p)/p)`.
//! 2. [`mwpm`] decodes a defect set by Dijkstra distances on that graph
//!    followed by exact minimum-weight perfect matching ([`blossom`]) —
//!    the paper's "usual maximum likelihood \[matching\] decoder".
//! 3. [`unionfind`] offers the weighted Union-Find decoder as a faster
//!    alternative (used in the decoder ablation bench).

pub mod blossom;
pub mod graph;
pub mod mwpm;
pub mod unionfind;

pub use graph::{DecodingGraph, GraphEdge};
pub use mwpm::{MwpmDecoder, MwpmScratch};
pub use unionfind::{UfScratch, UnionFindDecoder};

/// Reusable decoder working memory, owned by the caller and threaded
/// through [`Decoder::decode_batch`] so per-shot arrays are reset and
/// reused across the lanes of a batch (and across batches) instead of
/// reallocated per decode.
///
/// A closed enum rather than an associated type so batch callers can
/// hold scratch for `dyn Decoder` trait objects. Mismatched scratch
/// (wrong variant or built for a different graph) is never an error:
/// implementations fall back to the plain per-lane path.
#[derive(Debug, Default)]
pub enum DecoderScratch {
    /// For decoders without a native batch path.
    #[default]
    None,
    /// [`unionfind::UnionFindDecoder`] working set (boxed: it is by far
    /// the largest variant, and scratch lives behind one allocation per
    /// decoder for a whole run).
    UnionFind(Box<unionfind::UfScratch>),
    /// [`mwpm::MwpmDecoder`] working set.
    Mwpm(mwpm::MwpmScratch),
}

impl DecoderScratch {
    /// Attaches a telemetry recorder to the scratch: native batch
    /// decodes report growth/matching statistics and `decode_batch`
    /// span timings through it. Recording never changes predictions,
    /// and an attached recorder keeps the batch path allocation-free
    /// (the handle is an `Arc` clone; all recording is atomic ops).
    pub fn set_recorder(&mut self, recorder: &vlq_telemetry::Recorder) {
        match self {
            DecoderScratch::None => {}
            DecoderScratch::UnionFind(s) => s.set_recorder(recorder),
            DecoderScratch::Mwpm(s) => s.set_recorder(recorder),
        }
    }
}

/// Common interface for sector decoders: given the defect list (indices
/// into the sector's detector set), predict whether the logical
/// observable flipped.
pub trait Decoder {
    /// Predicts the observable flip for a defect set.
    fn decode(&self, defects: &[usize]) -> bool;

    /// Creates the scratch this decoder's [`Decoder::decode_batch`]
    /// expects.
    fn make_scratch(&self) -> DecoderScratch {
        DecoderScratch::None
    }

    /// Decodes one defect list per lane into packed prediction words:
    /// bit `l` of `out` is set when lane `l`'s predicted observable
    /// flipped. Overwrites `out[..defects_per_lane.len().div_ceil(64)]`.
    ///
    /// Results are bit-identical to calling [`Decoder::decode`] per
    /// lane; the default implementation does exactly that. Native
    /// implementations reuse `scratch` across lanes.
    fn decode_batch(
        &self,
        defects_per_lane: &[Vec<usize>],
        scratch: &mut DecoderScratch,
        out: &mut [u64],
    ) {
        let _ = scratch;
        decode_batch_fallback(self, defects_per_lane, out);
    }
}

/// The per-lane `decode` loop shared by the trait default and the
/// scratch-mismatch fallbacks of native `decode_batch` impls.
pub(crate) fn decode_batch_fallback<D: Decoder + ?Sized>(
    decoder: &D,
    defects_per_lane: &[Vec<usize>],
    out: &mut [u64],
) {
    let words = defects_per_lane.len().div_ceil(64);
    out[..words].fill(0);
    for (lane, defects) in defects_per_lane.iter().enumerate() {
        if decoder.decode(defects) {
            out[lane / 64] |= 1u64 << (lane % 64);
        }
    }
}

/// Registry of the available decoder implementations.
///
/// This is the single construction seam: every consumer (the `vlq-qec`
/// Monte-Carlo harness, the figure binaries, the ablation benches) turns
/// a `DecoderKind` into a concrete decoder through [`DecoderKind::build`],
/// so adding a decoder means implementing [`Decoder`] and extending this
/// enum — no downstream matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum DecoderKind {
    /// Exact minimum-weight perfect matching (paper default).
    #[default]
    Mwpm,
    /// Weighted Union-Find (fast approximate alternative).
    UnionFind,
}

impl DecoderKind {
    /// Every registered decoder, in ablation order.
    pub const ALL: [DecoderKind; 2] = [DecoderKind::Mwpm, DecoderKind::UnionFind];

    /// Short stable name (used by CLI flags and report tables).
    pub fn name(self) -> &'static str {
        match self {
            DecoderKind::Mwpm => "mwpm",
            DecoderKind::UnionFind => "union-find",
        }
    }

    /// Parses the names accepted by the figure binaries' `--decoder` flag.
    pub fn parse(s: &str) -> Option<DecoderKind> {
        match s.to_ascii_lowercase().as_str() {
            "mwpm" | "blossom" | "matching" => Some(DecoderKind::Mwpm),
            "uf" | "unionfind" | "union-find" => Some(DecoderKind::UnionFind),
            _ => None,
        }
    }

    /// Constructs the decoder for a built decoding graph.
    pub fn build(self, graph: &DecodingGraph) -> Box<dyn Decoder + Send + Sync> {
        match self {
            DecoderKind::Mwpm => Box::new(MwpmDecoder::new(graph)),
            DecoderKind::UnionFind => Box::new(UnionFindDecoder::new(graph)),
        }
    }
}

impl std::fmt::Display for DecoderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
