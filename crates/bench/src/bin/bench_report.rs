//! Ratcheted perf trajectory for the batched sample→decode hot path.
//!
//! Measures the end-to-end `run_shots` cost over the (d, p) grid
//! {3,5,7,9} × {1e-3, 5e-3} with the Union-Find decoder, comparing the
//! scratch-reusing batch pipeline against a faithful reconstruction of
//! the pre-refactor path (allocating `sample_batch`, per-lane
//! `detector_bit` probes, per-lane `decode`), and writes the medians to
//! a schema-stable `BENCH_NNNN.json` so future PRs can ratchet against
//! committed numbers. Both paths must produce identical failure counts
//! (the refactor is bit-identical); the binary asserts this on every
//! grid point before timing.
//!
//! `VLQ_BENCH_QUICK=1` shrinks shots/reps for CI smoke runs (the same
//! switch the criterion stub honors). `--check` validates an existing
//! report's schema without running anything.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vlq_bench::{finish_telemetry, telemetry_from_args, usage_exit, Args};
use vlq_circuit::exec::sample_batch;
use vlq_decoder::{Decoder, DecoderKind};
use vlq_qec::{BlockConfig, BlockSampler, BlockSpec, PreparedBlock};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};
use vlq_telemetry::{Metric, Recorder};

const USAGE: &str = "usage: bench-report [--out PATH] [--reps N] [--shots N] [--seed S]
                    [--telemetry PATH] [--check] [--quiet]
  --out PATH   report path (default BENCH_0007.json)
  --reps N     timing repetitions per point (median reported)
  --shots N    shots per repetition
  --seed S     base seed (default 2020)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH and print a runtime
               summary to stderr (sidecar is byte-stable across invocations)
  --check      validate the schema of an existing report at --out, run nothing
  --quiet      suppress per-point progress lines
VLQ_BENCH_QUICK=1 shrinks the default shots/reps for smoke runs.";

const SCHEMA: &str = "vlq-bench-report/v1";
const GRID_D: [usize; 4] = [3, 5, 7, 9];
const GRID_P: [f64; 2] = [1e-3, 5e-3];

fn main() {
    let args = Args::parse_validated(
        USAGE,
        &["out", "reps", "shots", "seed", "telemetry"],
        &["check", "quiet"],
    );
    let out = args.get_str("out", "BENCH_0007.json");
    if args.has("check") {
        check_report(&out);
        return;
    }
    let quick = std::env::var("VLQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    let (def_shots, def_reps) = if quick { (256u64, 3usize) } else { (2048, 5) };
    let shots: u64 = args.get_or_usage(USAGE, "shots", def_shots);
    let reps: usize = args.get_or_usage(USAGE, "reps", def_reps);
    let seed: u64 = args.get_or_usage(USAGE, "seed", 2020);
    let quiet = args.has("quiet");
    if shots == 0 || reps == 0 {
        usage_exit(USAGE, "--shots and --reps must be >= 1");
    }
    // Phase timings always need an attached recorder; with --telemetry
    // the same recorder also feeds the deterministic sidecar (which
    // holds no timings, so it stays byte-stable across invocations).
    let (sidecar, telemetry_path) = telemetry_from_args(&args);
    let recorder = if sidecar.is_enabled() {
        sidecar.clone()
    } else {
        Recorder::attached()
    };

    let mut points = Vec::new();
    for d in GRID_D {
        for p in GRID_P {
            let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
            let block = PreparedBlock::prepare(
                &BlockConfig::new(BlockSpec::full(spec), p).with_decoder(DecoderKind::UnionFind),
            );
            let decoder = DecoderKind::UnionFind.build(&block.graph);

            // The refactor must be bit-identical before it is fast.
            let f_after = block.run_shots(shots, seed);
            let f_before = run_shots_pre_refactor(&block, decoder.as_ref(), shots, seed);
            assert_eq!(
                f_before, f_after,
                "d{d} p{p}: pre-refactor and batched paths disagree"
            );

            let before_ns = median_ns(reps, || {
                run_shots_pre_refactor(&block, decoder.as_ref(), shots, seed)
            });
            let after_ns = median_ns(reps, || block.run_shots(shots, seed));
            let speedup = before_ns as f64 / after_ns.max(1) as f64;

            // One instrumented pass per point: the recorder accumulates
            // across the grid, so per-point phase costs are the deltas.
            let at = |m: Metric| recorder.value(m);
            let (s0, e0, d0) = (
                at(Metric::SampleNanos),
                at(Metric::ExtractNanos),
                at(Metric::DecodeNanos),
            );
            let f_recorded = block.run_shots_recorded(shots, seed, &recorder);
            assert_eq!(
                f_recorded, f_after,
                "d{d} p{p}: recorded and plain paths disagree"
            );
            let sample_ns = at(Metric::SampleNanos) - s0;
            let extract_ns = at(Metric::ExtractNanos) - e0;
            let decode_ns = at(Metric::DecodeNanos) - d0;

            if !quiet {
                eprintln!(
                    "note: d{d} p{p:.0e}: before {:.2} ms, after {:.2} ms, speedup {speedup:.2}x \
                     (sample {:.2} ms, extract {:.2} ms, decode {:.2} ms)",
                    before_ns as f64 / 1e6,
                    after_ns as f64 / 1e6,
                    sample_ns as f64 / 1e6,
                    extract_ns as f64 / 1e6,
                    decode_ns as f64 / 1e6
                );
            }
            points.push(Point {
                d,
                p,
                before_ns,
                after_ns,
                speedup,
                sample_ns,
                extract_ns,
                decode_ns,
            });
        }
    }

    let json = render_report(quick, shots, reps, seed, &points);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    finish_telemetry(&sidecar, telemetry_path.as_deref(), "bench-report", seed);
    println!("wrote {out} ({} grid points)", points.len());
}

struct Point {
    d: usize,
    p: f64,
    before_ns: u128,
    after_ns: u128,
    speedup: f64,
    sample_ns: u64,
    extract_ns: u64,
    decode_ns: u64,
}

/// The hot path exactly as it was before this refactor: a freshly
/// allocated `sample_batch` result per batch, per-lane × per-detector
/// `detector_bit` probes, and per-lane `decode` with per-call working
/// memory. Bit-identical to `run_shots` (same seeds, same RNG streams),
/// which the caller asserts.
fn run_shots_pre_refactor(
    block: &PreparedBlock,
    decoder: &dyn Decoder,
    shots: u64,
    seed: u64,
) -> u64 {
    const LANES_PER_BATCH: usize = 1024;
    let guard = block.memory.guard_detectors();
    let mut failures = 0u64;
    let mut remaining = shots;
    let mut batch_idx = 0u64;
    while remaining > 0 {
        let lanes = (remaining as usize).min(LANES_PER_BATCH);
        let words = lanes.div_ceil(64).max(1);
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(batch_idx));
        let result = sample_batch(&block.noisy, lanes, &mut rng);
        let mut pred = vec![0u64; words];
        for lane in 0..lanes {
            let mut defects: Vec<usize> = Vec::new();
            for (local, &global) in guard.iter().enumerate() {
                if result.detector_bit(global, lane) {
                    defects.push(local);
                }
            }
            if decoder.decode(&defects) {
                pred[lane / 64] |= 1u64 << (lane % 64);
            }
        }
        for (p, a) in pred.iter_mut().zip(result.observable_words(0)) {
            *p ^= a;
        }
        failures += pred.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        remaining -= lanes as u64;
        batch_idx += 1;
    }
    failures
}

fn median_ns(reps: usize, mut f: impl FnMut() -> u64) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Hand-rolled JSON (the repo's artifact discipline: no serde, stable
/// key order, one line per grid point so diffs read cleanly).
fn render_report(quick: bool, shots: u64, reps: usize, seed: u64, points: &[Point]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str("  \"bench\": \"sample-decode-hot-path\",\n");
    s.push_str("  \"decoder\": \"union-find\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"shots\": {shots},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"d\": {}, \"p\": {}, \"before_ns\": {}, \"after_ns\": {}, \"speedup\": {:.3}, \
             \"sample_ns\": {}, \"extract_ns\": {}, \"decode_ns\": {}}}{sep}\n",
            pt.d,
            pt.p,
            pt.before_ns,
            pt.after_ns,
            pt.speedup,
            pt.sample_ns,
            pt.extract_ns,
            pt.decode_ns
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Schema validation for `--check`: the file must exist, carry the
/// current schema tag, and contain every (d, p) grid point with sane
/// timings. Exits 1 on drift so CI fails loudly.
fn check_report(path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut problems = Vec::new();
    if !text.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        problems.push(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in [
        "\"bench\":",
        "\"decoder\":",
        "\"shots\":",
        "\"reps\":",
        "\"seed\":",
        "\"points\":",
    ] {
        if !text.contains(key) {
            problems.push(format!("missing key {key}"));
        }
    }
    for d in GRID_D {
        for p in GRID_P {
            let needle = format!("\"d\": {d}, \"p\": {p},");
            if !text.contains(&needle) {
                problems.push(format!("missing grid point d={d} p={p}"));
            }
        }
    }
    for field in ["before_ns", "after_ns", "speedup"] {
        let count = text.matches(&format!("\"{field}\":")).count();
        if count != GRID_D.len() * GRID_P.len() {
            problems.push(format!(
                "expected {} {field} entries, found {count}",
                GRID_D.len() * GRID_P.len()
            ));
        }
    }
    // Phase columns arrived with BENCH_0007; older committed reports
    // legitimately have none, but a report must be all-or-nothing.
    for field in ["sample_ns", "extract_ns", "decode_ns"] {
        let count = text.matches(&format!("\"{field}\":")).count();
        if count != 0 && count != GRID_D.len() * GRID_P.len() {
            problems.push(format!(
                "expected 0 or {} {field} entries, found {count}",
                GRID_D.len() * GRID_P.len()
            ));
        }
    }
    if problems.is_empty() {
        println!(
            "{path}: schema ok ({} grid points)",
            GRID_D.len() * GRID_P.len()
        );
    } else {
        for p in &problems {
            eprintln!("error: {path}: {p}");
        }
        std::process::exit(1);
    }
}
