//! Time-sharing one cavity machine across concurrent programs: admits
//! two GHZ tenants to the multi-tenant scheduler, replays the merged
//! schedule, then squeezes three tenants onto a deliberately small
//! machine to show paging contention and how the replacement policy
//! changes who pays for it.
//!
//! Run: `cargo run --release --example multi_tenant`

use vlq::exec::{CostExecutor, Executor};
use vlq::machine::MachineConfig;
use vlq::program::{compile, LogicalCircuit};
use vlq_tenant::{merge_standard_mix, MultiProgram, PolicyKind, TenantScheduler, TenantSpec};

fn main() {
    // -- two GHZ tenants on a roomy machine: no contention -----------
    let config = MachineConfig::compact_demo();
    let mut sched = TenantScheduler::new(config, PolicyKind::RefreshDeadline.build());
    for name in ["alice", "bob"] {
        let program = compile(&LogicalCircuit::ghz(3), config).expect("ghz3 fits");
        sched.admit(TenantSpec::new(name, program)).expect("admit");
    }
    let multi = sched.run().expect("merge");
    let report = CostExecutor.run(&multi.schedule).expect("merged replay");
    println!("== two GHZ-3 tenants, one machine ==");
    println!(
        "merged: {} instructions, {} timesteps, {} transversal CNOTs",
        multi.schedule.len(),
        report.total_timesteps,
        report.transversal_cnots
    );
    summarize(&multi);

    // -- three tenants thrashing two small stacks --------------------
    // Nine live qubits contend for four cavity slots; slot 0 is the
    // deadline tenant. LRU happily evicts its idle pages (their skipped
    // refresh passes then blow the k-cycle deadline); deadline-aware
    // priority makes the best-effort tenants pay instead.
    let mut small = MachineConfig::compact_demo();
    small.stacks_x = 1;
    small.stacks_y = 2;
    small.k = 3;
    println!("\n== three tenants on a 2-stack k=3 machine (capacity 4) ==");
    for policy in PolicyKind::ALL {
        let multi = merge_standard_mix(3, policy, small).expect("mix merges");
        println!("\n-- policy {policy} --");
        summarize(&multi);
    }
}

fn summarize(multi: &MultiProgram) {
    println!(
        "{:>8} {:>9} {:>7} {:>7} {:>7} {:>9}",
        "tenant", "queue", "faults", "evicts", "misses", "slowdown"
    );
    for t in &multi.tenants {
        println!(
            "{:>8} {:>9} {:>7} {:>7} {:>7} {:>9}",
            t.name,
            t.queue_delay,
            t.page_faults,
            t.evictions,
            t.deadline_misses,
            t.slowdown_permille()
        );
    }
    println!("fairness (min/max slowdown): {}", multi.fairness_permille());
}
