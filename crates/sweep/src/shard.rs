//! Sharding a sweep across processes or machines.
//!
//! A [`ShardSpec`] `i/N` selects the grid points whose **global** point
//! index `g` satisfies `g % N == i`. Because per-chunk RNG seeds derive
//! only from the base seed and the point's coordinates (never from the
//! schedule or from which process runs the point), a shard computes
//! exactly the records the full run would have computed for its points.
//! Shard artifacts keep the global point numbering in their `index`
//! column, so `sweep-merge` can interleave N shard artifacts back into
//! a CSV/JSONL pair byte-identical to an unsharded run.

use std::fmt;
use std::str::FromStr;

/// One shard of a sweep: own the points with `index % count == self.index`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's position, `0 <= index < count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

/// Why a shard spec could not be constructed or parsed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// `count` was zero.
    ZeroCount,
    /// `index` was not less than `count`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The shard count it must be below.
        count: usize,
    },
    /// The string was not of the form `i/N`.
    Malformed(String),
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::ZeroCount => write!(f, "shard count must be >= 1"),
            ShardError::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range (count {count})")
            }
            ShardError::Malformed(s) => write!(f, "malformed shard spec {s:?}, expected i/N"),
        }
    }
}

impl std::error::Error for ShardError {}

impl ShardSpec {
    /// The degenerate single-shard spec (an unsharded run).
    pub const FULL: ShardSpec = ShardSpec { index: 0, count: 1 };

    /// A validated shard spec.
    ///
    /// # Errors
    ///
    /// [`ShardError::ZeroCount`] / [`ShardError::IndexOutOfRange`] on
    /// invalid coordinates.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardError> {
        if count == 0 {
            return Err(ShardError::ZeroCount);
        }
        if index >= count {
            return Err(ShardError::IndexOutOfRange { index, count });
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this is the unsharded `0/1` spec.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns the point with global index `point_index`.
    pub fn owns(&self, point_index: usize) -> bool {
        point_index % self.count == self.index
    }

    /// How many of `total` globally-numbered points this shard owns.
    pub fn len_of(&self, total: usize) -> usize {
        // Points i, i+N, i+2N, ... below `total`.
        (total + self.count - 1 - self.index) / self.count
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for ShardSpec {
    type Err = ShardError;

    /// Parses `i/N` (e.g. `0/3`).
    fn from_str(s: &str) -> Result<Self, ShardError> {
        let malformed = || ShardError::Malformed(s.to_string());
        let (i, n) = s.split_once('/').ok_or_else(malformed)?;
        let index: usize = i.trim().parse().map_err(|_| malformed())?;
        let count: usize = n.trim().parse().map_err(|_| malformed())?;
        ShardSpec::new(index, count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_validates() {
        assert_eq!(
            "0/3".parse::<ShardSpec>().unwrap(),
            ShardSpec { index: 0, count: 3 }
        );
        assert_eq!(
            "2/3".parse::<ShardSpec>().unwrap().to_string(),
            "2/3".to_string()
        );
        assert_eq!(
            "3/3".parse::<ShardSpec>(),
            Err(ShardError::IndexOutOfRange { index: 3, count: 3 })
        );
        assert_eq!("0/0".parse::<ShardSpec>(), Err(ShardError::ZeroCount));
        for bad in ["", "1", "a/b", "1/", "/2", "1/2/3", "-1/2"] {
            assert!(
                matches!(bad.parse::<ShardSpec>(), Err(ShardError::Malformed(_))),
                "{bad:?} should be malformed"
            );
        }
    }

    #[test]
    fn full_owns_everything() {
        assert!(ShardSpec::FULL.is_full());
        assert!((0..100).all(|g| ShardSpec::FULL.owns(g)));
    }

    #[test]
    fn shards_partition_the_index_space() {
        for count in 1..=5 {
            for g in 0..50 {
                let owners: Vec<usize> = (0..count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(g))
                    .collect();
                assert_eq!(owners, vec![g % count], "point {g} with {count} shards");
            }
            let total = 13;
            let sum: usize = (0..count)
                .map(|i| ShardSpec::new(i, count).unwrap().len_of(total))
                .sum();
            assert_eq!(sum, total);
        }
    }
}
