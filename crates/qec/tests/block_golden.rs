//! Golden pins for the boundary-aware block redesign.
//!
//! The `BlockSpec` → `PreparedBlock` API replaced the old
//! memory-experiment-shaped `PreparedExperiment` sampling core. These
//! values were captured from the pre-redesign implementation (commit
//! 33c23a3) and pin `Boundary::Full` to it *bit-for-bit*: the windowed
//! noise pass over the full window, the wrapper types, and the
//! `BlockSampler` batching must all reproduce the old RNG streams and
//! decode decisions exactly. Any drift here silently invalidates every
//! recorded fig11/fig12 artifact, so these are hard equality pins, not
//! tolerances.

use vlq_qec::{
    compare_decoders, run_memory_experiment, BlockConfig, BlockSampler, BlockSpec, Boundary,
    DecoderKind, ExperimentConfig, PreparedBlock, PreparedExperiment,
};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};

/// One pinned configuration: (setup, d, k, basis, p, seed, expected
/// 192-lane failure words).
type GoldenWordsRow = (Setup, usize, usize, Basis, f64, u64, [u64; 3]);

/// Pre-redesign `PreparedExperiment::sample_failure_words(192, seed)`
/// outputs for four configurations covering baseline, natural, and
/// compact setups in both bases.
const GOLDEN_WORDS: [GoldenWordsRow; 4] = [
    (
        Setup::Baseline,
        3,
        1,
        Basis::Z,
        5e-3,
        42,
        [2281703744, 4616190184990444128, 9223937736126243328],
    ),
    (
        Setup::NaturalInterleaved,
        3,
        3,
        Basis::Z,
        3e-3,
        7,
        [
            10952754293766096896,
            2305843009755021440,
            4647719282212339744,
        ],
    ),
    (
        Setup::CompactAllAtOnce,
        3,
        4,
        Basis::X,
        4e-3,
        11,
        [
            9225660945186295809,
            4611686031312289864,
            9799885738192408576,
        ],
    ),
    (
        Setup::CompactInterleaved,
        5,
        4,
        Basis::Z,
        2e-3,
        5,
        [9277767077463064578, 1044835117849141250, 144255947042197504],
    ),
];

#[test]
fn full_boundary_failure_words_match_pre_redesign_bits() {
    for (setup, d, k, basis, p, seed, expected) in GOLDEN_WORDS {
        let memory = MemorySpec::standard(setup, d, k, basis);

        // Through the new block API directly...
        let block = PreparedBlock::prepare(
            &BlockConfig::new(BlockSpec::full(memory), p).with_decoder(DecoderKind::UnionFind),
        );
        assert_eq!(
            block.sample_failure_words(192, seed),
            expected,
            "PreparedBlock {setup} d{d} k{k} {basis:?}"
        );

        // ...and through the memory-experiment wrapper.
        let wrapped = PreparedExperiment::prepare(
            &ExperimentConfig::new(memory, p).with_decoder(DecoderKind::UnionFind),
        );
        assert_eq!(
            wrapped.sample_failure_words(192, seed),
            expected,
            "PreparedExperiment {setup} d{d} k{k} {basis:?}"
        );
    }
}

#[test]
fn run_memory_experiment_matches_pre_redesign_counts() {
    // (setup, d, k, basis, p, failures@threads=1, failures@threads=3),
    // all at 4096 shots, seed 99, MWPM.
    let golden: [(Setup, usize, usize, Basis, f64, u64, u64); 3] = [
        (Setup::Baseline, 3, 1, Basis::Z, 5e-3, 476, 492),
        (Setup::NaturalAllAtOnce, 3, 3, Basis::Z, 3e-3, 317, 310),
        (Setup::CompactInterleaved, 3, 4, Basis::X, 4e-3, 517, 517),
    ];
    for (setup, d, k, basis, p, f1, f3) in golden {
        for (threads, expected) in [(1usize, f1), (3, f3)] {
            let cfg = ExperimentConfig::new(MemorySpec::standard(setup, d, k, basis), p)
                .with_shots(4096)
                .with_seed(99)
                .with_threads(threads)
                .with_decoder(DecoderKind::Mwpm);
            let res = run_memory_experiment(&cfg);
            assert_eq!(
                res.failures, expected,
                "{setup} d{d} k{k} {basis:?} threads {threads}"
            );
        }
    }
}

#[test]
fn compare_decoders_matches_pre_redesign_counts() {
    let cfg = ExperimentConfig::new(MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z), 5e-3)
        .with_shots(4096)
        .with_seed(31)
        .with_threads(2);
    let res = compare_decoders(&cfg, &[DecoderKind::Mwpm, DecoderKind::UnionFind]);
    assert_eq!((res[0].failures, res[1].failures), (462, 482));
}

#[test]
fn full_boundary_noise_window_covers_everything() {
    // The Full window must be the whole circuit — that is what makes
    // the bit-for-bit pins above structural rather than coincidental.
    let memory = MemorySpec::standard(Setup::NaturalInterleaved, 3, 3, Basis::Z);
    let block = PreparedBlock::prepare(&BlockConfig::new(BlockSpec::full(memory), 2e-3));
    let (start, end) = block.memory.noise_window(Boundary::Full);
    assert_eq!(start, 0);
    assert_eq!(end, block.memory.circuit.instructions.len());
    // And the block boundaries are recorded strictly inside it.
    assert!(block.memory.prep_end > 0);
    assert!(block.memory.prep_end < block.memory.body_end);
    assert!(block.memory.body_end < end);
}
