//! The frame path's pool parity: a `FrameExecutor` with in-block
//! workers attached must reproduce the serial failure counts exactly —
//! including the committed golden pins — because per-exposure batch
//! seeds depend only on the batch index, never on which worker ran it.

use vlq::exec::{Executor, FrameExecutor};
use vlq::machine::MachineConfig;
use vlq::program::{compile, LogicalCircuit};
use vlq::qec::{Boundary, Parallelism};

#[test]
fn pooled_frame_runs_match_serial_and_golden_pins() {
    let compiled = compile(&LogicalCircuit::ghz(3), MachineConfig::compact_demo()).unwrap();
    for boundary in [Boundary::Full, Boundary::MidCircuit] {
        let base = FrameExecutor::at_scale(5e-3)
            .with_shots(2000)
            .with_seed(17)
            .with_boundary(boundary);
        let serial = base.clone().run(&compiled.schedule).unwrap();
        for threads in [2usize, 3] {
            let pooled = base
                .clone()
                .with_parallelism(Parallelism::threads(threads))
                .run(&compiled.schedule)
                .unwrap();
            assert_eq!(
                pooled.failures, serial.failures,
                "{boundary:?} threads={threads}: frame failure counts diverged"
            );
        }
        if boundary == Boundary::Full {
            // The pre-redesign golden pin (frame_boundary_golden.rs)
            // must hold pooled as well as serial.
            assert_eq!(serial.failures, 1974);
        }
    }
}
