//! Regenerates Table II: transmon, cavity, and total qubit costs of each
//! T-state generation protocol at d = 5 with depth-10 cavities.
//!
//! With `--out <dir>`, writes `table2.csv` / `table2.jsonl` artifacts.

use std::path::PathBuf;

use vlq_bench::{finish_telemetry, telemetry_from_args, Args};
use vlq_magic::factory::FactoryProtocol;
use vlq_sweep::artifact::{Table, Value};

const USAGE: &str = "\
usage: table2 [--d D] [--k K] [--out DIR] [--shard I/N] [--telemetry PATH]
  --d      code distance (default 5, the paper's operating point)
  --k      cavity depth (default 10)
  --out    write table2.csv and table2.jsonl artifacts into DIR
  --shard  write only artifact rows with row index % N == I (merge the
           shard directories back with sweep-merge)
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH (table2 is
               analytic, so its counters are all zero)";

fn main() {
    let args = Args::parse_validated(USAGE, &["d", "k", "out", "shard", "telemetry"], &[]);
    let shard = vlq_bench::shard_from_args(&args, USAGE);
    let (recorder, telemetry_path) = telemetry_from_args(&args);
    finish_telemetry(&recorder, telemetry_path.as_deref(), "table2", 0);
    let d: usize = args.get_or_usage(USAGE, "d", 5);
    let k: usize = args.get_or_usage(USAGE, "k", 10);
    let out_dir: Option<PathBuf> = args.pairs_get("out").map(PathBuf::from);
    // The paper-exact assertions below only hold at the published
    // operating point.
    let paper_point = d == 5 && k == 10;

    println!("Table II: qubit costs of each T-state protocol (d = {d}, depth-{k} cavities)");
    println!(
        "{:<22} {:>12} {:>12} {:>14}",
        "Protocol", "# transmons", "# cavities", "total qubits"
    );
    let paper: [(&str, usize, &str, usize); 4] = [
        ("Fast Lattice [21]", 1499, "-", 1499),
        ("Small Lattice [12]", 549, "-", 549),
        ("VQubits (natural)", 49, "25", 299),
        ("VQubits (compact)", 29, "25", 279),
    ];
    let mut table = Table::new(["protocol", "transmons", "cavities", "total_qubits"]);
    for (proto, expected) in FactoryProtocol::all().iter().zip(paper.iter()) {
        let cost = proto.hardware_cost(d, k);
        let cav = if cost.cavities == 0 {
            "-".to_string()
        } else {
            cost.cavities.to_string()
        };
        println!(
            "{:<22} {:>12} {:>12} {:>14}",
            proto.kind.to_string(),
            cost.transmons,
            cav,
            cost.total_qubits()
        );
        table.row([
            proto.kind.to_string().into(),
            cost.transmons.into(),
            if cost.cavities == 0 {
                Value::Null
            } else {
                cost.cavities.into()
            },
            cost.total_qubits().into(),
        ]);
        if paper_point {
            assert_eq!(cost.transmons, expected.1, "transmons mismatch vs paper");
            assert_eq!(cost.total_qubits(), expected.3, "total mismatch vs paper");
        }
    }
    if paper_point {
        println!("\nAll rows match the paper exactly.");
    }

    if let Some(dir) = &out_dir {
        table
            .shard(shard)
            .write_dir(dir, "table2")
            .expect("write table2");
        println!(
            "artifacts: table2.csv and table2.jsonl in {}",
            dir.display()
        );
    }
}
