//! Verification of the transversal CNOT (paper §III-B, "which we
//! verified via process tomography").
//!
//! Two independent checks:
//!
//! * [`verify_transversal_cnot_tableau`] — exact Clifford process
//!   identification: conjugating the logical generators `X_L⊗I`,
//!   `Z_L⊗I`, `I⊗X_L`, `I⊗Z_L` through the physical gate sequence must
//!   reproduce the CNOT conjugation table *modulo the stabilizer group*.
//!   For Clifford channels this determines the process completely.
//! * [`verify_transversal_cnot_statevector`] — state-level tomography at
//!   distance 3: encode logical basis and superposition states (18
//!   physical qubits), apply the 9 physical CNOTs, and check fidelities
//!   with the expected encoded outputs.

use vlq_pauli::{Pauli, PauliString};
use vlq_sim::{CliffordGate, StateVector, Tableau};
use vlq_surface::layout::{PlaquetteKind, SurfaceLayout};

/// Two surface-code patches sharing a stack: control uses qubits
/// `0..d^2`, target uses `d^2..2d^2` (the paper's co-located logical
/// qubits in two cavity modes).
#[derive(Clone, Debug)]
pub struct TwoPatchCode {
    layout: SurfaceLayout,
    d: usize,
}

impl TwoPatchCode {
    /// Builds the two-patch code for odd distance `d`.
    pub fn new(d: usize) -> Self {
        TwoPatchCode {
            layout: SurfaceLayout::new(d),
            d,
        }
    }

    /// Total physical qubits (both patches).
    pub fn num_qubits(&self) -> usize {
        2 * self.d * self.d
    }

    /// Stabilizer generators of both patches.
    pub fn stabilizers(&self) -> Vec<PauliString> {
        let n = self.num_qubits();
        let d2 = self.d * self.d;
        let mut out = Vec::new();
        for patch in 0..2 {
            for p in self.layout.plaquettes() {
                let mut s = PauliString::identity(n);
                for &c in &p.data {
                    let q = patch * d2 + self.layout.data_index(c).expect("data");
                    s.set_pauli(
                        q,
                        match p.kind {
                            PlaquetteKind::Z => Pauli::Z,
                            PlaquetteKind::X => Pauli::X,
                        },
                    );
                }
                out.push(s);
            }
        }
        out
    }

    /// Logical operator on one patch (0 = control, 1 = target).
    pub fn logical(&self, patch: usize, kind: PlaquetteKind) -> PauliString {
        let n = self.num_qubits();
        let d2 = self.d * self.d;
        let support = match kind {
            PlaquetteKind::Z => self.layout.logical_z_support(),
            PlaquetteKind::X => self.layout.logical_x_support(),
        };
        let mut s = PauliString::identity(n);
        for di in support {
            s.set_pauli(
                patch * d2 + di,
                match kind {
                    PlaquetteKind::Z => Pauli::Z,
                    PlaquetteKind::X => Pauli::X,
                },
            );
        }
        s
    }

    /// Prepares the code state `|0>_L |0>_L` on a tableau by projecting
    /// every stabilizer (forcing +1 outcomes) and both logical Zs.
    pub fn encoded_tableau(&self) -> Tableau {
        let mut t = Tableau::new(self.num_qubits());
        for s in self.stabilizers() {
            force_plus(&mut t, &s);
        }
        for patch in 0..2 {
            let zl = self.logical(patch, PlaquetteKind::Z);
            force_plus(&mut t, &zl);
        }
        t
    }
}

/// Measures `p` and applies a fixing operator when the outcome is -1, so
/// the state ends in the +1 eigenspace.
fn force_plus(t: &mut Tableau, p: &PauliString) {
    let out = t.measure_pauli(p, || false);
    if out.bit() {
        // Find any anticommuting single-qubit Pauli to flip the outcome:
        // applying it maps the -1 eigenspace to +1.
        let n = p.len();
        for q in 0..n {
            for candidate in [Pauli::X, Pauli::Z, Pauli::Y] {
                let single = PauliString::single(n, q, candidate);
                if single.anticommutes_with(p) {
                    // Must also commute with... for simple forcing we just
                    // re-measure after applying; stabilizer forcing order
                    // makes this converge because we force in order.
                    t.apply_pauli(&single);
                    let again = t.measure_pauli(p, || false);
                    if !again.bit() {
                        return;
                    }
                    t.apply_pauli(&single); // undo and try another
                }
            }
        }
        panic!("could not force +1 eigenvalue");
    }
}

/// The physical gate sequence of the transversal CNOT: one CNOT per data
/// position, control patch onto target patch.
pub fn transversal_cnot_gates(d: usize) -> Vec<CliffordGate> {
    let d2 = d * d;
    (0..d2).map(|i| CliffordGate::Cnot(i, d2 + i)).collect()
}

/// Exact Clifford process identification via stabilizer conjugation.
///
/// Returns `Ok(())` when the transversal CNOT implements the logical
/// CNOT: generators map as `X_L⊗I -> X_L⊗X_L`, `I⊗X_L -> I⊗X_L`,
/// `Z_L⊗I -> Z_L⊗I`, `I⊗Z_L -> Z_L⊗Z_L`, all modulo stabilizers, and
/// the stabilizer group is preserved.
///
/// # Errors
///
/// Returns a description of the first failed check.
pub fn verify_transversal_cnot_tableau(d: usize) -> Result<(), String> {
    let code = TwoPatchCode::new(d);
    let gates = transversal_cnot_gates(d);
    use vlq_sim::tableau::conjugate_row;

    // 1. The stabilizer group must be preserved: each conjugated
    //    stabilizer must be a product of stabilizers (checked on the
    //    encoded state: expectation stays +1).
    let reference = code.encoded_tableau();
    for s in code.stabilizers() {
        let mut conj = s.clone();
        for &g in &gates {
            conjugate_row(&mut conj, g);
        }
        match reference.expectation(&conj) {
            Some(false) => {}
            other => {
                return Err(format!(
                    "conjugated stabilizer not in group (expectation {other:?})"
                ))
            }
        }
    }
    // 2. Logical generators conjugate like a CNOT.
    let xl0 = code.logical(0, PlaquetteKind::X);
    let xl1 = code.logical(1, PlaquetteKind::X);
    let zl0 = code.logical(0, PlaquetteKind::Z);
    let zl1 = code.logical(1, PlaquetteKind::Z);
    let checks: Vec<(&PauliString, PauliString, &str)> = vec![
        (&xl0, xl0.mul(&xl1), "X_L⊗I -> X_L⊗X_L"),
        (&xl1, xl1.clone(), "I⊗X_L -> I⊗X_L"),
        (&zl0, zl0.clone(), "Z_L⊗I -> Z_L⊗I"),
        (&zl1, zl0.mul(&zl1), "I⊗Z_L -> Z_L⊗Z_L"),
    ];
    for (input, expected, name) in checks {
        let mut conj = input.clone();
        for &g in &gates {
            conjugate_row(&mut conj, g);
        }
        // conj must equal expected modulo stabilizers: conj * expected
        // must be a +1 stabilizer-group element on the code state.
        let diff = conj.mul(&expected);
        match reference.expectation(&diff) {
            Some(false) => {}
            other => return Err(format!("{name} failed: residual expectation {other:?}")),
        }
    }
    Ok(())
}

/// State-vector tomography at distance `d` (practical for `d = 3`: 18
/// qubits): encodes the four logical computational basis states and a
/// superposition, applies the physical transversal CNOT, and verifies
/// against the expected encoded outputs.
///
/// Returns the minimum fidelity observed over all checks.
///
/// # Panics
///
/// Panics if `2 d^2` exceeds the state-vector capacity.
pub fn verify_transversal_cnot_statevector(d: usize) -> f64 {
    let code = TwoPatchCode::new(d);
    let n = code.num_qubits();
    let gates = transversal_cnot_gates(d);

    // Encoded |a>_L |b>_L: project stabilizers on |0...0>, then apply
    // logical X operators as needed.
    let encode = |a: bool, b: bool| -> StateVector {
        let mut sv = StateVector::new(n);
        for s in code.stabilizers() {
            // Z-stabilizers are already satisfied by |0..0>; X-projectors
            // entangle. Projecting everything is simplest and exact.
            sv.project_pauli_plus(&s);
        }
        if a {
            sv.apply_pauli(&code.logical(0, PlaquetteKind::X));
        }
        if b {
            sv.apply_pauli(&code.logical(1, PlaquetteKind::X));
        }
        sv
    };

    let mut min_fidelity = f64::INFINITY;
    // Computational-basis process checks: |a, b> -> |a, a ^ b>.
    for a in [false, true] {
        for b in [false, true] {
            let mut sv = encode(a, b);
            sv.apply_all(gates.iter().copied());
            let expected = encode(a, a ^ b);
            let f = sv.fidelity(&expected);
            min_fidelity = min_fidelity.min(f);
        }
    }
    // Superposition check: |+>_L |0>_L -> logical Bell pair, verified via
    // logical stabilizer expectations X_L X_L = +1, Z_L Z_L = +1.
    let mut sv = encode(false, false);
    // Logical H on control = prepare |+>_L: project onto +1 of X_L0.
    sv.project_pauli_plus(&code.logical(0, PlaquetteKind::X));
    sv.apply_all(gates.iter().copied());
    let xx = code
        .logical(0, PlaquetteKind::X)
        .mul(&code.logical(1, PlaquetteKind::X));
    let zz = code
        .logical(0, PlaquetteKind::Z)
        .mul(&code.logical(1, PlaquetteKind::Z));
    for op in [xx, zz] {
        let e = sv.pauli_expectation(&op);
        min_fidelity = min_fidelity.min(e);
    }
    min_fidelity
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tableau_verification_d3_and_d5() {
        verify_transversal_cnot_tableau(3).expect("d=3");
        verify_transversal_cnot_tableau(5).expect("d=5");
    }

    #[test]
    fn statevector_tomography_d3() {
        let f = verify_transversal_cnot_statevector(3);
        assert!(f > 1.0 - 1e-9, "minimum fidelity {f}");
    }

    #[test]
    fn wrong_direction_fails_tableau_check() {
        // Sanity of the checker itself: reversing the CNOT direction is
        // NOT a logical CNOT from control to target.
        let code = TwoPatchCode::new(3);
        let d2 = 9;
        let reversed: Vec<CliffordGate> = (0..d2).map(|i| CliffordGate::Cnot(d2 + i, i)).collect();
        use vlq_sim::tableau::conjugate_row;
        let xl0 = code.logical(0, PlaquetteKind::X);
        let xl1 = code.logical(1, PlaquetteKind::X);
        let mut conj = xl0.clone();
        for &g in &reversed {
            conjugate_row(&mut conj, g);
        }
        let expected = xl0.mul(&xl1);
        let diff = conj.mul(&expected);
        let reference = code.encoded_tableau();
        // The reversed circuit maps X_L0 -> X_L0, so diff = X_L1 mod
        // stabilizers, which is NOT stabilized (expectation random).
        assert_ne!(reference.expectation(&diff), Some(false));
    }

    #[test]
    fn encoded_tableau_is_code_state() {
        let code = TwoPatchCode::new(3);
        let t = code.encoded_tableau();
        for s in code.stabilizers() {
            assert!(t.is_stabilized_by(&s));
        }
        for patch in 0..2 {
            let zl = code.logical(patch, PlaquetteKind::Z);
            assert_eq!(t.expectation(&zl), Some(false));
        }
        t.check_invariants().unwrap();
    }

    #[test]
    fn logical_operators_anticommute_within_patch() {
        let code = TwoPatchCode::new(5);
        let x0 = code.logical(0, PlaquetteKind::X);
        let z0 = code.logical(0, PlaquetteKind::Z);
        let x1 = code.logical(1, PlaquetteKind::X);
        assert!(x0.anticommutes_with(&z0));
        assert!(x0.commutes_with(&x1));
        for s in code.stabilizers() {
            assert!(x0.commutes_with(&s));
            assert!(z0.commutes_with(&s));
        }
    }
}
