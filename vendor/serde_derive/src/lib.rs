//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no registry access, so the workspace vendors
//! a stub `serde`. Deriving here marks a type as serialization-ready at the
//! API level without generating an implementation; the real derive can be
//! swapped back in by pointing the workspace `serde` dependency at crates.io.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
