//! End-to-end pipeline benchmark: one full shot batch + decode per setup
//! (what a Figure 11 data point costs), plus the ablation comparing
//! all-at-once to interleaved extraction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vlq_qec::{
    run_memory_experiment, BlockConfig, BlockSampler, BlockSpec, DecoderKind, ExperimentConfig,
    PreparedBlock,
};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};

fn bench_full_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold-point");
    group.sample_size(10);
    for setup in Setup::ALL {
        let spec = MemorySpec::standard(setup, 3, 10, Basis::Z);
        group.bench_with_input(
            BenchmarkId::new("shots-1024", format!("{setup}")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let cfg = ExperimentConfig::new(*spec, 5e-3)
                        .with_shots(1024)
                        .with_threads(1);
                    run_memory_experiment(&cfg)
                })
            },
        );
    }
    group.finish();
}

fn bench_decoder_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("decoder-ablation");
    group.sample_size(10);
    for decoder in DecoderKind::ALL {
        let spec = MemorySpec::standard(Setup::CompactInterleaved, 5, 10, Basis::Z);
        group.bench_function(format!("{decoder:?}"), |b| {
            b.iter(|| {
                let cfg = ExperimentConfig::new(spec, 5e-3)
                    .with_shots(512)
                    .with_decoder(decoder)
                    .with_threads(1);
                run_memory_experiment(&cfg)
            })
        });
    }
    group.finish();
}

/// The (d, p) grid of the ratcheted BENCH_*.json perf trajectory: the
/// batched sample→decode hot path (`PreparedBlock::run_shots` with one
/// scratch across batches) at every grid point, Union-Find decoded.
fn bench_sample_decode_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("sample-decode-grid");
    group.sample_size(10);
    for d in [3usize, 5, 7, 9] {
        for p in [1e-3, 5e-3] {
            let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
            let block = PreparedBlock::prepare(
                &BlockConfig::new(BlockSpec::full(spec), p).with_decoder(DecoderKind::UnionFind),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("uf-d{d}"), format!("p{p:.0e}")),
                &block,
                |b, block| b.iter(|| block.run_shots(1024, 7)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_full_point,
    bench_decoder_ablation,
    bench_sample_decode_grid
);
criterion_main!(benches);
