//! # vlq-tenant — multi-programming for the virtualized-qubit machine
//!
//! The paper's core claim is that cavity stacks virtualize logical
//! qubits the way DRAM virtualizes memory. This crate adds the piece
//! every virtual-memory system grows next: a **multi-tenant scheduler**
//! that time-shares one machine across N concurrent programs.
//!
//! * [`TenantScheduler`] admits independently compiled programs (each a
//!   solo [`vlq::isa::Schedule`] against the shared
//!   [`vlq::machine::MachineConfig`]), interleaves them
//!   instruction-by-instruction, and emits a single merged, replayable
//!   schedule that the existing executors (`CostExecutor`,
//!   `FrameExecutor`, `TraceExecutor`) consume unchanged.
//! * Cavity-page residency is owned by the scheduler through a
//!   pluggable [`ReplacementPolicy`] ([`RefreshDeadline`], [`Lru`],
//!   [`DeadlinePriority`]); contention shows up as typed `PageIn` /
//!   `PageOut` traffic in the merged schedule, and swap-out time counts
//!   against the paper's `k`-cycle refresh deadline.
//! * Tenants are isolated: disjoint `LogicalId` spaces (so Pauli frames
//!   never mix in `FrameExecutor`), one standalone sub-schedule each,
//!   and per-tenant [`TenantReport`]s that feed one `vlq-telemetry`
//!   recorder per tenant — deterministic contention sidecars fall out
//!   of the existing machinery.
//! * [`TenantSweepExecutor`] puts tenant-count × policy grids on the
//!   `vlq-sweep` engine via `tenants<N>@<policy>` program names (the
//!   `tenants1` bench binary).
//!
//! See `docs/tenancy.md` for the admission rules, the policy contract,
//! and the contention-report schema.

pub mod policy;
pub mod scheduler;
pub mod sweep;

pub use policy::{DeadlinePriority, Lru, PageView, PolicyKind, RefreshDeadline, ReplacementPolicy};
pub use scheduler::{
    MultiProgram, TenantError, TenantReport, TenantScheduler, TenantSpec, MAX_TENANTS,
    MAX_TENANT_QUBITS, TENANT_ID_BITS,
};
pub use sweep::{
    machine_config_for_tenants, merge_standard_mix, parse_tenant_program, standard_mix,
    tenant_program_name, TenantSweepExecutor,
};
