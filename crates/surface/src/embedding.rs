//! Embeddings of the rotated surface code onto hardware.
//!
//! Three embeddings (paper §III):
//!
//! * **Baseline2D** — data and measure qubits are distinct transmons on a
//!   2D grid (Figure 2).
//! * **Natural** — each data transmon has a cavity; the logical qubit's
//!   data live in cavity mode `z`, ancilla transmons have no cavities
//!   (Figure 1/5).
//! * **Compact** — measure ancillas merge into data transmons: each Z
//!   plaquette's ancilla transmon *hosts* its upper-right (NE) data qubit
//!   in its attached cavity; each X plaquette hosts its lower-left (SW)
//!   data (Figure 7/8). Boundary plaquettes whose merge corner does not
//!   exist keep a bare (orphan) transmon; data claimed by no plaquette
//!   keep their own transmon + cavity.
//!
//! The merge bookkeeping here is what the Compact schedule builds on, and
//! the interaction-graph builders quantify the paper's connectivity claim
//! (opposite-corner pairing needs only 4 edge directions and degree 4;
//! same-corner pairing needs 6).

use std::collections::BTreeMap;

use vlq_arch::InteractionGraph;

use crate::layout::{Plaquette, PlaquetteKind, SurfaceLayout};

/// Corner roles of a plaquette, in the canonical order used by
/// [`Plaquette::data`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Corner {
    /// Lower-left `(-1, -1)`.
    SW,
    /// Lower-right `(+1, -1)`.
    SE,
    /// Upper-left `(-1, +1)`.
    NW,
    /// Upper-right `(+1, +1)`.
    NE,
}

impl Corner {
    /// All corners.
    pub const ALL: [Corner; 4] = [Corner::SW, Corner::SE, Corner::NW, Corner::NE];

    /// Offset from the plaquette center.
    pub fn offset(self) -> (i32, i32) {
        match self {
            Corner::SW => (-1, -1),
            Corner::SE => (1, -1),
            Corner::NW => (-1, 1),
            Corner::NE => (1, 1),
        }
    }
}

/// Returns the coordinate of a plaquette corner.
pub fn corner_coord(p: &Plaquette, corner: Corner) -> (i32, i32) {
    let (cx, cy) = p.center;
    let (dx, dy) = corner.offset();
    (cx + dx, cy + dy)
}

/// Returns `Some(coord)` if the plaquette actually contains that corner.
pub fn corner_data(p: &Plaquette, corner: Corner) -> Option<(i32, i32)> {
    let c = corner_coord(p, corner);
    p.data.contains(&c).then_some(c)
}

/// The merge corner of a plaquette kind in the paper's Compact embedding:
/// Z merges with its NE (upper-right) data, X with its SW (lower-left).
pub fn merge_corner(kind: PlaquetteKind) -> Corner {
    match kind {
        PlaquetteKind::Z => Corner::NE,
        PlaquetteKind::X => Corner::SW,
    }
}

/// Where a data qubit's cavity hangs in the Compact embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompactHost {
    /// Hosted by the merged plaquette's transmon (at the plaquette
    /// center); the payload is the plaquette index.
    Plaquette(usize),
    /// Unclaimed: the data keeps its own transmon at its own coordinate.
    OwnTransmon,
}

/// The Compact merge assignment for a layout.
#[derive(Clone, Debug)]
pub struct CompactMerge {
    /// For each plaquette index: the data coordinate it hosts (its merge
    /// corner), or `None` for orphan boundary ancillas.
    pub hosted_data: Vec<Option<(i32, i32)>>,
    /// For each data coordinate: who hosts it.
    pub host_of: BTreeMap<(i32, i32), CompactHost>,
}

impl CompactMerge {
    /// Computes the merge assignment for the paper's opposite-corner rule.
    pub fn new(layout: &SurfaceLayout) -> Self {
        let mut hosted_data = Vec::with_capacity(layout.plaquettes().len());
        let mut host_of: BTreeMap<(i32, i32), CompactHost> = layout
            .data_coords()
            .iter()
            .map(|&c| (c, CompactHost::OwnTransmon))
            .collect();
        for (pi, p) in layout.plaquettes().iter().enumerate() {
            let claimed = corner_data(p, merge_corner(p.kind));
            hosted_data.push(claimed);
            if let Some(c) = claimed {
                let prev = host_of.insert(c, CompactHost::Plaquette(pi));
                assert_eq!(
                    prev,
                    Some(CompactHost::OwnTransmon),
                    "data {c:?} claimed twice"
                );
            }
        }
        CompactMerge {
            hosted_data,
            host_of,
        }
    }

    /// Number of orphan ancilla transmons (plaquettes with no hosted
    /// data).
    pub fn num_orphans(&self) -> usize {
        self.hosted_data.iter().filter(|h| h.is_none()).count()
    }

    /// Number of unclaimed data qubits (keeping their own transmons).
    pub fn num_unclaimed(&self) -> usize {
        self.host_of
            .values()
            .filter(|h| matches!(h, CompactHost::OwnTransmon))
            .count()
    }

    /// Total Compact transmon count: one per plaquette + one per
    /// unclaimed data.
    pub fn num_transmons(&self, layout: &SurfaceLayout) -> usize {
        layout.plaquettes().len() + self.num_unclaimed()
    }

    /// Total cavity count: one per data qubit.
    pub fn num_cavities(&self, layout: &SurfaceLayout) -> usize {
        layout.data_coords().len()
    }

    /// The transmon coordinate where a data qubit's cavity hangs.
    pub fn host_coord(&self, layout: &SurfaceLayout, data: (i32, i32)) -> (i32, i32) {
        match self.host_of[&data] {
            CompactHost::Plaquette(pi) => layout.plaquettes()[pi].center,
            CompactHost::OwnTransmon => data,
        }
    }
}

/// Builds the transmon-transmon interaction graph required by the Compact
/// embedding with the paper's merge rule (or, for the ablation, a naive
/// rule where both kinds merge with the same corner).
///
/// An edge is needed between a plaquette's transmon and the host transmon
/// of each of its non-hosted data qubits.
pub fn compact_interaction_graph(
    layout: &SurfaceLayout,
    naive_same_corner: bool,
) -> InteractionGraph {
    // Select the merge corner per kind.
    let corner_for = |kind: PlaquetteKind| -> Corner {
        if naive_same_corner {
            Corner::NE
        } else {
            merge_corner(kind)
        }
    };
    // Recompute hosting under the chosen rule.
    let mut host_of: BTreeMap<(i32, i32), (i32, i32)> =
        layout.data_coords().iter().map(|&c| (c, c)).collect();
    for p in layout.plaquettes() {
        if let Some(c) = corner_data(p, corner_for(p.kind)) {
            host_of.insert(c, p.center);
        }
    }
    let mut g = InteractionGraph::new();
    for p in layout.plaquettes() {
        let own = corner_data(p, corner_for(p.kind));
        g.add_node(p.center);
        for &dq in &p.data {
            if Some(dq) == own {
                continue; // in-cavity access, no transmon-transmon edge
            }
            let host = host_of[&dq];
            if host != p.center {
                g.add_edge(p.center, host);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_counts_match_closed_form() {
        for d in [3usize, 5, 7, 9] {
            let layout = SurfaceLayout::new(d);
            let merge = CompactMerge::new(&layout);
            assert_eq!(merge.num_orphans(), d - 1, "orphans at d={d}");
            assert_eq!(
                merge.num_transmons(&layout),
                d * d + d - 1,
                "transmons at d={d}"
            );
            assert_eq!(merge.num_cavities(&layout), d * d);
        }
    }

    #[test]
    fn smallest_instance_11_transmons_9_cavities() {
        let layout = SurfaceLayout::new(3);
        let merge = CompactMerge::new(&layout);
        assert_eq!(merge.num_transmons(&layout), 11);
        assert_eq!(merge.num_cavities(&layout), 9);
    }

    #[test]
    fn every_data_has_exactly_one_host() {
        let layout = SurfaceLayout::new(5);
        let merge = CompactMerge::new(&layout);
        assert_eq!(merge.host_of.len(), 25);
        // Hosted by a plaquette => that plaquette's merge corner is the
        // data itself.
        for (&data, host) in &merge.host_of {
            if let CompactHost::Plaquette(pi) = host {
                let p = &layout.plaquettes()[*pi];
                assert_eq!(corner_data(p, merge_corner(p.kind)), Some(data));
            }
        }
    }

    #[test]
    fn orphans_are_on_the_correct_boundaries() {
        // Z halves on the top edge lack their NE data; X halves on the
        // left edge lack their SW data.
        let layout = SurfaceLayout::new(7);
        let merge = CompactMerge::new(&layout);
        for (pi, hosted) in merge.hosted_data.iter().enumerate() {
            if hosted.is_none() {
                let p = &layout.plaquettes()[pi];
                assert!(p.is_half(), "orphan must be a boundary half");
                match p.kind {
                    PlaquetteKind::Z => assert_eq!(p.center.1, 14, "Z orphan on top edge"),
                    PlaquetteKind::X => assert_eq!(p.center.0, 0, "X orphan on left edge"),
                }
            }
        }
    }

    #[test]
    fn paper_pairing_has_degree_4_and_3_directions() {
        // The paper (§III-C): the opposite-corner pairing is "the best
        // scheme we found to satisfy the hardware connectivity" and keeps
        // 4-way grid connectivity.
        for d in [3usize, 5, 7] {
            let layout = SurfaceLayout::new(d);
            let g = compact_interaction_graph(&layout, false);
            g.check().unwrap();
            assert!(g.max_degree() <= 4, "degree {} at d={d}", g.max_degree());
            // Bulk pattern: grid + one diagonal family (3 directions);
            // boundary data that keep their own transmons add one short
            // anti-diagonal family at the edge.
            assert!(g.num_edge_directions() <= 4);
            // The naive variant must be strictly worse on both counts.
            let naive = compact_interaction_graph(&layout, true);
            assert!(naive.max_degree() > g.max_degree());
            assert!(naive.num_edge_directions() >= g.num_edge_directions());
        }
    }

    #[test]
    fn naive_pairing_needs_degree_6() {
        // Ablation: same-corner merging requires six-way connectivity
        // ("two diagonal to the grid" beyond the 4-way grid).
        let layout = SurfaceLayout::new(7);
        let g = compact_interaction_graph(&layout, true);
        assert!(g.max_degree() >= 5, "naive degree {}", g.max_degree());
        assert!(g.num_edge_directions() > 3);
    }

    #[test]
    fn corner_helpers() {
        let layout = SurfaceLayout::new(3);
        let p = layout.plaquettes().iter().find(|p| !p.is_half()).unwrap();
        for c in Corner::ALL {
            assert_eq!(corner_data(p, c), Some(corner_coord(p, c)));
        }
        let half = layout.plaquettes().iter().find(|p| p.is_half()).unwrap();
        let present = Corner::ALL
            .iter()
            .filter(|&&c| corner_data(half, c).is_some())
            .count();
        assert_eq!(present, 2);
    }
}
