//! Allocation-free run telemetry for the sample→decode→sweep stack.
//!
//! Every metric the workspace records is **pre-registered** in the
//! [`Metric`] enum; a [`Recorder`] holds one fixed slot per metric
//! (plain-`u64` counters, `fetch_max` gauges, fixed log2-bucket
//! histograms), so the hot path never allocates, never locks, and never
//! formats — it performs one relaxed atomic op per record call. A
//! disabled recorder ([`Recorder::disabled`]) costs exactly one branch
//! per call, which is what lets instrumentation live inside the
//! batched sample→decode loop without violating the zero
//! steady-state-allocation guarantee of `crates/qec/tests/alloc_probe.rs`.
//!
//! # Two metric classes, one determinism contract
//!
//! Telemetry must never perturb results (no RNG access, no iteration-
//! order dependence) — and the machine-readable report must itself be
//! reproducible. Metrics therefore carry a [`MetricClass`]:
//!
//! * [`MetricClass::Deterministic`] — commutative reductions (sums,
//!   maxes, bucket counts) of seed-deterministic work quantities.
//!   Because the work set is schedule-independent and the reductions
//!   commute, these aggregate to identical values for *any* worker
//!   count or steal order. Only these appear in the JSONL report
//!   ([`Recorder::deterministic_jsonl`]), which is byte-identical
//!   across `--workers 1/2/4` for the same seed.
//! * [`MetricClass::Runtime`] — wall-clock spans, steal counts, worker
//!   occupancy. Inherently schedule-dependent; they appear only in the
//!   human summary ([`Recorder::summary`]) on stderr.
//!
//! # Examples
//!
//! ```
//! use vlq_telemetry::{Metric, Recorder};
//!
//! let rec = Recorder::attached();
//! rec.add(Metric::SampleLanes, 1024);
//! rec.observe(Metric::DefectsPerLane, 3);
//! {
//!     let _span = rec.span(Metric::DecodeNanos); // records on drop
//! }
//! assert_eq!(rec.value(Metric::SampleLanes), 1024);
//!
//! let off = Recorder::disabled(); // hot-path cost: one branch
//! off.add(Metric::SampleLanes, 1024);
//! assert_eq!(off.value(Metric::SampleLanes), 0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Schema tag of the deterministic JSONL report (first line of every
/// `--telemetry` sidecar; bump on any row-shape change).
pub const SCHEMA: &str = "vlq-telemetry/v1";

/// Histogram bucket count: bucket 0 holds zeros, bucket `b >= 1` holds
/// values with `b` significant bits (`2^(b-1) ..= 2^b - 1`), so bucket
/// 64 holds `2^63 ..= u64::MAX`.
pub const NUM_BUCKETS: usize = 65;

/// The log2 bucket a value lands in (total order, no floats).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Storage/reduction shape of a metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone sum (`fetch_add`).
    Counter,
    /// Running maximum (`fetch_max`).
    GaugeMax,
    /// Fixed log2-bucket distribution plus count and sum.
    Histogram,
}

impl MetricKind {
    /// Stable lowercase name used in report rows.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::GaugeMax => "gauge_max",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Whether a metric is reproducible across schedules (see crate docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricClass {
    /// Seed-deterministic, schedule-independent: eligible for the
    /// machine-readable JSONL report.
    Deterministic,
    /// Wall-clock / scheduling dependent: human summary only.
    Runtime,
}

macro_rules! metrics {
    ($( $variant:ident => ($name:expr, $kind:ident, $class:ident) ),+ $(,)?) => {
        /// Every metric the workspace records, pre-registered so the
        /// recorder's storage is fixed at construction (no allocation,
        /// no string lookup on the hot path). Adding a metric means
        /// adding a variant here — see `docs/observability.md` for the
        /// rules that keep the alloc probe and the determinism contract
        /// intact.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub enum Metric {
            $(
                #[doc = $name]
                $variant,
            )+
        }

        impl Metric {
            /// Every registered metric, in report-row order.
            pub const ALL: [Metric; metrics!(@count $($variant)+)] = [
                $(Metric::$variant,)+
            ];

            /// Stable dotted name (`layer.metric`) used in report rows.
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$variant => $name,)+
                }
            }

            /// Storage/reduction shape.
            pub fn kind(self) -> MetricKind {
                match self {
                    $(Metric::$variant => MetricKind::$kind,)+
                }
            }

            /// Determinism class (see crate docs).
            pub fn class(self) -> MetricClass {
                match self {
                    $(Metric::$variant => MetricClass::$class,)+
                }
            }
        }
    };
    (@count $($tok:ident)+) => { 0usize $(+ metrics!(@one $tok))+ };
    (@one $tok:ident) => { 1usize };
}

metrics! {
    // -- decoder ------------------------------------------------------
    DefectsPerLane => ("decoder.defects_per_lane", Histogram, Deterministic),
    UfGrowthSteps => ("decoder.uf_growth_steps", Counter, Deterministic),
    UfTouchedNodes => ("decoder.uf_touched_nodes", Counter, Deterministic),
    UfOddClusterPeak => ("decoder.uf_odd_cluster_peak", GaugeMax, Deterministic),
    MwpmBlossomCalls => ("decoder.mwpm_blossom_calls", Counter, Deterministic),
    // -- qec block sampling -------------------------------------------
    SampleBatches => ("qec.sample_batches", Counter, Deterministic),
    SampleLanes => ("qec.sample_lanes", Counter, Deterministic),
    BlockFailures => ("qec.block_failures", Counter, Deterministic),
    // -- vlq schedule replay ------------------------------------------
    ExecRefreshBlocks => ("exec.blocks_refresh", Counter, Deterministic),
    ExecLogical1QBlocks => ("exec.blocks_logical1q", Counter, Deterministic),
    ExecCnotBlocks => ("exec.blocks_cnot", Counter, Deterministic),
    ExecSurgeryBlocks => ("exec.blocks_surgery", Counter, Deterministic),
    ExecMoveBlocks => ("exec.blocks_move", Counter, Deterministic),
    ExecMagicBlocks => ("exec.blocks_magic", Counter, Deterministic),
    ExecMeasureBlocks => ("exec.blocks_measure", Counter, Deterministic),
    // -- vlq cost replay ----------------------------------------------
    CostDeadlineMisses => ("cost.deadline_misses", Counter, Deterministic),
    CostPageIns => ("cost.page_ins", Counter, Deterministic),
    CostPageOuts => ("cost.page_outs", Counter, Deterministic),
    // -- tenancy (multi-tenant contention accounting) -----------------
    TenantQueueDelay => ("tenant.queue_delay", Counter, Deterministic),
    TenantDeadlineMisses => ("tenant.deadline_misses", Counter, Deterministic),
    TenantEvictions => ("tenant.evictions", Counter, Deterministic),
    TenantPageFaults => ("tenant.page_faults", Counter, Deterministic),
    TenantRefreshSkips => ("tenant.refresh_skips", Counter, Deterministic),
    TenantInstructions => ("tenant.instructions", Counter, Deterministic),
    TenantFinishT => ("tenant.finish_t", GaugeMax, Deterministic),
    TenantIdealT => ("tenant.ideal_t", GaugeMax, Deterministic),
    TenantSlowdownPermille => ("tenant.slowdown_permille", GaugeMax, Deterministic),
    // -- sweep engine (deterministic work accounting) -----------------
    SweepPoints => ("sweep.points_completed", Counter, Deterministic),
    SweepChunks => ("sweep.chunks_completed", Counter, Deterministic),
    SweepShots => ("sweep.shots", Counter, Deterministic),
    SweepFailures => ("sweep.failures", Counter, Deterministic),
    // -- runtime (timings / scheduling; stderr summary only) ----------
    SampleNanos => ("qec.sample_nanos", Counter, Runtime),
    ExtractNanos => ("qec.extract_nanos", Counter, Runtime),
    DecodeNanos => ("qec.decode_nanos", Counter, Runtime),
    DecodeBatchNanos => ("decoder.decode_batch_nanos", Counter, Runtime),
    SweepPointNanos => ("sweep.point_nanos", Histogram, Runtime),
    SweepBusyNanos => ("sweep.worker_busy_nanos", Counter, Runtime),
    SweepSteals => ("sweep.steals", Counter, Runtime),
    SweepWallNanos => ("sweep.wall_nanos", Counter, Runtime),
    PoolSteals => ("pool.steals", Counter, Runtime),
    PoolBusyNanos => ("pool.worker_busy_nanos", Counter, Runtime),
    // -- fleet supervisor (process scheduling; stderr summary only) ----
    FleetProcs => ("fleet.procs", GaugeMax, Runtime),
    FleetPolls => ("fleet.polls", Counter, Runtime),
    FleetRestarts => ("fleet.restarts", Counter, Runtime),
    FleetStalls => ("fleet.stalls", Counter, Runtime),
    FleetBackoffNanos => ("fleet.backoff_nanos", Counter, Runtime),
    FleetShardWallNanos => ("fleet.shard_wall_nanos", Histogram, Runtime),
}

impl Metric {
    /// Looks a metric up by its stable dotted name (report-row inverse
    /// of [`Metric::name`]).
    pub fn parse(name: &str) -> Option<Metric> {
        Metric::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Dense histogram-storage slot of a `Histogram` metric.
    fn hist_slot(self) -> Option<usize> {
        let mut slot = 0;
        for m in Metric::ALL {
            if m.kind() == MetricKind::Histogram {
                if m == self {
                    return Some(slot);
                }
                slot += 1;
            }
        }
        None
    }

    fn index(self) -> usize {
        Metric::ALL
            .iter()
            .position(|m| *m == self)
            .expect("ALL covers every variant")
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

const NUM_METRICS: usize = Metric::ALL.len();

fn num_hists() -> usize {
    Metric::ALL
        .iter()
        .filter(|m| m.kind() == MetricKind::Histogram)
        .count()
}

/// One histogram's storage: log2 buckets plus exact count and sum.
#[derive(Debug)]
struct Hist {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Hist {
    fn new() -> Self {
        Hist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// Immutable read of one histogram (see [`Recorder::hist`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observed values (wrapping on overflow, like the storage).
    pub sum: u64,
    /// Per-bucket observation counts ([`bucket_index`] indexing).
    pub buckets: [u64; NUM_BUCKETS],
}

#[derive(Debug)]
struct Inner {
    /// Counter sums / gauge maxima, indexed by [`Metric::index`].
    /// Histogram metrics keep their scalar slot at zero.
    scalars: [AtomicU64; NUM_METRICS],
    hists: Vec<Hist>,
}

/// Handle to pre-registered telemetry storage.
///
/// Cloning is an `Arc` refcount bump (workers share one storage; all
/// reductions are commutative atomics, so aggregation is free).
/// [`Recorder::disabled`] carries no storage: every record call is one
/// branch, every read returns zero.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
}

impl Recorder {
    /// A recorder with live storage (the only allocation telemetry
    /// ever performs, at construction time).
    pub fn attached() -> Self {
        Recorder {
            inner: Some(Arc::new(Inner {
                scalars: std::array::from_fn(|_| AtomicU64::new(0)),
                hists: (0..num_hists()).map(|_| Hist::new()).collect(),
            })),
        }
    }

    /// The no-op recorder: one branch per call, no storage.
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// Whether record calls land anywhere. Hot loops may hoist this to
    /// skip per-item work (e.g. a per-lane histogram pass) entirely.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `v` to a counter.
    #[inline]
    pub fn add(&self, metric: Metric, v: u64) {
        if let Some(inner) = &self.inner {
            debug_assert_eq!(metric.kind(), MetricKind::Counter);
            inner.scalars[metric.index()].fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Raises a max-gauge to at least `v`.
    #[inline]
    pub fn gauge_max(&self, metric: Metric, v: u64) {
        if let Some(inner) = &self.inner {
            debug_assert_eq!(metric.kind(), MetricKind::GaugeMax);
            inner.scalars[metric.index()].fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&self, metric: Metric, v: u64) {
        if let Some(inner) = &self.inner {
            let slot = metric
                .hist_slot()
                .expect("observe() needs a Histogram metric");
            inner.hists[slot].observe(v);
        }
    }

    /// Starts an RAII span timer; its elapsed nanoseconds are added to
    /// `metric` (a counter) when the guard drops. A disabled recorder's
    /// span never reads the clock.
    #[inline]
    pub fn span(&self, metric: Metric) -> Span {
        Span {
            recorder: self.clone(),
            metric,
            start: self.inner.is_some().then(Instant::now),
        }
    }

    /// Current value of a counter or max-gauge (0 when disabled).
    pub fn value(&self, metric: Metric) -> u64 {
        match &self.inner {
            Some(inner) => inner.scalars[metric.index()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Current contents of a histogram metric (`None` when disabled or
    /// when `metric` is not a histogram).
    pub fn hist(&self, metric: Metric) -> Option<HistSnapshot> {
        let inner = self.inner.as_ref()?;
        let h = &inner.hists[metric.hist_slot()?];
        Some(HistSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| h.buckets[i].load(Ordering::Relaxed)),
        })
    }

    /// Atomically moves everything recorded here into `target`, leaving
    /// this recorder zeroed. Counters and histogram contents are added,
    /// max-gauges folded with `max` — exactly the commutative reductions
    /// sharing one storage would have performed, so drain-merging
    /// per-worker recorders (in any order) produces values identical to
    /// all workers recording into one shared recorder. Allocation-free:
    /// the in-block thread pool calls this after every job without
    /// violating the alloc-probe contract. Draining a disabled recorder
    /// is a no-op; draining into a disabled target still resets the
    /// source (the values are deliberately dropped).
    pub fn drain_into(&self, target: &Recorder) {
        let Some(src) = self.inner.as_deref() else {
            return;
        };
        let dst = target.inner.as_deref();
        for metric in Metric::ALL {
            match metric.kind() {
                MetricKind::Counter => {
                    let v = src.scalars[metric.index()].swap(0, Ordering::Relaxed);
                    if let Some(dst) = dst {
                        if v != 0 {
                            dst.scalars[metric.index()].fetch_add(v, Ordering::Relaxed);
                        }
                    }
                }
                MetricKind::GaugeMax => {
                    let v = src.scalars[metric.index()].swap(0, Ordering::Relaxed);
                    if let Some(dst) = dst {
                        if v != 0 {
                            dst.scalars[metric.index()].fetch_max(v, Ordering::Relaxed);
                        }
                    }
                }
                MetricKind::Histogram => {
                    let slot = metric.hist_slot().expect("histogram metric has a slot");
                    let s = &src.hists[slot];
                    let d = dst.map(|d| &d.hists[slot]);
                    for i in 0..NUM_BUCKETS {
                        let v = s.buckets[i].swap(0, Ordering::Relaxed);
                        if let Some(d) = d {
                            if v != 0 {
                                d.buckets[i].fetch_add(v, Ordering::Relaxed);
                            }
                        }
                    }
                    let count = s.count.swap(0, Ordering::Relaxed);
                    let sum = s.sum.swap(0, Ordering::Relaxed);
                    if let Some(d) = d {
                        if count != 0 {
                            d.count.fetch_add(count, Ordering::Relaxed);
                            d.sum.fetch_add(sum, Ordering::Relaxed);
                        }
                    }
                }
            }
        }
    }

    /// The machine-readable report: a JSONL document with one header
    /// line (schema tag, binary name, seed) and one row per
    /// *deterministic* metric, in [`Metric::ALL`] order. Every
    /// deterministic metric is always present (schema-stable row set),
    /// and every value is a commutative reduction of seed-deterministic
    /// work, so the document is byte-identical across worker counts.
    pub fn deterministic_jsonl(&self, bin: &str, seed: u64) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"schema\": \"{SCHEMA}\", \"bin\": \"{bin}\", \"seed\": {seed}}}\n"
        ));
        for metric in Metric::ALL {
            if metric.class() != MetricClass::Deterministic {
                continue;
            }
            match metric.kind() {
                MetricKind::Counter | MetricKind::GaugeMax => {
                    s.push_str(&format!(
                        "{{\"metric\": \"{}\", \"kind\": \"{}\", \"value\": {}}}\n",
                        metric.name(),
                        metric.kind().name(),
                        self.value(metric)
                    ));
                }
                MetricKind::Histogram => {
                    let h = self.hist(metric).unwrap_or(HistSnapshot {
                        count: 0,
                        sum: 0,
                        buckets: [0; NUM_BUCKETS],
                    });
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(i, c)| format!("[{i}, {c}]"))
                        .collect();
                    s.push_str(&format!(
                        "{{\"metric\": \"{}\", \"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [{}]}}\n",
                        metric.name(),
                        h.count,
                        h.sum,
                        buckets.join(", ")
                    ));
                }
            }
        }
        s
    }

    /// The human summary: one aligned line per non-zero metric (both
    /// classes), for stderr. Returns an empty string when disabled.
    pub fn summary(&self) -> String {
        if !self.is_enabled() {
            return String::new();
        }
        let mut s = String::from("telemetry summary:\n");
        for metric in Metric::ALL {
            let class = match metric.class() {
                MetricClass::Deterministic => "det",
                MetricClass::Runtime => "run",
            };
            match metric.kind() {
                MetricKind::Counter | MetricKind::GaugeMax => {
                    let v = self.value(metric);
                    if v == 0 {
                        continue;
                    }
                    s.push_str(&format!(
                        "  {:<28} {:>9} [{}] {}\n",
                        metric.name(),
                        metric.kind().name(),
                        class,
                        v
                    ));
                }
                MetricKind::Histogram => {
                    let Some(h) = self.hist(metric) else { continue };
                    if h.count == 0 {
                        continue;
                    }
                    let mean = h.sum as f64 / h.count as f64;
                    s.push_str(&format!(
                        "  {:<28} {:>9} [{}] count={} sum={} mean={:.2}\n",
                        metric.name(),
                        "histogram",
                        class,
                        h.count,
                        h.sum,
                        mean
                    ));
                }
            }
        }
        s
    }
}

/// RAII span timer from [`Recorder::span`]: adds the elapsed
/// nanoseconds to its counter metric on drop. Holds a recorder handle
/// (an `Arc` clone — no allocation), so it outlives reborrows of the
/// structure it was started from.
#[derive(Debug)]
pub struct Span {
    recorder: Recorder,
    metric: Metric,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder
                .add(self.metric, start.elapsed().as_nanos() as u64);
        }
    }
}

/// Everything [`merge_deterministic_jsonl`] can reject, typed so fleet
/// failures name the offending document and line.
#[derive(Debug)]
pub enum SidecarMergeError {
    /// No documents to merge.
    Empty,
    /// A document's header disagrees with the first document's (merging
    /// only makes sense for sidecars of the same binary and seed).
    HeaderMismatch {
        /// Zero-based index of the offending document.
        doc: usize,
    },
    /// A row names a metric this build does not register.
    UnknownMetric {
        /// Zero-based index of the offending document.
        doc: usize,
        /// The unregistered metric name.
        name: String,
    },
    /// A line does not parse as a sidecar header or metric row.
    Malformed {
        /// Zero-based index of the offending document.
        doc: usize,
        /// Zero-based line number within the document.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for SidecarMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SidecarMergeError::Empty => write!(f, "no telemetry sidecars to merge"),
            SidecarMergeError::HeaderMismatch { doc } => write!(
                f,
                "sidecar {doc} header disagrees with sidecar 0 (schema, bin, or seed)"
            ),
            SidecarMergeError::UnknownMetric { doc, name } => {
                write!(f, "sidecar {doc} row names unregistered metric {name:?}")
            }
            SidecarMergeError::Malformed { doc, line, reason } => {
                write!(f, "sidecar {doc} line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SidecarMergeError {}

/// The `"key": "str"` field of a sidecar line (the exact spacing
/// [`Recorder::deterministic_jsonl`] writes).
fn sidecar_str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let at = line.find(&needle)? + needle.len();
    let end = line[at..].find('"')?;
    Some(line[at..at + end].to_string())
}

/// The `"key": N` field of a sidecar line.
fn sidecar_u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Merges deterministic telemetry sidecars (one per shard process) into
/// the single document one shared recorder would have produced: headers
/// must agree byte-for-byte (same schema, binary, seed), counters and
/// histogram contents are summed, max-gauges folded with `max` — the
/// same commutative reductions [`Recorder::drain_into`] performs, just
/// across process boundaries via the serialized report. Because every
/// deterministic metric is schedule-independent, merging the sidecars
/// of a clean sharded run reproduces the unsharded run's sidecar
/// byte-for-byte.
pub fn merge_deterministic_jsonl(docs: &[&str]) -> Result<String, SidecarMergeError> {
    let header = docs
        .first()
        .ok_or(SidecarMergeError::Empty)?
        .lines()
        .next()
        .ok_or(SidecarMergeError::Malformed {
            doc: 0,
            line: 0,
            reason: "empty document".to_string(),
        })?;
    if !header.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
        return Err(SidecarMergeError::Malformed {
            doc: 0,
            line: 0,
            reason: format!("header is not {SCHEMA:?}"),
        });
    }
    let bin = sidecar_str_field(header, "bin").ok_or(SidecarMergeError::Malformed {
        doc: 0,
        line: 0,
        reason: "header has no \"bin\"".to_string(),
    })?;
    let seed = sidecar_u64_field(header, "seed").ok_or(SidecarMergeError::Malformed {
        doc: 0,
        line: 0,
        reason: "header has no \"seed\"".to_string(),
    })?;

    let merged = Recorder::attached();
    let inner = merged.inner.as_deref().expect("attached recorder");
    for (doc_idx, doc) in docs.iter().enumerate() {
        let mut lines = doc.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h == header => {}
            _ => return Err(SidecarMergeError::HeaderMismatch { doc: doc_idx }),
        }
        for (line_idx, line) in lines {
            let malformed = |reason: &str| SidecarMergeError::Malformed {
                doc: doc_idx,
                line: line_idx,
                reason: reason.to_string(),
            };
            let name =
                sidecar_str_field(line, "metric").ok_or_else(|| malformed("no \"metric\""))?;
            let metric = Metric::parse(&name)
                .ok_or(SidecarMergeError::UnknownMetric { doc: doc_idx, name })?;
            let kind = sidecar_str_field(line, "kind").ok_or_else(|| malformed("no \"kind\""))?;
            if kind != metric.kind().name() {
                return Err(malformed(&format!(
                    "kind {kind:?} contradicts registered {:?}",
                    metric.kind().name()
                )));
            }
            match metric.kind() {
                MetricKind::Counter => {
                    let v = sidecar_u64_field(line, "value")
                        .ok_or_else(|| malformed("no \"value\""))?;
                    merged.add(metric, v);
                }
                MetricKind::GaugeMax => {
                    let v = sidecar_u64_field(line, "value")
                        .ok_or_else(|| malformed("no \"value\""))?;
                    merged.gauge_max(metric, v);
                }
                MetricKind::Histogram => {
                    let count = sidecar_u64_field(line, "count")
                        .ok_or_else(|| malformed("no \"count\""))?;
                    let sum =
                        sidecar_u64_field(line, "sum").ok_or_else(|| malformed("no \"sum\""))?;
                    let slot = metric.hist_slot().expect("histogram metric has a slot");
                    let h = &inner.hists[slot];
                    h.count.fetch_add(count, Ordering::Relaxed);
                    h.sum.fetch_add(sum, Ordering::Relaxed);
                    let open = line
                        .find("\"buckets\": [")
                        .ok_or_else(|| malformed("no \"buckets\""))?
                        + "\"buckets\": [".len();
                    let close = line
                        .rfind(']')
                        .ok_or_else(|| malformed("unclosed buckets"))?;
                    let body = &line[open..close];
                    for pair in body.split("],") {
                        let pair = pair.trim().trim_start_matches('[').trim_end_matches(']');
                        if pair.is_empty() {
                            continue;
                        }
                        let (i, c) = pair
                            .split_once(',')
                            .ok_or_else(|| malformed("bucket pair is not [index, count]"))?;
                        let i: usize = i
                            .trim()
                            .parse()
                            .map_err(|_| malformed("bucket index is not an integer"))?;
                        let c: u64 = c
                            .trim()
                            .parse()
                            .map_err(|_| malformed("bucket count is not an integer"))?;
                        if i >= NUM_BUCKETS {
                            return Err(malformed(&format!("bucket index {i} out of range")));
                        }
                        h.buckets[i].fetch_add(c, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    Ok(merged.deterministic_jsonl(&bin, seed))
}

/// Rate-limited stderr progress reporter for long sweeps.
///
/// Replaces the sweep engine's hand-rolled `Progress` struct. The rate
/// limiter is seeded with the construction instant, so the *first*
/// completion only prints once the interval has elapsed (the old
/// behavior printed immediately, spamming stderr with one line per
/// point on sub-millisecond grids); the final completion always
/// prints.
#[derive(Debug)]
pub struct ProgressReporter {
    enabled: bool,
    total: usize,
    started: Instant,
    last_print: Instant,
    interval: Duration,
}

impl ProgressReporter {
    /// A reporter for `total` work items; `enabled = false` makes
    /// `update` a no-op.
    pub fn new(enabled: bool, total: usize) -> Self {
        let now = Instant::now();
        ProgressReporter {
            enabled,
            total,
            started: now,
            last_print: now,
            interval: Duration::from_millis(250),
        }
    }

    /// Reports `completed`/total with ETA, rate-limited to one line per
    /// interval; completion always prints.
    pub fn update(&mut self, completed: usize) {
        if let Some(line) = self.update_line(completed, Instant::now()) {
            eprintln!("{line}");
        }
    }

    /// The testable core of [`ProgressReporter::update`]: the line to
    /// print at `now`, if one is due.
    fn update_line(&mut self, completed: usize, now: Instant) -> Option<String> {
        if !self.enabled {
            return None;
        }
        let due = now.duration_since(self.last_print) >= self.interval;
        if !due && completed < self.total {
            return None;
        }
        self.last_print = now;
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let eta = if completed > 0 && completed < self.total {
            let rate = elapsed / completed as f64;
            format!("{:.1}s", rate * (self.total - completed) as f64)
        } else if completed >= self.total {
            "done".to_string()
        } else {
            "?".to_string()
        };
        Some(format!(
            "sweep: {completed}/{} points ({:.0}%) elapsed {elapsed:.1}s eta {eta}",
            self.total,
            100.0 * completed as f64 / self.total.max(1) as f64,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_exact() {
        // Zero gets its own bucket; powers of two open new buckets;
        // u64::MAX lands in the last one.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 32) - 1), 32);
        assert_eq!(bucket_index(1 << 32), 33);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(1 << 63), NUM_BUCKETS - 1);
    }

    #[test]
    fn histogram_records_edge_values() {
        let rec = Recorder::attached();
        for v in [0, 1, 1, 7, u64::MAX] {
            rec.observe(Metric::DefectsPerLane, v);
        }
        let h = rec.hist(Metric::DefectsPerLane).unwrap();
        assert_eq!(h.count, 5);
        assert_eq!(
            h.sum,
            0u64.wrapping_add(1)
                .wrapping_add(1)
                .wrapping_add(7)
                .wrapping_add(u64::MAX)
        );
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 2); // the two ones
        assert_eq!(h.buckets[3], 1); // 7 -> bucket 3 (4..=7)
        assert_eq!(h.buckets[NUM_BUCKETS - 1], 1); // u64::MAX
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.add(Metric::SampleLanes, 5);
        rec.incr(Metric::SampleBatches);
        rec.gauge_max(Metric::UfOddClusterPeak, 9);
        rec.observe(Metric::DefectsPerLane, 3);
        drop(rec.span(Metric::DecodeNanos));
        assert_eq!(rec.value(Metric::SampleLanes), 0);
        assert_eq!(rec.value(Metric::UfOddClusterPeak), 0);
        assert!(rec.hist(Metric::DefectsPerLane).is_none());
        assert_eq!(rec.summary(), "");
        // The disabled report still carries the stable header + row set.
        let report = rec.deterministic_jsonl("test", 7);
        assert!(report.starts_with(&format!("{{\"schema\": \"{SCHEMA}\"")));
    }

    #[test]
    fn counters_and_gauges_reduce_commutatively() {
        let rec = Recorder::attached();
        let clone = rec.clone(); // shared storage
        rec.add(Metric::SweepShots, 100);
        clone.add(Metric::SweepShots, 23);
        rec.gauge_max(Metric::UfOddClusterPeak, 4);
        clone.gauge_max(Metric::UfOddClusterPeak, 2);
        assert_eq!(rec.value(Metric::SweepShots), 123);
        assert_eq!(rec.value(Metric::UfOddClusterPeak), 4);
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let rec = Recorder::attached();
        {
            let _span = rec.span(Metric::DecodeNanos);
            std::hint::black_box(());
        }
        // Monotone clocks can report 0ns for an empty block; just check
        // that a longer busy-wait records *something*.
        let t0 = Instant::now();
        {
            let _span = rec.span(Metric::SampleNanos);
            while t0.elapsed() < Duration::from_micros(50) {
                std::hint::black_box(());
            }
        }
        assert!(rec.value(Metric::SampleNanos) > 0);
    }

    #[test]
    fn deterministic_report_excludes_runtime_metrics() {
        let rec = Recorder::attached();
        rec.add(Metric::SweepShots, 7);
        rec.add(Metric::SweepBusyNanos, 999); // runtime class
        let report = rec.deterministic_jsonl("unit", 1);
        assert!(report.contains("\"sweep.shots\""));
        assert!(!report.contains("worker_busy_nanos"));
        assert!(!report.contains("sweep.steals"));
        // Row set = header + every deterministic metric, always.
        let det_rows = Metric::ALL
            .iter()
            .filter(|m| m.class() == MetricClass::Deterministic)
            .count();
        assert_eq!(report.lines().count(), det_rows + 1);
    }

    #[test]
    fn deterministic_report_is_stable_across_equal_recordings() {
        let run = || {
            let rec = Recorder::attached();
            rec.add(Metric::SweepShots, 42);
            rec.observe(Metric::DefectsPerLane, 3);
            rec.observe(Metric::DefectsPerLane, 0);
            rec.deterministic_jsonl("unit", 9)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn metric_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate metric name");
        for m in Metric::ALL {
            assert!(m.name().contains('.'), "{} is not layer-dotted", m);
        }
    }

    #[test]
    fn drain_into_matches_shared_recording_and_resets_the_source() {
        // Shared-storage reference: both "workers" record into one.
        let shared = Recorder::attached();
        shared.add(Metric::SweepShots, 100);
        shared.add(Metric::SweepShots, 23);
        shared.gauge_max(Metric::UfOddClusterPeak, 4);
        shared.gauge_max(Metric::UfOddClusterPeak, 9);
        shared.observe(Metric::DefectsPerLane, 3);
        shared.observe(Metric::DefectsPerLane, 0);

        // Per-worker recorders drained into one target.
        let target = Recorder::attached();
        let (w0, w1) = (Recorder::attached(), Recorder::attached());
        w0.add(Metric::SweepShots, 100);
        w1.add(Metric::SweepShots, 23);
        w0.gauge_max(Metric::UfOddClusterPeak, 4);
        w1.gauge_max(Metric::UfOddClusterPeak, 9);
        w0.observe(Metric::DefectsPerLane, 3);
        w1.observe(Metric::DefectsPerLane, 0);
        w0.drain_into(&target);
        w1.drain_into(&target);

        assert_eq!(
            target.deterministic_jsonl("unit", 1),
            shared.deterministic_jsonl("unit", 1)
        );
        // The sources are fully reset: a second drain adds nothing.
        assert_eq!(w0.value(Metric::SweepShots), 0);
        assert!(w0.hist(Metric::DefectsPerLane).unwrap().count == 0);
        w0.drain_into(&target);
        assert_eq!(
            target.deterministic_jsonl("unit", 1),
            shared.deterministic_jsonl("unit", 1)
        );
    }

    #[test]
    fn drain_into_handles_disabled_endpoints() {
        // Disabled source: no-op.
        let target = Recorder::attached();
        Recorder::disabled().drain_into(&target);
        assert_eq!(target.value(Metric::SweepShots), 0);
        // Disabled target: values dropped, source still reset.
        let src = Recorder::attached();
        src.add(Metric::SweepShots, 7);
        src.drain_into(&Recorder::disabled());
        assert_eq!(src.value(Metric::SweepShots), 0);
        // Draining a recorder into its own storage keeps the values.
        let rec = Recorder::attached();
        rec.add(Metric::SweepShots, 5);
        rec.gauge_max(Metric::UfOddClusterPeak, 3);
        rec.observe(Metric::DefectsPerLane, 2);
        rec.drain_into(&rec.clone());
        assert_eq!(rec.value(Metric::SweepShots), 5);
        assert_eq!(rec.value(Metric::UfOddClusterPeak), 3);
        assert_eq!(rec.hist(Metric::DefectsPerLane).unwrap().count, 1);
    }

    #[test]
    fn sidecar_merge_matches_shared_recording() {
        // Shared-storage reference: one recorder sees all the work.
        let shared = Recorder::attached();
        shared.add(Metric::SweepShots, 100);
        shared.add(Metric::SweepShots, 23);
        shared.gauge_max(Metric::UfOddClusterPeak, 9);
        shared.gauge_max(Metric::UfOddClusterPeak, 4);
        shared.observe(Metric::DefectsPerLane, 3);
        shared.observe(Metric::DefectsPerLane, 0);
        shared.observe(Metric::DefectsPerLane, 1 << 40);

        // Two "shard processes" each serialize their own sidecar.
        let (a, b) = (Recorder::attached(), Recorder::attached());
        a.add(Metric::SweepShots, 100);
        b.add(Metric::SweepShots, 23);
        a.gauge_max(Metric::UfOddClusterPeak, 9);
        b.gauge_max(Metric::UfOddClusterPeak, 4);
        a.observe(Metric::DefectsPerLane, 3);
        b.observe(Metric::DefectsPerLane, 0);
        b.observe(Metric::DefectsPerLane, 1 << 40);
        let (doc_a, doc_b) = (
            a.deterministic_jsonl("fig11", 2020),
            b.deterministic_jsonl("fig11", 2020),
        );

        let merged = merge_deterministic_jsonl(&[&doc_a, &doc_b]).unwrap();
        assert_eq!(merged, shared.deterministic_jsonl("fig11", 2020));
        // Merging one document is the identity.
        assert_eq!(merge_deterministic_jsonl(&[&doc_a]).unwrap(), doc_a);
    }

    #[test]
    fn sidecar_merge_rejects_bad_inputs() {
        assert!(matches!(
            merge_deterministic_jsonl(&[]),
            Err(SidecarMergeError::Empty)
        ));
        let rec = Recorder::attached();
        let doc = rec.deterministic_jsonl("fig11", 1);
        let other_seed = rec.deterministic_jsonl("fig11", 2);
        assert!(matches!(
            merge_deterministic_jsonl(&[&doc, &other_seed]),
            Err(SidecarMergeError::HeaderMismatch { doc: 1 })
        ));
        let unknown = format!(
            "{}{{\"metric\": \"no.such_metric\", \"kind\": \"counter\", \"value\": 1}}\n",
            doc.lines().next().unwrap().to_owned() + "\n"
        );
        assert!(matches!(
            merge_deterministic_jsonl(&[&unknown]),
            Err(SidecarMergeError::UnknownMetric { doc: 0, .. })
        ));
        assert!(matches!(
            merge_deterministic_jsonl(&["not a header\n"]),
            Err(SidecarMergeError::Malformed {
                doc: 0,
                line: 0,
                ..
            })
        ));
    }

    #[test]
    fn progress_reporter_rate_limits_the_first_update() {
        let mut p = ProgressReporter::new(true, 100);
        let t0 = p.started;
        // Immediately after start: not due, even for the first update
        // (the old Progress struct printed here — the spam bug).
        assert!(p.update_line(1, t0 + Duration::from_millis(1)).is_none());
        // After the interval: due.
        let line = p.update_line(2, t0 + Duration::from_millis(300)).unwrap();
        assert!(line.contains("2/100"));
        // Within the interval of the last print: suppressed again.
        assert!(p.update_line(3, t0 + Duration::from_millis(301)).is_none());
        // Completion always prints.
        let done = p.update_line(100, t0 + Duration::from_millis(302)).unwrap();
        assert!(done.contains("eta done"));
        // Disabled reporter never prints.
        let mut off = ProgressReporter::new(false, 10);
        let t0 = off.started;
        assert!(off.update_line(10, t0 + Duration::from_secs(5)).is_none());
    }
}
