//! Undirected interaction graphs over hardware qubit sites.
//!
//! An [`InteractionGraph`] records which pairs of transmons must support a
//! direct two-qubit gate under a given embedding and schedule. The paper's
//! §III-C argues its Compact merge direction (Z ancillas merge with the
//! *upper-right* data, X ancillas with the *lower-left*) is the one that
//! keeps "4-way grid connectivity", while naive same-corner merging would
//! need six-way connectivity. The surface crate builds these graphs; the
//! degree checks here quantify that claim.

use std::collections::{BTreeMap, BTreeSet};

/// A small undirected graph over `(x, y)` integer sites.
#[derive(Clone, Debug, Default)]
pub struct InteractionGraph {
    nodes: BTreeSet<(i32, i32)>,
    edges: BTreeSet<((i32, i32), (i32, i32))>,
}

impl InteractionGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node (idempotent).
    pub fn add_node(&mut self, site: (i32, i32)) {
        self.nodes.insert(site);
    }

    /// Adds an undirected edge, inserting both endpoints as nodes.
    ///
    /// # Panics
    ///
    /// Panics on self-loops.
    pub fn add_edge(&mut self, a: (i32, i32), b: (i32, i32)) {
        assert_ne!(a, b, "self-loop in interaction graph");
        self.nodes.insert(a);
        self.nodes.insert(b);
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.insert(key);
    }

    /// Returns `true` if the edge exists.
    pub fn has_edge(&self, a: (i32, i32), b: (i32, i32)) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.contains(&key)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the nodes.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (i32, i32)> + '_ {
        self.nodes.iter().copied()
    }

    /// Iterates over the edges.
    pub fn iter_edges(&self) -> impl Iterator<Item = ((i32, i32), (i32, i32))> + '_ {
        self.edges.iter().copied()
    }

    /// Per-node degree map.
    pub fn degrees(&self) -> BTreeMap<(i32, i32), usize> {
        let mut deg: BTreeMap<(i32, i32), usize> = self.nodes.iter().map(|&n| (n, 0)).collect();
        for &(a, b) in &self.edges {
            *deg.get_mut(&a).expect("edge endpoint registered") += 1;
            *deg.get_mut(&b).expect("edge endpoint registered") += 1;
        }
        deg
    }

    /// Maximum degree over all nodes (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.degrees().values().copied().max().unwrap_or(0)
    }

    /// The number of distinct *edge directions* used, where a direction is
    /// the normalized offset `b - a` (sign-canonicalized). A planar square
    /// grid uses 2 directions; adding one diagonal makes 3; six-way
    /// connectivity uses 3+ with longer diagonals.
    pub fn num_edge_directions(&self) -> usize {
        let mut dirs = BTreeSet::new();
        for &((ax, ay), (bx, by)) in &self.edges {
            let (mut dx, mut dy) = (bx - ax, by - ay);
            let g = gcd(dx.unsigned_abs(), dy.unsigned_abs()).max(1) as i32;
            dx /= g;
            dy /= g;
            // Canonical sign: first nonzero component positive.
            if dx < 0 || (dx == 0 && dy < 0) {
                dx = -dx;
                dy = -dy;
            }
            dirs.insert((dx, dy));
        }
        dirs.len()
    }

    /// Checks the graph is simple and consistent.
    pub fn check(&self) -> Result<(), String> {
        for &(a, b) in &self.edges {
            if !self.nodes.contains(&a) || !self.nodes.contains(&b) {
                return Err(format!("edge ({a:?}, {b:?}) references missing node"));
            }
            if a == b {
                return Err(format!("self-loop at {a:?}"));
            }
        }
        Ok(())
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = InteractionGraph::new();
        g.add_edge((0, 0), (1, 0));
        g.add_edge((1, 0), (1, 1));
        g.add_edge((0, 0), (1, 0)); // duplicate ignored
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge((1, 0), (0, 0)));
        assert!(!g.has_edge((0, 0), (1, 1)));
        g.check().unwrap();
    }

    #[test]
    fn degrees_and_max() {
        let mut g = InteractionGraph::new();
        g.add_edge((0, 0), (1, 0));
        g.add_edge((0, 0), (0, 1));
        g.add_edge((0, 0), (-1, 0));
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degrees()[&(1, 0)], 1);
        assert_eq!(InteractionGraph::new().max_degree(), 0);
    }

    #[test]
    fn edge_directions_of_square_grid() {
        let mut g = InteractionGraph::new();
        for x in 0..3 {
            for y in 0..3 {
                if x + 1 < 3 {
                    g.add_edge((x, y), (x + 1, y));
                }
                if y + 1 < 3 {
                    g.add_edge((x, y), (x, y + 1));
                }
            }
        }
        assert_eq!(g.num_edge_directions(), 2);
        assert_eq!(g.max_degree(), 4);
        // Add a diagonal: one more direction.
        g.add_edge((0, 0), (1, 1));
        assert_eq!(g.num_edge_directions(), 3);
    }

    #[test]
    fn direction_sign_canonicalization() {
        let mut g = InteractionGraph::new();
        g.add_edge((0, 0), (2, 2));
        g.add_edge((5, 5), (4, 4)); // same direction, opposite sign
        assert_eq!(g.num_edge_directions(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn rejects_self_loop() {
        let mut g = InteractionGraph::new();
        g.add_edge((1, 1), (1, 1));
    }
}
