//! Refresh-deadline enforcement: a stored qubit left unrefreshed past
//! `k` scheduler cycles must be flagged in the replayed report, under
//! both refresh policies (the paper's DRAM-analogy hard requirement,
//! §III-A).

use vlq::exec::{CostExecutor, Executor};
use vlq::isa::{Instr, Schedule};
use vlq::machine::{LogicalId, MachineConfig, RefreshPolicy, VlqMachine};
use vlq_arch::address::{ModeIndex, StackCoord, VirtAddr};

fn config(refresh: RefreshPolicy) -> MachineConfig {
    let mut cfg = MachineConfig::compact_demo();
    cfg.k = 4;
    cfg.refresh = refresh;
    cfg
}

/// A hand-built schedule that starves one stored qubit: two qubits
/// share a stack, but every refresh pass hits only the first, so the
/// second goes stale past the k-cycle deadline.
fn starving_schedule(refresh: RefreshPolicy) -> Schedule {
    let cfg = config(refresh);
    let rounds = match refresh {
        RefreshPolicy::Interleaved => 1,
        RefreshPolicy::AllAtOnce => cfg.d,
    };
    let stack = StackCoord::new(0, 0);
    let fed = LogicalId(0);
    let starved = LogicalId(1);
    let mut s = Schedule::new(cfg);
    s.push(Instr::PageIn {
        qubit: fed,
        addr: VirtAddr::new(stack, ModeIndex(0)),
        t: 0,
    });
    s.push(Instr::PageIn {
        qubit: starved,
        addr: VirtAddr::new(stack, ModeIndex(1)),
        t: 0,
    });
    // k + 2 cycles of refresh, all pointed at the fed qubit. At
    // t = k + 1 and t = k + 2 the starved qubit is past its deadline.
    for t in 1..=(cfg.k as u64 + 2) {
        s.push(Instr::RefreshRound {
            stack,
            qubit: fed,
            rounds,
            t,
        });
    }
    s
}

#[test]
fn starved_qubit_is_flagged_under_both_policies() {
    for refresh in [RefreshPolicy::Interleaved, RefreshPolicy::AllAtOnce] {
        let schedule = starving_schedule(refresh);
        schedule.validate().expect("well-formed schedule");
        let report = CostExecutor.run(&schedule).expect("valid schedule");
        let k = schedule.config().k as u64;
        assert_eq!(
            report.max_staleness,
            k + 2,
            "{refresh:?}: staleness should reach k + 2"
        );
        // Misses at t = k+1 and t = k+2 (staleness k+1, k+2 > k).
        assert_eq!(
            report.deadline_misses, 2,
            "{refresh:?}: both past-deadline passes must be flagged"
        );
    }
}

#[test]
fn staleness_at_exactly_k_is_not_a_miss() {
    // The deadline is "at least once every k cycles": staleness == k is
    // the last legal moment, staleness k+1 is the first miss.
    let cfg = config(RefreshPolicy::Interleaved);
    let stack = StackCoord::new(0, 0);
    let fed = LogicalId(0);
    let edge = LogicalId(1);
    let mut s = Schedule::new(cfg);
    for (i, q) in [fed, edge].into_iter().enumerate() {
        s.push(Instr::PageIn {
            qubit: q,
            addr: VirtAddr::new(stack, ModeIndex(i as u8)),
            t: 0,
        });
    }
    for t in 1..=(cfg.k as u64) {
        s.push(Instr::RefreshRound {
            stack,
            qubit: fed,
            rounds: 1,
            t,
        });
    }
    let report = CostExecutor.run(&s).expect("valid schedule");
    assert_eq!(report.max_staleness, cfg.k as u64);
    assert_eq!(report.deadline_misses, 0);
}

/// The machine's own round-robin policies never miss the deadline: the
/// reserved free mode keeps occupancy at k - 1, so every mode is
/// refreshed within k - 1 cycles even on a saturated machine.
#[test]
fn machine_schedules_never_miss_under_both_policies() {
    for refresh in [RefreshPolicy::Interleaved, RefreshPolicy::AllAtOnce] {
        let cfg = config(refresh);
        let mut m = VlqMachine::new(cfg);
        // Saturate every stack, then run long idle stretches plus some
        // cross-stack traffic.
        let ids: Vec<_> = (0..cfg.capacity()).map(|_| m.alloc().unwrap()).collect();
        m.advance(3 * cfg.k as u64);
        m.cnot(ids[0], ids[cfg.capacity() - 1]).unwrap();
        m.advance(3 * cfg.k as u64);
        let report = m.finish();
        assert!(report.max_staleness <= cfg.k as u64, "{refresh:?}");
        assert_eq!(report.deadline_misses, 0, "{refresh:?}");
    }
}
