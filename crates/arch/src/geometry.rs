//! Transmon and cavity counting for each surface-code embedding.
//!
//! These closed-form counts back the paper's headline hardware-savings
//! claims and Table II:
//!
//! * a **Baseline 2D** rotated surface-code patch of distance `d` uses
//!   `d^2` data plus `d^2 - 1` ancilla transmons; a `w x h` tiling of
//!   patches shares ancilla columns for a total of `2 w h d^2 - 1`
//!   transmons;
//! * a **Natural** stack serves `k` logical qubits with `2 d^2 - 1`
//!   transmons and `d^2` cavities (ancilla transmons have no cavities);
//! * a **Compact** stack serves `k` logical qubits with `d^2 + d - 1`
//!   transmons and `d^2` cavities (ancilla merge into data transmons,
//!   except `d - 1` orphaned boundary ancillas).
//!
//! The smallest Compact instance (`d = 3`) is the paper's "11 transmons
//! and 9 attached cavities" proof-of-concept.

use serde::{Deserialize, Serialize};

/// Which embedding of the surface code onto hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Embedding {
    /// Conventional 2D transmon grid (no cavities).
    Baseline2D,
    /// 2.5D embedding where only data transmons carry cavities and
    /// dedicated ancilla transmons remain (paper §III-A).
    Natural,
    /// 2.5D embedding where ancillas merge into data transmons
    /// (paper §III-C), halving the transmon count again.
    Compact,
}

impl Embedding {
    /// All embeddings, in paper order.
    pub const ALL: [Embedding; 3] = [
        Embedding::Baseline2D,
        Embedding::Natural,
        Embedding::Compact,
    ];
}

impl std::fmt::Display for Embedding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Embedding::Baseline2D => "baseline-2d",
            Embedding::Natural => "natural",
            Embedding::Compact => "compact",
        };
        write!(f, "{s}")
    }
}

/// Hardware cost of one patch/stack of a given embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatchCost {
    /// Number of transmon qubits.
    pub transmons: usize,
    /// Number of attached cavities.
    pub cavities: usize,
    /// Logical qubits served (1 for baseline, `k` for stacks).
    pub logical_qubits: usize,
}

impl PatchCost {
    /// Total physical qubit count with `k`-mode cavities: transmons plus
    /// `k` storage qubits per cavity (the convention of Table II).
    pub fn total_qubits(&self, k: usize) -> usize {
        self.transmons + self.cavities * k
    }
}

/// Cost of a single patch (one stack) for the given embedding and code
/// distance.
///
/// # Panics
///
/// Panics if `d` is even or zero (rotated surface codes need odd `d`).
///
/// # Examples
///
/// ```
/// use vlq_arch::geometry::{patch_cost, Embedding};
///
/// // The paper's smallest Compact instance: 11 transmons, 9 cavities.
/// let c = patch_cost(Embedding::Compact, 3, 10);
/// assert_eq!(c.transmons, 11);
/// assert_eq!(c.cavities, 9);
/// assert_eq!(c.logical_qubits, 10);
/// ```
pub fn patch_cost(embedding: Embedding, d: usize, k: usize) -> PatchCost {
    assert!(
        d % 2 == 1 && d > 0,
        "code distance must be odd and positive"
    );
    match embedding {
        Embedding::Baseline2D => PatchCost {
            transmons: 2 * d * d - 1,
            cavities: 0,
            logical_qubits: 1,
        },
        Embedding::Natural => PatchCost {
            transmons: 2 * d * d - 1,
            cavities: d * d,
            logical_qubits: k,
        },
        Embedding::Compact => PatchCost {
            transmons: d * d + d - 1,
            cavities: d * d,
            logical_qubits: k,
        },
    }
}

/// Transmon count for a `w x h` tiling of baseline patches with shared
/// ancilla boundaries: `2 (w d) (h d) - 1`.
///
/// This is the formula behind Table II's Fast (5x6 patches = 1499) and
/// Small (11 patches = 549) lattice costs.
pub fn baseline_tiling_transmons(patches_w: usize, patches_h: usize, d: usize) -> usize {
    assert!(
        d % 2 == 1 && d > 0,
        "code distance must be odd and positive"
    );
    2 * (patches_w * d) * (patches_h * d) - 1
}

/// The paper's headline transmon-savings factor of an embedding relative
/// to the baseline, per logical qubit at equal distance.
///
/// Natural saves ~`k`x (each stack holds `k` logical qubits in the same
/// transmons); Compact roughly doubles that.
pub fn transmon_savings_vs_baseline(embedding: Embedding, d: usize, k: usize) -> f64 {
    let base = patch_cost(Embedding::Baseline2D, d, k);
    let this = patch_cost(embedding, d, k);
    let per_logical_base = base.transmons as f64 / base.logical_qubits as f64;
    let per_logical_this = this.transmons as f64 / this.logical_qubits as f64;
    per_logical_base / per_logical_this
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_counts() {
        // d=3: 9 data + 8 ancilla = 17 transmons.
        let c = patch_cost(Embedding::Baseline2D, 3, 10);
        assert_eq!(c.transmons, 17);
        assert_eq!(c.cavities, 0);
        assert_eq!(c.logical_qubits, 1);
        // d=5: 25 + 24 = 49.
        assert_eq!(patch_cost(Embedding::Baseline2D, 5, 10).transmons, 49);
    }

    #[test]
    fn natural_counts_match_table2() {
        // Table II, VQubits (natural), d=5: 49 transmons, 25 cavities,
        // 299 total qubits with k=10.
        let c = patch_cost(Embedding::Natural, 5, 10);
        assert_eq!(c.transmons, 49);
        assert_eq!(c.cavities, 25);
        assert_eq!(c.total_qubits(10), 299);
    }

    #[test]
    fn compact_counts_match_table2() {
        // Table II, VQubits (compact), d=5: 29 transmons, 25 cavities,
        // 279 total.
        let c = patch_cost(Embedding::Compact, 5, 10);
        assert_eq!(c.transmons, 29);
        assert_eq!(c.cavities, 25);
        assert_eq!(c.total_qubits(10), 279);
    }

    #[test]
    fn smallest_compact_instance_is_11_and_9() {
        // Abstract/intro claim: "requiring only 11 transmons and 9
        // attached cavities in total" for ~10 logical qubits.
        let c = patch_cost(Embedding::Compact, 3, 10);
        assert_eq!((c.transmons, c.cavities), (11, 9));
    }

    #[test]
    fn fast_and_small_lattice_transmons() {
        // Table II: Fast Lattice 1499 transmons (30 patches as 5x6), Small
        // Lattice 549 (11 patches in a row), at d=5.
        assert_eq!(baseline_tiling_transmons(5, 6, 5), 1499);
        assert_eq!(baseline_tiling_transmons(11, 1, 5), 549);
    }

    #[test]
    fn savings_factors() {
        // Natural saves ~k times the transmons per logical qubit.
        let s_nat = transmon_savings_vs_baseline(Embedding::Natural, 5, 10);
        assert!((s_nat - 10.0).abs() < 1e-9);
        // Compact saves about twice as much again (paper: "another 2x").
        let s_comp = transmon_savings_vs_baseline(Embedding::Compact, 5, 10);
        assert!(
            s_comp / s_nat > 1.6 && s_comp / s_nat < 2.0,
            "ratio {}",
            s_comp / s_nat
        );
        // The paper's "approximately 10x ... with another 2x" at k = 10.
        assert!(s_comp > 16.0, "compact savings {s_comp}");
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn rejects_even_distance() {
        let _ = patch_cost(Embedding::Compact, 4, 10);
    }

    #[test]
    fn cost_scales_with_k_only_in_modes() {
        let c5 = patch_cost(Embedding::Natural, 5, 5);
        let c20 = patch_cost(Embedding::Natural, 5, 20);
        assert_eq!(c5.transmons, c20.transmons);
        assert_eq!(c5.cavities, c20.cavities);
        assert_eq!(c20.total_qubits(20) - c5.total_qubits(5), 25 * 15);
    }
}
