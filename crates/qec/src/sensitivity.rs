//! Sensitivity sweeps (Figure 12).
//!
//! Fixes the operating point (`p = 2e-3`, cavity depth 10) and varies one
//! error source at a time: SC-SC gate error, load/store error, SC-mode
//! error, cavity T1, transmon T1, load/store duration, or cavity size
//! `k`. Each knob modifies the noise model (or the spec, for `k`) while
//! everything else stays pinned — reproducing the panels of Figure 12
//! for the Compact, Interleaved setup.

use vlq_arch::params::{ErrorRates, HardwareParams, REFERENCE_ERROR_RATE};
use vlq_circuit::noise::NoiseModel;
use vlq_math::stats::BinomialEstimate;
use vlq_surface::schedule::{Basis, Setup};
use vlq_sweep::SweepSpec;

use crate::orchestrate::run_sweep;
use crate::DecoderKind;

/// The knob a sensitivity panel varies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Knob {
    /// SC-SC (transmon-transmon) gate error rate.
    ScScError,
    /// Load/store gate error rate.
    LoadStoreError,
    /// SC-mode (transmon-cavity) gate error rate.
    ScModeError,
    /// Cavity coherence time (seconds).
    CavityT1,
    /// Transmon coherence time (seconds).
    TransmonT1,
    /// Load/store gate duration (seconds).
    LoadStoreDuration,
    /// Cavity size `k` (modes per cavity; value is cast to usize).
    CavitySize,
}

impl Knob {
    /// All knobs, in the paper's panel order.
    pub const ALL: [Knob; 7] = [
        Knob::ScScError,
        Knob::LoadStoreError,
        Knob::ScModeError,
        Knob::CavityT1,
        Knob::TransmonT1,
        Knob::LoadStoreDuration,
        Knob::CavitySize,
    ];

    /// Stable knob name (used by `--panel` flags and sweep artifacts).
    pub fn name(self) -> &'static str {
        match self {
            Knob::ScScError => "sc-sc-error",
            Knob::LoadStoreError => "load-store-error",
            Knob::ScModeError => "sc-mode-error",
            Knob::CavityT1 => "cavity-t1",
            Knob::TransmonT1 => "transmon-t1",
            Knob::LoadStoreDuration => "load-store-duration",
            Knob::CavitySize => "cavity-size",
        }
    }

    /// Parses a knob name (the inverse of [`Knob::name`]).
    pub fn parse(s: &str) -> Option<Knob> {
        Knob::ALL
            .into_iter()
            .find(|k| k.name() == s.to_ascii_lowercase())
    }

    /// The paper's marked reference value at the operating point.
    pub fn reference_value(self) -> f64 {
        let hw = HardwareParams::with_memory();
        match self {
            Knob::ScScError | Knob::LoadStoreError | Knob::ScModeError => REFERENCE_ERROR_RATE,
            Knob::CavityT1 => hw.t1_cavity,
            Knob::TransmonT1 => hw.t1_transmon,
            Knob::LoadStoreDuration => hw.t_load_store,
            Knob::CavitySize => 10.0,
        }
    }
}

impl std::fmt::Display for Knob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One sensitivity sample.
#[derive(Clone, Debug)]
pub struct SensitivityPoint {
    /// Code distance.
    pub d: usize,
    /// Knob value.
    pub value: f64,
    /// Logical error rate estimate.
    pub estimate: BinomialEstimate,
}

/// Builds the operating-point noise model with one knob overridden.
///
/// All other error sources stay at the paper's operating point
/// (`p = 2e-3`, Table I timings).
pub fn noise_with_knob(knob: Knob, value: f64) -> (NoiseModel, usize) {
    let mut hw = HardwareParams::with_memory();
    let mut rates = ErrorRates::from_scale(REFERENCE_ERROR_RATE);
    let mut k = 10usize;
    match knob {
        Knob::ScScError => rates.p_2q_tt = value,
        Knob::LoadStoreError => rates.p_load_store = value,
        Knob::ScModeError => rates.p_2q_tm = value,
        Knob::CavityT1 => {
            hw.t1_cavity = value;
            rates.t1_scale = 1.0; // the knob sets the absolute T1
        }
        Knob::TransmonT1 => {
            hw.t1_transmon = value;
            rates.t1_scale = 1.0;
        }
        Knob::LoadStoreDuration => hw.t_load_store = value,
        Knob::CavitySize => k = value.round().max(1.0) as usize,
    }
    (NoiseModel::new(hw, rates), k)
}

/// The sweep spec a sensitivity panel expands to: `p` pinned at the
/// operating point, the named knob swept over `values`.
pub fn sensitivity_spec(
    setup: Setup,
    knob: Knob,
    values: &[f64],
    distances: &[usize],
    shots: u64,
    seed: u64,
    decoder: DecoderKind,
) -> SweepSpec {
    SweepSpec::new()
        .setups([setup])
        .bases([Basis::Z])
        .distances(distances.iter().copied())
        // Nominal depth; the executor recomputes k from the knob (the
        // cavity-size panel overrides it per point).
        .ks([10])
        .decoders([decoder])
        .knob(REFERENCE_ERROR_RATE, knob.name(), values.iter().copied())
        .shots(shots)
        .base_seed(seed)
}

/// Runs one sensitivity panel for the given setup (the paper uses
/// Compact, Interleaved) over `values` of the knob and several code
/// distances.
///
/// Thin adapter over the `vlq-sweep` work-stealing engine; points run
/// in parallel across configs × shots with deterministic seeding.
#[allow(clippy::too_many_arguments)]
pub fn sensitivity_sweep(
    setup: Setup,
    knob: Knob,
    values: &[f64],
    distances: &[usize],
    shots: u64,
    seed: u64,
    decoder: DecoderKind,
) -> Vec<SensitivityPoint> {
    let spec = sensitivity_spec(setup, knob, values, distances, shots, seed, decoder);
    run_sweep(&spec)
        .into_iter()
        .map(|rec| SensitivityPoint {
            d: rec.point.d,
            value: rec.point.knob.as_ref().expect("knob sweep").value,
            estimate: rec
                .estimate()
                .unwrap_or_else(|| BinomialEstimate::new(0, 1)),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_overrides_apply() {
        let (m, k) = noise_with_knob(Knob::ScScError, 5e-3);
        assert_eq!(m.rates.p_2q_tt, 5e-3);
        assert_eq!(m.rates.p_load_store, REFERENCE_ERROR_RATE);
        assert_eq!(k, 10);

        let (m, _) = noise_with_knob(Knob::CavityT1, 1e-4);
        assert_eq!(m.hw.t1_cavity, 1e-4);
        assert_eq!(m.rates.t1_scale, 1.0);

        let (_, k) = noise_with_knob(Knob::CavitySize, 25.0);
        assert_eq!(k, 25);
    }

    #[test]
    fn worse_loadstore_error_hurts() {
        // Compact-Interleaved at d=3: increasing the load/store error by
        // 10x must raise the logical error rate noticeably.
        let points = sensitivity_sweep(
            Setup::CompactInterleaved,
            Knob::LoadStoreError,
            &[2e-3, 2e-2],
            &[3],
            4000,
            5,
            DecoderKind::Mwpm,
        );
        assert_eq!(points.len(), 2);
        let lo = points[0].estimate.rate();
        let hi = points[1].estimate.rate();
        assert!(hi > lo, "lo {lo} hi {hi}");
    }

    #[test]
    fn knob_reference_values_match_table1() {
        assert_eq!(Knob::CavityT1.reference_value(), 1e-3);
        assert_eq!(Knob::TransmonT1.reference_value(), 100e-6);
        assert_eq!(Knob::LoadStoreDuration.reference_value(), 150e-9);
        assert_eq!(Knob::CavitySize.reference_value(), 10.0);
    }
}
