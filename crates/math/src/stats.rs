//! Statistics helpers for Monte-Carlo estimation and decoder weights.

/// A binomial proportion estimate with a Wilson-score confidence interval.
///
/// # Examples
///
/// ```
/// use vlq_math::stats::BinomialEstimate;
///
/// let est = BinomialEstimate::new(12, 1000);
/// assert!((est.rate() - 0.012).abs() < 1e-12);
/// let (lo, hi) = est.wilson_interval(1.96);
/// assert!(lo < est.rate() && est.rate() < hi);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinomialEstimate {
    /// Number of observed successes (e.g. logical failures).
    pub successes: u64,
    /// Number of trials.
    pub trials: u64,
}

impl BinomialEstimate {
    /// Creates an estimate from raw counts.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(trials > 0, "binomial estimate requires at least one trial");
        assert!(successes <= trials, "successes cannot exceed trials");
        BinomialEstimate { successes, trials }
    }

    /// Point estimate of the success probability.
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// Wilson score interval at the given z value (1.96 for ~95%).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Standard error of the proportion estimate.
    pub fn std_error(&self) -> f64 {
        let p = self.rate();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }
}

/// Log-odds weight `ln((1 - p) / p)` used for matching-graph edges.
///
/// Clamps `p` into `(1e-15, 1 - 1e-15)` so degenerate probabilities produce
/// large-but-finite weights.
///
/// # Examples
///
/// ```
/// use vlq_math::stats::log_odds_weight;
///
/// assert!((log_odds_weight(0.5)).abs() < 1e-12);
/// assert!(log_odds_weight(0.01) > 0.0);
/// ```
pub fn log_odds_weight(p: f64) -> f64 {
    let p = p.clamp(1e-15, 1.0 - 1e-15);
    ((1.0 - p) / p).ln()
}

/// Combines two independent flip probabilities: the event fires if exactly
/// one of the sources fires (XOR combination).
///
/// This is the update rule when several fault mechanisms share a matching
/// edge: `p = p1 (1 - p2) + p2 (1 - p1)`.
pub fn xor_probability(p1: f64, p2: f64) -> f64 {
    p1 * (1.0 - p2) + p2 * (1.0 - p1)
}

/// Idle (storage) error probability for a duration `dt` under relaxation
/// time `t1`, as used by the paper: `lambda = 1 - exp(-dt / t1)`.
///
/// Returns 0 when `dt <= 0` or `t1` is not finite/positive.
pub fn idle_error_probability(dt: f64, t1: f64) -> f64 {
    if dt <= 0.0 || !t1.is_finite() || t1 <= 0.0 {
        return 0.0;
    }
    1.0 - (-dt / t1).exp()
}

/// Estimates the crossing point of two curves `f` and `g` sampled at the
/// same `x` values (log-log linear interpolation), used for threshold
/// extraction: the physical error rate where the logical error rate of a
/// larger code distance crosses that of a smaller one.
///
/// Returns `None` when the curves do not cross in the sampled range or the
/// inputs contain non-positive values (which cannot be log-interpolated).
pub fn log_log_crossing(xs: &[f64], f: &[f64], g: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), f.len());
    assert_eq!(xs.len(), g.len());
    if xs.iter().chain(f).chain(g).any(|&v| v <= 0.0) {
        return None;
    }
    let d: Vec<f64> = f.iter().zip(g).map(|(a, b)| a.ln() - b.ln()).collect();
    for i in 0..d.len().saturating_sub(1) {
        if d[i] == 0.0 {
            return Some(xs[i]);
        }
        if d[i] * d[i + 1] < 0.0 {
            let t = d[i] / (d[i] - d[i + 1]);
            let lx = xs[i].ln() + t * (xs[i + 1].ln() - xs[i].ln());
            return Some(lx.exp());
        }
    }
    if *d.last()? == 0.0 {
        return Some(*xs.last()?);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_contains_point() {
        for &(s, n) in &[(0u64, 100u64), (1, 100), (50, 100), (99, 100), (100, 100)] {
            let est = BinomialEstimate::new(s, n);
            let (lo, hi) = est.wilson_interval(1.96);
            assert!(lo >= 0.0 && hi <= 1.0);
            assert!(lo <= hi);
            // The Wilson interval always contains the point estimate.
            assert!(lo <= est.rate() + 1e-12 && est.rate() - 1e-12 <= hi);
        }
    }

    #[test]
    fn wilson_shrinks_with_more_trials() {
        let small = BinomialEstimate::new(5, 50).wilson_interval(1.96);
        let large = BinomialEstimate::new(500, 5000).wilson_interval(1.96);
        assert!((large.1 - large.0) < (small.1 - small.0));
    }

    #[test]
    fn log_odds_monotone() {
        assert!(log_odds_weight(0.001) > log_odds_weight(0.01));
        assert!(log_odds_weight(0.01) > log_odds_weight(0.1));
        // Degenerate inputs stay finite.
        assert!(log_odds_weight(0.0).is_finite());
        assert!(log_odds_weight(1.0).is_finite());
    }

    #[test]
    fn xor_probability_basics() {
        assert_eq!(xor_probability(0.0, 0.25), 0.25);
        assert_eq!(xor_probability(0.25, 0.0), 0.25);
        assert!((xor_probability(0.5, 0.5) - 0.5).abs() < 1e-12);
        // Two certain flips cancel.
        assert!((xor_probability(1.0, 1.0)).abs() < 1e-12);
    }

    #[test]
    fn idle_error_limits() {
        assert_eq!(idle_error_probability(0.0, 1.0), 0.0);
        assert_eq!(idle_error_probability(-1.0, 1.0), 0.0);
        assert_eq!(idle_error_probability(1.0, f64::INFINITY), 0.0);
        let lam = idle_error_probability(1e-6, 100e-6);
        assert!((lam - (1.0 - (-0.01f64).exp())).abs() < 1e-12);
        // Long durations saturate at 1.
        assert!(idle_error_probability(1.0, 1e-9) > 0.999);
    }

    #[test]
    fn crossing_of_two_lines() {
        // f = x, g = x^2 / 0.01 cross at x = 0.01 in log-log space.
        let xs = [0.001, 0.003, 0.01, 0.03, 0.1];
        let f: Vec<f64> = xs.to_vec();
        let g: Vec<f64> = xs.iter().map(|x| x * x / 0.01).collect();
        let c = log_log_crossing(&xs, &f, &g).unwrap();
        assert!((c - 0.01).abs() / 0.01 < 1e-6);
    }

    #[test]
    fn crossing_absent() {
        let xs = [0.001, 0.01, 0.1];
        let f = [1.0, 1.0, 1.0];
        let g = [2.0, 2.0, 2.0];
        assert_eq!(log_log_crossing(&xs, &f, &g), None);
    }
}
