//! Threshold estimation (Figure 11).
//!
//! Sweeps the physical error rate over several code distances, estimates
//! logical error rates, and extracts the threshold as the median of the
//! pairwise crossings of consecutive-distance curves in log-log space.

use vlq_math::stats::{log_log_crossing, BinomialEstimate};
use vlq_surface::schedule::{Basis, Setup};
use vlq_sweep::{SweepRecord, SweepSpec};

use crate::orchestrate::run_sweep;
use crate::DecoderKind;

/// One sampled point of a threshold scan.
#[derive(Clone, Debug)]
pub struct ScanPoint {
    /// Code distance.
    pub d: usize,
    /// Physical error rate (SC-SC scale).
    pub p: f64,
    /// Logical error rate estimate.
    pub estimate: BinomialEstimate,
}

/// A complete threshold scan for one setup.
#[derive(Clone, Debug)]
pub struct ThresholdScan {
    /// The scanned setup.
    pub setup: Setup,
    /// Memory basis used.
    pub basis: Basis,
    /// Cavity depth.
    pub k: usize,
    /// All sampled points (row-major: for each `d`, each `p`).
    pub points: Vec<ScanPoint>,
    /// The distances scanned.
    pub distances: Vec<usize>,
    /// The physical error rates scanned.
    pub error_rates: Vec<f64>,
}

impl ThresholdScan {
    /// Logical error rates of one distance, in `error_rates` order.
    pub fn curve(&self, d: usize) -> Vec<f64> {
        self.points
            .iter()
            .filter(|pt| pt.d == d)
            .map(|pt| pt.estimate.rate())
            .collect()
    }

    /// Assembles a scan from sweep records (e.g. one setup's slice of a
    /// multi-setup, multi-decoder sweep). Points are laid out row-major
    /// (`d` outer, `p` inner) regardless of record order; records for
    /// other setups, bases, cavity depths, or decoders are ignored.
    pub fn from_records(
        setup: Setup,
        basis: Basis,
        k: usize,
        decoder: DecoderKind,
        distances: &[usize],
        error_rates: &[f64],
        records: &[SweepRecord],
    ) -> ThresholdScan {
        let mut points = Vec::with_capacity(distances.len() * error_rates.len());
        for &d in distances {
            for &p in error_rates {
                let rec = records
                    .iter()
                    .find(|r| {
                        r.point.setup == setup
                            && r.point.basis == basis
                            && r.point.k == k
                            && r.point.decoder == decoder
                            && r.point.d == d
                            && r.point.p == p
                    })
                    .unwrap_or_else(|| panic!("sweep records missing point d={d} p={p}"));
                points.push(ScanPoint {
                    d,
                    p,
                    estimate: rec
                        .estimate()
                        .unwrap_or_else(|| BinomialEstimate::new(0, 1)),
                });
            }
        }
        ThresholdScan {
            setup,
            basis,
            k,
            points,
            distances: distances.to_vec(),
            error_rates: error_rates.to_vec(),
        }
    }
}

/// The sweep spec a threshold scan expands to (one setup, the full
/// `distances × error_rates` grid).
#[allow(clippy::too_many_arguments)]
pub fn threshold_spec(
    setup: Setup,
    basis: Basis,
    distances: &[usize],
    error_rates: &[f64],
    k: usize,
    shots: u64,
    seed: u64,
    decoder: DecoderKind,
) -> SweepSpec {
    SweepSpec::new()
        .setups([setup])
        .bases([basis])
        .distances(distances.iter().copied())
        .error_rates(error_rates.iter().copied())
        .ks([k])
        .decoders([decoder])
        .shots(shots)
        .base_seed(seed)
}

/// Runs a threshold scan.
///
/// Thin adapter over the `vlq-sweep` work-stealing engine: the grid
/// runs with parallelism across *configs × shots* and deterministic
/// per-point seeding, so results are independent of worker count.
#[allow(clippy::too_many_arguments)]
pub fn threshold_scan(
    setup: Setup,
    basis: Basis,
    distances: &[usize],
    error_rates: &[f64],
    k: usize,
    shots: u64,
    seed: u64,
    decoder: DecoderKind,
) -> ThresholdScan {
    let spec = threshold_spec(
        setup,
        basis,
        distances,
        error_rates,
        k,
        shots,
        seed,
        decoder,
    );
    let records = run_sweep(&spec);
    ThresholdScan::from_records(setup, basis, k, decoder, distances, error_rates, &records)
}

/// Estimates the threshold from a scan: the median crossing point of
/// consecutive-distance logical-error curves. Returns `None` when no
/// pair of curves crosses inside the scanned range.
pub fn estimate_threshold(scan: &ThresholdScan) -> Option<f64> {
    let mut crossings = Vec::new();
    for w in scan.distances.windows(2) {
        let lo = scan.curve(w[0]);
        let hi = scan.curve(w[1]);
        if let Some(c) = log_log_crossing(&scan.error_rates, &lo, &hi) {
            crossings.push(c);
        }
    }
    if crossings.is_empty() {
        return None;
    }
    crossings.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some(crossings[crossings.len() / 2])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end threshold sanity for the baseline: the crossing of the
    /// d=3 and d=5 curves must land in the sub-percent-to-~1.5% range the
    /// literature (and the paper: 0.009) reports for circuit-level noise.
    ///
    /// Uses modest statistics so it stays test-suite friendly; fig11
    /// regenerates the full figure.
    #[test]
    fn baseline_threshold_in_expected_range() {
        let rates = [4e-3, 7e-3, 1.1e-2, 1.6e-2];
        let scan = threshold_scan(
            Setup::Baseline,
            Basis::Z,
            &[3, 5],
            &rates,
            1,
            4000,
            11,
            DecoderKind::Mwpm,
        );
        let th = estimate_threshold(&scan).expect("curves should cross");
        assert!(
            th > 3e-3 && th < 2.2e-2,
            "baseline threshold {th} outside plausible range"
        );
    }

    #[test]
    fn scan_structure() {
        let rates = [5e-3, 1e-2];
        let scan = threshold_scan(
            Setup::Baseline,
            Basis::Z,
            &[3],
            &rates,
            1,
            500,
            1,
            DecoderKind::UnionFind,
        );
        assert_eq!(scan.points.len(), 2);
        assert_eq!(scan.curve(3).len(), 2);
        // Monotone in p (with high probability at these gaps).
        let c = scan.curve(3);
        assert!(c[1] >= c[0] * 0.5);
    }
}
