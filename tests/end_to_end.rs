//! Cross-crate integration tests: the full pipeline from schedule
//! generation through noise, decoding, and logical-error estimation.

use vlq::arch::HardwareParams;
use vlq::circuit::exec::validate_with_tableau;
use vlq::qec::{run_memory_experiment, DecoderKind, ExperimentConfig};
use vlq::surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hw_for(setup: Setup) -> HardwareParams {
    if setup.uses_memory() {
        HardwareParams::with_memory()
    } else {
        HardwareParams::baseline()
    }
}

/// Every setup and basis validates on the stabilizer simulator at d=3
/// (the strongest structural guarantee: every detector is deterministic
/// on the ideal circuit).
#[test]
fn all_setups_validate_both_bases() {
    for setup in Setup::ALL {
        for basis in [Basis::Z, Basis::X] {
            let spec = MemorySpec::standard(setup, 3, 4, basis);
            let mc = memory_circuit(spec, &hw_for(setup));
            let mut rng = SmallRng::seed_from_u64(17);
            let report = validate_with_tableau(&mc.circuit, &mut rng);
            assert!(report.passed(), "{setup} {basis:?}");
        }
    }
}

/// Below threshold, every memory setup improves with distance — the
/// paper's core fault-tolerance claim for the 2.5D architecture.
///
/// All-at-once setups run at cavity depth 3: under this model's
/// conservative serialization timing, the AAO block wait grows as
/// `(k-1) * d * round`, so at `k = 10` the *lumped* cavity idle becomes
/// storage-dominated and large distances stop helping — exactly the
/// regime where the paper says to "opt for Interleaved" (§III-C).
/// Interleaved setups spread the same idle across rounds and scale at
/// `k = 10`.
#[test]
fn distance_scaling_below_threshold_all_setups() {
    let shots = 20_000;
    for setup in Setup::ALL {
        // Each setup is probed below ITS measured crossing (EXPERIMENTS.md
        // Fig. 11 table): the conservative serialization timing puts the
        // Compact crossings near 1e-3 at k = 10 and the AAO variants
        // lower still, so those are probed deeper / at shallower cavities.
        let (p, k) = match setup {
            Setup::Baseline | Setup::NaturalInterleaved => (2e-3, 10),
            Setup::NaturalAllAtOnce | Setup::CompactAllAtOnce => (1e-3, 3),
            Setup::CompactInterleaved => (8e-4, 10),
        };
        let ler = |d: usize| {
            run_memory_experiment(
                &ExperimentConfig::new(MemorySpec::standard(setup, d, k, Basis::Z), p)
                    .with_shots(shots)
                    .with_seed(1),
            )
            .logical_error_rate()
        };
        let l3 = ler(3);
        let l5 = ler(5);
        assert!(
            l5 < l3 || (l3 < 2e-3 && l5 < 2e-3),
            "{setup}: d=5 ({l5}) should beat d=3 ({l3}) at p={p}, k={k}"
        );
    }
}

/// The interleaving trade-off, quantified: with deep cavities (k = 10)
/// the lumped all-at-once wait hurts more at larger d than interleaving
/// does — the storage-error regime of paper §III-C.
#[test]
fn aao_is_storage_dominated_at_deep_cavities() {
    let p = 2e-3;
    let run = |setup: Setup, d: usize| {
        run_memory_experiment(
            &ExperimentConfig::new(MemorySpec::standard(setup, d, 10, Basis::Z), p)
                .with_shots(10_000)
                .with_seed(2),
        )
        .logical_error_rate()
    };
    let aao5 = run(Setup::CompactAllAtOnce, 5);
    let int5 = run(Setup::CompactInterleaved, 5);
    assert!(
        int5 < aao5,
        "at k=10, d=5: interleaved ({int5}) must beat all-at-once ({aao5})"
    );
}

/// The memory architecture's thresholds are comparable to the baseline
/// (paper Figure 11): at a physical rate far above any threshold all
/// setups fail badly, while at the operating point all succeed.
#[test]
fn operating_point_is_below_threshold_for_all_setups() {
    for setup in Setup::ALL {
        let at = |p: f64| {
            run_memory_experiment(
                &ExperimentConfig::new(MemorySpec::standard(setup, 3, 10, Basis::Z), p)
                    .with_shots(8_000)
                    .with_seed(3),
            )
            .logical_error_rate()
        };
        let low = at(2e-3);
        let high = at(3e-2);
        assert!(
            low < high,
            "{setup}: LER must grow with p ({low} !< {high})"
        );
        assert!(low < 0.12, "{setup}: operating point LER too high: {low}");
    }
}

/// Union-Find and MWPM agree on order of magnitude (A1 ablation).
#[test]
fn decoder_ablation_consistency() {
    let spec = MemorySpec::standard(Setup::CompactInterleaved, 3, 10, Basis::Z);
    let base = ExperimentConfig::new(spec, 4e-3)
        .with_shots(20_000)
        .with_seed(5);
    let mwpm = run_memory_experiment(&base.clone().with_decoder(DecoderKind::Mwpm));
    let uf = run_memory_experiment(&base.with_decoder(DecoderKind::UnionFind));
    let (a, b) = (mwpm.logical_error_rate(), uf.logical_error_rate());
    assert!(b <= a * 5.0 + 0.02, "UF {b} vs MWPM {a}");
    assert!(a <= b * 1.6 + 0.01, "MWPM {a} should not lose to UF {b}");
}

/// Interleaved pays more loads/stores than all-at-once but both work
/// (paper §III-A trade-off).
#[test]
fn interleaving_tradeoff() {
    let p = 2e-3;
    let run = |setup: Setup| {
        run_memory_experiment(
            &ExperimentConfig::new(MemorySpec::standard(setup, 3, 10, Basis::Z), p)
                .with_shots(20_000)
                .with_seed(9),
        )
        .logical_error_rate()
    };
    let aao = run(Setup::NaturalAllAtOnce);
    let int = run(Setup::NaturalInterleaved);
    // Both must be functional error correction at the operating point.
    assert!(aao < 0.1 && int < 0.1, "aao {aao}, int {int}");
}
