//! Monte-Carlo memory experiments, threshold estimation, and sensitivity
//! sweeps — the harness behind Figures 11 and 12 of the paper.
//!
//! A *memory experiment* prepares a logical eigenstate, runs `d` noisy
//! rounds of syndrome extraction under one of the five setups, reads the
//! data out, decodes the guard sector, and counts a failure whenever the
//! decoder's predicted logical flip disagrees with the actual one.
//!
//! # Boundary-aware syndrome blocks
//!
//! The sampling core of the crate is boundary-aware: a [`BlockSpec`]
//! pairs a memory-circuit shape with a [`Boundary`] selecting which of
//! the block's ends carry noise, and [`PreparedBlock`] samples any such
//! block through one shared sample-and-decode pipeline (the
//! [`BlockSampler`] trait). [`Boundary::Full`] *is* the memory
//! experiment — [`run_memory_experiment`], [`compare_decoders`], and
//! [`PreparedExperiment`] are thin wrappers over it, bit-for-bit
//! identical to the pre-block API. [`Boundary::MidCircuit`] keeps the
//! identical circuit and detector schedule but makes the prep/readout
//! boundaries ideal, so the sampled failure rate measures exactly
//! `rounds` rounds of steady-state exposure; schedule-replay backends
//! (`vlq::exec::FrameExecutor`) request such blocks sized to each
//! instruction's real round span, which is what makes *program-level*
//! logical error rates quantitative rather than trend-only.
//!
//! # Examples
//!
//! ```
//! use vlq_qec::{ExperimentConfig, run_memory_experiment};
//! use vlq_surface::schedule::{Basis, MemorySpec, Setup};
//!
//! let cfg = ExperimentConfig::new(
//!     MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z),
//!     2e-3,
//! )
//! .with_shots(256)
//! .with_seed(7);
//! let result = run_memory_experiment(&cfg);
//! assert_eq!(result.shots, 256);
//! ```
//!
//! Sampling a mid-circuit block directly:
//!
//! ```
//! use vlq_qec::{BlockConfig, BlockSampler, BlockSpec, PreparedBlock};
//! use vlq_surface::schedule::{Basis, MemorySpec, Setup};
//!
//! let spec = BlockSpec::mid_circuit(MemorySpec::standard(
//!     Setup::Baseline, 3, 1, Basis::Z,
//! ));
//! let block = PreparedBlock::prepare(&BlockConfig::new(spec, 2e-3));
//! let failures = block.run_shots(256, 7);
//! assert!(failures <= 256);
//! ```

pub mod lambda;
pub mod orchestrate;
pub mod pool;
pub mod sensitivity;
pub mod threshold;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use vlq_circuit::exec::{sample_batch_into, SampleScratch};
use vlq_circuit::ir::Circuit;
use vlq_circuit::noise::NoiseModel;
use vlq_decoder::{Decoder, DecoderScratch, DecodingGraph};
use vlq_math::stats::BinomialEstimate;
use vlq_surface::schedule::{memory_circuit, MemoryCircuit, MemorySpec};
use vlq_telemetry::{Metric, Recorder};

pub use lambda::{lambda_scan, mean_lambda, LambdaPoint};
pub use orchestrate::{
    block_config_for_point, config_for_point, run_sweep, run_sweep_opts, run_sweep_opts_par,
    run_sweep_resumable, run_sweep_with, BlockExecutor, MemoryExecutor,
};
pub use pool::{Parallelism, SamplePool};
pub use sensitivity::{sensitivity_spec, sensitivity_sweep, Knob, SensitivityPoint};
pub use threshold::{estimate_threshold, threshold_scan, threshold_spec, ScanPoint, ThresholdScan};

// The decoder registry lives with the decoders; re-exported here so the
// experiment API stays `vlq_qec::DecoderKind` for downstream users.
pub use vlq_decoder::DecoderKind;

// Boundary modes live with the circuit generators in `vlq-surface`;
// re-exported here so block configs read `vlq_qec::Boundary`.
pub use vlq_surface::schedule::Boundary;

/// Configuration of one Monte-Carlo memory experiment.
#[derive(Clone, Debug)]
pub struct ExperimentConfig {
    /// The memory-circuit specification.
    pub spec: MemorySpec,
    /// Noise model (hardware + error rates).
    pub noise: NoiseModel,
    /// Number of Monte-Carlo shots.
    pub shots: u64,
    /// RNG seed (experiments are deterministic given the seed).
    pub seed: u64,
    /// Decoder choice.
    pub decoder: DecoderKind,
    /// Worker threads (1 = single-threaded).
    pub threads: usize,
}

impl ExperimentConfig {
    /// Standard configuration at physical error scale `p` (the SC-SC
    /// two-qubit error rate; all other rates derive from it).
    pub fn new(spec: MemorySpec, p: f64) -> Self {
        let noise = if spec.setup.uses_memory() {
            NoiseModel::memory_at_scale(p)
        } else {
            NoiseModel::baseline_at_scale(p)
        };
        ExperimentConfig {
            spec,
            noise,
            shots: 10_000,
            seed: 2020,
            decoder: DecoderKind::Mwpm,
            threads: default_threads(),
        }
    }

    /// Sets the shot count.
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the decoder.
    pub fn with_decoder(mut self, decoder: DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }

    /// Sets the worker thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Replaces the noise model wholesale (sensitivity sweeps).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Result of a memory experiment.
#[derive(Clone, Debug)]
pub struct ExperimentResult {
    /// Logical failures observed.
    pub failures: u64,
    /// Shots run.
    pub shots: u64,
    /// Failure-rate estimate with confidence machinery.
    pub estimate: BinomialEstimate,
    /// Number of detector nodes in the guard sector graph.
    pub guard_detectors: usize,
    /// Number of edges in the guard sector graph.
    pub graph_edges: usize,
}

impl ExperimentResult {
    /// The logical error rate per shot (one shot = `rounds` noisy rounds).
    pub fn logical_error_rate(&self) -> f64 {
        self.estimate.rate()
    }
}

/// A boundary-aware syndrome block: a memory-circuit shape plus which
/// of its boundaries carry noise.
///
/// [`Boundary::Full`] is the classic memory experiment;
/// [`Boundary::MidCircuit`] is the same circuit (and detector schedule)
/// with ideal prep/readout boundaries, so its failure rate measures
/// exactly `rounds` rounds of steady-state exposure — the block shape
/// schedule-replay backends (`vlq::exec::FrameExecutor`) request per
/// instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockSpec {
    /// The block's circuit shape (setup, distance, depth, rounds,
    /// basis).
    pub memory: MemorySpec,
    /// Which boundaries are noisy.
    pub boundary: Boundary,
}

impl BlockSpec {
    /// A full memory experiment (noisy prep and readout).
    pub fn full(memory: MemorySpec) -> Self {
        BlockSpec {
            memory,
            boundary: Boundary::Full,
        }
    }

    /// A mid-circuit block: only the syndrome rounds carry noise.
    pub fn mid_circuit(memory: MemorySpec) -> Self {
        BlockSpec {
            memory,
            boundary: Boundary::MidCircuit,
        }
    }
}

/// Configuration of one Monte-Carlo block-sampling run
/// ([`ExperimentConfig`] generalized over [`Boundary`]).
#[derive(Clone, Debug)]
pub struct BlockConfig {
    /// The block specification.
    pub spec: BlockSpec,
    /// Noise model (hardware + error rates).
    pub noise: NoiseModel,
    /// Decoder choice.
    pub decoder: DecoderKind,
}

impl BlockConfig {
    /// Standard configuration at physical error scale `p` (the SC-SC
    /// two-qubit error rate; all other rates derive from it) — the
    /// [`ExperimentConfig::new`] rule viewed under the spec's boundary,
    /// so the setup → noise-model mapping lives in exactly one place.
    pub fn new(spec: BlockSpec, p: f64) -> Self {
        Self::from_experiment(&ExperimentConfig::new(spec.memory, p), spec.boundary)
    }

    /// The block view of a memory-experiment config under a boundary.
    pub fn from_experiment(cfg: &ExperimentConfig, boundary: Boundary) -> Self {
        BlockConfig {
            spec: BlockSpec {
                memory: cfg.spec,
                boundary,
            },
            noise: cfg.noise,
            decoder: cfg.decoder,
        }
    }

    /// Sets the decoder.
    pub fn with_decoder(mut self, decoder: DecoderKind) -> Self {
        self.decoder = decoder;
        self
    }

    /// Replaces the noise model wholesale (sensitivity sweeps).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }
}

/// Anything that samples seeded failure words from a prepared noisy
/// block — the abstraction `orchestrate` executors and schedule-replay
/// backends are generic over.
///
/// The two methods share one contract: bit `l` of the packed result is
/// set when decoding shot lane `l` left a *residual logical error*
/// (decoder prediction XOR actual flip). Implementations must be
/// deterministic given the seed and independent of batching.
pub trait BlockSampler {
    /// Samples one seeded batch of `lanes` shots and returns the packed
    /// per-lane failure words.
    fn sample_failure_words(&self, lanes: usize, seed: u64) -> Vec<u64>;

    /// Runs `shots` shots in fixed-size seeded batches and returns the
    /// failure count (the popcount of every batch's failure words).
    fn run_shots(&self, shots: u64, seed: u64) -> u64 {
        const LANES_PER_BATCH: usize = 1024;
        let mut failures = 0u64;
        let mut remaining = shots;
        let mut batch_idx = 0u64;
        while remaining > 0 {
            let lanes = (remaining as usize).min(LANES_PER_BATCH);
            let words = self.sample_failure_words(lanes, seed.wrapping_add(batch_idx));
            failures += words.iter().map(|w| w.count_ones() as u64).sum::<u64>();
            remaining -= lanes as u64;
            batch_idx += 1;
        }
        failures
    }
}

/// Reusable working set for [`PreparedBlock`]'s sample→decode pipeline:
/// the simulator's frame/record buffers, the per-lane defect lists, the
/// per-decoder scratch, and the packed prediction words. One scratch
/// held across the batches of a [`BlockSampler::run_shots`] run makes
/// the steady state allocation-free (with the Union-Find decoder; MWPM's
/// blossom matcher still allocates internally).
#[derive(Debug, Default)]
pub struct BlockScratch {
    sample: SampleScratch,
    defect_lists: Vec<Vec<usize>>,
    decoder_scratch: Vec<DecoderScratch>,
    predictions: Vec<Vec<u64>>,
    /// Telemetry sink, propagated into the per-decoder scratch.
    /// Disabled by default; recording never changes the sampled words
    /// (no RNG access, no iteration-order dependence) and the attached
    /// path stays allocation-free in steady state.
    recorder: Recorder,
}

impl BlockScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scratch that reports through `recorder`.
    pub fn with_recorder(recorder: Recorder) -> Self {
        let mut s = Self::default();
        s.set_recorder(recorder);
        s
    }

    /// Attaches a telemetry recorder, including to any decoder scratch
    /// already built.
    pub fn set_recorder(&mut self, recorder: Recorder) {
        for ds in &mut self.decoder_scratch {
            ds.set_recorder(&recorder);
        }
        self.recorder = recorder;
    }

    /// Drops any decoder scratch so the next batch rebuilds it. The
    /// sample pool calls this when a persistent worker scratch is about
    /// to serve a different (block, decoder list) than it was built
    /// for: decoder scratch can carry graph-keyed memoisation, and the
    /// length-only rebuild check in `sample_failure_words_into` cannot
    /// see a graph change.
    pub(crate) fn reset_decoder_scratch(&mut self) {
        self.decoder_scratch.clear();
    }
}

/// A block prepared for repeated seeded sampling: the noisy circuit,
/// the guard-sector decoding graph, and the configured decoder.
///
/// This is the shared execution core of the crate: memory experiments
/// ([`PreparedExperiment`], a [`Boundary::Full`] wrapper) sum the
/// failure bits, and schedule-replay backends (the `vlq` crate's
/// `FrameExecutor`) XOR them into logical Pauli frames, so both
/// workloads run the identical sample-and-decode path.
pub struct PreparedBlock {
    /// The block circuit (ideal) with sector + boundary metadata.
    pub memory: MemoryCircuit,
    /// The noisy circuit actually sampled (noise windowed to the
    /// block's [`Boundary`]).
    pub noisy: Circuit,
    /// Guard-sector decoding graph.
    pub graph: DecodingGraph,
    /// The boundary the noise window was built from.
    pub boundary: Boundary,
    decoder: Box<dyn Decoder + Send + Sync>,
    guard: Vec<usize>,
    /// Process-unique id (never reused), the key the sample pool uses
    /// to decide whether persistent worker scratch may be carried over.
    identity: u64,
}

impl PreparedBlock {
    /// Prepares circuits, graph, and decoder for a block config.
    pub fn prepare(cfg: &BlockConfig) -> Self {
        static NEXT_IDENTITY: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let memory = memory_circuit(cfg.spec.memory, &cfg.noise.hw);
        let (start, end) = memory.noise_window(cfg.spec.boundary);
        let noisy = cfg.noise.apply_window(&memory.circuit, start, end);
        let guard: Vec<usize> = memory.guard_detectors().to_vec();
        let graph = DecodingGraph::build(&noisy, &guard);
        let decoder = cfg.decoder.build(&graph);
        PreparedBlock {
            memory,
            noisy,
            graph,
            boundary: cfg.spec.boundary,
            decoder,
            guard,
            identity: NEXT_IDENTITY.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        }
    }

    /// The process-unique block id (see the `identity` field).
    pub(crate) fn identity(&self) -> u64 {
        self.identity
    }

    /// [`BlockSampler::sample_failure_words`] for several decoders over
    /// the *identical* defect sets (same circuit, same noise
    /// realizations).
    pub fn sample_failure_words_with(
        &self,
        decoders: &[&(dyn Decoder + Send + Sync)],
        lanes: usize,
        seed: u64,
    ) -> Vec<Vec<u64>> {
        let mut scratch = BlockScratch::new();
        self.sample_failure_words_into(decoders, lanes, seed, &mut scratch);
        scratch.predictions.truncate(decoders.len());
        scratch.predictions
    }

    /// [`PreparedBlock::sample_failure_words_with`] against caller-owned
    /// scratch: bit-identical failure words, with every buffer of the
    /// sample→decode pipeline reused across calls. Returns the per-
    /// decoder prediction words (borrowed from the scratch).
    pub fn sample_failure_words_into<'s>(
        &self,
        decoders: &[&(dyn Decoder + Send + Sync)],
        lanes: usize,
        seed: u64,
        scratch: &'s mut BlockScratch,
    ) -> &'s [Vec<u64>] {
        let words = lanes.div_ceil(64).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);
        {
            let _span = scratch.recorder.span(Metric::SampleNanos);
            sample_batch_into(&self.noisy, lanes, &mut rng, &mut scratch.sample);
        }
        // Word-scan the guard detectors once into per-lane defect lists
        // (replaces a per-lane × per-detector bit-probe loop).
        {
            let _span = scratch.recorder.span(Metric::ExtractNanos);
            scratch
                .sample
                .result
                .defect_lists_into(&self.guard, lanes, &mut scratch.defect_lists);
        }
        scratch.recorder.incr(Metric::SampleBatches);
        scratch.recorder.add(Metric::SampleLanes, lanes as u64);
        if scratch.recorder.is_enabled() {
            for defects in &scratch.defect_lists[..lanes] {
                scratch
                    .recorder
                    .observe(Metric::DefectsPerLane, defects.len() as u64);
            }
        }
        // Decoder scratch is keyed to the decoder list; rebuild on any
        // shape change (cheap, and callers keep the list stable).
        if scratch.decoder_scratch.len() != decoders.len() {
            scratch.decoder_scratch.clear();
            scratch
                .decoder_scratch
                .extend(decoders.iter().map(|d| d.make_scratch()));
            for ds in &mut scratch.decoder_scratch {
                ds.set_recorder(&scratch.recorder);
            }
        }
        if scratch.predictions.len() < decoders.len() {
            scratch.predictions.resize_with(decoders.len(), Vec::new);
        }
        let decode_span = scratch.recorder.span(Metric::DecodeNanos);
        let actual = scratch.sample.result.observable_words(0);
        for (fi, decoder) in decoders.iter().enumerate() {
            let pred = &mut scratch.predictions[fi];
            pred.clear();
            pred.resize(words, 0);
            decoder.decode_batch(
                &scratch.defect_lists[..lanes],
                &mut scratch.decoder_scratch[fi],
                pred,
            );
            for (p, a) in pred.iter_mut().zip(actual) {
                *p ^= a;
            }
        }
        drop(decode_span);
        if scratch.recorder.is_enabled() {
            let failures: u64 = scratch.predictions[..decoders.len()]
                .iter()
                .flat_map(|pred| pred.iter())
                .map(|w| w.count_ones() as u64)
                .sum();
            scratch.recorder.add(Metric::BlockFailures, failures);
        }
        &scratch.predictions[..decoders.len()]
    }

    /// [`BlockSampler::sample_failure_words`] against caller-owned
    /// scratch: the identical packed failure words through the block's
    /// own configured decoder, with every buffer of the sample→decode
    /// pipeline reused across calls. The scratch must not be shared
    /// across *different* blocks without clearing — decoder scratch can
    /// carry graph-keyed memoisation, and the length-only rebuild check
    /// in [`PreparedBlock::sample_failure_words_into`] cannot see a
    /// graph change (keep one scratch per block, as the `vlq` frame
    /// replay does).
    pub fn sample_failure_words_reusing<'s>(
        &self,
        lanes: usize,
        seed: u64,
        scratch: &'s mut BlockScratch,
    ) -> &'s [u64] {
        let decoders: [&(dyn Decoder + Send + Sync); 1] = [self.decoder.as_ref()];
        &self.sample_failure_words_into(&decoders, lanes, seed, scratch)[0]
    }

    /// Runs `shots` sampled shots through several decoders at once:
    /// every decoder sees the *identical* defect sets. Returns one
    /// failure count per decoder.
    pub fn run_shots_with(
        &self,
        decoders: &[&(dyn Decoder + Send + Sync)],
        shots: u64,
        seed: u64,
    ) -> Vec<u64> {
        const LANES_PER_BATCH: usize = 1024;
        let mut scratch = BlockScratch::new();
        let mut failures = vec![0u64; decoders.len()];
        let mut remaining = shots;
        let mut batch_idx = 0u64;
        while remaining > 0 {
            let lanes = (remaining as usize).min(LANES_PER_BATCH);
            let words = self.sample_failure_words_into(
                decoders,
                lanes,
                seed.wrapping_add(batch_idx),
                &mut scratch,
            );
            for (fi, decoder_words) in words.iter().enumerate() {
                failures[fi] += decoder_words
                    .iter()
                    .map(|w| w.count_ones() as u64)
                    .sum::<u64>();
            }
            remaining -= lanes as u64;
            batch_idx += 1;
        }
        failures
    }

    /// [`BlockSampler::run_shots`] with telemetry: identical batching,
    /// seed schedule, and failure count, with per-phase timings and
    /// sampling statistics reported through `recorder`.
    pub fn run_shots_recorded(&self, shots: u64, seed: u64, recorder: &Recorder) -> u64 {
        const LANES_PER_BATCH: usize = 1024;
        let decoders = [self.decoder.as_ref()];
        let mut scratch = BlockScratch::with_recorder(recorder.clone());
        let mut failures = 0u64;
        let mut remaining = shots;
        let mut batch_idx = 0u64;
        while remaining > 0 {
            let lanes = (remaining as usize).min(LANES_PER_BATCH);
            let words = self.sample_failure_words_into(
                &decoders,
                lanes,
                seed.wrapping_add(batch_idx),
                &mut scratch,
            );
            failures += words[0].iter().map(|w| w.count_ones() as u64).sum::<u64>();
            remaining -= lanes as u64;
            batch_idx += 1;
        }
        failures
    }

    /// [`BlockSampler::run_shots`] under a worker policy: serial when
    /// `par` carries no pool, otherwise the batches are claimed
    /// work-stealing-style by the pool's workers. Bit-identical to the
    /// serial path at any worker count (batches are independently
    /// seeded; counts reduce in batch order — see [`pool::SamplePool`]).
    pub fn run_shots_par(&self, shots: u64, seed: u64, par: &Parallelism) -> u64 {
        match par.pool() {
            None => self.run_shots(shots, seed),
            Some(pool) => {
                let mut failures = [0u64];
                pool.run_block_shots(
                    self,
                    &[self.decoder.as_ref()],
                    shots,
                    seed,
                    None,
                    &mut failures,
                );
                failures[0]
            }
        }
    }

    /// [`PreparedBlock::run_shots_with`] under a worker policy (see
    /// [`PreparedBlock::run_shots_par`]).
    pub fn run_shots_with_par(
        &self,
        decoders: &[&(dyn Decoder + Send + Sync)],
        shots: u64,
        seed: u64,
        par: &Parallelism,
    ) -> Vec<u64> {
        match par.pool() {
            None => self.run_shots_with(decoders, shots, seed),
            Some(pool) => {
                let mut failures = vec![0u64; decoders.len()];
                pool.run_block_shots(self, decoders, shots, seed, None, &mut failures);
                failures
            }
        }
    }

    /// [`PreparedBlock::run_shots_recorded`] under a worker policy:
    /// identical failure count *and* identical deterministic telemetry
    /// (per-worker recorders merge commutatively, so the JSONL sidecar
    /// stays byte-identical at any worker count; steal/busy timings land
    /// in the runtime summary only).
    pub fn run_shots_recorded_par(
        &self,
        shots: u64,
        seed: u64,
        recorder: &Recorder,
        par: &Parallelism,
    ) -> u64 {
        match par.pool() {
            None => self.run_shots_recorded(shots, seed, recorder),
            Some(pool) => {
                let mut failures = [0u64];
                pool.run_block_shots(
                    self,
                    &[self.decoder.as_ref()],
                    shots,
                    seed,
                    Some(recorder),
                    &mut failures,
                );
                failures[0]
            }
        }
    }
}

impl BlockSampler for PreparedBlock {
    fn sample_failure_words(&self, lanes: usize, seed: u64) -> Vec<u64> {
        self.sample_failure_words_with(&[self.decoder.as_ref()], lanes, seed)
            .pop()
            .expect("one decoder in, one word vector out")
    }

    /// Override of the trait default: identical batching and seed
    /// schedule, but one [`BlockScratch`] is held across all batches so
    /// the steady state allocates nothing.
    fn run_shots(&self, shots: u64, seed: u64) -> u64 {
        const LANES_PER_BATCH: usize = 1024;
        let decoders = [self.decoder.as_ref()];
        let mut scratch = BlockScratch::new();
        let mut failures = 0u64;
        let mut remaining = shots;
        let mut batch_idx = 0u64;
        while remaining > 0 {
            let lanes = (remaining as usize).min(LANES_PER_BATCH);
            let words = self.sample_failure_words_into(
                &decoders,
                lanes,
                seed.wrapping_add(batch_idx),
                &mut scratch,
            );
            failures += words[0].iter().map(|w| w.count_ones() as u64).sum::<u64>();
            remaining -= lanes as u64;
            batch_idx += 1;
        }
        failures
    }
}

/// Builds the noisy circuit and guard-sector decoder for a
/// memory-experiment config: a [`PreparedBlock`] pinned to
/// [`Boundary::Full`].
///
/// Sampling goes through the [`BlockSampler`] trait; downstream code
/// that needs other boundary kinds holds a [`PreparedBlock`] directly.
pub struct PreparedExperiment {
    /// The underlying full-boundary block.
    pub block: PreparedBlock,
}

impl PreparedExperiment {
    /// Prepares circuits, graph, and decoder.
    pub fn prepare(cfg: &ExperimentConfig) -> Self {
        PreparedExperiment {
            block: PreparedBlock::prepare(&BlockConfig::from_experiment(cfg, Boundary::Full)),
        }
    }

    /// Runs `shots` sampled shots with the given base seed, returning the
    /// failure count.
    pub fn run_shots(&self, shots: u64, seed: u64) -> u64 {
        self.block.run_shots(shots, seed)
    }

    /// Runs `shots` sampled shots through several decoders at once (see
    /// [`PreparedBlock::run_shots_with`]).
    pub fn run_shots_with(
        &self,
        decoders: &[&(dyn Decoder + Send + Sync)],
        shots: u64,
        seed: u64,
    ) -> Vec<u64> {
        self.block.run_shots_with(decoders, shots, seed)
    }

    /// [`PreparedExperiment::run_shots`] with telemetry (see
    /// [`PreparedBlock::run_shots_recorded`]).
    pub fn run_shots_recorded(&self, shots: u64, seed: u64, recorder: &Recorder) -> u64 {
        self.block.run_shots_recorded(shots, seed, recorder)
    }

    /// [`PreparedExperiment::run_shots`] under a worker policy (see
    /// [`PreparedBlock::run_shots_par`]).
    pub fn run_shots_par(&self, shots: u64, seed: u64, par: &Parallelism) -> u64 {
        self.block.run_shots_par(shots, seed, par)
    }

    /// [`PreparedExperiment::run_shots_with`] under a worker policy
    /// (see [`PreparedBlock::run_shots_with_par`]).
    pub fn run_shots_with_par(
        &self,
        decoders: &[&(dyn Decoder + Send + Sync)],
        shots: u64,
        seed: u64,
        par: &Parallelism,
    ) -> Vec<u64> {
        self.block.run_shots_with_par(decoders, shots, seed, par)
    }

    /// [`PreparedExperiment::run_shots_recorded`] under a worker policy
    /// (see [`PreparedBlock::run_shots_recorded_par`]).
    pub fn run_shots_recorded_par(
        &self,
        shots: u64,
        seed: u64,
        recorder: &Recorder,
        par: &Parallelism,
    ) -> u64 {
        self.block
            .run_shots_recorded_par(shots, seed, recorder, par)
    }
}

impl BlockSampler for PreparedExperiment {
    fn sample_failure_words(&self, lanes: usize, seed: u64) -> Vec<u64> {
        self.block.sample_failure_words(lanes, seed)
    }
}

/// Runs the same sampled syndromes through several decoders, returning
/// one result per decoder in `kinds` order.
///
/// Unlike running [`run_memory_experiment`] once per decoder, every
/// decoder sees the *identical* defect sets (same circuit, same noise
/// realizations), so rate differences measure decoding accuracy alone —
/// the honest way to quantify e.g. the union-find first-contact growth
/// approximation against exact MWPM.
///
/// Shots are split into fixed-size chunks with seeds derived from
/// `cfg.seed` and the chunk index alone (the sweep-engine discipline),
/// so results are identical for any `cfg.threads` / machine core count.
pub fn compare_decoders(cfg: &ExperimentConfig, kinds: &[DecoderKind]) -> Vec<ExperimentResult> {
    let prepared = PreparedExperiment::prepare(cfg);
    let decoders: Vec<Box<dyn Decoder + Send + Sync>> = kinds
        .iter()
        .map(|k| k.build(&prepared.block.graph))
        .collect();
    let decoder_refs: Vec<&(dyn Decoder + Send + Sync)> =
        decoders.iter().map(|d| d.as_ref()).collect();

    const CHUNK_SHOTS: u64 = 1024;
    let n_chunks = cfg.shots.div_ceil(CHUNK_SHOTS);
    let chunk_failures = |c: u64| -> Vec<u64> {
        let shots = CHUNK_SHOTS.min(cfg.shots - c * CHUNK_SHOTS);
        let seed = vlq_sweep::splitmix64(cfg.seed ^ vlq_sweep::splitmix64(c));
        prepared.run_shots_with(&decoder_refs, shots, seed)
    };
    let sum = |mut acc: Vec<u64>, part: Vec<u64>| {
        for (a, p) in acc.iter_mut().zip(part) {
            *a += p;
        }
        acc
    };

    let threads = cfg.threads.clamp(1, n_chunks.max(1) as usize);
    let failures: Vec<u64> = if threads <= 1 {
        (0..n_chunks)
            .map(chunk_failures)
            .fold(vec![0u64; kinds.len()], sum)
    } else {
        // Chunk seeds don't depend on this round-robin assignment, so
        // the thread count only affects wall-clock, never results.
        std::thread::scope(|scope| {
            let chunk_failures = &chunk_failures;
            let handles: Vec<_> = (0..threads as u64)
                .map(|t| {
                    scope.spawn(move || {
                        (t..n_chunks)
                            .step_by(threads)
                            .map(chunk_failures)
                            .fold(vec![0u64; kinds.len()], sum)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .fold(vec![0u64; kinds.len()], sum)
        })
    };

    failures
        .into_iter()
        .map(|f| ExperimentResult {
            failures: f,
            shots: cfg.shots,
            estimate: BinomialEstimate::new(f, cfg.shots.max(1)),
            guard_detectors: prepared.block.graph.num_nodes(),
            graph_edges: prepared.block.graph.num_edges(),
        })
        .collect()
}

/// Runs a complete memory experiment (possibly multi-threaded).
pub fn run_memory_experiment(cfg: &ExperimentConfig) -> ExperimentResult {
    let prepared = PreparedExperiment::prepare(cfg);
    let threads = cfg.threads.max(1).min(cfg.shots.max(1) as usize);
    let failures = if threads <= 1 {
        prepared.run_shots(cfg.shots, cfg.seed)
    } else {
        let per = cfg.shots / threads as u64;
        let extra = cfg.shots % threads as u64;
        std::thread::scope(|scope| {
            let prepared = &prepared;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let shots = per + u64::from((t as u64) < extra);
                    // Separate seed streams per worker.
                    let seed = cfg
                        .seed
                        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1));
                    scope.spawn(move || prepared.run_shots(shots, seed))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker")).sum()
        })
    };
    ExperimentResult {
        failures,
        shots: cfg.shots,
        estimate: BinomialEstimate::new(failures, cfg.shots.max(1)),
        guard_detectors: prepared.block.graph.num_nodes(),
        graph_edges: prepared.block.graph.num_edges(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlq_arch::params::{ErrorRates, HardwareParams};
    use vlq_surface::schedule::{Basis, Setup};

    #[test]
    fn noiseless_experiment_never_fails() {
        let spec = MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z);
        let cfg = ExperimentConfig::new(spec, 2e-3)
            .with_noise(NoiseModel::new(
                HardwareParams::baseline(),
                ErrorRates::noiseless(),
            ))
            .with_shots(512)
            .with_threads(1);
        let res = run_memory_experiment(&cfg);
        assert_eq!(res.failures, 0);
    }

    #[test]
    fn results_are_deterministic_given_seed() {
        let spec = MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z);
        let cfg = ExperimentConfig::new(spec, 5e-3)
            .with_shots(2048)
            .with_seed(99)
            .with_threads(2);
        let a = run_memory_experiment(&cfg);
        let b = run_memory_experiment(&cfg);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn very_noisy_experiment_fails_often() {
        let spec = MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z);
        let cfg = ExperimentConfig::new(spec, 5e-2)
            .with_shots(2048)
            .with_threads(2);
        let res = run_memory_experiment(&cfg);
        // Far above threshold the failure rate approaches 50%.
        assert!(
            res.logical_error_rate() > 0.15,
            "{}",
            res.logical_error_rate()
        );
    }

    #[test]
    fn below_threshold_d5_beats_d3_baseline() {
        // The fundamental QEC property, end to end: at p well below
        // threshold, distance 5 has a lower logical error rate than
        // distance 3.
        let p = 2e-3;
        let shots = 30_000;
        let d3 = run_memory_experiment(
            &ExperimentConfig::new(MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z), p)
                .with_shots(shots),
        );
        let d5 = run_memory_experiment(
            &ExperimentConfig::new(MemorySpec::standard(Setup::Baseline, 5, 1, Basis::Z), p)
                .with_shots(shots),
        );
        assert!(
            d5.logical_error_rate() < d3.logical_error_rate(),
            "d5 {} !< d3 {}",
            d5.logical_error_rate(),
            d3.logical_error_rate()
        );
    }

    #[test]
    fn union_find_runs_and_is_close_to_mwpm() {
        let spec = MemorySpec::standard(Setup::Baseline, 3, 1, Basis::Z);
        let base = ExperimentConfig::new(spec, 4e-3).with_shots(20_000);
        let mwpm = run_memory_experiment(&base.clone().with_decoder(DecoderKind::Mwpm));
        let uf = run_memory_experiment(&base.with_decoder(DecoderKind::UnionFind));
        let (rm, ru) = (mwpm.logical_error_rate(), uf.logical_error_rate());
        assert!(ru >= rm * 0.5, "UF {ru} suspiciously better than MWPM {rm}");
        assert!(ru <= rm * 4.0 + 0.01, "UF {ru} far worse than MWPM {rm}");
    }

    #[test]
    fn memory_setups_run_end_to_end() {
        for setup in [Setup::NaturalAllAtOnce, Setup::CompactInterleaved] {
            let spec = MemorySpec::standard(setup, 3, 4, Basis::Z);
            let cfg = ExperimentConfig::new(spec, 2e-3).with_shots(2000);
            let res = run_memory_experiment(&cfg);
            assert!(res.guard_detectors > 0);
            assert!(res.graph_edges > 0);
            // Sane range.
            assert!(res.logical_error_rate() < 0.5);
        }
    }

    #[test]
    fn x_basis_memory_runs() {
        let spec = MemorySpec::standard(Setup::CompactAllAtOnce, 3, 4, Basis::X);
        let cfg = ExperimentConfig::new(spec, 2e-3).with_shots(2000);
        let res = run_memory_experiment(&cfg);
        assert!(res.logical_error_rate() < 0.5);
    }
}
