//! Decoder micro-benchmarks: Blossom MWPM vs Union-Find on realistic
//! defect sets (the A1 ablation's speed axis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vlq_arch::HardwareParams;
use vlq_circuit::noise::NoiseModel;
use vlq_decoder::{Decoder, DecodingGraph, MwpmDecoder, UnionFindDecoder};
use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

fn graph_for(d: usize) -> DecodingGraph {
    graph_at(d, 5e-3)
}

fn graph_at(d: usize, p: f64) -> DecodingGraph {
    let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
    let mc = memory_circuit(spec, &HardwareParams::baseline());
    let noisy = NoiseModel::baseline_at_scale(p).apply(&mc.circuit);
    DecodingGraph::build(&noisy, &mc.z_detectors)
}

fn random_defects(g: &DecodingGraph, count: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut defects = Vec::new();
    while defects.len() < count.min(g.num_nodes()) {
        let d = rng.random_range(0..g.num_nodes());
        if !defects.contains(&d) {
            defects.push(d);
        }
    }
    defects.sort_unstable();
    defects
}

fn bench_decoders(c: &mut Criterion) {
    let mut group = c.benchmark_group("decode");
    for d in [3usize, 5, 7] {
        let g = graph_for(d);
        let mwpm = MwpmDecoder::new(&g);
        let uf = UnionFindDecoder::new(&g);
        let mut rng = SmallRng::seed_from_u64(1);
        let defect_sets: Vec<Vec<usize>> =
            (0..32).map(|_| random_defects(&g, 6, &mut rng)).collect();
        group.bench_with_input(BenchmarkId::new("mwpm", d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let r = mwpm.decode(&defect_sets[i % defect_sets.len()]);
                i += 1;
                r
            })
        });
        group.bench_with_input(BenchmarkId::new("union-find", d), &d, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let r = uf.decode(&defect_sets[i % defect_sets.len()]);
                i += 1;
                r
            })
        });
    }
    group.finish();
}

fn bench_graph_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph-build");
    group.sample_size(10);
    for d in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("baseline", d), &d, |b, &d| {
            b.iter(|| graph_for(d))
        });
    }
    group.finish();
}

/// Scratch-reusing `decode_batch` vs the per-lane `decode` loop it
/// replaced, over the (d, p) perf-trajectory grid (Union-Find; MWPM's
/// batch path only reuses the edge buffer and tracks its `decode`).
fn bench_decode_batch(c: &mut Criterion) {
    use vlq_decoder::UnionFindDecoder;
    let mut group = c.benchmark_group("decode-batch");
    for d in [3usize, 5, 7, 9] {
        for p in [1e-3, 5e-3] {
            let g = graph_at(d, p);
            let uf = UnionFindDecoder::new(&g);
            let mut rng = SmallRng::seed_from_u64(1);
            let lanes = 256usize;
            let lists: Vec<Vec<usize>> = (0..lanes)
                .map(|_| {
                    let k = rng.random_range(0..7usize);
                    random_defects(&g, k, &mut rng)
                })
                .collect();
            let words = lanes.div_ceil(64);
            let id = format!("d{d}-p{p:.0e}");
            group.bench_with_input(BenchmarkId::new("uf-batch", &id), &d, |b, _| {
                let mut scratch = uf.make_scratch();
                let mut out = vec![0u64; words];
                b.iter(|| uf.decode_batch(&lists, &mut scratch, &mut out))
            });
            group.bench_with_input(BenchmarkId::new("uf-per-lane", &id), &d, |b, _| {
                let mut out = vec![0u64; words];
                b.iter(|| {
                    out.fill(0);
                    for (lane, defects) in lists.iter().enumerate() {
                        if uf.decode(defects) {
                            out[lane / 64] |= 1u64 << (lane % 64);
                        }
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_decoders,
    bench_graph_build,
    bench_decode_batch
);
criterion_main!(benches);
