//! Maximum-weight matching in general graphs (the Blossom algorithm).
//!
//! A faithful Rust port of the Galil / van Rantwijk primal-dual
//! implementation in the formulation used by NetworkX's
//! `max_weight_matching` (node-pair label edges rather than endpoint
//! indices). With `max_cardinality = true` and transformed weights
//! `w' = C - w` it yields the *minimum-weight perfect matching* the
//! surface-code MWPM decoder needs (see [`crate::mwpm`]).
//!
//! Weights are `i64`; callers scale float weights (the decoder multiplies
//! log-odds weights by 2^20 and rounds). Vertex duals are stored doubled
//! so that all arithmetic stays integral.

// BTree (not hash) containers: blossom tie-breaking follows container
// iteration order, and equally-minimal matchings can differ in logical
// class — hash iteration order varies per process (`RandomState`), which
// made shared-syndrome decoder comparisons flaky across runs.
use std::collections::{BTreeMap, BTreeSet};

/// Computes a maximum-weight matching of an undirected graph.
///
/// `edges` is a list of `(u, v, weight)` with `u != v`; vertices are
/// `0..n` where `n` is one more than the largest endpoint. Duplicate
/// edges keep the last weight. Returns `mate`, where `mate[v] = Some(u)`
/// if `v` is matched to `u`.
///
/// If `max_cardinality` is true, only maximum-cardinality matchings are
/// considered (and among those, weight is maximized).
///
/// # Panics
///
/// Panics on self-loops.
pub fn max_weight_matching(
    edges: &[(usize, usize, i64)],
    max_cardinality: bool,
) -> Vec<Option<usize>> {
    let mut n = 0usize;
    for &(i, j, _) in edges {
        assert_ne!(i, j, "self-loop in matching graph");
        n = n.max(i + 1).max(j + 1);
    }
    if n == 0 {
        return Vec::new();
    }
    Matcher::new(n, edges, max_cardinality).run()
}

/// Minimum-weight perfect matching via weight inversion.
///
/// Returns `mate[v] = u` for every vertex, or `None` if no perfect
/// matching exists.
pub fn min_weight_perfect_matching(edges: &[(usize, usize, i64)]) -> Option<Vec<usize>> {
    if edges.is_empty() {
        return Some(Vec::new());
    }
    let max_w = edges.iter().map(|e| e.2).max().unwrap_or(0);
    let inverted: Vec<(usize, usize, i64)> = edges
        .iter()
        .map(|&(u, v, w)| (u, v, max_w + 1 - w))
        .collect();
    let mate = max_weight_matching(&inverted, true);
    if mate.iter().any(Option::is_none) {
        return None;
    }
    Some(mate.into_iter().map(|m| m.expect("perfect")).collect())
}

/// Node id: vertices are `0..n`; blossoms are `n + index`.
type Node = usize;

const S: u8 = 1;
const T: u8 = 2;
const BREADCRUMB: u8 = 5;

#[derive(Default, Clone)]
struct BlossomData {
    /// Ordered sub-blossoms, starting with the base.
    childs: Vec<Node>,
    /// `edges[i] = (v, w)`: v in childs[i], w in childs[wrap(i+1)].
    edges: Vec<(usize, usize)>,
    /// Least-slack edges to neighboring S-blossoms.
    mybestedges: Option<Vec<(usize, usize)>>,
    active: bool,
}

struct Matcher {
    n: usize,
    max_cardinality: bool,
    neighbors: Vec<Vec<usize>>,
    wt: BTreeMap<(usize, usize), i64>,
    mate: Vec<Option<usize>>,
    label: BTreeMap<Node, u8>,
    labeledge: BTreeMap<Node, Option<(usize, usize)>>,
    inblossom: Vec<Node>,
    blossomparent: BTreeMap<Node, Option<Node>>,
    blossombase: BTreeMap<Node, usize>,
    bestedge: BTreeMap<Node, Option<(usize, usize)>>,
    dualvar: Vec<i64>,
    blossomdual: BTreeMap<Node, i64>,
    allowedge: BTreeSet<(usize, usize)>,
    queue: Vec<usize>,
    blossoms: Vec<BlossomData>,
    free_blossoms: Vec<Node>,
}

impl Matcher {
    fn new(n: usize, edges: &[(usize, usize, i64)], max_cardinality: bool) -> Self {
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut wt = BTreeMap::new();
        let mut maxweight = 0i64;
        for &(i, j, w) in edges {
            if wt.insert(key(i, j), w).is_none() {
                neighbors[i].push(j);
                neighbors[j].push(i);
            }
            maxweight = maxweight.max(w);
        }
        Matcher {
            n,
            max_cardinality,
            neighbors,
            wt,
            mate: vec![None; n],
            label: BTreeMap::new(),
            labeledge: BTreeMap::new(),
            inblossom: (0..n).collect(),
            blossomparent: (0..n).map(|v| (v, None)).collect(),
            blossombase: (0..n).map(|v| (v, v)).collect(),
            bestedge: BTreeMap::new(),
            dualvar: vec![maxweight; n],
            blossomdual: BTreeMap::new(),
            allowedge: BTreeSet::new(),
            queue: Vec::new(),
            blossoms: Vec::new(),
            free_blossoms: Vec::new(),
        }
    }

    fn weight(&self, v: usize, w: usize) -> i64 {
        self.wt[&key(v, w)]
    }

    /// 2 * slack of edge (v, w); only valid outside blossoms.
    fn slack(&self, v: usize, w: usize) -> i64 {
        self.dualvar[v] + self.dualvar[w] - 2 * self.weight(v, w)
    }

    fn is_blossom(&self, b: Node) -> bool {
        b >= self.n
    }

    fn bdata(&self, b: Node) -> &BlossomData {
        &self.blossoms[b - self.n]
    }

    fn bdata_mut(&mut self, b: Node) -> &mut BlossomData {
        let n = self.n;
        &mut self.blossoms[b - n]
    }

    fn new_blossom(&mut self) -> Node {
        if let Some(b) = self.free_blossoms.pop() {
            self.blossoms[b - self.n] = BlossomData {
                active: true,
                ..Default::default()
            };
            b
        } else {
            self.blossoms.push(BlossomData {
                active: true,
                ..Default::default()
            });
            self.n + self.blossoms.len() - 1
        }
    }

    fn leaves(&self, b: Node, out: &mut Vec<usize>) {
        if self.is_blossom(b) {
            for &c in &self.bdata(b).childs {
                self.leaves(c, out);
            }
        } else {
            out.push(b);
        }
    }

    fn label_of(&self, x: Node) -> u8 {
        self.label.get(&x).copied().unwrap_or(0)
    }

    fn assign_label(&mut self, w: usize, t: u8, v: Option<usize>) {
        let b = self.inblossom[w];
        debug_assert!(self.label_of(w) == 0 && self.label_of(b) == 0);
        self.label.insert(w, t);
        self.label.insert(b, t);
        let le = v.map(|v| (v, w));
        self.labeledge.insert(w, le);
        self.labeledge.insert(b, le);
        self.bestedge.insert(w, None);
        self.bestedge.insert(b, None);
        if t == S {
            let mut lv = Vec::new();
            self.leaves(b, &mut lv);
            self.queue.extend(lv);
        } else if t == T {
            let base = self.blossombase[&b];
            let mate_base = self.mate[base].expect("T-blossom base is matched");
            self.assign_label(mate_base, S, Some(base));
        }
    }

    /// Traces back from v and w; returns the base vertex of a new blossom
    /// or None if an augmenting path was found.
    fn scan_blossom(&mut self, v: usize, w: usize) -> Option<usize> {
        let mut path: Vec<Node> = Vec::new();
        let mut base: Option<usize> = None;
        let mut v: Option<usize> = Some(v);
        let mut w: Option<usize> = Some(w);
        while let Some(vv) = v {
            let b = self.inblossom[vv];
            if self.label_of(b) & 4 != 0 {
                base = Some(self.blossombase[&b]);
                break;
            }
            debug_assert_eq!(self.label_of(b), S);
            path.push(b);
            self.label.insert(b, BREADCRUMB);
            // Trace one step back.
            match self.labeledge[&b] {
                None => {
                    debug_assert!(self.mate[self.blossombase[&b]].is_none());
                    v = None;
                }
                Some(le) => {
                    debug_assert_eq!(Some(le.0), self.mate[self.blossombase[&b]]);
                    let t = le.0;
                    let bt = self.inblossom[t];
                    debug_assert_eq!(self.label_of(bt), T);
                    // bt is a T-blossom; trace one more step back.
                    v = Some(self.labeledge[&bt].expect("T-blossom has label edge").0);
                }
            }
            // Swap v and w to alternate between both paths.
            if w.is_some() {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for b in path {
            self.label.insert(b, S);
        }
        base
    }

    /// Constructs a new blossom with the given base, through S-vertices
    /// v and w with an edge between them.
    fn add_blossom(&mut self, base: usize, v: usize, w: usize) {
        let bb = self.inblossom[base];
        let mut bv = self.inblossom[v];
        let mut bw = self.inblossom[w];
        let b = self.new_blossom();
        self.blossombase.insert(b, base);
        self.blossomparent.insert(b, None);
        self.blossomparent.insert(bb, Some(b));
        let mut path: Vec<Node> = Vec::new();
        let mut edgs: Vec<(usize, usize)> = vec![(v, w)];
        // Trace back from v to base (shadow loop cursors).
        let mut v = v;
        let mut w = w;
        let _ = (&v, &w);
        while bv != bb {
            self.blossomparent.insert(bv, Some(b));
            path.push(bv);
            let le = self.labeledge[&bv].expect("labeled sub-blossom");
            edgs.push(le);
            debug_assert!(
                self.label_of(bv) == T
                    || (self.label_of(bv) == S && Some(le.0) == self.mate[self.blossombase[&bv]])
            );
            v = le.0;
            bv = self.inblossom[v];
        }
        path.push(bb);
        path.reverse();
        edgs.reverse();
        // Trace back from w to base.
        while bw != bb {
            self.blossomparent.insert(bw, Some(b));
            path.push(bw);
            let le = self.labeledge[&bw].expect("labeled sub-blossom");
            edgs.push((le.1, le.0));
            debug_assert!(
                self.label_of(bw) == T
                    || (self.label_of(bw) == S && Some(le.0) == self.mate[self.blossombase[&bw]])
            );
            w = le.0;
            bw = self.inblossom[w];
        }
        debug_assert_eq!(self.label_of(bb), S);
        self.label.insert(b, S);
        self.labeledge.insert(b, self.labeledge[&bb]);
        self.blossomdual.insert(b, 0);
        self.bdata_mut(b).childs = path.clone();
        self.bdata_mut(b).edges = edgs;
        // Relabel vertices.
        let mut lv = Vec::new();
        self.leaves(b, &mut lv);
        for &x in &lv {
            if self.label_of(self.inblossom[x]) == T {
                self.queue.push(x);
            }
            self.inblossom[x] = b;
        }
        // Compute b.mybestedges.
        let mut bestedgeto: BTreeMap<Node, (usize, usize)> = BTreeMap::new();
        for &bv in &path {
            let nblist: Vec<(usize, usize)> = if self.is_blossom(bv) {
                if let Some(best) = self.bdata(bv).mybestedges.clone() {
                    self.bdata_mut(bv).mybestedges = None;
                    best
                } else {
                    let mut lv = Vec::new();
                    self.leaves(bv, &mut lv);
                    lv.iter()
                        .flat_map(|&x| self.neighbors[x].iter().map(move |&y| (x, y)))
                        .collect()
                }
            } else {
                self.neighbors[bv].iter().map(|&y| (bv, y)).collect()
            };
            for (i0, j0) in nblist {
                let (i, j) = if self.inblossom[j0] == b {
                    (j0, i0)
                } else {
                    (i0, j0)
                };
                let bj = self.inblossom[j];
                if bj != b && self.label_of(bj) == S {
                    let better = match bestedgeto.get(&bj) {
                        None => true,
                        Some(&(x, y)) => self.slack(i, j) < self.slack(x, y),
                    };
                    if better {
                        bestedgeto.insert(bj, (i, j));
                    }
                }
            }
            self.bestedge.insert(bv, None);
        }
        let mybest: Vec<(usize, usize)> = bestedgeto.into_values().collect();
        let mut best: Option<(usize, usize)> = None;
        for &(x, y) in &mybest {
            if best.is_none() || self.slack(x, y) < self.slack(best.unwrap().0, best.unwrap().1) {
                best = Some((x, y));
            }
        }
        self.bdata_mut(b).mybestedges = Some(mybest);
        self.bestedge.insert(b, best);
    }

    /// Expands the given top-level blossom.
    fn expand_blossom(&mut self, b: Node, endstage: bool) {
        let childs = self.bdata(b).childs.clone();
        for &s in &childs {
            self.blossomparent.insert(s, None);
            if !self.is_blossom(s) {
                self.inblossom[s] = s;
            } else if endstage && self.blossomdual[&s] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                let mut lv = Vec::new();
                self.leaves(s, &mut lv);
                for &x in &lv {
                    self.inblossom[x] = s;
                }
            }
        }
        // If we expand a T-blossom during a stage, relabel sub-blossoms.
        if !endstage && self.label_of(b) == T {
            let entrychild = self.inblossom[self.labeledge[&b].expect("T-blossom labeled").1];
            let childs = self.bdata(b).childs.clone();
            let edges = self.bdata(b).edges.clone();
            let len = childs.len() as i64;
            let at = |j: i64| -> usize { j.rem_euclid(len) as usize };
            let mut j = childs
                .iter()
                .position(|&c| c == entrychild)
                .expect("entrychild present") as i64;
            let jstep: i64 = if j & 1 == 1 {
                j -= len;
                1
            } else {
                -1
            };
            let (mut v, mut w) = self.labeledge[&b].expect("T-blossom labeled");
            while j != 0 {
                // Relabel the T-sub-blossom.
                let (p, q) = if jstep == 1 {
                    edges[at(j)]
                } else {
                    let (x, y) = edges[at(j - 1)];
                    (y, x)
                };
                self.label.remove(&w);
                self.label.remove(&q);
                self.assign_label(w, T, Some(v));
                // Step to the next S-sub-blossom; note its forward edge.
                self.allowedge.insert(key(p, q));
                j += jstep;
                let (x, y) = if jstep == 1 {
                    edges[at(j)]
                } else {
                    let (a2, b2) = edges[at(j - 1)];
                    (b2, a2)
                };
                v = x;
                w = y;
                // Step to the next T-sub-blossom.
                self.allowedge.insert(key(v, w));
                j += jstep;
            }
            // Relabel the base T-sub-blossom (no assign_label: don't step
            // through to its mate).
            let bw = childs[at(j)];
            self.label.insert(w, T);
            self.label.insert(bw, T);
            self.labeledge.insert(w, Some((v, w)));
            self.labeledge.insert(bw, Some((v, w)));
            self.bestedge.insert(bw, None);
            // Continue along the blossom until back at entrychild.
            j += jstep;
            while childs[at(j)] != entrychild {
                let bv = childs[at(j)];
                if self.label_of(bv) == S {
                    j += jstep;
                    continue;
                }
                let mut lv = Vec::new();
                self.leaves(bv, &mut lv);
                let reached = lv.iter().copied().find(|&x| self.label_of(x) != 0);
                if let Some(x) = reached {
                    debug_assert_eq!(self.label_of(x), T);
                    debug_assert_eq!(self.inblossom[x], bv);
                    self.label.remove(&x);
                    let base_mate = self.mate[self.blossombase[&bv]].expect("matched base");
                    self.label.remove(&base_mate);
                    let le = self.labeledge[&x].expect("reached vertex has edge");
                    self.assign_label(x, T, Some(le.0));
                }
                j += jstep;
            }
        }
        // Remove the expanded blossom.
        self.label.remove(&b);
        self.labeledge.remove(&b);
        self.bestedge.remove(&b);
        self.blossomparent.remove(&b);
        self.blossombase.remove(&b);
        self.blossomdual.remove(&b);
        self.bdata_mut(b).active = false;
        self.bdata_mut(b).childs.clear();
        self.bdata_mut(b).edges.clear();
        self.bdata_mut(b).mybestedges = None;
        self.free_blossoms.push(b);
    }

    /// Swaps matched/unmatched edges over an alternating path through
    /// blossom b between vertex v and the base vertex.
    fn augment_blossom(&mut self, b: Node, v: usize) {
        // Bubble up from v to an immediate sub-blossom of b.
        let mut t = v;
        while self.blossomparent[&t] != Some(b) {
            t = self.blossomparent[&t].expect("v inside b");
        }
        if self.is_blossom(t) {
            self.augment_blossom(t, v);
        }
        let childs = self.bdata(b).childs.clone();
        let edges = self.bdata(b).edges.clone();
        let len = childs.len() as i64;
        let at = |j: i64| -> usize { j.rem_euclid(len) as usize };
        let i = childs.iter().position(|&c| c == t).expect("child") as i64;
        let mut j = i;
        let jstep: i64 = if i & 1 == 1 {
            j -= len;
            1
        } else {
            -1
        };
        while j != 0 {
            // Step to the next sub-blossom and augment it recursively.
            j += jstep;
            let t1 = childs[at(j)];
            let (w, x) = if jstep == 1 {
                edges[at(j)]
            } else {
                let (a2, b2) = edges[at(j - 1)];
                (b2, a2)
            };
            if self.is_blossom(t1) {
                self.augment_blossom(t1, w);
            }
            // Step to the next sub-blossom and augment it recursively.
            j += jstep;
            let t2 = childs[at(j)];
            if self.is_blossom(t2) {
                self.augment_blossom(t2, x);
            }
            // Match the edge connecting those sub-blossoms.
            self.mate[w] = Some(x);
            self.mate[x] = Some(w);
        }
        // Rotate the sub-blossom list to put the new base at the front.
        let iu = i as usize;
        self.bdata_mut(b).childs.rotate_left(iu);
        self.bdata_mut(b).edges.rotate_left(iu);
        let new_base = self.blossombase[&self.bdata(b).childs[0]];
        self.blossombase.insert(b, new_base);
        debug_assert_eq!(self.blossombase[&b], v);
    }

    /// Swaps matched/unmatched edges over an alternating path between two
    /// single vertices, through S-vertices v and w.
    fn augment_matching(&mut self, v: usize, w: usize) {
        for (s0, j0) in [(v, w), (w, v)] {
            let mut s = s0;
            let mut j = j0;
            loop {
                let bs = self.inblossom[s];
                debug_assert_eq!(self.label_of(bs), S);
                debug_assert!(
                    (self.labeledge[&bs].is_none() && self.mate[self.blossombase[&bs]].is_none())
                        || self.labeledge[&bs].map(|le| le.0) == self.mate[self.blossombase[&bs]]
                );
                if self.is_blossom(bs) {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = Some(j);
                // Trace one step back.
                let Some(le) = self.labeledge[&bs] else {
                    break; // single vertex reached
                };
                let t = le.0;
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label_of(bt), T);
                let (next_s, next_j) = self.labeledge[&bt].expect("T labeled");
                debug_assert_eq!(self.blossombase[&bt], t);
                if self.is_blossom(bt) {
                    self.augment_blossom(bt, next_j);
                }
                self.mate[next_j] = Some(next_s);
                s = next_s;
                j = next_j;
            }
        }
    }

    fn active_blossoms(&self) -> Vec<Node> {
        (0..self.blossoms.len())
            .filter(|&i| self.blossoms[i].active)
            .map(|i| self.n + i)
            .collect()
    }

    fn run(mut self) -> Vec<Option<usize>> {
        loop {
            // New stage.
            self.label.clear();
            self.labeledge.clear();
            self.bestedge.clear();
            for bd in &mut self.blossoms {
                bd.mybestedges = None;
            }
            self.allowedge.clear();
            self.queue.clear();
            for v in 0..self.n {
                if self.mate[v].is_none() && self.label_of(self.inblossom[v]) == 0 {
                    self.assign_label(v, S, None);
                }
            }
            let mut augmented = false;
            loop {
                'queue_loop: while let Some(v) = self.queue.pop() {
                    debug_assert_eq!(self.label_of(self.inblossom[v]), S);
                    let nbs = self.neighbors[v].clone();
                    for w in nbs {
                        let bv = self.inblossom[v];
                        let bw = self.inblossom[w];
                        if bv == bw {
                            continue;
                        }
                        let mut kslack = 0;
                        if !self.allowedge.contains(&key(v, w)) {
                            kslack = self.slack(v, w);
                            if kslack <= 0 {
                                self.allowedge.insert(key(v, w));
                            }
                        }
                        if self.allowedge.contains(&key(v, w)) {
                            if self.label_of(bw) == 0 {
                                self.assign_label(w, T, Some(v));
                            } else if self.label_of(bw) == S {
                                match self.scan_blossom(v, w) {
                                    Some(base) => self.add_blossom(base, v, w),
                                    None => {
                                        self.augment_matching(v, w);
                                        augmented = true;
                                        break 'queue_loop;
                                    }
                                }
                            } else if self.label_of(w) == 0 {
                                debug_assert_eq!(self.label_of(bw), T);
                                self.label.insert(w, T);
                                self.labeledge.insert(w, Some((v, w)));
                            }
                        } else if self.label_of(bw) == S {
                            let better = match self.bestedge.get(&bv).copied().flatten() {
                                None => true,
                                Some((x, y)) => kslack < self.slack(x, y),
                            };
                            if better {
                                self.bestedge.insert(bv, Some((v, w)));
                            }
                        } else if self.label_of(w) == 0 {
                            let better = match self.bestedge.get(&w).copied().flatten() {
                                None => true,
                                Some((x, y)) => kslack < self.slack(x, y),
                            };
                            if better {
                                self.bestedge.insert(w, Some((v, w)));
                            }
                        }
                    }
                }
                if augmented {
                    break;
                }
                // Compute delta.
                let mut deltatype: i32 = -1;
                let mut delta: i64 = 0;
                let mut deltaedge: Option<(usize, usize)> = None;
                let mut deltablossom: Option<Node> = None;
                if !self.max_cardinality {
                    deltatype = 1;
                    delta = self.dualvar.iter().copied().min().unwrap_or(0);
                }
                for v in 0..self.n {
                    if self.label_of(self.inblossom[v]) == 0 {
                        if let Some((x, y)) = self.bestedge.get(&v).copied().flatten() {
                            let d = self.slack(x, y);
                            if deltatype == -1 || d < delta {
                                delta = d;
                                deltatype = 2;
                                deltaedge = Some((x, y));
                            }
                        }
                    }
                }
                let mut top_nodes: Vec<Node> = (0..self.n).collect();
                top_nodes.extend(self.active_blossoms());
                for &b in &top_nodes {
                    if self.blossomparent.get(&b) == Some(&None) && self.label_of(b) == S {
                        if let Some((x, y)) = self.bestedge.get(&b).copied().flatten() {
                            let kslack = self.slack(x, y);
                            debug_assert_eq!(kslack % 2, 0);
                            let d = kslack / 2;
                            if deltatype == -1 || d < delta {
                                delta = d;
                                deltatype = 3;
                                deltaedge = Some((x, y));
                            }
                        }
                    }
                }
                for b in self.active_blossoms() {
                    if self.blossomparent.get(&b) == Some(&None)
                        && self.label_of(b) == T
                        && (deltatype == -1 || self.blossomdual[&b] < delta)
                    {
                        delta = self.blossomdual[&b];
                        deltatype = 4;
                        deltablossom = Some(b);
                    }
                }
                if deltatype == -1 {
                    // Max-cardinality optimum reached.
                    debug_assert!(self.max_cardinality);
                    deltatype = 1;
                    delta = self.dualvar.iter().copied().min().unwrap_or(0).max(0);
                }
                // Update dual variables.
                for v in 0..self.n {
                    match self.label_of(self.inblossom[v]) {
                        x if x == S => self.dualvar[v] -= delta,
                        x if x == T => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in self.active_blossoms() {
                    if self.blossomparent.get(&b) == Some(&None) {
                        match self.label_of(b) {
                            x if x == S => *self.blossomdual.get_mut(&b).unwrap() += delta,
                            x if x == T => *self.blossomdual.get_mut(&b).unwrap() -= delta,
                            _ => {}
                        }
                    }
                }
                match deltatype {
                    1 => break,
                    2 => {
                        let (v, w) = deltaedge.unwrap();
                        debug_assert_eq!(self.label_of(self.inblossom[v]), S);
                        self.allowedge.insert(key(v, w));
                        self.queue.push(v);
                    }
                    3 => {
                        let (v, w) = deltaedge.unwrap();
                        self.allowedge.insert(key(v, w));
                        debug_assert_eq!(self.label_of(self.inblossom[v]), S);
                        self.queue.push(v);
                    }
                    4 => self.expand_blossom(deltablossom.unwrap(), false),
                    _ => unreachable!(),
                }
            }
            // Paranoia check.
            #[cfg(debug_assertions)]
            for v in 0..self.n {
                if let Some(u) = self.mate[v] {
                    debug_assert_eq!(self.mate[u], Some(v));
                }
            }
            if !augmented {
                break;
            }
            // End of stage: expand all S-blossoms with zero dual.
            for b in self.active_blossoms() {
                if self.blossoms[b - self.n].active
                    && self.blossomparent.get(&b) == Some(&None)
                    && self.label_of(b) == S
                    && self.blossomdual.get(&b) == Some(&0)
                {
                    self.expand_blossom(b, true);
                }
            }
        }
        self.mate
    }
}

fn key(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force over all matchings.
    fn brute_force(edges: &[(usize, usize, i64)], max_cardinality: bool) -> (usize, i64) {
        fn recur(
            edges: &[(usize, usize, i64)],
            idx: usize,
            used: &mut Vec<bool>,
            count: usize,
            weight: i64,
            all: &mut Vec<(usize, i64)>,
        ) {
            if idx == edges.len() {
                all.push((count, weight));
                return;
            }
            recur(edges, idx + 1, used, count, weight, all);
            let (u, v, w) = edges[idx];
            if !used[u] && !used[v] {
                used[u] = true;
                used[v] = true;
                recur(edges, idx + 1, used, count + 1, weight + w, all);
                used[u] = false;
                used[v] = false;
            }
        }
        let n = edges.iter().map(|e| e.0.max(e.1) + 1).max().unwrap_or(0);
        let mut used = vec![false; n];
        let mut all = Vec::new();
        recur(edges, 0, &mut used, 0, 0, &mut all);
        if max_cardinality {
            let max_count = all.iter().map(|a| a.0).max().unwrap();
            let w = all
                .iter()
                .filter(|a| a.0 == max_count)
                .map(|a| a.1)
                .max()
                .unwrap();
            (max_count, w)
        } else {
            let w = all.iter().map(|a| a.1).max().unwrap();
            (0, w)
        }
    }

    fn matching_weight(edges: &[(usize, usize, i64)], mate: &[Option<usize>]) -> (usize, i64) {
        let mut count = 0;
        let mut weight = 0;
        for &(u, v, w) in edges {
            if mate[u] == Some(v) {
                assert_eq!(mate[v], Some(u));
                count += 1;
                weight += w;
            }
        }
        (count, weight)
    }

    fn check_valid(edges: &[(usize, usize, i64)], mate: &[Option<usize>]) {
        for (v, m) in mate.iter().enumerate() {
            if let Some(u) = m {
                assert_eq!(mate[*u], Some(v), "matching must be symmetric");
                assert!(
                    edges
                        .iter()
                        .any(|&(a, b, _)| (a, b) == (v, *u) || (a, b) == (*u, v)),
                    "matched pair must be an edge"
                );
            }
        }
    }

    #[test]
    fn trivial_cases() {
        assert_eq!(max_weight_matching(&[], false), Vec::<Option<usize>>::new());
        let mate = max_weight_matching(&[(0, 1, 5)], false);
        assert_eq!(mate, vec![Some(1), Some(0)]);
    }

    #[test]
    fn prefers_heavier_edge() {
        let edges = [(0, 1, 6), (1, 2, 10)];
        let mate = max_weight_matching(&edges, false);
        assert_eq!(mate, vec![None, Some(2), Some(1)]);
    }

    #[test]
    fn max_cardinality_changes_choice() {
        let edges = [(0, 1, 2), (1, 2, 5), (2, 3, 2)];
        let mate = max_weight_matching(&edges, false);
        assert_eq!(mate, vec![None, Some(2), Some(1), None]);
        let mate = max_weight_matching(&edges, true);
        assert_eq!(mate, vec![Some(1), Some(0), Some(3), Some(2)]);
    }

    #[test]
    fn creates_blossom_and_uses_it() {
        // van Rantwijk test suite: create an S-blossom and use it for
        // augmentation.
        let edges = [(0, 1, 8), (0, 2, 9), (1, 2, 10), (2, 3, 7)];
        let mate = max_weight_matching(&edges, false);
        assert_eq!(mate, vec![Some(1), Some(0), Some(3), Some(2)]);
        let edges2 = [
            (0, 1, 8),
            (0, 2, 9),
            (1, 2, 10),
            (2, 3, 7),
            (0, 5, 5),
            (3, 4, 6),
        ];
        let mate = max_weight_matching(&edges2, false);
        assert_eq!(
            mate,
            vec![Some(5), Some(2), Some(1), Some(4), Some(3), Some(0)]
        );
    }

    #[test]
    fn t_blossom_relabeling() {
        // Create an S-blossom, relabel as T-blossom, use for augmentation.
        let edges = [
            (0, 1, 9),
            (0, 2, 8),
            (1, 2, 10),
            (0, 3, 5),
            (3, 4, 4),
            (0, 4, 3),
        ];
        let mate = max_weight_matching(&edges, false);
        check_valid(&edges, &mate);
        let (_, w) = matching_weight(&edges, &mate);
        assert_eq!(w, brute_force(&edges, false).1);
    }

    #[test]
    fn nested_s_blossom() {
        let edges = [
            (0, 1, 9),
            (0, 2, 9),
            (1, 2, 10),
            (1, 3, 8),
            (2, 4, 8),
            (3, 4, 10),
            (4, 5, 6),
        ];
        let mate = max_weight_matching(&edges, false);
        assert_eq!(
            mate,
            vec![Some(2), Some(3), Some(0), Some(1), Some(5), Some(4)]
        );
    }

    #[test]
    fn nested_s_blossom_expand() {
        let edges = [
            (0, 1, 8),
            (0, 2, 8),
            (1, 2, 10),
            (1, 3, 12),
            (2, 4, 12),
            (3, 4, 14),
            (3, 5, 12),
            (4, 6, 12),
            (5, 6, 14),
            (6, 7, 12),
        ];
        let mate = max_weight_matching(&edges, false);
        check_valid(&edges, &mate);
        let (_, w) = matching_weight(&edges, &mate);
        assert_eq!(w, brute_force(&edges, false).1);
    }

    #[test]
    fn s_blossom_relabel_expand() {
        let edges = [
            (0, 1, 23),
            (0, 4, 22),
            (0, 5, 15),
            (1, 2, 25),
            (2, 3, 22),
            (3, 4, 25),
            (3, 7, 14),
            (4, 6, 13),
        ];
        let mate = max_weight_matching(&edges, false);
        check_valid(&edges, &mate);
        let (_, w) = matching_weight(&edges, &mate);
        assert_eq!(w, brute_force(&edges, false).1);
    }

    #[test]
    fn nasty_blossom_cases() {
        // van Rantwijk "nasty" cases exercising blossom expansion paths.
        let cases: Vec<Vec<(usize, usize, i64)>> = vec![
            vec![
                (0, 1, 45),
                (0, 4, 45),
                (1, 2, 50),
                (2, 3, 45),
                (3, 4, 50),
                (0, 5, 30),
                (2, 8, 35),
                (3, 7, 35),
                (4, 6, 26),
            ],
            vec![
                (0, 1, 45),
                (0, 4, 45),
                (1, 2, 50),
                (2, 3, 45),
                (3, 4, 50),
                (0, 5, 30),
                (2, 8, 35),
                (3, 7, 26),
                (4, 6, 40),
            ],
            vec![
                (0, 1, 45),
                (0, 4, 45),
                (1, 2, 50),
                (2, 3, 45),
                (3, 4, 50),
                (0, 5, 30),
                (2, 8, 35),
                (3, 7, 28),
                (4, 6, 26),
            ],
        ];
        for (ci, edges) in cases.iter().enumerate() {
            let mate = max_weight_matching(edges, false);
            check_valid(edges, &mate);
            let (_, w) = matching_weight(edges, &mate);
            assert_eq!(w, brute_force(edges, false).1, "case {ci}");
        }
    }

    #[test]
    fn random_graphs_match_brute_force() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(1234);
        for trial in 0..400 {
            let n = rng.random_range(2..9usize);
            let mut edges: Vec<(usize, usize, i64)> = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.random::<f64>() < 0.55 {
                        edges.push((u, v, rng.random_range(1..40)));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            for &mc in &[false, true] {
                let mate = max_weight_matching(&edges, mc);
                check_valid(&edges, &mate);
                let (count, weight) = matching_weight(&edges, &mate);
                let (bc, bw) = brute_force(&edges, mc);
                if mc {
                    assert_eq!(count, bc, "trial {trial} cardinality, edges {edges:?}");
                }
                assert_eq!(
                    weight, bw,
                    "trial {trial} weight (mc={mc}), edges {edges:?}"
                );
            }
        }
    }

    #[test]
    fn min_weight_perfect_on_complete_graphs() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(77);
        for _ in 0..150 {
            let n = 2 * rng.random_range(1..5usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    edges.push((u, v, rng.random_range(1..100i64)));
                }
            }
            let mate = min_weight_perfect_matching(&edges).expect("complete graph");
            assert_eq!(mate.len(), n);
            for (v, &u) in mate.iter().enumerate() {
                assert_eq!(mate[u], v);
            }
            let total: i64 = edges
                .iter()
                .filter(|&&(u, v, _)| mate[u] == v)
                .map(|e| e.2)
                .sum();
            // Brute-force the minimum-weight perfect matching.
            fn recur(
                edges: &[(usize, usize, i64)],
                idx: usize,
                used: &mut Vec<bool>,
                count: usize,
                weight: i64,
                n: usize,
                best: &mut Option<i64>,
            ) {
                if idx == edges.len() {
                    if count == n / 2 {
                        *best = Some(best.map_or(weight, |b: i64| b.min(weight)));
                    }
                    return;
                }
                recur(edges, idx + 1, used, count, weight, n, best);
                let (u, v, w) = edges[idx];
                if !used[u] && !used[v] {
                    used[u] = true;
                    used[v] = true;
                    recur(edges, idx + 1, used, count + 1, weight + w, n, best);
                    used[u] = false;
                    used[v] = false;
                }
            }
            let mut used = vec![false; n];
            let mut best = None;
            recur(&edges, 0, &mut used, 0, 0, n, &mut best);
            assert_eq!(total, best.unwrap());
        }
    }

    #[test]
    fn perfect_matching_impossible() {
        let edges = [(0, 1, 1), (1, 2, 1), (0, 2, 1)];
        assert!(min_weight_perfect_matching(&edges).is_none());
    }
}
