//! Virtual and physical addresses for virtualized logical qubits.
//!
//! The paper's addressing scheme: a *stack* is a 2D patch of transmons
//! (plus their attached cavities); each cavity has `k` resonant modes.
//! A logical qubit's **virtual address** is the pair `(stack, mode)`: the
//! same mode index `z` across all cavities of the stack. Its **physical
//! address** is the stack itself — the transmon patch it is loaded into
//! for syndrome extraction or logical operations.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Coordinates of a stack (transmon patch) on the 2D grid of patches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StackCoord {
    /// Patch column.
    pub x: u32,
    /// Patch row.
    pub y: u32,
}

impl StackCoord {
    /// Creates a stack coordinate.
    pub fn new(x: u32, y: u32) -> Self {
        StackCoord { x, y }
    }

    /// Manhattan distance between two stacks (the move-cost metric: a
    /// lattice-surgery move costs one timestep regardless of distance, but
    /// path length determines which patches are occupied in transit).
    pub fn manhattan_distance(self, other: StackCoord) -> u32 {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for StackCoord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A cavity-mode index within a stack (`0..k`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModeIndex(pub u8);

impl fmt::Display for ModeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mode {}", self.0)
    }
}

/// Virtual address of a logical qubit: which stack, which mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VirtAddr {
    /// Stack holding the qubit.
    pub stack: StackCoord,
    /// Cavity mode within the stack.
    pub mode: ModeIndex,
}

impl VirtAddr {
    /// Creates a virtual address.
    pub fn new(stack: StackCoord, mode: ModeIndex) -> Self {
        VirtAddr { stack, mode }
    }

    /// Returns `true` if two addresses share a stack (and can therefore
    /// interact via the fast transversal CNOT without moving).
    pub fn same_stack(self, other: VirtAddr) -> bool {
        self.stack == other.stack
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.stack, self.mode)
    }
}

/// Physical address: the transmon patch a logical qubit is loaded into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PhysAddr(pub StackCoord);

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "patch {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = StackCoord::new(0, 0);
        let b = StackCoord::new(3, 4);
        assert_eq!(a.manhattan_distance(b), 7);
        assert_eq!(b.manhattan_distance(a), 7);
        assert_eq!(a.manhattan_distance(a), 0);
    }

    #[test]
    fn same_stack_detection() {
        let s = StackCoord::new(1, 2);
        let a = VirtAddr::new(s, ModeIndex(0));
        let b = VirtAddr::new(s, ModeIndex(7));
        let c = VirtAddr::new(StackCoord::new(1, 3), ModeIndex(0));
        assert!(a.same_stack(b));
        assert!(!a.same_stack(c));
    }

    #[test]
    fn ordering_and_display() {
        let a = VirtAddr::new(StackCoord::new(0, 0), ModeIndex(1));
        let b = VirtAddr::new(StackCoord::new(0, 1), ModeIndex(0));
        assert!(a < b);
        assert_eq!(a.to_string(), "(0, 0):mode 1");
        assert_eq!(PhysAddr(StackCoord::new(2, 2)).to_string(), "patch (2, 2)");
    }
}
