//! # vlq-sweep — experiment-orchestration engine
//!
//! The paper's headline results (Figures 11–13, Tables 1–2) are all
//! parameter sweeps: code distance × physical error rate × decoder ×
//! setup. This crate turns such a scan into a declarative [`SweepSpec`],
//! expands it into shot-chunk tasks, and executes them on a
//! work-stealing worker pool so parallelism spans *configs × shots*
//! rather than shots within one config.
//!
//! Three guarantees make sweeps reproducible and diffable:
//!
//! 1. **Deterministic seeding** — every chunk's seed derives from the
//!    base seed and the point's grid coordinates
//!    ([`SweepPoint::chunk_seed`]), never from scheduling, so any
//!    worker count or steal order produces identical results.
//! 2. **In-order emission** — completed [`SweepRecord`]s stream to
//!    pluggable [`RecordSink`]s ([`CsvSink`], [`JsonlSink`],
//!    [`MemorySink`]) in expansion order, so file artifacts are
//!    byte-identical across runs.
//! 3. **Machine-readable artifacts** — the [`artifact`] module's CSV /
//!    JSON-lines writers give every figure binary a `--out` format
//!    future PRs can regression-diff.
//!
//! Deterministic seeding also makes sweeps **shardable across
//! machines**: a [`ShardSpec`] `i/N` runs only the grid points with
//! `global_index % N == i` (same global numbering, same per-chunk
//! seeds), and the [`merge`] module interleaves N shard artifacts back
//! into files byte-identical to an unsharded run's.
//!
//! The engine is domain-generic over a [`SweepExecutor`]; `vlq-qec`
//! implements the executor for Monte-Carlo memory experiments and
//! rebuilds its threshold and sensitivity scans on top.
//!
//! # Examples
//!
//! ```
//! use vlq_sweep::{MemorySink, SweepEngine, SweepExecutor, SweepPoint, SweepSpec};
//!
//! // A toy executor: "failures" are a hash of the coordinates + seed.
//! struct Toy;
//! impl SweepExecutor for Toy {
//!     type Prepared = ();
//!     fn prepare(&self, _point: &SweepPoint) {}
//!     fn run_chunk(&self, _prep: &(), _pt: &SweepPoint, shots: u64, seed: u64) -> u64 {
//!         seed % (shots + 1)
//!     }
//! }
//!
//! let spec = SweepSpec::new()
//!     .distances([3, 5])
//!     .error_rates([1e-3, 2e-3])
//!     .shots(2000);
//! let mut sink = MemorySink::new();
//! let records = SweepEngine::with_workers(4)
//!     .run(&spec, &Toy, &mut [&mut sink])
//!     .unwrap();
//! assert_eq!(records.len(), 4);
//! assert_eq!(sink.records(), &records[..]);
//! ```

pub mod artifact;
pub mod engine;
pub mod merge;
pub mod plan;
pub mod resume;
pub mod shard;
pub mod sink;
pub mod spec;

pub use engine::{RunOptions, SweepEngine, SweepExecutor};
pub use merge::{
    merge_artifacts, merge_artifacts_with_plan, salvage_jsonl, verify_artifact, ArtifactError,
    MergeError, MergeReport, SweepMeta, VerifyExpectations, VerifyReport,
};
pub use plan::{
    load_times, parse_times, PlanError, ShardPlan, TimesEntry, TimesFile, PLAN_SCHEMA, TIMES_SCHEMA,
};
pub use resume::{ResumeCache, ResumeKey};
pub use shard::{ShardError, ShardSpec};
pub use sink::{
    CsvSink, JsonlSink, MemorySink, RecordSink, SweepRecord, TimesSink, RECORD_COLUMNS,
};
pub use spec::{
    combine_fingerprints, points_fingerprint, splitmix64, KnobSetting, SweepAxis, SweepPoint,
    SweepSpec,
};
