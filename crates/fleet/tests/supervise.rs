//! Supervisor loop tests against scripted `/bin/sh` children: a clean
//! fleet merges byte-identically, a crashing child is salvaged and
//! restarted, and an unrecoverable child exhausts its budget. The real
//! sweep binaries are exercised end-to-end by
//! `crates/bench/tests/fleet_fault.rs`; these tests pin the supervision
//! mechanics themselves without Monte-Carlo cost.

use std::path::{Path, PathBuf};
use std::time::Duration;

use vlq_decoder::DecoderKind;
use vlq_fleet::{supervise, FleetConfig, FleetError, FleetSpec};
use vlq_surface::schedule::{Basis, Setup};
use vlq_sweep::{
    combine_fingerprints, CsvSink, JsonlSink, RecordSink, ShardSpec, SweepMeta, SweepPoint,
    SweepRecord,
};
use vlq_telemetry::Recorder;

const SEED: u64 = 7;
const POINTS: usize = 6;

fn record(index: usize) -> SweepRecord {
    SweepRecord {
        index,
        point: SweepPoint {
            setup: Setup::CompactInterleaved,
            basis: Basis::Z,
            d: 3,
            p: 2e-3,
            k: 10,
            rounds: None,
            decoder: DecoderKind::Mwpm,
            shots: 500,
            knob: None,
            program: None,
        },
        base_seed: SEED,
        shots: 500,
        failures: (index as u64 * 7) % 41,
    }
}

fn write_artifact(dir: &Path, records: &[SweepRecord], shard: ShardSpec) {
    std::fs::create_dir_all(dir).unwrap();
    let mut csv = CsvSink::new(Vec::new()).unwrap();
    let mut jsonl = JsonlSink::new(Vec::new());
    for r in records {
        csv.write(r).unwrap();
        jsonl.write(r).unwrap();
    }
    std::fs::write(dir.join("unit.csv"), csv.into_inner()).unwrap();
    std::fs::write(dir.join("unit.jsonl"), jsonl.into_inner()).unwrap();
    SweepMeta {
        seed: SEED,
        spec_fingerprint: combine_fingerprints(0, 0xabcd),
        points: POINTS as u64,
        shard,
        plan: None,
    }
    .write(dir, "unit")
    .unwrap();
}

/// A scratch area holding the reference full artifact plus per-shard
/// stash artifacts the scripted children "produce" by copying.
fn scaffold(name: &str, procs: usize) -> (PathBuf, PathBuf, PathBuf) {
    let base = std::env::temp_dir().join(format!("vlq-fleet-{name}"));
    let _ = std::fs::remove_dir_all(&base);
    let (stash, reference, out) = (base.join("stash"), base.join("ref"), base.join("out"));
    let all: Vec<SweepRecord> = (0..POINTS).map(record).collect();
    write_artifact(&reference, &all, ShardSpec::FULL);
    for i in 0..procs {
        let shard = ShardSpec::new(i, procs).unwrap();
        let mine: Vec<SweepRecord> = all
            .iter()
            .filter(|r| shard.owns(r.index))
            .cloned()
            .collect();
        write_artifact(&stash.join(format!("shard{i}")), &mine, shard);
    }
    (stash, reference, out)
}

/// A fake shard child: parses the supervisor-appended `--out`/`--shard`
/// and copies its stash artifact into place, with an optional
/// crash-once preamble.
fn script(stash: &Path, preamble: &str) -> String {
    r#"
out=""; shard=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    --out) out="$2"; shift 2 ;;
    --shard) shard="$2"; shift 2 ;;
    *) shift ;;
  esac
done
i="${shard%%/*}"
PREAMBLE
cp STASH/shard"$i"/* "$out"/
"#
    .replace("PREAMBLE", preamble)
    .replace("STASH", stash.to_str().unwrap())
}

fn spec_for(out: &Path, procs: usize, script: String) -> FleetSpec {
    FleetSpec {
        bin: PathBuf::from("/bin/sh"),
        bin_name: "unit".to_string(),
        stem: "unit".to_string(),
        out: out.to_path_buf(),
        procs,
        passthrough: vec!["-c".to_string(), script, "fleetsh".to_string()],
        plan: None,
        shard_by: "stride".to_string(),
        telemetry: false,
        extra_stems: Vec::new(),
    }
}

fn fast_config() -> FleetConfig {
    FleetConfig {
        poll: Duration::from_millis(5),
        stall: Duration::from_secs(60),
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(10),
        quiet: true,
        ..FleetConfig::default()
    }
}

fn assert_merged_matches(out: &Path, reference: &Path) {
    for name in ["unit.csv", "unit.jsonl", "unit.meta.json"] {
        assert_eq!(
            std::fs::read(out.join(name)).unwrap(),
            std::fs::read(reference.join(name)).unwrap(),
            "{name} diverges from the single-process reference"
        );
    }
}

#[test]
fn clean_fleet_merges_byte_identically() {
    let (stash, reference, out) = scaffold("clean", 2);
    let spec = spec_for(&out, 2, script(&stash, ""));
    let recorder = Recorder::attached();
    let report = supervise(&spec, &fast_config(), &recorder).unwrap();
    assert_eq!(report.procs, 2);
    assert_eq!(report.restarts, 0);
    assert_eq!(report.rows, POINTS);
    assert_merged_matches(&out, &reference);
    let sidecar = std::fs::read_to_string(out.join("unit.fleet.json")).unwrap();
    assert!(sidecar.contains("\"schema\": \"vlq-fleet/v1\""));
    assert!(sidecar.contains("\"procs\": 2"));
    assert_eq!(
        recorder.value(vlq_telemetry::Metric::FleetProcs),
        2,
        "fleet.procs gauge records the fan-out"
    );
}

#[test]
fn crashed_shard_is_salvaged_and_restarted() {
    let (stash, reference, out) = scaffold("crash", 3);
    let mark = out.join("crashed-once");
    // First run of shard 1: leave a torn artifact (one valid row plus a
    // half-written line, exactly what a mid-write kill leaves behind)
    // and die. The restart must salvage and then complete.
    let preamble = r#"
if [ "$i" = "1" ] && [ ! -e MARK ]; then
  : > MARK
  head -n 1 STASH/shard1/unit.jsonl > "$out"/unit.jsonl
  printf '{"index": 999, "torn' >> "$out"/unit.jsonl
  exit 3
fi
"#
    .replace("MARK", mark.to_str().unwrap())
    .replace("STASH", stash.to_str().unwrap());
    let spec = spec_for(&out, 3, script(&stash, &preamble));
    std::fs::create_dir_all(&out).unwrap();
    let report = supervise(&spec, &fast_config(), &Recorder::attached()).unwrap();
    assert_eq!(report.restarts, 1, "exactly one restart for the one crash");
    assert_eq!(report.stalls, 0);
    assert_merged_matches(&out, &reference);
}

#[test]
fn unrecoverable_shard_exhausts_the_budget() {
    let (stash, _reference, out) = scaffold("budget", 2);
    let spec = spec_for(
        &out,
        2,
        script(&stash, "\nif [ \"$i\" = \"0\" ]; then exit 9; fi\n"),
    );
    let config = FleetConfig {
        max_restarts: 2,
        ..fast_config()
    };
    match supervise(&spec, &config, &Recorder::attached()) {
        Err(FleetError::ShardFailed {
            shard, restarts, ..
        }) => {
            assert_eq!(shard, 0);
            assert_eq!(restarts, 2);
        }
        other => panic!("expected ShardFailed, got {other:?}"),
    }
}
