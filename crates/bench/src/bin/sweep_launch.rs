//! `sweep-launch`: the self-driving fleet controller for the figure
//! binaries. Takes any single-machine sweep invocation (everything
//! after the bare `--` is forwarded to the child verbatim), fans it out
//! over `--procs` local shard processes, watches their line-buffered
//! artifacts for liveness, restarts dead or stalled shards from their
//! salvaged `--resume` caches, and recombines the shard artifacts so
//! the final CSV/JSONL/`.meta.json` under `--out` are byte-identical to
//! a single-process run — including after a mid-run crash.
//!
//! `--shard-by time` replaces the default `index % N` stride with a
//! cost-balanced plan: a cheap single-process probe pass (or a prior
//! run's `--times` file via `--calibrate`) measures per-point cost, an
//! LPT greedy assignment packs the points into `N` shards, and the
//! fingerprinted plan file is both fed to every child (`--plan`) and
//! validated at merge time. Plans are deterministic functions of the
//! measured costs; the resulting *artifacts* are byte-identical under
//! any plan.
//!
//! `--emit-cmds` prints the exact child command lines instead of
//! running them — for spreading shards across machines by hand and
//! recombining with `sweep-merge`.

use std::path::PathBuf;
use std::time::Duration;

use vlq_bench::{count_from_args, usage_exit, Args};
use vlq_fleet::{render_commands, sibling_binary, supervise, ChaosKill, FleetConfig, FleetSpec};
use vlq_sweep::{load_times, ShardPlan};
use vlq_telemetry::Recorder;

const USAGE: &str = "\
usage: sweep-launch --bin fig11|fig12|prog1|tenants1 --out DIR
                    [--procs N|auto] [--shard-by stride|time]
                    [--probe-trials K | --calibrate PATH] [--emit-cmds]
                    [--poll-ms MS] [--stall-sec S] [--max-restarts R]
                    [--backoff-ms MS] [--chaos-kill I@LINES]
                    [--telemetry] [--quiet] [-- CHILD_FLAGS...]
  --bin           which figure binary to fleet (resolved as a sibling of
                  this executable)
  --out           fleet directory: shard i runs in DIR/shard<i>, merged
                  artifacts byte-identical to a single-process run land
                  in DIR itself (plus a <stem>.fleet.json provenance
                  sidecar)
  --procs         shard processes (default 2; `auto` uses
                  available_parallelism)
  --shard-by      stride (default): grid index % N ownership;
                  time: cost-balanced plan from measured per-point wall
                  times, written to DIR/<stem>.plan.json and validated
                  at merge
  --probe-trials  trials/point for the calibration probe pass that
                  --shard-by time runs when no --calibrate file is given
                  (default 32; appended after CHILD_FLAGS, so it
                  overrides the child's --trials for the probe only)
  --calibrate     reuse an existing vlq-sweep-times-v1 file (from a
                  prior run's --times) instead of probing
  --emit-cmds     print the child command lines instead of running them
                  (recombine by hand with sweep-merge)
  --poll-ms       artifact poll interval (default 50)
  --stall-sec     restart a live shard whose artifact stops growing for
                  this long (default 300)
  --max-restarts  restart budget per shard before giving up (default 3)
  --backoff-ms    first-restart backoff, doubling per restart of the
                  same shard, capped at 10s (default 200)
  --chaos-kill    fault injection: kill shard I once its JSONL reaches
                  LINES lines (exercises crash recovery; the merged
                  artifacts must still be byte-identical)
  --telemetry     collect per-shard deterministic telemetry sidecars and
                  merge them to DIR/<stem>.telemetry.jsonl (byte-equal
                  to a single-process sidecar on clean runs; a killed
                  shard's unflushed metrics are lost)
  --quiet         suppress supervisor stderr notes and the runtime
                  summary
  Everything after a bare `--` is forwarded to every child verbatim
  (seeds, rates, trials, threads...). The supervisor appends its own
  --out/--shard/--resume/--quiet after it, which therefore win.";

/// The artifact stem a child writes: fixed per binary, except prog1's
/// boundary-tagged stems (`prog1-<boundary>` off the default model).
fn stem_for(bin: &str, passthrough: &[String]) -> String {
    if bin != "prog1" {
        return bin.to_string();
    }
    match passthrough_value(passthrough, "boundary") {
        Some(b) if b != "mid-circuit" => format!("prog1-{b}"),
        _ => "prog1".to_string(),
    }
}

/// Last value of `--<key>` in the forwarded child flags (the parser's
/// later-wins rule, applied to the tail we do not otherwise parse).
fn passthrough_value<'a>(passthrough: &'a [String], key: &str) -> Option<&'a str> {
    let flag = format!("--{key}");
    let mut found = None;
    let mut i = 0;
    while i < passthrough.len() {
        if passthrough[i] == flag && i + 1 < passthrough.len() {
            found = Some(passthrough[i + 1].as_str());
            i += 2;
        } else {
            i += 1;
        }
    }
    found
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn main() {
    let (args, passthrough) = Args::parse_validated_passthrough(
        USAGE,
        &[
            "bin",
            "out",
            "procs",
            "shard-by",
            "probe-trials",
            "calibrate",
            "poll-ms",
            "stall-sec",
            "max-restarts",
            "backoff-ms",
            "chaos-kill",
        ],
        &["emit-cmds", "telemetry", "quiet"],
    );
    let Some(bin_name) = args.pairs_get("bin") else {
        usage_exit(USAGE, "--bin is required");
    };
    if !["fig11", "fig12", "prog1", "tenants1"].contains(&bin_name.as_str()) {
        usage_exit(
            USAGE,
            &format!("unknown --bin {bin_name:?}; accepted: fig11|fig12|prog1|tenants1"),
        );
    }
    let Some(out) = args.pairs_get("out") else {
        usage_exit(USAGE, "--out is required");
    };
    let out = PathBuf::from(out);
    let procs = count_from_args(&args, USAGE, "procs").unwrap_or(2);
    let quiet = args.has("quiet");

    let shard_by = args.get_str("shard-by", "stride");
    if !["stride", "time"].contains(&shard_by.as_str()) {
        usage_exit(
            USAGE,
            &format!("unknown --shard-by {shard_by:?}; accepted: stride|time"),
        );
    }
    if shard_by == "stride" {
        for time_only in ["probe-trials", "calibrate"] {
            if args.pairs_get(time_only).is_some() {
                usage_exit(USAGE, &format!("--{time_only} requires --shard-by time"));
            }
        }
    }
    if args.pairs_get("probe-trials").is_some() && args.pairs_get("calibrate").is_some() {
        usage_exit(
            USAGE,
            "--probe-trials and --calibrate are mutually exclusive",
        );
    }

    let bin = sibling_binary(&bin_name).unwrap_or_else(|e| fail(&format!("--bin {bin_name}: {e}")));
    let stem = stem_for(&bin_name, &passthrough);
    std::fs::create_dir_all(&out).unwrap_or_else(|e| fail(&format!("{}: {e}", out.display())));

    let plan = (shard_by == "time").then(|| {
        let times_path = match args.pairs_get("calibrate") {
            Some(path) => PathBuf::from(path),
            None => probe(&args, &bin, &stem, &out, &passthrough, quiet),
        };
        let times = load_times(&times_path)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", times_path.display())));
        // The probe covers every grid point exactly once, so the entry
        // count *is* the grid length (and `costs` validates the cover).
        let costs = times
            .costs(times.entries.len())
            .unwrap_or_else(|e| fail(&format!("{}: {e}", times_path.display())));
        let plan = ShardPlan::from_costs(procs, &costs);
        let plan_path = out.join(format!("{stem}.plan.json"));
        plan.save(&plan_path)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", plan_path.display())));
        if !quiet {
            let fp = plan.fingerprint().expect("cost plans are explicit");
            eprintln!(
                "note: fleet: time-balanced plan over {} points ({} shards, fingerprint {fp:016x})",
                costs.len(),
                procs
            );
        }
        (plan_path, plan)
    });

    let spec = FleetSpec {
        bin,
        bin_name: bin_name.clone(),
        stem: stem.clone(),
        out,
        procs,
        passthrough,
        plan,
        shard_by,
        telemetry: args.has("telemetry"),
        extra_stems: if bin_name == "tenants1" {
            vec!["tenants1-report".to_string()]
        } else {
            Vec::new()
        },
    };

    if args.has("emit-cmds") {
        for cmd in render_commands(&spec) {
            println!("{cmd}");
        }
        return;
    }

    let config = FleetConfig {
        poll: Duration::from_millis(args.get_or_usage(USAGE, "poll-ms", 50u64)),
        stall: Duration::from_secs(args.get_or_usage(USAGE, "stall-sec", 300u64)),
        max_restarts: args.get_or_usage(USAGE, "max-restarts", 3u32),
        backoff_base: Duration::from_millis(args.get_or_usage(USAGE, "backoff-ms", 200u64)),
        backoff_cap: Duration::from_secs(10),
        chaos_kill: args.pairs_get("chaos-kill").map(|s| {
            ChaosKill::parse(&s)
                .unwrap_or_else(|| usage_exit(USAGE, &format!("invalid --chaos-kill {s:?}")))
        }),
        quiet,
    };

    let recorder = Recorder::attached();
    let report = supervise(&spec, &config, &recorder).unwrap_or_else(|e| fail(&e.to_string()));
    if !quiet {
        eprint!("{}", recorder.summary());
    }
    println!(
        "fleet: merged {} shard(s) of {stem} into {}: {} rows, {} restart(s), {} stall(s){}",
        report.procs,
        spec.out.display(),
        report.rows,
        report.restarts,
        report.stalls,
        report
            .plan
            .map_or(String::new(), |fp| format!(", plan {fp:016x}"))
    );
}

/// The calibration probe for `--shard-by time`: one single-process,
/// unsharded child run with `--times` and a small `--trials` override
/// appended after the user's flags (later wins — for the probe only).
/// No `--out`, so the probe writes no artifacts, just the times file.
fn probe(
    args: &Args,
    bin: &std::path::Path,
    stem: &str,
    out: &std::path::Path,
    passthrough: &[String],
    quiet: bool,
) -> PathBuf {
    let trials: u64 = args.get_or_usage(USAGE, "probe-trials", 32u64);
    if trials == 0 {
        usage_exit(USAGE, "--probe-trials must be >= 1");
    }
    let times_path = out.join(format!("{stem}.times.jsonl"));
    if !quiet {
        eprintln!("note: fleet: probing per-point costs at {trials} trials/point");
    }
    let status = std::process::Command::new(bin)
        .args(passthrough)
        .args([
            "--quiet".to_string(),
            "--times".to_string(),
            times_path.display().to_string(),
            "--trials".to_string(),
            trials.to_string(),
        ])
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| fail(&format!("probe spawn {}: {e}", bin.display())));
    if !status.success() {
        fail(&format!("probe run failed ({status})"));
    }
    times_path
}
