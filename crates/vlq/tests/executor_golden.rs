//! Golden pins: `CostExecutor` replay of machine-emitted schedules must
//! reproduce the pre-refactor eager path's `MachineReport` exactly.
//!
//! The expected numbers were captured from the eager implementation
//! (commit `8b0382a`, before the scheduling/execution split) by running
//! these exact programs and recording every report field. Any drift in
//! scheduling order, replayed refresh bookkeeping, or the legacy
//! timeline rendering shows up here.

use vlq::exec::{CostExecutor, Executor};
use vlq::machine::{MachineConfig, MachineReport, RefreshPolicy, VlqMachine};
use vlq::program::{run_program, LogicalCircuit, ProgOp};

struct Golden {
    total_timesteps: u64,
    transversal_cnots: u64,
    surgery_cnots: u64,
    moves: u64,
    refresh_passes: u64,
    max_staleness: u64,
    timeline_len: usize,
}

fn check(name: &str, machine: VlqMachine, golden: Golden) {
    // The compatibility wrapper and the explicit executor must agree.
    let schedule = machine.into_schedule();
    schedule
        .validate()
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    let report = CostExecutor.run(&schedule).expect("valid schedule");
    assert_report(name, &report, &golden);
    assert_eq!(report.deadline_misses, 0, "{name}: spurious deadline miss");
}

fn assert_report(name: &str, r: &MachineReport, g: &Golden) {
    assert_eq!(r.total_timesteps, g.total_timesteps, "{name}: total");
    assert_eq!(r.transversal_cnots, g.transversal_cnots, "{name}: tcnot");
    assert_eq!(r.surgery_cnots, g.surgery_cnots, "{name}: scnot");
    assert_eq!(r.moves, g.moves, "{name}: moves");
    assert_eq!(r.refresh_passes, g.refresh_passes, "{name}: refresh");
    assert_eq!(r.max_staleness, g.max_staleness, "{name}: staleness");
    assert_eq!(r.timeline.len(), g.timeline_len, "{name}: timeline");
}

#[test]
fn ghz6_on_compact_demo() {
    let mut m = VlqMachine::new(MachineConfig::compact_demo());
    run_program(&mut m, &LogicalCircuit::ghz(6)).unwrap();
    check(
        "ghz6-demo",
        m,
        Golden {
            total_timesteps: 16,
            transversal_cnots: 5,
            surgery_cnots: 0,
            moves: 10,
            refresh_passes: 60,
            max_staleness: 2,
            timeline_len: 76,
        },
    );
}

#[test]
fn paging_scheduler_program() {
    // The exact program of examples/paging_scheduler.rs, T gate included
    // (the ConsumeMagic macro-instruction must render the same legacy
    // timeline as the eager path's two-step teleportation).
    let mut cfg = MachineConfig::compact_demo();
    cfg.stacks_x = 2;
    cfg.stacks_y = 1;
    cfg.k = 4;
    cfg.refresh = RefreshPolicy::Interleaved;
    let mut m = VlqMachine::new(cfg);
    let mut circuit = LogicalCircuit::new(6);
    circuit.push(ProgOp::H(0));
    for i in 1..6 {
        circuit.push(ProgOp::Cnot(i - 1, i));
    }
    circuit.push(ProgOp::T(2));
    circuit.push(ProgOp::Cnot(5, 0));
    for q in 0..6 {
        circuit.push(ProgOp::Measure(q));
    }
    run_program(&mut m, &circuit).unwrap();
    check(
        "paging",
        m,
        Golden {
            total_timesteps: 45,
            transversal_cnots: 0,
            surgery_cnots: 6,
            moves: 0,
            refresh_passes: 89,
            max_staleness: 3,
            timeline_len: 104,
        },
    );
}

#[test]
fn surgery_policy_ghz6() {
    let mut cfg = MachineConfig::compact_demo();
    cfg.prefer_transversal = false;
    cfg.stacks_x = 6;
    cfg.stacks_y = 1;
    cfg.k = 2;
    let mut m = VlqMachine::new(cfg);
    run_program(&mut m, &LogicalCircuit::ghz(6)).unwrap();
    check(
        "surgery-ghz6",
        m,
        Golden {
            total_timesteps: 31,
            transversal_cnots: 0,
            surgery_cnots: 5,
            moves: 0,
            refresh_passes: 186,
            max_staleness: 0,
            timeline_len: 192,
        },
    );
}

#[test]
fn quickstart_manual_ghz4() {
    // The exact op sequence of examples/quickstart.rs step 2.
    let mut m = VlqMachine::new(MachineConfig::compact_demo());
    let q: Vec<_> = (0..4).map(|_| m.alloc().unwrap()).collect();
    m.single_qubit_gate(q[0]).unwrap();
    for i in 1..4 {
        m.cnot(q[i - 1], q[i]).unwrap();
    }
    check(
        "quickstart-ghz4",
        m,
        Golden {
            total_timesteps: 10,
            transversal_cnots: 3,
            surgery_cnots: 0,
            moves: 6,
            refresh_passes: 34,
            max_staleness: 1,
            timeline_len: 44,
        },
    );
}

#[test]
fn all_at_once_idle_refresh() {
    let mut cfg = MachineConfig::compact_demo();
    cfg.refresh = RefreshPolicy::AllAtOnce;
    let mut m = VlqMachine::new(cfg);
    for _ in 0..5 {
        m.alloc().unwrap();
    }
    m.advance(37);
    check(
        "aao-idle",
        m,
        Golden {
            total_timesteps: 37,
            transversal_cnots: 0,
            surgery_cnots: 0,
            moves: 0,
            refresh_passes: 148,
            max_staleness: 1,
            timeline_len: 148,
        },
    );
}

#[test]
fn finish_equals_cost_executor_replay() {
    // The legacy entry point is literally the replay: same counts, same
    // timeline, event for event.
    let build = || {
        let mut m = VlqMachine::new(MachineConfig::compact_demo());
        let ids = run_program(&mut m, &LogicalCircuit::ghz(5)).unwrap();
        m.consume_magic(ids[0]).unwrap();
        m.measure(ids[4]).unwrap();
        m
    };
    let legacy = build().finish();
    let replayed = CostExecutor.run(&build().into_schedule()).unwrap();
    assert_eq!(legacy.total_timesteps, replayed.total_timesteps);
    assert_eq!(legacy.timeline, replayed.timeline);
    assert_eq!(legacy.max_staleness, replayed.max_staleness);
    assert_eq!(legacy.refresh_passes, replayed.refresh_passes);
}
