//! The `vlq-sweep` executor for Monte-Carlo memory experiments.
//!
//! [`MemoryExecutor`] is the glue between the domain-generic
//! work-stealing engine and this crate's experiment harness: it turns a
//! [`SweepPoint`] into an [`ExperimentConfig`] (interpreting sensitivity
//! knobs through [`Knob`]), prepares the noisy circuit + decoder once
//! per point, and runs seeded shot chunks against it. The threshold and
//! sensitivity scans in this crate are thin adapters over
//! [`run_sweep`].

use std::io;

use vlq_sweep::{RecordSink, SweepEngine, SweepExecutor, SweepPoint, SweepRecord, SweepSpec};

use vlq_surface::schedule::{Boundary, MemorySpec};

use crate::sensitivity::{noise_with_knob, Knob};
use crate::{BlockConfig, ExperimentConfig, Parallelism, PreparedBlock, PreparedExperiment};

/// Builds the experiment configuration a sweep point describes.
///
/// Points without a knob are standard memory experiments at physical
/// error rate `p`. Points with a knob pin `p` at the operating point
/// and override one error source via [`noise_with_knob`]; the
/// `cavity-size` knob also overrides the cavity depth `k`.
///
/// # Panics
///
/// Panics if the point names an unknown knob, or carries a program
/// workload (program points belong to the `vlq` crate's
/// `ProgramSweepExecutor`, not the memory executor) — specs are
/// validated at construction by the figure binaries, so either reaching
/// this executor is a programming error.
pub fn config_for_point(pt: &SweepPoint) -> ExperimentConfig {
    assert!(
        pt.program.is_none(),
        "memory executor got a program point ({:?}); run it on a program executor",
        pt.program
    );
    let cfg = match &pt.knob {
        None => {
            let mut spec = MemorySpec::standard(pt.setup, pt.d, pt.k, pt.basis);
            if let Some(rounds) = pt.rounds {
                spec.rounds = rounds;
            }
            ExperimentConfig::new(spec, pt.p)
        }
        Some(kn) => {
            let knob = Knob::parse(&kn.name)
                .unwrap_or_else(|| panic!("sweep point names unknown knob {:?}", kn.name));
            let (noise, k) = noise_with_knob(knob, kn.value);
            let mut spec = MemorySpec::standard(pt.setup, pt.d, k, pt.basis);
            if let Some(rounds) = pt.rounds {
                spec.rounds = rounds;
            }
            ExperimentConfig::new(spec, pt.p).with_noise(noise)
        }
    };
    cfg.with_shots(pt.shots).with_decoder(pt.decoder)
}

/// [`config_for_point`] viewed as a block config under an explicit
/// [`Boundary`] (the sweep grid itself stays boundary-agnostic).
pub fn block_config_for_point(pt: &SweepPoint, boundary: Boundary) -> BlockConfig {
    BlockConfig::from_experiment(&config_for_point(pt), boundary)
}

/// [`SweepExecutor`] running this crate's memory experiments.
///
/// Point-level parallelism comes from the engine (`--workers`);
/// `parallelism` additionally spreads each chunk's batches over the
/// in-block sample pool (`--threads`). Both axes preserve bit-identical
/// records and sidecars, so they compose freely.
#[derive(Clone, Debug, Default)]
pub struct MemoryExecutor {
    /// In-block worker policy every chunk is sampled under.
    pub parallelism: Parallelism,
}

impl MemoryExecutor {
    /// An executor sampling chunks under `parallelism`.
    pub fn with_parallelism(parallelism: Parallelism) -> Self {
        MemoryExecutor { parallelism }
    }
}

impl SweepExecutor for MemoryExecutor {
    type Prepared = PreparedExperiment;

    fn prepare(&self, point: &SweepPoint) -> PreparedExperiment {
        PreparedExperiment::prepare(&config_for_point(point))
    }

    fn run_chunk(
        &self,
        prepared: &PreparedExperiment,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
    ) -> u64 {
        prepared.run_shots_par(shots, seed, &self.parallelism)
    }

    fn run_chunk_recorded(
        &self,
        prepared: &PreparedExperiment,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
        recorder: &vlq_telemetry::Recorder,
    ) -> u64 {
        prepared.run_shots_recorded_par(shots, seed, recorder, &self.parallelism)
    }
}

/// [`MemoryExecutor`] generalized over block boundaries: the same
/// sweep grid, sampled through a [`PreparedBlock`] of any
/// [`Boundary`] kind.
///
/// `BlockExecutor::new(Boundary::Full)` reproduces [`MemoryExecutor`]
/// record-for-record (same prepared circuit, same chunk seeding, same
/// sample-and-decode core); `Boundary::MidCircuit` sweeps per-round
/// steady-state error rates instead of whole memory experiments.
#[derive(Clone, Debug)]
pub struct BlockExecutor {
    /// The boundary every point of the sweep is sampled under.
    pub boundary: Boundary,
    /// In-block worker policy every chunk is sampled under.
    pub parallelism: Parallelism,
}

impl BlockExecutor {
    /// An executor sampling every point under `boundary`.
    pub fn new(boundary: Boundary) -> Self {
        BlockExecutor {
            boundary,
            parallelism: Parallelism::serial(),
        }
    }

    /// Sets the in-block worker policy.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl SweepExecutor for BlockExecutor {
    type Prepared = PreparedBlock;

    fn prepare(&self, point: &SweepPoint) -> PreparedBlock {
        PreparedBlock::prepare(&block_config_for_point(point, self.boundary))
    }

    fn run_chunk(
        &self,
        prepared: &PreparedBlock,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
    ) -> u64 {
        prepared.run_shots_par(shots, seed, &self.parallelism)
    }

    fn run_chunk_recorded(
        &self,
        prepared: &PreparedBlock,
        _point: &SweepPoint,
        shots: u64,
        seed: u64,
        recorder: &vlq_telemetry::Recorder,
    ) -> u64 {
        prepared.run_shots_recorded_par(shots, seed, recorder, &self.parallelism)
    }
}

/// Runs a sweep spec on the default work-stealing engine.
pub fn run_sweep(spec: &SweepSpec) -> Vec<SweepRecord> {
    run_sweep_with(spec, &SweepEngine::default(), &mut [])
        .expect("sweep without file sinks cannot fail")
}

/// Runs a sweep spec on an explicit engine, streaming to `sinks`.
pub fn run_sweep_with(
    spec: &SweepSpec,
    engine: &SweepEngine,
    sinks: &mut [&mut dyn RecordSink],
) -> io::Result<Vec<SweepRecord>> {
    engine.run(spec, &MemoryExecutor::default(), sinks)
}

/// [`run_sweep_with`], reusing completed points from a previous run's
/// artifact (`--resume`). Deterministic seeding makes the merged
/// records — and the re-written artifacts — byte-identical to a fresh
/// full run.
pub fn run_sweep_resumable(
    spec: &SweepSpec,
    engine: &SweepEngine,
    sinks: &mut [&mut dyn RecordSink],
    cache: &vlq_sweep::ResumeCache,
) -> io::Result<Vec<SweepRecord>> {
    engine.run_resumable(spec, &MemoryExecutor::default(), sinks, cache)
}

/// The fully-general memory-experiment sweep: resumable, shardable
/// (`opts.shard` keeps only the globally-numbered points a `--shard
/// i/N` run owns), and offsettable (`opts.index_offset` for binaries
/// that stream several specs into one artifact). Shard runs emit
/// byte-for-byte the records the full run would for the same points,
/// so `sweep-merge` can interleave their artifacts back together.
pub fn run_sweep_opts(
    spec: &SweepSpec,
    engine: &SweepEngine,
    sinks: &mut [&mut dyn RecordSink],
    cache: &vlq_sweep::ResumeCache,
    opts: &vlq_sweep::RunOptions,
) -> io::Result<Vec<SweepRecord>> {
    run_sweep_opts_par(spec, engine, sinks, cache, opts, &Parallelism::serial())
}

/// [`run_sweep_opts`] with an in-block worker policy (`--threads`):
/// every chunk's batches are additionally spread over the sample pool.
/// Records and telemetry sidecars are byte-identical for any policy —
/// both parallelism axes preserve the bit-identity contract.
pub fn run_sweep_opts_par(
    spec: &SweepSpec,
    engine: &SweepEngine,
    sinks: &mut [&mut dyn RecordSink],
    cache: &vlq_sweep::ResumeCache,
    opts: &vlq_sweep::RunOptions,
    par: &Parallelism,
) -> io::Result<Vec<SweepRecord>> {
    engine.run_opts(
        spec,
        &MemoryExecutor::with_parallelism(par.clone()),
        sinks,
        cache,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlq_arch::params::REFERENCE_ERROR_RATE;
    use vlq_decoder::DecoderKind;
    use vlq_surface::schedule::{Basis, Setup};

    #[test]
    fn config_from_plain_point_matches_direct_construction() {
        let pt = SweepPoint {
            setup: Setup::CompactInterleaved,
            basis: Basis::Z,
            d: 5,
            p: 3e-3,
            k: 10,
            rounds: None,
            decoder: DecoderKind::UnionFind,
            shots: 123,
            knob: None,
            program: None,
        };
        let cfg = config_for_point(&pt);
        assert_eq!(cfg.spec.d, 5);
        assert_eq!(cfg.spec.rounds, 5);
        assert_eq!(cfg.spec.k, 10);
        assert_eq!(cfg.shots, 123);
        assert_eq!(cfg.decoder, DecoderKind::UnionFind);
        assert_eq!(cfg.noise.rates.p_2q_tt, 3e-3);
    }

    #[test]
    fn config_from_knob_point_overrides_one_source() {
        let pt = SweepPoint {
            setup: Setup::CompactInterleaved,
            basis: Basis::Z,
            d: 3,
            p: REFERENCE_ERROR_RATE,
            k: 10,
            rounds: None,
            decoder: DecoderKind::Mwpm,
            shots: 10,
            knob: Some(vlq_sweep::KnobSetting {
                name: "cavity-size".to_string(),
                value: 25.0,
            }),
            program: None,
        };
        let cfg = config_for_point(&pt);
        // The cavity-size knob overrides k, not the error rates.
        assert_eq!(cfg.spec.k, 25);
        assert_eq!(cfg.noise.rates.p_2q_tt, REFERENCE_ERROR_RATE);
    }

    #[test]
    fn rounds_override_applies() {
        let pt = SweepPoint {
            setup: Setup::Baseline,
            basis: Basis::Z,
            d: 3,
            p: 1e-3,
            k: 1,
            rounds: Some(7),
            decoder: DecoderKind::Mwpm,
            shots: 1,
            knob: None,
            program: None,
        };
        assert_eq!(config_for_point(&pt).spec.rounds, 7);
    }

    #[test]
    #[should_panic(expected = "program point")]
    fn program_point_is_rejected() {
        let pt = SweepPoint {
            setup: Setup::Baseline,
            basis: Basis::Z,
            d: 3,
            p: 1e-3,
            k: 1,
            rounds: None,
            decoder: DecoderKind::Mwpm,
            shots: 1,
            knob: None,
            program: Some("ghz4".to_string()),
        };
        config_for_point(&pt);
    }

    #[test]
    fn block_executor_full_matches_memory_executor_records() {
        // The boundary-generic executor at Boundary::Full must be
        // record-for-record the memory executor: same prepared circuit,
        // same chunk seeding, same sample-and-decode core.
        let spec = SweepSpec::new()
            .setups([Setup::Baseline])
            .distances([3])
            .error_rates([4e-3])
            .decoders([DecoderKind::UnionFind])
            .shots(600)
            .base_seed(13);
        let engine = SweepEngine::serial();
        let memory = engine
            .run(&spec, &MemoryExecutor::default(), &mut [])
            .expect("no sinks");
        let full = engine
            .run(&spec, &BlockExecutor::new(Boundary::Full), &mut [])
            .expect("no sinks");
        assert_eq!(memory, full);
        // Mid-circuit blocks strip the boundary-round noise, so the
        // same grid must record strictly fewer failures.
        let mid = engine
            .run(&spec, &BlockExecutor::new(Boundary::MidCircuit), &mut [])
            .expect("no sinks");
        assert!(
            mid[0].failures < full[0].failures,
            "mid {} !< full {}",
            mid[0].failures,
            full[0].failures
        );
    }

    #[test]
    #[should_panic(expected = "unknown knob")]
    fn unknown_knob_panics() {
        let pt = SweepPoint {
            setup: Setup::Baseline,
            basis: Basis::Z,
            d: 3,
            p: 1e-3,
            k: 1,
            rounds: None,
            decoder: DecoderKind::Mwpm,
            shots: 1,
            knob: Some(vlq_sweep::KnobSetting {
                name: "bogus".to_string(),
                value: 1.0,
            }),
            program: None,
        };
        config_for_point(&pt);
    }
}
