//! Minimum-weight perfect-matching decoder.
//!
//! Decodes a defect set on a [`DecodingGraph`]: Dijkstra shortest paths
//! give the pairwise defect distances (and each defect's distance to the
//! virtual boundary, plus the logical-observable parity along those
//! paths); exact minimum-weight perfect matching over the defects plus
//! mirrored boundary copies (the standard construction) selects the most
//! likely error. The decoder reports only what the harness needs: the
//! predicted logical flip.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use vlq_telemetry::{Metric, Recorder};

use crate::blossom::min_weight_perfect_matching;
use crate::graph::{DecodingGraph, BOUNDARY};
use crate::{Decoder, DecoderScratch};

/// Fixed-point scale when converting float weights to integers for the
/// exact matcher.
const WEIGHT_SCALE: f64 = (1u64 << 20) as f64;

/// The MWPM decoder (the paper's maximum-likelihood matching decoder).
///
/// All-pairs shortest paths (distance and observable parity) are
/// precomputed at construction so that per-shot decoding reduces to one
/// exact matching over the defects.
#[derive(Clone, Debug)]
pub struct MwpmDecoder {
    adjacency: Vec<Vec<(usize, f64, bool)>>,
    num_nodes: usize,
    /// `(n+1) x (n+1)` distance table (last row/col = boundary).
    all_dist: Vec<f64>,
    /// Observable parity along those shortest paths.
    all_parity: Vec<bool>,
}

/// Reusable working set for [`MwpmDecoder::decode_detailed_with`]: the
/// matching-instance edge buffer, refilled per decode instead of
/// reallocated. The blossom matcher itself still allocates internally
/// (its `BTreeMap`-based state is kept as-is for determinism), so the
/// MWPM batch path reduces — but does not eliminate — per-shot
/// allocation; see `docs/perf.md`.
#[derive(Debug, Default)]
pub struct MwpmScratch {
    edges: Vec<(usize, usize, i64)>,
    /// Telemetry sink (disabled by default: one branch per record).
    recorder: Recorder,
}

impl MwpmScratch {
    /// Fresh (empty) scratch.
    pub fn new() -> Self {
        MwpmScratch::default()
    }

    /// Attaches a telemetry recorder; see [`DecoderScratch::set_recorder`].
    pub fn set_recorder(&mut self, recorder: &Recorder) {
        self.recorder = recorder.clone();
    }
}

/// Result of a Dijkstra run from one source.
struct ShortestPaths {
    /// `dist[node]`; last entry is the boundary.
    dist: Vec<f64>,
    /// Observable parity along the shortest path.
    parity: Vec<bool>,
}

impl MwpmDecoder {
    /// Builds a decoder for a sector graph, precomputing all-pairs
    /// shortest paths.
    pub fn new(graph: &DecodingGraph) -> Self {
        let mut dec = MwpmDecoder {
            adjacency: graph.adjacency(),
            num_nodes: graph.num_nodes(),
            all_dist: Vec::new(),
            all_parity: Vec::new(),
        };
        let n = dec.num_nodes;
        let stride = n + 1;
        dec.all_dist = vec![f64::INFINITY; stride * stride];
        dec.all_parity = vec![false; stride * stride];
        for src in 0..n {
            let sp = dec.shortest_paths(src);
            for node in 0..stride {
                dec.all_dist[src * stride + node] = sp.dist[node];
                dec.all_parity[src * stride + node] = sp.parity[node];
            }
        }
        dec
    }

    #[inline]
    fn dist_between(&self, a: usize, b: usize) -> f64 {
        self.all_dist[a * (self.num_nodes + 1) + b]
    }

    #[inline]
    fn parity_between(&self, a: usize, b: usize) -> bool {
        self.all_parity[a * (self.num_nodes + 1) + b]
    }

    /// Dijkstra from `src` over nodes `0..n` plus boundary node `n`.
    fn shortest_paths(&self, src: usize) -> ShortestPaths {
        let n = self.num_nodes;
        let boundary = n;
        let mut dist = vec![f64::INFINITY; n + 1];
        let mut parity = vec![false; n + 1];
        let mut done = vec![false; n + 1];
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(HeapItem {
            dist: 0.0,
            node: src,
        });
        while let Some(HeapItem { dist: d, node }) = heap.pop() {
            if done[node] {
                continue;
            }
            done[node] = true;
            if node == boundary {
                continue; // paths through the boundary are not allowed
            }
            for &(nb, w, obs) in &self.adjacency[node] {
                let nb = if nb == BOUNDARY { boundary } else { nb };
                let nd = d + w;
                if nd < dist[nb] {
                    dist[nb] = nd;
                    parity[nb] = parity[node] ^ obs;
                    heap.push(HeapItem { dist: nd, node: nb });
                }
            }
        }
        ShortestPaths { dist, parity }
    }

    /// Decodes with full output: predicted observable flip and the total
    /// matching weight (useful for diagnostics and tests).
    pub fn decode_detailed(&self, defects: &[usize]) -> (bool, f64) {
        self.decode_detailed_with(defects, &mut MwpmScratch::new())
    }

    /// [`MwpmDecoder::decode_detailed`] against caller-owned scratch:
    /// bit-identical output, with the matching-instance edge buffer
    /// reused across calls.
    pub fn decode_detailed_with(
        &self,
        defects: &[usize],
        scratch: &mut MwpmScratch,
    ) -> (bool, f64) {
        let m = defects.len();
        if m == 0 {
            return (false, 0.0);
        }
        let boundary = self.num_nodes;
        // Matching instance: nodes 0..m are defects, m..2m boundary
        // copies. Defect-defect edges use pairwise distances; defect i
        // connects to its boundary copy at its boundary distance;
        // boundary copies pair up freely at zero weight.
        let edges = &mut scratch.edges;
        edges.clear();
        let scale = |w: f64| -> i64 {
            if w.is_finite() {
                (w * WEIGHT_SCALE).round() as i64
            } else {
                i64::MAX / 4
            }
        };
        for i in 0..m {
            for j in (i + 1)..m {
                let w = self.dist_between(defects[i], defects[j]);
                if w.is_finite() {
                    edges.push((i, j, scale(w)));
                }
                edges.push((m + i, m + j, 0));
            }
            let wb = self.dist_between(defects[i], boundary);
            if wb.is_finite() {
                edges.push((i, m + i, scale(wb)));
            }
        }
        scratch.recorder.incr(Metric::MwpmBlossomCalls);
        let mate = min_weight_perfect_matching(edges)
            .expect("decoding graph must admit a perfect matching");
        let mut flip = false;
        let mut total = 0.0;
        for i in 0..m {
            let partner = mate[i];
            match partner.cmp(&m) {
                Ordering::Less => {
                    if partner > i {
                        flip ^= self.parity_between(defects[i], defects[partner]);
                        total += self.dist_between(defects[i], defects[partner]);
                    }
                }
                _ => {
                    // Matched to its boundary copy.
                    debug_assert_eq!(partner, m + i);
                    flip ^= self.parity_between(defects[i], boundary);
                    total += self.dist_between(defects[i], boundary);
                }
            }
        }
        (flip, total)
    }
}

impl Decoder for MwpmDecoder {
    fn decode(&self, defects: &[usize]) -> bool {
        self.decode_detailed(defects).0
    }

    fn make_scratch(&self) -> DecoderScratch {
        DecoderScratch::Mwpm(MwpmScratch::new())
    }

    fn decode_batch(
        &self,
        defects_per_lane: &[Vec<usize>],
        scratch: &mut DecoderScratch,
        out: &mut [u64],
    ) {
        match scratch {
            DecoderScratch::Mwpm(s) => {
                // The span owns its own recorder handle, so the borrow
                // of `s` stays free for the per-lane decode loop.
                let _span = s.recorder.span(Metric::DecodeBatchNanos);
                let words = defects_per_lane.len().div_ceil(64);
                out[..words].fill(0);
                for (lane, defects) in defects_per_lane.iter().enumerate() {
                    if self.decode_detailed_with(defects, s).0 {
                        out[lane / 64] |= 1u64 << (lane % 64);
                    }
                }
            }
            _ => crate::decode_batch_fallback(self, defects_per_lane, out),
        }
    }
}

/// Max-heap item ordered by smallest distance first.
struct HeapItem {
    dist: f64,
    node: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap behavior.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DecodingGraph;
    use vlq_arch::params::HardwareParams;
    use vlq_circuit::noise::NoiseModel;
    use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

    fn decoder_for(d: usize, p: f64) -> (MwpmDecoder, DecodingGraph) {
        let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
        let mc = memory_circuit(spec, &HardwareParams::baseline());
        let noisy = NoiseModel::baseline_at_scale(p).apply(&mc.circuit);
        let g = DecodingGraph::build(&noisy, &mc.z_detectors);
        (MwpmDecoder::new(&g), g)
    }

    #[test]
    fn empty_defects_no_flip() {
        let (dec, _) = decoder_for(3, 1e-3);
        assert!(!dec.decode(&[]));
    }

    #[test]
    fn single_edge_defect_pairs_match_their_edge() {
        // For every edge (a, b) of the graph, decoding the defect set it
        // produces must predict exactly that edge's observable parity
        // (a single fault is its own most likely explanation).
        let (dec, g) = decoder_for(3, 1e-3);
        for (&(a, b), e) in g.iter_edges() {
            let defects: Vec<usize> = if b == crate::graph::BOUNDARY {
                vec![a]
            } else {
                vec![a, b]
            };
            let (flip, weight) = dec.decode_detailed(&defects);
            assert_eq!(
                flip, e.flips_observable,
                "edge ({a},{b}) decoded wrong parity"
            );
            assert!(weight <= e.weight + 1e-9, "matching found heavier path");
        }
    }

    #[test]
    fn two_far_defect_pairs_decode_independently() {
        let (dec, g) = decoder_for(5, 1e-3);
        // Pick two disjoint non-boundary edges far apart; decoding the
        // union must XOR their parities.
        let edges: Vec<(usize, usize, bool)> = g
            .iter_edges()
            .filter(|(&(_, b), _)| b != crate::graph::BOUNDARY)
            .map(|(&(a, b), e)| (a, b, e.flips_observable))
            .collect();
        let mut found = false;
        'outer: for &(a1, b1, o1) in &edges {
            for &(a2, b2, o2) in &edges {
                if [a2, b2].iter().any(|x| *x == a1 || *x == b1) {
                    continue;
                }
                let flip = dec.decode(&[a1, b1, a2, b2]);
                // The decoder may find a cheaper global pairing, but for
                // *some* disjoint pair choice the independent explanation
                // holds; assert at least one instance.
                if flip == (o1 ^ o2) {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn decoding_is_deterministic() {
        let (dec, g) = decoder_for(3, 2e-3);
        let defects: Vec<usize> = (0..g.num_nodes().min(4)).collect();
        let a = dec.decode(&defects);
        for _ in 0..5 {
            assert_eq!(dec.decode(&defects), a);
        }
    }
}
