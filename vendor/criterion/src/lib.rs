//! Offline subset of the `criterion` benchmarking API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion the benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Unlike the real crate there is no statistical analysis: each benchmark
//! is warmed up once, timed for a bounded number of iterations, and the
//! mean wall-clock time per iteration is printed. Good enough to compare
//! hot paths offline; swap the workspace `criterion` path dependency for
//! the real crates.io package to get confidence intervals and HTML output.
//!
//! Set `VLQ_BENCH_QUICK=1` (any value other than `0`/empty) to shrink
//! the per-bench budget from 3 s to 150 ms — a smoke setting for CI,
//! where the goal is "benches still run", not stable timings.

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Wall-clock budget per benchmark; keeps `cargo bench` bounded.
/// `VLQ_BENCH_QUICK` shrinks it for CI smoke runs.
fn measure_budget() -> Duration {
    static BUDGET: OnceLock<Duration> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let quick = std::env::var("VLQ_BENCH_QUICK")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if quick {
            Duration::from_millis(150)
        } else {
            Duration::from_secs(3)
        }
    })
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function_name: F, parameter: P) -> Self {
        let mut id = String::new();
        let _ = write!(id, "{function_name}/{parameter}");
        BenchmarkId { id }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Declared throughput of one benchmark iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing harness handed to the benchmark closure.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes caches / lazy statics).
        black_box(routine());
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= budget || iters >= 1000 {
                break;
            }
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes runs by wall-clock.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.iters_done == 0 {
            println!("{}/{}: no iterations recorded", self.name, id.id);
            return;
        }
        let per_iter = b.elapsed / b.iters_done as u32;
        let mut line = format!(
            "{}/{}: {:?}/iter over {} iters",
            self.name, id.id, per_iter, b.iters_done
        );
        if let Some(Throughput::Elements(n)) = self.throughput {
            let rate = n as f64 * b.iters_done as f64 / b.elapsed.as_secs_f64();
            let _ = write!(line, " ({rate:.0} elem/s)");
        }
        println!("{line}");
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
