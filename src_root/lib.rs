//! Umbrella package holding the workspace integration tests and examples.
//!
//! The real library surface lives in the [`vlq`] crate and its substrate
//! crates; this package only re-exports [`vlq`] for example convenience.
pub use vlq;
