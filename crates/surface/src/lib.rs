//! Rotated surface code layouts, 2.5D embeddings, and syndrome-extraction
//! schedules for the VLQ reproduction.
//!
//! * [`layout`] — the rotated surface code: data/ancilla coordinates,
//!   X/Z plaquettes with boundary halves, logical operators.
//! * [`embedding`] — the Natural and Compact embeddings of patches into
//!   the 2.5D transmon + cavity hardware, including the Compact
//!   ancilla-merge bookkeeping and interaction-graph builders.
//! * [`schedule`] — memory-experiment circuit generators for the five
//!   evaluated setups (Baseline, Natural/Compact x All-at-once/
//!   Interleaved), reproducing the paper's Figure 10 CNOT ordering for
//!   Compact.
//!
//! # Examples
//!
//! ```
//! use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};
//! use vlq_arch::HardwareParams;
//!
//! let spec = MemorySpec::standard(Setup::CompactInterleaved, 3, 10, Basis::Z);
//! let mc = memory_circuit(spec, &HardwareParams::with_memory());
//! assert_eq!(mc.circuit.observables.len(), 1);
//! ```

pub mod embedding;
pub mod layout;
pub mod schedule;

pub use embedding::{CompactHost, CompactMerge, Corner};
pub use layout::{Plaquette, PlaquetteKind, SurfaceLayout};
pub use schedule::{memory_circuit, Basis, Boundary, MemoryCircuit, MemorySpec, Setup};
