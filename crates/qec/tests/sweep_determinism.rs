//! Deterministic-seeding contract of the sweep engine, end to end
//! through the real Monte-Carlo executor: the same `SweepSpec` run with
//! 1 worker and N workers produces byte-identical records.

use vlq_decoder::DecoderKind;
use vlq_qec::run_sweep_with;
use vlq_surface::schedule::Setup;
use vlq_sweep::{CsvSink, JsonlSink, SweepEngine, SweepSpec};

fn demo_spec() -> SweepSpec {
    SweepSpec::new()
        .setups([Setup::Baseline, Setup::CompactInterleaved])
        .distances([3])
        .ks([4])
        .error_rates([4e-3, 8e-3])
        .decoders([DecoderKind::Mwpm, DecoderKind::UnionFind])
        .shots(600)
        .base_seed(11)
}

/// Runs the spec under the given worker count and returns the raw CSV
/// and JSON-lines bytes plus the records themselves.
fn run_with_workers(workers: usize) -> (Vec<u8>, Vec<u8>, Vec<vlq_sweep::SweepRecord>) {
    let spec = demo_spec();
    let engine = SweepEngine {
        // Several chunks per point so steal order genuinely varies.
        chunk_shots: 128,
        ..SweepEngine::with_workers(workers)
    };
    let mut csv = CsvSink::new(Vec::new()).unwrap();
    let mut jsonl = JsonlSink::new(Vec::new());
    let records = run_sweep_with(&spec, &engine, &mut [&mut csv, &mut jsonl]).unwrap();
    let csv_bytes = csv.into_inner();
    let jsonl_bytes = jsonl.into_inner();
    (csv_bytes, jsonl_bytes, records)
}

#[test]
fn one_worker_and_many_workers_agree_byte_for_byte() {
    let (csv1, jsonl1, recs1) = run_with_workers(1);
    for workers in [2, 4, 8] {
        let (csv_n, jsonl_n, recs_n) = run_with_workers(workers);
        assert_eq!(recs1, recs_n, "records diverge at {workers} workers");
        assert_eq!(csv1, csv_n, "CSV artifact diverges at {workers} workers");
        assert_eq!(
            jsonl1, jsonl_n,
            "JSONL artifact diverges at {workers} workers"
        );
    }
    // And the sweep actually did something: all points completed with
    // the requested statistics.
    assert_eq!(recs1.len(), 8);
    assert!(recs1.iter().all(|r| r.shots == 600));
    // Sorted by index already (in-order emission).
    let mut sorted = recs1.clone();
    sorted.sort_by_key(|r| r.index);
    assert_eq!(sorted, recs1);
}

#[test]
fn chunked_and_unchunked_totals_agree() {
    // Chunk size changes the seed schedule (documented), but every
    // chunking must still cover exactly `shots` shots.
    let spec = demo_spec();
    for chunk_shots in [64, 600, 4096] {
        let engine = SweepEngine {
            chunk_shots,
            ..SweepEngine::with_workers(2)
        };
        let records = run_sweep_with(&spec, &engine, &mut []).unwrap();
        assert!(records.iter().all(|r| r.shots == 600));
        assert!(records.iter().all(|r| r.failures <= r.shots));
    }
}
