//! The qubit-virtualization paging scheduler in action: runs a logical
//! program across multiple stacks and prints the timeline — moves,
//! transversal CNOTs, and the DRAM-refresh-style error-correction passes
//! that keep every stored qubit within its staleness deadline.
//!
//! Run: `cargo run --release --example paging_scheduler`

use vlq::machine::{MachineConfig, RefreshPolicy, TimelineEvent, VlqMachine};
use vlq::program::{run_program, LogicalCircuit, ProgOp};

fn main() {
    let mut cfg = MachineConfig::compact_demo();
    cfg.stacks_x = 2;
    cfg.stacks_y = 1;
    cfg.k = 4; // small cavities so paging pressure is visible
    cfg.refresh = RefreshPolicy::Interleaved;
    let mut machine = VlqMachine::new(cfg);

    // An 8-qubit circuit that must span both stacks (capacity 3/stack).
    let mut circuit = LogicalCircuit::new(6);
    circuit.push(ProgOp::H(0));
    for i in 1..6 {
        circuit.push(ProgOp::Cnot(i - 1, i));
    }
    circuit.push(ProgOp::T(2));
    circuit.push(ProgOp::Cnot(5, 0));
    for q in 0..6 {
        circuit.push(ProgOp::Measure(q));
    }

    run_program(&mut machine, &circuit).expect("program fits");
    let report = machine.finish();

    println!("== timeline (first 40 events) ==");
    for event in report.timeline.iter().take(40) {
        match event {
            TimelineEvent::Op(t, op, qs) => println!("t={t:>3}  {op:?} on {qs:?}"),
            TimelineEvent::Move(t, q, from, to) => {
                println!("t={t:>3}  MOVE {q:?}: stack {from} -> {to}")
            }
            TimelineEvent::Refresh(t, s, rounds) => {
                println!("t={t:>3}  refresh stack {s} ({rounds} round(s))")
            }
        }
    }
    println!("... {} events total", report.timeline.len());

    println!("\n== summary ==");
    println!("total timesteps:     {}", report.total_timesteps);
    println!("transversal CNOTs:   {}", report.transversal_cnots);
    println!("surgery CNOTs:       {}", report.surgery_cnots);
    println!("moves:               {}", report.moves);
    println!("refresh passes:      {}", report.refresh_passes);
    println!(
        "max staleness:       {} cycles (deadline: k = {} cycles)",
        report.max_staleness, 4
    );
    assert!(report.max_staleness <= 4, "refresh deadline respected");
}
