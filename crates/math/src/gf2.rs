//! Bit-packed linear algebra over GF(2).
//!
//! [`BitVec`] is a dense vector of bits packed into `u64` words;
//! [`BitMatrix`] is a dense matrix stored row-major as one [`BitVec`] per
//! row. Both support the operations needed by the rest of the workspace:
//! XOR (addition over GF(2)), dot products, Gaussian elimination, rank,
//! kernel bases, and solving `Ax = b`.

use std::fmt;

/// Number of bits per storage word.
const WORD_BITS: usize = 64;

/// A dense vector over GF(2), bit-packed into `u64` words.
///
/// # Examples
///
/// ```
/// use vlq_math::gf2::BitVec;
///
/// let mut v = BitVec::zeros(100);
/// v.set(3, true);
/// v.set(99, true);
/// assert_eq!(v.weight(), 2);
/// assert!(v.get(99));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl BitVec {
    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        BitVec {
            len,
            words: vec![0u64; len.div_ceil(WORD_BITS)],
        }
    }

    /// Creates a vector from an iterator of booleans.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVec::zeros(bits.len());
        for (i, b) in bits.iter().enumerate() {
            v.set(i, *b);
        }
        v
    }

    /// Creates a vector of length `len` with the given support (indices set
    /// to one).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn from_support(len: usize, support: &[usize]) -> Self {
        let mut v = BitVec::zeros(len);
        for &i in support {
            v.set(i, true);
        }
        v
    }

    /// Length of the vector in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector has length zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Flips bit `i` (XOR with one).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
    }

    /// XORs `other` into `self` (vector addition over GF(2)).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "length mismatch in xor_assign");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Returns the GF(2) dot product `<self, other>`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn dot(&self, other: &BitVec) -> bool {
        assert_eq!(self.len, other.len, "length mismatch in dot");
        let mut acc = 0u64;
        for (a, b) in self.words.iter().zip(&other.words) {
            acc ^= a & b;
        }
        acc.count_ones() % 2 == 1
    }

    /// Hamming weight (number of ones).
    pub fn weight(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Index of the first set bit, if any.
    pub fn first_one(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                let i = wi * WORD_BITS + w.trailing_zeros() as usize;
                return (i < self.len).then_some(i);
            }
        }
        None
    }

    /// Iterates over the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }

    /// Raw storage words (low bit of word 0 is bit 0).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitVec[")?;
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        write!(f, "]")
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        BitVec::from_bits(iter)
    }
}

/// A dense matrix over GF(2) stored row-major.
///
/// # Examples
///
/// ```
/// use vlq_math::gf2::BitMatrix;
///
/// // The parity-check matrix of the repetition code has rank n-1.
/// let m = BitMatrix::from_rows(3, &[vec![0, 1], vec![1, 2]]);
/// assert_eq!(m.rank(), 2);
/// assert_eq!(m.kernel_basis().len(), 1); // the all-ones codeword
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BitMatrix {
    rows: Vec<BitVec>,
    cols: usize,
}

impl BitMatrix {
    /// Creates an all-zero matrix of shape `rows x cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        BitMatrix {
            rows: vec![BitVec::zeros(cols); rows],
            cols,
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = BitMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, true);
        }
        m
    }

    /// Builds a matrix with `cols` columns from per-row support lists.
    ///
    /// # Panics
    ///
    /// Panics if any support index is `>= cols`.
    pub fn from_rows(cols: usize, supports: &[Vec<usize>]) -> Self {
        let rows = supports
            .iter()
            .map(|s| BitVec::from_support(cols, s))
            .collect();
        BitMatrix { rows, cols }
    }

    /// Builds a matrix from owned [`BitVec`] rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_bitvec_rows(rows: Vec<BitVec>) -> Self {
        let cols = rows.first().map_or(0, BitVec::len);
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "rows must all have equal length"
        );
        BitMatrix { rows, cols }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols
    }

    /// Returns entry `(r, c)`.
    pub fn get(&self, r: usize, c: usize) -> bool {
        self.rows[r].get(c)
    }

    /// Sets entry `(r, c)`.
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        self.rows[r].set(c, value);
    }

    /// Borrows row `r`.
    pub fn row(&self, r: usize) -> &BitVec {
        &self.rows[r]
    }

    /// Iterates over the rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &BitVec> {
        self.rows.iter()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the matrix width.
    pub fn push_row(&mut self, row: BitVec) {
        assert_eq!(row.len(), self.cols, "row length mismatch");
        self.rows.push(row);
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.num_cols()`.
    pub fn mul_vec(&self, v: &BitVec) -> BitVec {
        assert_eq!(v.len(), self.cols, "dimension mismatch in mul_vec");
        BitVec::from_bits(self.rows.iter().map(|r| r.dot(v)))
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> BitMatrix {
        let mut t = BitMatrix::zeros(self.cols, self.rows.len());
        for (r, row) in self.rows.iter().enumerate() {
            for c in row.iter_ones() {
                t.set(c, r, true);
            }
        }
        t
    }

    /// Row-reduces in place to reduced row-echelon form; returns the pivot
    /// column of each pivot row (so `pivots.len()` is the rank).
    pub fn row_reduce(&mut self) -> Vec<usize> {
        let mut pivots = Vec::new();
        let mut pivot_row = 0;
        for col in 0..self.cols {
            let Some(src) = (pivot_row..self.rows.len()).find(|&r| self.rows[r].get(col)) else {
                continue;
            };
            self.rows.swap(pivot_row, src);
            let pivot = self.rows[pivot_row].clone();
            for (r, row) in self.rows.iter_mut().enumerate() {
                if r != pivot_row && row.get(col) {
                    row.xor_assign(&pivot);
                }
            }
            pivots.push(col);
            pivot_row += 1;
            if pivot_row == self.rows.len() {
                break;
            }
        }
        pivots
    }

    /// Rank of the matrix (does not modify `self`).
    pub fn rank(&self) -> usize {
        self.clone().row_reduce().len()
    }

    /// Returns a basis of the (right) kernel: all `x` with `A x = 0`.
    pub fn kernel_basis(&self) -> Vec<BitVec> {
        let mut m = self.clone();
        let pivots = m.row_reduce();
        let pivot_set: std::collections::HashSet<usize> = pivots.iter().copied().collect();
        let mut basis = Vec::new();
        for free in 0..self.cols {
            if pivot_set.contains(&free) {
                continue;
            }
            let mut v = BitVec::zeros(self.cols);
            v.set(free, true);
            // Back-substitute: pivot row i has pivot column pivots[i].
            for (i, &pc) in pivots.iter().enumerate() {
                if m.rows[i].get(free) {
                    v.set(pc, true);
                }
            }
            basis.push(v);
        }
        basis
    }

    /// Solves `A x = b`, returning one solution if it exists.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.num_rows()`.
    pub fn solve(&self, b: &BitVec) -> Option<BitVec> {
        assert_eq!(b.len(), self.rows.len(), "dimension mismatch in solve");
        // Augment with b as an extra column and reduce.
        let mut aug = BitMatrix::zeros(self.rows.len(), self.cols + 1);
        for (r, row) in self.rows.iter().enumerate() {
            for c in row.iter_ones() {
                aug.set(r, c, true);
            }
            aug.set(r, self.cols, b.get(r));
        }
        let pivots = aug.row_reduce();
        // Inconsistent iff a pivot lands in the augmented column.
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = BitVec::zeros(self.cols);
        for (i, &pc) in pivots.iter().enumerate() {
            if aug.rows[i].get(self.cols) {
                x.set(pc, true);
            }
        }
        Some(x)
    }

    /// Returns `true` if `v` lies in the row space of the matrix.
    pub fn row_space_contains(&self, v: &BitVec) -> bool {
        assert_eq!(v.len(), self.cols, "dimension mismatch");
        let mut m = self.clone();
        let base_rank = m.row_reduce().len();
        m.push_row(v.clone());
        m.row_reduce().len() == base_rank
    }
}

impl fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BitMatrix {}x{} [", self.rows.len(), self.cols)?;
        for row in &self.rows {
            writeln!(f, "  {row:?}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitvec_set_get_flip() {
        let mut v = BitVec::zeros(130);
        assert_eq!(v.len(), 130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        v.flip(129);
        assert!(!v.get(129));
        assert_eq!(v.weight(), 2);
    }

    #[test]
    fn bitvec_xor_and_dot() {
        let a = BitVec::from_support(10, &[1, 3, 5]);
        let b = BitVec::from_support(10, &[3, 5, 7]);
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c, BitVec::from_support(10, &[1, 7]));
        assert!(!a.dot(&b)); // overlap {3,5}: even
        let d = BitVec::from_support(10, &[1]);
        assert!(a.dot(&d));
    }

    #[test]
    fn bitvec_iter_ones() {
        let v = BitVec::from_support(200, &[0, 63, 64, 127, 199]);
        let ones: Vec<usize> = v.iter_ones().collect();
        assert_eq!(ones, vec![0, 63, 64, 127, 199]);
        assert_eq!(v.first_one(), Some(0));
        assert_eq!(BitVec::zeros(5).first_one(), None);
    }

    #[test]
    fn identity_rank_and_kernel() {
        let id = BitMatrix::identity(8);
        assert_eq!(id.rank(), 8);
        assert!(id.kernel_basis().is_empty());
    }

    #[test]
    fn rank_of_dependent_rows() {
        // Row 2 = row 0 + row 1.
        let m = BitMatrix::from_rows(4, &[vec![0, 1], vec![1, 2], vec![0, 2]]);
        assert_eq!(m.rank(), 2);
        let k = m.kernel_basis();
        assert_eq!(k.len(), 2); // 4 cols - rank 2
        for v in &k {
            assert!(m.mul_vec(v).is_zero());
        }
    }

    #[test]
    fn solve_consistent_and_inconsistent() {
        let m = BitMatrix::from_rows(3, &[vec![0, 1], vec![1, 2]]);
        let b = BitVec::from_bits([true, false]);
        let x = m.solve(&b).expect("consistent system");
        assert_eq!(m.mul_vec(&x), b);

        // x0+x1 = 1, x0+x1 = 0 is inconsistent.
        let m2 = BitMatrix::from_rows(2, &[vec![0, 1], vec![0, 1]]);
        let b2 = BitVec::from_bits([true, false]);
        assert!(m2.solve(&b2).is_none());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = BitMatrix::from_rows(5, &[vec![0, 4], vec![1, 2, 3]]);
        let t = m.transpose();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.num_cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn row_space_contains() {
        let m = BitMatrix::from_rows(4, &[vec![0, 1], vec![2, 3]]);
        assert!(m.row_space_contains(&BitVec::from_support(4, &[0, 1, 2, 3])));
        assert!(!m.row_space_contains(&BitVec::from_support(4, &[0])));
        assert!(m.row_space_contains(&BitVec::zeros(4)));
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = BitMatrix::from_rows(3, &[vec![0, 1, 2], vec![1]]);
        let v = BitVec::from_support(3, &[1, 2]);
        let out = m.mul_vec(&v);
        assert_eq!(out, BitVec::from_bits([false, true]));
    }
}
