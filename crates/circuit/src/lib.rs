//! Circuit IR, noise annotation, and executors for the VLQ reproduction.
//!
//! The pipeline every experiment follows:
//!
//! 1. a schedule generator (in `vlq-surface`) emits an *ideal* [`Circuit`]
//!    — gates, measurements, resets, and `Idle` markers with durations;
//! 2. [`NoiseModel::apply`](noise::NoiseModel::apply) rewrites it into a
//!    *noisy* circuit (Pauli channels + readout flip probabilities);
//! 3. [`exec::validate_with_tableau`] proves the detector annotations are
//!    deterministic on the ideal circuit;
//! 4. [`exec::propagate_fault`] enumerates single-fault effects to build
//!    the decoder's matching graph (in `vlq-decoder`);
//! 5. [`exec::sample_batch`] runs bit-parallel Monte Carlo shots.

pub mod exec;
pub mod ir;
pub mod noise;

pub use exec::{BatchResult, FaultEffect, FaultSite, ValidationReport};
pub use ir::{Circuit, Detector, GateClass, Instruction, Medium, QubitKind, QubitMeta};
pub use noise::{NoiseChannel, NoiseModel};
