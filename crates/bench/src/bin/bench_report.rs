//! Ratcheted perf trajectory for the batched sample→decode hot path.
//!
//! Measures the end-to-end `run_shots` cost over the (d, p) grid
//! {3,5,7,9} × {1e-3, 5e-3} with the Union-Find decoder, comparing the
//! scratch-reusing batch pipeline against a faithful reconstruction of
//! the pre-refactor path (allocating `sample_batch`, per-lane
//! `detector_bit` probes, per-lane `decode`), and writes the medians to
//! a schema-stable `BENCH_NNNN.json` so future PRs can ratchet against
//! committed numbers. Both paths must produce identical failure counts
//! (the refactor is bit-identical); the binary asserts this on every
//! grid point before timing.
//!
//! `--threads N` adds the cross-core axis: every point also proves the
//! in-block sample pool bit-identical to the serial path, and the d=9
//! rows gain a `multicore` section timing serial vs pooled at a
//! thread-independent shot count. Schema v2 records the worker count
//! and machine core count as provenance, and `--check` rejects
//! artifacts whose provenance contradicts the checker's expectations
//! (`--threads`, `VLQ_BENCH_QUICK`) with a typed error — v1 artifacts
//! (`BENCH_0006`/`BENCH_0007`) carried no provenance and are still
//! accepted by their legacy rules.
//!
//! `VLQ_BENCH_QUICK=1` shrinks shots/reps for CI smoke runs (the same
//! switch the criterion stub honors). `--check` validates an existing
//! report's schema without running anything.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use vlq_bench::{count_from_args, finish_telemetry, telemetry_from_args, usage_exit, Args};
use vlq_circuit::exec::sample_batch;
use vlq_decoder::{Decoder, DecoderKind};
use vlq_qec::{BlockConfig, BlockSampler, BlockSpec, Parallelism, PreparedBlock};
use vlq_surface::schedule::{Basis, MemorySpec, Setup};
use vlq_telemetry::{Metric, Recorder};

const USAGE: &str = "usage: bench-report [--out PATH] [--reps N] [--shots N] [--seed S]
                    [--threads N|auto] [--telemetry PATH] [--check] [--quiet]
  --out PATH   report path (default BENCH_0009.json)
  --reps N     timing repetitions per point (median reported)
  --shots N    shots per repetition
  --seed S     base seed (default 2020)
  --threads N  in-block sample-pool workers (default 1; `auto` resolves to
               available_parallelism, and the resolved count is what lands in
               the report's provenance). With N >= 2 every point proves the
               pooled path bit-identical to serial, and the d=9 rows gain a
               timed multicore section. In --check mode this is the *expected*
               worker provenance of the artifact instead.
  --telemetry  write a vlq-telemetry JSONL sidecar to PATH and print a runtime
               summary to stderr (sidecar is byte-stable across invocations)
  --check      validate an existing report at --out, run nothing; exits 1 with
               a typed error when the schema or the recorded provenance
               (threads, quick mode) contradicts expectations
  --quiet      suppress per-point progress lines
VLQ_BENCH_QUICK=1 shrinks the default shots/reps for smoke runs.";

/// Current schema: v2 added `threads`/`cores` provenance, per-point
/// `failures`, and the `multicore` section.
const SCHEMA: &str = "vlq-bench-report/v2";
/// Committed pre-provenance reports (`BENCH_0006`/`BENCH_0007`) still
/// check under their original rules.
const SCHEMA_V1: &str = "vlq-bench-report/v1";
const GRID_D: [usize; 4] = [3, 5, 7, 9];
const GRID_P: [f64; 2] = [1e-3, 5e-3];
/// Ratchet floor for the d=9, p=5e-3 multicore row on a multi-core
/// machine (waived when the artifact records `cores: 1` — a single-core
/// builder cannot honestly measure a speedup).
const MULTICORE_FLOOR: f64 = 1.7;

fn main() {
    let args = Args::parse_validated(
        USAGE,
        &["out", "reps", "shots", "seed", "threads", "telemetry"],
        &["check", "quiet"],
    );
    let out = args.get_str("out", "BENCH_0009.json");
    // `auto` resolves here (with a stderr note), so both run mode and
    // --check mode see the same concrete worker count.
    let threads = count_from_args(&args, USAGE, "threads");
    let quick = std::env::var("VLQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    if args.has("check") {
        check_report(&out, threads, quick);
        return;
    }
    let threads = threads.unwrap_or(1);
    let par = Parallelism::threads(threads);
    let (def_shots, def_reps) = if quick { (256u64, 3usize) } else { (2048, 5) };
    let shots: u64 = args.get_or_usage(USAGE, "shots", def_shots);
    let reps: usize = args.get_or_usage(USAGE, "reps", def_reps);
    let seed: u64 = args.get_or_usage(USAGE, "seed", 2020);
    let quiet = args.has("quiet");
    if shots == 0 || reps == 0 {
        usage_exit(USAGE, "--shots and --reps must be >= 1");
    }
    // The multicore rows use a thread-independent shot count (so the
    // failure counts in artifacts from different --threads runs stay
    // `cmp`-comparable) that is large enough to give every worker
    // several 1024-lane batches.
    let mc_shots = if quick {
        shots.max(2048)
    } else {
        shots.max(8192)
    };
    // Phase timings always need an attached recorder; with --telemetry
    // the same recorder also feeds the deterministic sidecar (which
    // holds no timings, so it stays byte-stable across invocations).
    let (sidecar, telemetry_path) = telemetry_from_args(&args);
    let recorder = if sidecar.is_enabled() {
        sidecar.clone()
    } else {
        Recorder::attached()
    };

    let mut points = Vec::new();
    let mut multicore = Vec::new();
    for d in GRID_D {
        for p in GRID_P {
            let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
            let block = PreparedBlock::prepare(
                &BlockConfig::new(BlockSpec::full(spec), p).with_decoder(DecoderKind::UnionFind),
            );
            let decoder = DecoderKind::UnionFind.build(&block.graph);

            // The refactor must be bit-identical before it is fast.
            let f_after = block.run_shots(shots, seed);
            let f_before = run_shots_pre_refactor(&block, decoder.as_ref(), shots, seed);
            assert_eq!(
                f_before, f_after,
                "d{d} p{p}: pre-refactor and batched paths disagree"
            );
            if threads > 1 {
                let f_pooled = block.run_shots_par(shots, seed, &par);
                assert_eq!(
                    f_pooled, f_after,
                    "d{d} p{p}: pooled path (threads={threads}) and serial path disagree"
                );
            }

            let before_ns = median_ns(reps, || {
                run_shots_pre_refactor(&block, decoder.as_ref(), shots, seed)
            });
            let after_ns = median_ns(reps, || block.run_shots(shots, seed));
            let speedup = before_ns as f64 / after_ns.max(1) as f64;

            // One instrumented pass per point: the recorder accumulates
            // across the grid, so per-point phase costs are the deltas.
            let at = |m: Metric| recorder.value(m);
            let (s0, e0, d0) = (
                at(Metric::SampleNanos),
                at(Metric::ExtractNanos),
                at(Metric::DecodeNanos),
            );
            let f_recorded = block.run_shots_recorded(shots, seed, &recorder);
            assert_eq!(
                f_recorded, f_after,
                "d{d} p{p}: recorded and plain paths disagree"
            );
            let sample_ns = at(Metric::SampleNanos) - s0;
            let extract_ns = at(Metric::ExtractNanos) - e0;
            let decode_ns = at(Metric::DecodeNanos) - d0;

            if !quiet {
                eprintln!(
                    "note: d{d} p{p:.0e}: before {:.2} ms, after {:.2} ms, speedup {speedup:.2}x \
                     (sample {:.2} ms, extract {:.2} ms, decode {:.2} ms)",
                    before_ns as f64 / 1e6,
                    after_ns as f64 / 1e6,
                    sample_ns as f64 / 1e6,
                    extract_ns as f64 / 1e6,
                    decode_ns as f64 / 1e6
                );
            }
            points.push(Point {
                d,
                p,
                failures: f_after,
                before_ns,
                after_ns,
                speedup,
                sample_ns,
                extract_ns,
                decode_ns,
            });

            // The ratcheted multi-core rows: d=9 serial vs pooled at a
            // thread-independent shot count, counts proven equal before
            // any timing.
            if d == 9 && threads > 1 {
                let mc_serial = block.run_shots(mc_shots, seed);
                let mc_pooled = block.run_shots_par(mc_shots, seed, &par);
                assert_eq!(
                    mc_serial, mc_pooled,
                    "d{d} p{p}: multicore failure counts diverge at threads={threads}"
                );
                let serial_ns = median_ns(reps, || block.run_shots(mc_shots, seed));
                let pooled_ns = median_ns(reps, || block.run_shots_par(mc_shots, seed, &par));
                let mc_speedup = serial_ns as f64 / pooled_ns.max(1) as f64;
                if !quiet {
                    eprintln!(
                        "note: d{d} p{p:.0e} multicore ({mc_shots} shots, {threads} threads): \
                         serial {:.2} ms, pooled {:.2} ms, speedup {mc_speedup:.2}x",
                        serial_ns as f64 / 1e6,
                        pooled_ns as f64 / 1e6
                    );
                }
                multicore.push(MulticorePoint {
                    d,
                    p,
                    mc_shots,
                    serial_ns,
                    pooled_ns,
                    speedup: mc_speedup,
                    mc_failures: mc_serial,
                });
            }
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = render_report(
        quick, shots, reps, seed, threads, cores, &points, &multicore,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    finish_telemetry(&sidecar, telemetry_path.as_deref(), "bench-report", seed);
    println!(
        "wrote {out} ({} grid points, {} multicore rows)",
        points.len(),
        multicore.len()
    );
}

struct Point {
    d: usize,
    p: f64,
    failures: u64,
    before_ns: u128,
    after_ns: u128,
    speedup: f64,
    sample_ns: u64,
    extract_ns: u64,
    decode_ns: u64,
}

struct MulticorePoint {
    d: usize,
    p: f64,
    mc_shots: u64,
    serial_ns: u128,
    pooled_ns: u128,
    speedup: f64,
    mc_failures: u64,
}

/// The hot path exactly as it was before this refactor: a freshly
/// allocated `sample_batch` result per batch, per-lane × per-detector
/// `detector_bit` probes, and per-lane `decode` with per-call working
/// memory. Bit-identical to `run_shots` (same seeds, same RNG streams),
/// which the caller asserts.
fn run_shots_pre_refactor(
    block: &PreparedBlock,
    decoder: &dyn Decoder,
    shots: u64,
    seed: u64,
) -> u64 {
    const LANES_PER_BATCH: usize = 1024;
    let guard = block.memory.guard_detectors();
    let mut failures = 0u64;
    let mut remaining = shots;
    let mut batch_idx = 0u64;
    while remaining > 0 {
        let lanes = (remaining as usize).min(LANES_PER_BATCH);
        let words = lanes.div_ceil(64).max(1);
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(batch_idx));
        let result = sample_batch(&block.noisy, lanes, &mut rng);
        let mut pred = vec![0u64; words];
        for lane in 0..lanes {
            let mut defects: Vec<usize> = Vec::new();
            for (local, &global) in guard.iter().enumerate() {
                if result.detector_bit(global, lane) {
                    defects.push(local);
                }
            }
            if decoder.decode(&defects) {
                pred[lane / 64] |= 1u64 << (lane % 64);
            }
        }
        for (p, a) in pred.iter_mut().zip(result.observable_words(0)) {
            *p ^= a;
        }
        failures += pred.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        remaining -= lanes as u64;
        batch_idx += 1;
    }
    failures
}

fn median_ns(reps: usize, mut f: impl FnMut() -> u64) -> u128 {
    let mut times: Vec<u128> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Hand-rolled JSON (the repo's artifact discipline: no serde, stable
/// key order, one line per grid point so diffs read cleanly).
#[allow(clippy::too_many_arguments)]
fn render_report(
    quick: bool,
    shots: u64,
    reps: usize,
    seed: u64,
    threads: usize,
    cores: usize,
    points: &[Point],
    multicore: &[MulticorePoint],
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str("  \"bench\": \"sample-decode-hot-path\",\n");
    s.push_str("  \"decoder\": \"union-find\",\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"shots\": {shots},\n"));
    s.push_str(&format!("  \"reps\": {reps},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"cores\": {cores},\n"));
    s.push_str("  \"points\": [\n");
    for (i, pt) in points.iter().enumerate() {
        let sep = if i + 1 < points.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"d\": {}, \"p\": {}, \"failures\": {}, \"before_ns\": {}, \"after_ns\": {}, \
             \"speedup\": {:.3}, \"sample_ns\": {}, \"extract_ns\": {}, \"decode_ns\": {}}}{sep}\n",
            pt.d,
            pt.p,
            pt.failures,
            pt.before_ns,
            pt.after_ns,
            pt.speedup,
            pt.sample_ns,
            pt.extract_ns,
            pt.decode_ns
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"multicore\": [\n");
    for (i, pt) in multicore.iter().enumerate() {
        let sep = if i + 1 < multicore.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"d\": {}, \"p\": {}, \"mc_shots\": {}, \"serial_ns\": {}, \"pooled_ns\": {}, \
             \"speedup\": {:.3}, \"mc_failures\": {}}}{sep}\n",
            pt.d, pt.p, pt.mc_shots, pt.serial_ns, pt.pooled_ns, pt.speedup, pt.mc_failures
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Everything `--check` can reject, typed so CI failures read as exactly
/// one contract violation each.
enum CheckError {
    Unreadable(String),
    SchemaMismatch,
    MissingKey(&'static str),
    MissingGridPoint {
        d: usize,
        p: f64,
    },
    FieldCount {
        field: &'static str,
        want: String,
        got: usize,
    },
    ThreadsMismatch {
        expected: usize,
        found: u64,
    },
    NoThreadsProvenance {
        expected: usize,
    },
    QuickMismatch {
        expected: bool,
    },
    MulticoreRows {
        want: usize,
        got: usize,
    },
    MissingMulticoreRow {
        d: usize,
        p: f64,
    },
    RatchetMiss {
        speedup: f64,
    },
}

impl std::fmt::Display for CheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckError::Unreadable(e) => write!(f, "cannot read report: {e}"),
            CheckError::SchemaMismatch => {
                write!(f, "missing schema tag ({SCHEMA:?} or {SCHEMA_V1:?})")
            }
            CheckError::MissingKey(key) => write!(f, "missing key \"{key}\""),
            CheckError::MissingGridPoint { d, p } => write!(f, "missing grid point d={d} p={p}"),
            CheckError::FieldCount { field, want, got } => {
                write!(f, "expected {want} {field} entries, found {got}")
            }
            CheckError::ThreadsMismatch { expected, found } => write!(
                f,
                "worker provenance mismatch: artifact records threads={found}, checker expects \
                 threads={expected}"
            ),
            CheckError::NoThreadsProvenance { expected } => write!(
                f,
                "checker expects threads={expected} but the artifact is {SCHEMA_V1} and records \
                 no worker provenance (regenerate as {SCHEMA})"
            ),
            CheckError::QuickMismatch { expected } => write!(
                f,
                "quick-mode provenance mismatch: artifact records quick: {}, checker \
                 (VLQ_BENCH_QUICK) expects quick: {expected}",
                !expected
            ),
            CheckError::MulticoreRows { want, got } => {
                write!(f, "expected {want} multicore rows, found {got}")
            }
            CheckError::MissingMulticoreRow { d, p } => {
                write!(f, "missing multicore row d={d} p={p}")
            }
            CheckError::RatchetMiss { speedup } => write!(
                f,
                "multicore ratchet miss: d=9 p=0.005 speedup {speedup:.3} < floor \
                 {MULTICORE_FLOOR} on a multi-core machine"
            ),
        }
    }
}

/// The integer value of a top-level `"key": N` entry.
fn extract_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\": ");
    let at = text.find(&needle)? + needle.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// The `"speedup": X` value of the multicore row for (d, p), if any.
fn multicore_speedup(text: &str, d: usize, p: f64) -> Option<f64> {
    let section = &text[text.find("\"multicore\": [")?..];
    let row_at = section.find(&format!("{{\"d\": {d}, \"p\": {p}, \"mc_shots\":"))?;
    let row = &section[row_at..];
    let needle = "\"speedup\": ";
    let at = row.find(needle)? + needle.len();
    let num: String = row[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    num.parse().ok()
}

/// Schema + provenance validation for `--check`: the file must exist,
/// carry a known schema tag, contain every (d, p) grid point with sane
/// timings, and (schema v2) record worker/quick provenance consistent
/// with what the checker expects. Exits 1 on drift so CI fails loudly.
fn check_report(path: &str, expect_threads: Option<usize>, expect_quick: bool) {
    let grid = GRID_D.len() * GRID_P.len();
    let mut problems: Vec<CheckError> = Vec::new();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {path}: {}", CheckError::Unreadable(e.to_string()));
            std::process::exit(1);
        }
    };
    let v2 = text.contains(&format!("\"schema\": \"{SCHEMA}\""));
    let v1 = text.contains(&format!("\"schema\": \"{SCHEMA_V1}\""));
    if !v2 && !v1 {
        problems.push(CheckError::SchemaMismatch);
    }
    for key in ["bench", "decoder", "shots", "reps", "seed", "points"] {
        if !text.contains(&format!("\"{key}\":")) {
            problems.push(CheckError::MissingKey(key));
        }
    }
    for d in GRID_D {
        for p in GRID_P {
            if !text.contains(&format!("\"d\": {d}, \"p\": {p},")) {
                problems.push(CheckError::MissingGridPoint { d, p });
            }
        }
    }
    for field in ["before_ns", "after_ns", "speedup"] {
        // v2 also renders one "speedup" per multicore row.
        let extra = if field == "speedup" {
            text.matches("\"mc_shots\":").count()
        } else {
            0
        };
        let count = text.matches(&format!("\"{field}\":")).count();
        if count != grid + extra {
            problems.push(CheckError::FieldCount {
                field,
                want: (grid + extra).to_string(),
                got: count,
            });
        }
    }
    // Phase columns arrived with BENCH_0007; older committed reports
    // legitimately have none, but a report must be all-or-nothing.
    for field in ["sample_ns", "extract_ns", "decode_ns"] {
        let count = text.matches(&format!("\"{field}\":")).count();
        if count != 0 && count != grid {
            problems.push(CheckError::FieldCount {
                field,
                want: format!("0 or {grid}"),
                got: count,
            });
        }
    }
    // Quick-mode provenance: both schema generations record `quick`.
    if !text.contains(&format!("\"quick\": {expect_quick}")) {
        problems.push(CheckError::QuickMismatch {
            expected: expect_quick,
        });
    }
    if v2 {
        check_v2(&text, expect_threads, expect_quick, path, &mut problems);
    } else if v1 {
        if let Some(expected) = expect_threads {
            problems.push(CheckError::NoThreadsProvenance { expected });
        }
    }
    if problems.is_empty() {
        println!("{path}: schema ok ({grid} grid points)");
    } else {
        for p in &problems {
            eprintln!("error: {path}: {p}");
        }
        std::process::exit(1);
    }
}

/// The v2-only rules: worker/core provenance, per-point failure counts,
/// the multicore section, and the ratchet floor.
fn check_v2(
    text: &str,
    expect_threads: Option<usize>,
    expect_quick: bool,
    path: &str,
    problems: &mut Vec<CheckError>,
) {
    let grid = GRID_D.len() * GRID_P.len();
    for key in ["threads", "cores", "multicore"] {
        if !text.contains(&format!("\"{key}\":")) {
            problems.push(CheckError::MissingKey(key));
        }
    }
    let failures = text.matches("\"failures\":").count();
    if failures != grid {
        problems.push(CheckError::FieldCount {
            field: "failures",
            want: grid.to_string(),
            got: failures,
        });
    }
    let threads = extract_u64(text, "threads").unwrap_or(0);
    let cores = extract_u64(text, "cores").unwrap_or(0);
    if let Some(expected) = expect_threads {
        if threads != expected as u64 {
            problems.push(CheckError::ThreadsMismatch {
                expected,
                found: threads,
            });
        }
    }
    // threads >= 2 must have timed one multicore row per d=9 grid
    // column; a serial run must have none (nothing to compare against).
    let mc_rows = text.matches("\"mc_shots\":").count();
    let want_rows = if threads >= 2 { GRID_P.len() } else { 0 };
    if mc_rows != want_rows {
        problems.push(CheckError::MulticoreRows {
            want: want_rows,
            got: mc_rows,
        });
    } else if threads >= 2 {
        for p in GRID_P {
            if multicore_speedup(text, 9, p).is_none() {
                problems.push(CheckError::MissingMulticoreRow { d: 9, p });
            }
        }
        // The ratchet: honest timings only. Quick artifacts time too
        // little work, and a single-core machine cannot speed up.
        if let Some(speedup) = multicore_speedup(text, 9, 5e-3) {
            if expect_quick || cores < 2 {
                println!(
                    "{path}: note: multicore ratchet waived (quick: {expect_quick}, cores: \
                     {cores}); d=9 p=0.005 speedup {speedup:.3}"
                );
            } else if speedup < MULTICORE_FLOOR {
                problems.push(CheckError::RatchetMiss { speedup });
            }
        }
    }
}
