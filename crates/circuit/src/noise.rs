//! The noise-annotation pass.
//!
//! Takes an ideal circuit (gates + idles + measurements) and a hardware
//! model and produces the noisy circuit the Monte-Carlo engine runs:
//! idles become single-qubit Pauli channels with `p = 1 - exp(-dt/T1)`,
//! gates acquire depolarizing channels according to their [`GateClass`],
//! and measurements acquire readout flip probabilities.

use vlq_arch::params::{ErrorRates, HardwareParams};
use vlq_math::stats::idle_error_probability;

use crate::ir::{Circuit, GateClass, Instruction, Medium};

/// A single-qubit Pauli channel description (exposed for decoder-side
/// fault enumeration).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NoiseChannel {
    /// Uniform 1-qubit depolarizing with total probability `p`.
    Depolarize1(usize, f64),
    /// Uniform 2-qubit depolarizing with total probability `p`.
    Depolarize2(usize, usize, f64),
    /// Measurement record flip.
    RecordFlip(usize, f64),
}

/// Hardware + error-rate bundle driving the noise pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NoiseModel {
    /// Timing parameters.
    pub hw: HardwareParams,
    /// Error rates.
    pub rates: ErrorRates,
}

impl NoiseModel {
    /// Builds a noise model.
    pub fn new(hw: HardwareParams, rates: ErrorRates) -> Self {
        NoiseModel { hw, rates }
    }

    /// The Table-I memory device at error scale `p` (most common choice).
    pub fn memory_at_scale(p: f64) -> Self {
        NoiseModel::new(HardwareParams::with_memory(), ErrorRates::from_scale(p))
    }

    /// The Table-I baseline device at error scale `p`.
    pub fn baseline_at_scale(p: f64) -> Self {
        NoiseModel::new(HardwareParams::baseline(), ErrorRates::from_scale(p))
    }

    /// Error probability of a gate of the given class.
    pub fn gate_error(&self, class: GateClass) -> f64 {
        match class {
            GateClass::OneQubit => self.rates.p_1q,
            GateClass::TwoQubitTT => self.rates.p_2q_tt,
            GateClass::TwoQubitTM => self.rates.p_2q_tm,
            GateClass::LoadStore => self.rates.p_load_store,
        }
    }

    /// Idle error probability for a duration in the given medium.
    pub fn idle_error(&self, duration: f64, medium: Medium) -> f64 {
        let t1 = match medium {
            Medium::Transmon => self.rates.effective_t1_transmon(&self.hw),
            Medium::Cavity => self.rates.effective_t1_cavity(&self.hw),
        };
        idle_error_probability(duration, t1)
    }

    /// Applies the pass, returning a new circuit with noise instructions
    /// inserted and measurement flip probabilities set.
    ///
    /// Rules:
    /// * `Gate` — a depolarizing channel *after* the gate on its qubits
    ///   (`Noise1` for 1q, `Noise2` for 2q classes);
    /// * `Idle` — replaced by `Noise1` with the T1-derived probability;
    /// * `Measure` — `flip_prob` set to `p_measure`;
    /// * `Reset` — followed by `Noise1` with `p_reset` (if nonzero);
    /// * existing `Noise1`/`Noise2` instructions are preserved.
    pub fn apply(&self, ideal: &Circuit) -> Circuit {
        self.apply_window(ideal, 0, ideal.instructions.len())
    }

    /// [`NoiseModel::apply`] restricted to the ideal-instruction index
    /// window `start..end`: instructions outside the window are emitted
    /// *noiselessly* (gates without channels, measurements with
    /// `flip_prob = 0`, idles and pre-existing noise dropped).
    ///
    /// This is how boundary-aware syndrome blocks are built: the
    /// generator marks where prep ends and readout begins, and a block's
    /// `Boundary` chooses the window, so e.g. a mid-circuit block keeps
    /// the full detector schedule while only its syndrome-round body
    /// carries fault sites. `apply_window(c, 0, len)` is exactly
    /// [`NoiseModel::apply`].
    pub fn apply_window(&self, ideal: &Circuit, start: usize, end: usize) -> Circuit {
        let mut out = Circuit::new(ideal.num_qubits);
        out.qubit_meta = ideal.qubit_meta.clone();
        for (index, inst) in ideal.instructions.iter().enumerate() {
            let noisy = index >= start && index < end;
            match *inst {
                Instruction::Gate { gate, class } => {
                    out.instructions.push(Instruction::Gate { gate, class });
                    let p = if noisy { self.gate_error(class) } else { 0.0 };
                    if p > 0.0 {
                        let (a, b) = gate.qubits();
                        match (class, b) {
                            (GateClass::OneQubit, _) | (_, None) => {
                                out.instructions.push(Instruction::Noise1 { qubit: a, p });
                            }
                            (_, Some(b)) => {
                                out.instructions.push(Instruction::Noise2 { a, b, p });
                            }
                        }
                    }
                }
                Instruction::Measure { qubit, .. } => {
                    out.instructions.push(Instruction::Measure {
                        qubit,
                        flip_prob: if noisy { self.rates.p_measure } else { 0.0 },
                    });
                }
                Instruction::Reset { qubit } => {
                    out.instructions.push(Instruction::Reset { qubit });
                    if noisy && self.rates.p_reset > 0.0 {
                        out.instructions.push(Instruction::Noise1 {
                            qubit,
                            p: self.rates.p_reset,
                        });
                    }
                }
                Instruction::Idle {
                    qubit,
                    duration,
                    medium,
                } => {
                    let p = if noisy {
                        self.idle_error(duration, medium)
                    } else {
                        0.0
                    };
                    if p > 0.0 {
                        out.instructions.push(Instruction::Noise1 { qubit, p });
                    }
                }
                noise @ (Instruction::Noise1 { .. } | Instruction::Noise2 { .. }) => {
                    if noisy {
                        out.instructions.push(noise);
                    }
                }
            }
        }
        out.detectors = ideal.detectors.clone();
        out.observables = ideal.observables.clone();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vlq_sim::CliffordGate;

    #[test]
    fn pass_inserts_gate_noise() {
        let mut c = Circuit::new(2);
        c.gate(CliffordGate::H(0), GateClass::OneQubit);
        c.gate(CliffordGate::Cnot(0, 1), GateClass::TwoQubitTT);
        let noisy = NoiseModel::baseline_at_scale(1e-3).apply(&c);
        let noise: Vec<&Instruction> = noisy
            .instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Noise1 { .. } | Instruction::Noise2 { .. }))
            .collect();
        assert_eq!(noise.len(), 2);
        match noise[0] {
            Instruction::Noise1 { qubit: 0, p } => assert!((p - 1e-4).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
        match noise[1] {
            Instruction::Noise2 { a: 0, b: 1, p } => assert!((p - 1e-3).abs() < 1e-12),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pass_sets_measurement_flip() {
        let mut c = Circuit::new(1);
        c.measure(0);
        let noisy = NoiseModel::baseline_at_scale(5e-3).apply(&c);
        match noisy.instructions[0] {
            Instruction::Measure { flip_prob, .. } => assert!((flip_prob - 5e-3).abs() < 1e-12),
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn idle_replaced_by_channel() {
        let mut c = Circuit::new(1);
        c.idle(0, 100e-6, Medium::Transmon); // one T1 -> 1 - 1/e
        let model = NoiseModel::memory_at_scale(2e-3); // t1_scale = 1
        let noisy = model.apply(&c);
        match noisy.instructions[0] {
            Instruction::Noise1 { p, .. } => {
                assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-9)
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn cavity_idles_are_gentler_than_transmon() {
        let model = NoiseModel::memory_at_scale(2e-3);
        let p_t = model.idle_error(1e-6, Medium::Transmon);
        let p_c = model.idle_error(1e-6, Medium::Cavity);
        assert!(p_c < p_t);
        assert!((p_t / p_c - 10.0).abs() < 0.1); // ~10x coherence ratio
    }

    #[test]
    fn noiseless_pass_is_identity_plus_flips() {
        let mut c = Circuit::new(2);
        c.gate(CliffordGate::Cnot(0, 1), GateClass::TwoQubitTT);
        c.idle(0, 1e-6, Medium::Cavity);
        c.measure(0);
        let model = NoiseModel::new(HardwareParams::with_memory(), ErrorRates::noiseless());
        let noisy = model.apply(&c);
        let (g, m, _, i, n) = noisy.instruction_census();
        assert_eq!((g, m, i, n), (1, 1, 0, 0));
    }

    #[test]
    fn detectors_preserved() {
        let mut c = Circuit::new(1);
        let m = c.measure(0);
        c.detector(vec![m], (0, 0, 0));
        c.observable(vec![m]);
        let noisy = NoiseModel::baseline_at_scale(1e-3).apply(&c);
        assert_eq!(noisy.detectors.len(), 1);
        assert_eq!(noisy.observables.len(), 1);
        noisy.check().unwrap();
    }
}
