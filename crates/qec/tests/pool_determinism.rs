//! The sample pool's bit-identity contract, property-style.
//!
//! `run_shots_par` must return the exact failure count of the serial
//! path — and `run_shots_recorded_par` the byte-identical deterministic
//! telemetry sidecar — at *any* worker count, for every `Boundary`
//! mode, across distances. The in-block batches are independently
//! seeded (`seed.wrapping_add(batch_idx)`) and reduced in batch order,
//! so the schedule (which worker ran which batch, in what order) can
//! never leak into results; this test is the executable form of that
//! claim. Mirrors `crates/sweep/tests/sharding.rs`.

use vlq_decoder::DecoderKind;
use vlq_qec::{BlockConfig, BlockSampler, BlockSpec, Parallelism, PreparedBlock};
use vlq_surface::schedule::{Basis, Boundary, MemorySpec, Setup};
use vlq_telemetry::Recorder;

/// Crosses two full 1024-lane batches into a ragged third, so batch
/// claiming, stealing, and the tail batch are all exercised.
const SHOTS: u64 = 2500;
const SEED: u64 = 7_2020;

fn block_for(d: usize, boundary: Boundary) -> PreparedBlock {
    let memory = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
    let spec = BlockSpec { memory, boundary };
    PreparedBlock::prepare(&BlockConfig::new(spec, 4e-3).with_decoder(DecoderKind::UnionFind))
}

#[test]
fn pooled_failure_counts_and_sidecars_match_serial_everywhere() {
    for d in [3usize, 5, 7] {
        for boundary in Boundary::ALL {
            let block = block_for(d, boundary);
            let serial = block.run_shots(SHOTS, SEED);
            let serial_rec = Recorder::attached();
            let serial_recorded = block.run_shots_recorded(SHOTS, SEED, &serial_rec);
            assert_eq!(
                serial, serial_recorded,
                "d{d} {boundary:?}: recording changed counts"
            );
            let serial_sidecar = serial_rec.deterministic_jsonl("pool-determinism", SEED);

            for threads in [1usize, 2, 3, 8] {
                let par = Parallelism::threads(threads);
                assert_eq!(
                    block.run_shots_par(SHOTS, SEED, &par),
                    serial,
                    "d{d} {boundary:?} threads={threads}: failure counts diverged"
                );
                let rec = Recorder::attached();
                assert_eq!(
                    block.run_shots_recorded_par(SHOTS, SEED, &rec, &par),
                    serial,
                    "d{d} {boundary:?} threads={threads}: recorded counts diverged"
                );
                assert_eq!(
                    rec.deterministic_jsonl("pool-determinism", SEED),
                    serial_sidecar,
                    "d{d} {boundary:?} threads={threads}: sidecar bytes diverged"
                );
            }
        }
    }
}

#[test]
fn pooled_multi_decoder_counts_match_serial() {
    let block = block_for(3, Boundary::Full);
    let uf = DecoderKind::UnionFind.build(&block.graph);
    let mwpm = DecoderKind::Mwpm.build(&block.graph);
    let decoders: [&(dyn vlq_decoder::Decoder + Send + Sync); 2] = [uf.as_ref(), mwpm.as_ref()];
    let serial = block.run_shots_with(&decoders, SHOTS, SEED);
    for threads in [2usize, 3] {
        let par = Parallelism::threads(threads);
        assert_eq!(
            block.run_shots_with_par(&decoders, SHOTS, SEED, &par),
            serial,
            "threads={threads}: multi-decoder counts diverged"
        );
    }
}

#[test]
fn one_thread_means_no_pool() {
    assert!(Parallelism::threads(1).pool().is_none());
    assert!(Parallelism::threads(0).pool().is_none());
    assert!(Parallelism::serial().pool().is_none());
    assert_eq!(Parallelism::serial().workers(), 1);
    assert_eq!(Parallelism::threads(4).workers(), 4);
}

/// A pool outliving one block and serving another (and the same block
/// again) must still be bit-identical: per-worker scratches are keyed
/// on block identity and rebuilt on change, never reused stale.
#[test]
fn pool_reuse_across_blocks_stays_identical() {
    let par = Parallelism::threads(2);
    let a = block_for(3, Boundary::MidCircuit);
    let b = block_for(5, Boundary::Prep);
    let serial_a = a.run_shots(SHOTS, SEED);
    let serial_b = b.run_shots(SHOTS, SEED);
    assert_eq!(a.run_shots_par(SHOTS, SEED, &par), serial_a);
    assert_eq!(b.run_shots_par(SHOTS, SEED, &par), serial_b);
    assert_eq!(a.run_shots_par(SHOTS, SEED, &par), serial_a);
}
