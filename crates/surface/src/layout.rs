//! Rotated surface code layout.
//!
//! Coordinate convention (matching Figure 2 of the paper): data qubits at
//! odd-odd coordinates `(2i+1, 2j+1)` for `i, j in 0..d`; measure
//! (ancilla) qubits at even-even coordinates. A plaquette centered at an
//! even-even site `(x, y)` is X-type when `(x + y) / 2` is odd and Z-type
//! when even; boundary plaquettes keep only the two corners inside the
//! patch. Z-type boundary halves sit on the top and bottom edges, X-type
//! halves on the left and right.
//!
//! Logical operators: logical Z is a vertical column of Z's (crossing the
//! Z boundaries); logical X is a horizontal row of X's.

/// The two stabilizer types.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlaquetteKind {
    /// Detects bit flips (Z-type parity of data).
    Z,
    /// Detects phase flips (X-type parity of data).
    X,
}

impl PlaquetteKind {
    /// The other kind.
    pub fn other(self) -> PlaquetteKind {
        match self {
            PlaquetteKind::Z => PlaquetteKind::X,
            PlaquetteKind::X => PlaquetteKind::Z,
        }
    }
}

/// A stabilizer plaquette of the rotated surface code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Plaquette {
    /// X or Z type.
    pub kind: PlaquetteKind,
    /// Center coordinate (even-even site; the measure qubit's home).
    pub center: (i32, i32),
    /// The 2 or 4 data-qubit coordinates, in canonical corner order:
    /// `[lower-left, lower-right, upper-left, upper-right]` with absent
    /// corners omitted.
    pub data: Vec<(i32, i32)>,
}

impl Plaquette {
    /// Returns `true` for boundary (weight-2) plaquettes.
    pub fn is_half(&self) -> bool {
        self.data.len() == 2
    }
}

/// The rotated surface code of odd distance `d`.
///
/// # Examples
///
/// ```
/// use vlq_surface::layout::SurfaceLayout;
///
/// let l = SurfaceLayout::new(3);
/// assert_eq!(l.data_coords().len(), 9);
/// assert_eq!(l.plaquettes().len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct SurfaceLayout {
    d: usize,
    data: Vec<(i32, i32)>,
    plaquettes: Vec<Plaquette>,
}

impl SurfaceLayout {
    /// Builds the layout for odd `d >= 3`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or `< 3`.
    pub fn new(d: usize) -> Self {
        assert!(d % 2 == 1 && d >= 3, "distance must be odd and >= 3");
        let di = d as i32;
        let mut data = Vec::with_capacity(d * d);
        for y in 0..di {
            for x in 0..di {
                data.push((2 * x + 1, 2 * y + 1));
            }
        }
        let mut plaquettes = Vec::new();
        // Candidate centers: even-even sites (x, y) with 0 <= x, y <= 2d.
        for cy in 0..=di {
            for cx in 0..=di {
                let (x, y) = (2 * cx, 2 * cy);
                let kind = if (cx + cy) % 2 == 1 {
                    PlaquetteKind::X
                } else {
                    PlaquetteKind::Z
                };
                // Corners in canonical order.
                let corners = [
                    (x - 1, y - 1),
                    (x + 1, y - 1),
                    (x - 1, y + 1),
                    (x + 1, y + 1),
                ];
                let inside: Vec<(i32, i32)> = corners
                    .iter()
                    .copied()
                    .filter(|&(cx, cy)| cx >= 1 && cx < 2 * di && cy >= 1 && cy < 2 * di)
                    .collect();
                let keep = match inside.len() {
                    4 => true,
                    2 => {
                        // Boundary halves: Z on top/bottom edges, X on
                        // left/right edges.
                        let on_top_bottom = y == 0 || y == 2 * di;
                        let on_left_right = x == 0 || x == 2 * di;
                        (kind == PlaquetteKind::Z && on_top_bottom)
                            || (kind == PlaquetteKind::X && on_left_right)
                    }
                    _ => false,
                };
                if keep {
                    plaquettes.push(Plaquette {
                        kind,
                        center: (x, y),
                        data: inside,
                    });
                }
            }
        }
        SurfaceLayout {
            d,
            data,
            plaquettes,
        }
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.d
    }

    /// Data-qubit coordinates (row-major, `d*d` entries).
    pub fn data_coords(&self) -> &[(i32, i32)] {
        &self.data
    }

    /// All plaquettes.
    pub fn plaquettes(&self) -> &[Plaquette] {
        &self.plaquettes
    }

    /// Plaquettes of one kind.
    pub fn plaquettes_of(&self, kind: PlaquetteKind) -> impl Iterator<Item = &Plaquette> {
        self.plaquettes.iter().filter(move |p| p.kind == kind)
    }

    /// Index of a data coordinate in [`SurfaceLayout::data_coords`].
    pub fn data_index(&self, coord: (i32, i32)) -> Option<usize> {
        let (x, y) = coord;
        if x < 1 || y < 1 || x % 2 == 0 || y % 2 == 0 {
            return None;
        }
        let (ix, iy) = ((x / 2) as usize, (y / 2) as usize);
        (ix < self.d && iy < self.d).then(|| iy * self.d + ix)
    }

    /// Data indices of the logical Z operator (a vertical column, `x = 1`).
    pub fn logical_z_support(&self) -> Vec<usize> {
        (0..self.d).map(|j| j * self.d).collect()
    }

    /// Data indices of the logical X operator (a horizontal row, `y = 1`).
    pub fn logical_x_support(&self) -> Vec<usize> {
        (0..self.d).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn counts_for_small_distances() {
        for d in [3usize, 5, 7, 9, 11] {
            let l = SurfaceLayout::new(d);
            assert_eq!(l.data_coords().len(), d * d);
            assert_eq!(l.plaquettes().len(), d * d - 1, "d={d}");
            let zs = l.plaquettes_of(PlaquetteKind::Z).count();
            let xs = l.plaquettes_of(PlaquetteKind::X).count();
            assert_eq!(zs, (d * d - 1) / 2);
            assert_eq!(xs, (d * d - 1) / 2);
        }
    }

    #[test]
    fn half_plaquette_positions() {
        let l = SurfaceLayout::new(5);
        for p in l.plaquettes() {
            if p.is_half() {
                let (x, y) = p.center;
                match p.kind {
                    PlaquetteKind::Z => assert!(y == 0 || y == 10, "Z half at {:?}", p.center),
                    PlaquetteKind::X => assert!(x == 0 || x == 10, "X half at {:?}", p.center),
                }
            }
        }
        // d-1 halves of each kind.
        let z_halves = l
            .plaquettes_of(PlaquetteKind::Z)
            .filter(|p| p.is_half())
            .count();
        assert_eq!(z_halves, 4);
    }

    #[test]
    fn every_interior_data_touches_two_of_each() {
        let l = SurfaceLayout::new(5);
        let mut touch: HashMap<(i32, i32), (usize, usize)> = HashMap::new();
        for p in l.plaquettes() {
            for &dq in &p.data {
                let e = touch.entry(dq).or_insert((0, 0));
                match p.kind {
                    PlaquetteKind::Z => e.0 += 1,
                    PlaquetteKind::X => e.1 += 1,
                }
            }
        }
        // Interior data (not on patch boundary) touch 2 Z and 2 X.
        for (&(x, y), &(z, xx)) in &touch {
            let interior = x > 1 && x < 9 && y > 1 && y < 9;
            if interior {
                assert_eq!((z, xx), (2, 2), "data ({x},{y})");
            } else {
                assert!(z <= 2 && xx <= 2);
                assert!(z + xx >= 2, "boundary data must touch >= 2 checks");
            }
        }
    }

    #[test]
    fn stabilizers_commute() {
        // Z and X plaquettes must overlap on an even number of data.
        let l = SurfaceLayout::new(7);
        let plaq: Vec<(&Plaquette, HashSet<(i32, i32)>)> = l
            .plaquettes()
            .iter()
            .map(|p| (p, p.data.iter().copied().collect()))
            .collect();
        for (pi, si) in &plaq {
            for (pj, sj) in &plaq {
                if pi.kind != pj.kind {
                    let overlap = si.intersection(sj).count();
                    assert!(
                        overlap % 2 == 0,
                        "{:?} at {:?} vs {:?} at {:?} overlap {overlap}",
                        pi.kind,
                        pi.center,
                        pj.kind,
                        pj.center
                    );
                }
            }
        }
    }

    #[test]
    fn logical_operators_commute_with_stabilizers_and_anticommute() {
        let l = SurfaceLayout::new(5);
        let zl: HashSet<usize> = l.logical_z_support().into_iter().collect();
        let xl: HashSet<usize> = l.logical_x_support().into_iter().collect();
        // Overlap of logical Z with every X plaquette must be even; with
        // logical X it must be odd (they anticommute).
        for p in l.plaquettes_of(PlaquetteKind::X) {
            let overlap = p
                .data
                .iter()
                .filter_map(|&c| l.data_index(c))
                .filter(|i| zl.contains(i))
                .count();
            assert!(overlap % 2 == 0, "X plaquette at {:?}", p.center);
        }
        for p in l.plaquettes_of(PlaquetteKind::Z) {
            let overlap = p
                .data
                .iter()
                .filter_map(|&c| l.data_index(c))
                .filter(|i| xl.contains(i))
                .count();
            assert!(overlap % 2 == 0, "Z plaquette at {:?}", p.center);
        }
        assert_eq!(zl.intersection(&xl).count() % 2, 1);
    }

    #[test]
    fn data_index_roundtrip() {
        let l = SurfaceLayout::new(3);
        for (i, &c) in l.data_coords().iter().enumerate() {
            assert_eq!(l.data_index(c), Some(i));
        }
        assert_eq!(l.data_index((0, 0)), None);
        assert_eq!(l.data_index((7, 1)), None);
    }

    #[test]
    fn logical_weight_is_distance() {
        for d in [3usize, 5, 7] {
            let l = SurfaceLayout::new(d);
            assert_eq!(l.logical_z_support().len(), d);
            assert_eq!(l.logical_x_support().len(), d);
        }
    }
}
