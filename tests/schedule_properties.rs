//! Property-style integration tests over the schedule generators: for
//! every setup, basis, and a sweep of distances/cavity depths, the
//! generated circuits satisfy structural invariants and the analytic
//! operation-count formulas.

use vlq::arch::HardwareParams;
use vlq::circuit::exec::validate_with_tableau;
use vlq::circuit::ir::{GateClass, Instruction};
use vlq::sim::CliffordGate;
use vlq::surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

use rand::rngs::SmallRng;
use rand::SeedableRng;

fn hw_for(setup: Setup) -> HardwareParams {
    if setup.uses_memory() {
        HardwareParams::with_memory()
    } else {
        HardwareParams::baseline()
    }
}

fn count_class(mc: &vlq::surface::MemoryCircuit, class: GateClass) -> usize {
    mc.circuit
        .instructions
        .iter()
        .filter(|i| matches!(i, Instruction::Gate { class: c, .. } if *c == class))
        .count()
}

/// Analytic CNOT count: every plaquette touches each of its data once per
/// round, for every setup.
#[test]
fn cnot_counts_match_plaquette_weights() {
    for setup in Setup::ALL {
        for d in [3usize, 5] {
            let spec = MemorySpec::standard(setup, d, 3, Basis::Z);
            let mc = memory_circuit(spec, &hw_for(setup));
            let cnots = mc
                .circuit
                .instructions
                .iter()
                .filter(|i| {
                    matches!(
                        i,
                        Instruction::Gate {
                            gate: CliffordGate::Cnot(..),
                            ..
                        }
                    )
                })
                .count();
            // Sum of plaquette weights = 4*(full) + 2*(halves)
            //   full = (d-1)^2, halves = 2(d-1).
            let per_round = 4 * (d - 1) * (d - 1) + 2 * 2 * (d - 1);
            assert_eq!(cnots, d * per_round, "{setup} d={d}");
        }
    }
}

/// Measurement counts: one per plaquette per round plus the final data
/// readout.
#[test]
fn measurement_counts() {
    for setup in Setup::ALL {
        for d in [3usize, 5] {
            let spec = MemorySpec::standard(setup, d, 4, Basis::Z);
            let mc = memory_circuit(spec, &hw_for(setup));
            let expected = d * (d * d - 1) + d * d;
            assert_eq!(mc.circuit.num_measurements(), expected, "{setup} d={d}");
        }
    }
}

/// Load/store counts follow the embedding's paging discipline.
#[test]
fn load_store_counts() {
    let d = 3usize;
    let d2 = d * d;
    let cases = [
        // (setup, expected load/store gate count)
        (Setup::Baseline, 0),
        // init store + one load, all data:
        (Setup::NaturalAllAtOnce, 2 * d2),
        // init store + d loads + (d-1) stores:
        (Setup::NaturalInterleaved, (2 * d) * d2),
    ];
    for (setup, expected) in cases {
        let spec = MemorySpec::standard(setup, d, 5, Basis::Z);
        let mc = memory_circuit(spec, &hw_for(setup));
        assert_eq!(count_class(&mc, GateClass::LoadStore), expected, "{setup}");
    }
    // Compact: per round, each datum loads once per coalesced use-run of
    // non-host plaquettes; exact count depends on boundary structure, so
    // assert the invariant loads == stores and both scale with rounds.
    for setup in [Setup::CompactAllAtOnce, Setup::CompactInterleaved] {
        let spec = MemorySpec::standard(setup, d, 5, Basis::Z);
        let mc = memory_circuit(spec, &hw_for(setup));
        let ls = count_class(&mc, GateClass::LoadStore);
        // init stores (9) + final loads (9) + in-round pairs (even).
        assert!(ls >= 2 * d2, "{setup}: {ls}");
        assert_eq!(ls % 2, 0, "{setup}: loads and stores must pair up");
    }
}

/// Validation holds across a wider (d, k) sweep than the unit tests.
#[test]
fn validation_sweep_d5_k_variants() {
    let mut rng = SmallRng::seed_from_u64(2024);
    for setup in [Setup::CompactInterleaved, Setup::NaturalAllAtOnce] {
        for k in [2usize, 7, 16] {
            let spec = MemorySpec::standard(setup, 5, k, Basis::X);
            let mc = memory_circuit(spec, &hw_for(setup));
            let report = validate_with_tableau(&mc.circuit, &mut rng);
            assert!(
                report.passed(),
                "{setup} k={k}: {:?}",
                report.violated_detectors
            );
        }
    }
}

/// Validation at d = 7 for the trickiest schedule (Compact pipelining
/// spans round boundaries; larger lattices exercise more boundary cases).
#[test]
fn compact_validates_at_d7() {
    let spec = MemorySpec::standard(Setup::CompactInterleaved, 7, 3, Basis::Z);
    let mc = memory_circuit(spec, &HardwareParams::with_memory());
    let mut rng = SmallRng::seed_from_u64(7);
    let report = validate_with_tableau(&mc.circuit, &mut rng);
    assert!(report.passed(), "{:?}", report.violated_detectors);
}

/// No fault anywhere in any setup's noisy circuit can flip the logical
/// observable without tripping at least one detector (soundness of the
/// detector coverage).
#[test]
fn no_undetectable_logical_faults() {
    use vlq::circuit::noise::NoiseModel;
    use vlq::decoder::DecodingGraph;
    for setup in Setup::ALL {
        let spec = MemorySpec::standard(setup, 3, 3, Basis::Z);
        let mc = memory_circuit(spec, &hw_for(setup));
        let noise = if setup.uses_memory() {
            NoiseModel::memory_at_scale(2e-3)
        } else {
            NoiseModel::baseline_at_scale(2e-3)
        };
        let noisy = noise.apply(&mc.circuit);
        let g = DecodingGraph::build(&noisy, &mc.z_detectors);
        assert_eq!(
            g.undetectable_logical_mass, 0.0,
            "{setup}: undetectable logical fault mass"
        );
    }
}
