//! Pauli-frame engine throughput: bit-parallel batch sampling of full
//! memory-experiment circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vlq_arch::HardwareParams;
use vlq_circuit::exec::{sample_batch, sample_batch_into, SampleScratch};
use vlq_circuit::noise::NoiseModel;
use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame-sample");
    for setup in [Setup::Baseline, Setup::CompactInterleaved] {
        for d in [3usize, 5] {
            let k = if setup.uses_memory() { 10 } else { 1 };
            let spec = MemorySpec::standard(setup, d, k, Basis::Z);
            let hw = if setup.uses_memory() {
                HardwareParams::with_memory()
            } else {
                HardwareParams::baseline()
            };
            let mc = memory_circuit(spec, &hw);
            let noisy = if setup.uses_memory() {
                NoiseModel::memory_at_scale(2e-3)
            } else {
                NoiseModel::baseline_at_scale(2e-3)
            }
            .apply(&mc.circuit);
            let lanes = 1024usize;
            group.throughput(Throughput::Elements(lanes as u64));
            group.bench_with_input(BenchmarkId::new(format!("{setup}"), d), &d, |b, _| {
                let mut rng = SmallRng::seed_from_u64(7);
                b.iter(|| sample_batch(&noisy, lanes, &mut rng))
            });
        }
    }
    group.finish();
}

/// Scratch-reusing sampling (`sample_batch_into`, the `run_shots`
/// steady state) against the allocating `sample_batch` wrapper.
fn bench_sampling_scratch(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame-sample-scratch");
    for d in [3usize, 5] {
        let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
        let mc = memory_circuit(spec, &HardwareParams::baseline());
        let noisy = NoiseModel::baseline_at_scale(2e-3).apply(&mc.circuit);
        let lanes = 1024usize;
        group.throughput(Throughput::Elements(lanes as u64));
        group.bench_with_input(BenchmarkId::new("reused", d), &d, |b, _| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut scratch = SampleScratch::new();
            b.iter(|| sample_batch_into(&noisy, lanes, &mut rng, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("allocating", d), &d, |b, _| {
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| sample_batch(&noisy, lanes, &mut rng))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling, bench_sampling_scratch);
criterion_main!(benches);
