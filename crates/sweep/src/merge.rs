//! Merging and verifying sweep artifacts, plus the strict record-row
//! parser and the `.meta.json` sidecar schema.
//!
//! A sharded sweep (`--shard i/N`, see [`crate::shard`]) writes the
//! same CSV/JSONL artifacts as a full run, just restricted to the grid
//! points with `global_index % N == i` — and a `.meta.json` sidecar
//! recording the seed, the spec fingerprint, the full point count, and
//! the shard coordinates. [`merge_artifacts`] interleaves N such shard
//! directories back into global point order and writes artifacts
//! **byte-identical** to the unsharded run's; [`verify_artifact`]
//! checks a single artifact's internal consistency (row counts, seed
//! column, CSV↔JSONL agreement) so CI needs no external tooling.
//!
//! Every validation failure is a typed error ([`MergeError`] /
//! [`ArtifactError`]); the `sweep-merge` binary maps them to exit
//! code 2. Unlike the pre-sharding resume loader, the row parser here
//! is *strict*: a truncated or garbled line is a hard error, never
//! silently skipped.

use std::fmt;
use std::io::{self, BufRead, Write};
use std::path::{Path, PathBuf};

use crate::plan::ShardPlan;
use crate::shard::ShardSpec;
use crate::sink::{SweepRecord, RECORD_COLUMNS};
use crate::spec::{KnobSetting, SweepPoint};
use vlq_decoder::DecoderKind;
use vlq_surface::schedule::{Basis, Setup};

/// Schema tag written into (and required of) `.meta.json` sidecars.
pub const META_SCHEMA: &str = "vlq-sweep-record-v1";

/// A malformed or unreadable artifact file (one directory's view).
#[derive(Debug)]
pub enum ArtifactError {
    /// The file could not be read.
    Io(PathBuf, io::Error),
    /// A line (1-based) failed to parse as a sweep record — truncated
    /// tails and garbage are hard errors, not skipped rows.
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// What the parser objected to.
        reason: String,
    },
    /// A row was sampled under a different base seed than expected (or
    /// than the artifact's other rows).
    SeedMismatch {
        /// The offending file.
        path: PathBuf,
        /// 1-based line number.
        line: usize,
        /// The seed the row carries.
        found: u64,
        /// The seed it had to carry.
        expected: u64,
    },
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            ArtifactError::Malformed { path, line, reason } => {
                write!(f, "{}:{line}: malformed record: {reason}", path.display())
            }
            ArtifactError::SeedMismatch {
                path,
                line,
                found,
                expected,
            } => write!(
                f,
                "{}:{line}: seed {found} does not match expected seed {expected}",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(_, e) => Some(e),
            _ => None,
        }
    }
}

/// Why N artifact directories could not be merged (or one verified).
#[derive(Debug)]
pub enum MergeError {
    /// A shard artifact was unreadable or malformed.
    Artifact(ArtifactError),
    /// An expected artifact file is missing.
    MissingFile(PathBuf),
    /// CSV headers (or row/line counts within one directory) disagree.
    SchemaMismatch(String),
    /// A row's global index is not what shard interleaving requires.
    IndexMismatch(String),
    /// Shards disagree on seed, spec fingerprint, point count, or shard
    /// coordinates.
    MetaMismatch(String),
    /// A verify-mode expectation (`--expect-rows`, …) failed.
    Expectation(String),
    /// Writing the merged artifact failed.
    Io(PathBuf, io::Error),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Artifact(e) => e.fmt(f),
            MergeError::MissingFile(p) => write!(f, "missing artifact file {}", p.display()),
            MergeError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            MergeError::IndexMismatch(m) => write!(f, "index mismatch: {m}"),
            MergeError::MetaMismatch(m) => write!(f, "meta mismatch: {m}"),
            MergeError::Expectation(m) => write!(f, "expectation failed: {m}"),
            MergeError::Io(p, e) => write!(f, "{}: {e}", p.display()),
        }
    }
}

impl std::error::Error for MergeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MergeError::Artifact(e) => Some(e),
            MergeError::Io(_, e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArtifactError> for MergeError {
    fn from(e: ArtifactError) -> Self {
        MergeError::Artifact(e)
    }
}

/// The `.meta.json` sidecar a sweep binary writes next to its CSV/JSONL
/// artifacts: enough identity for `sweep-merge` to refuse to interleave
/// shards of different sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepMeta {
    /// The sweep's base seed (must match the artifact's `seed` column).
    pub seed: u64,
    /// Fingerprint of the full (unsharded) sweep: every spec the binary
    /// ran, folded via [`crate::spec::combine_fingerprints`].
    pub spec_fingerprint: u64,
    /// Total points of the full (unsharded) run.
    pub points: u64,
    /// Which shard of those points this artifact holds.
    pub shard: ShardSpec,
    /// Fingerprint of the explicit [`ShardPlan`] the run was sharded
    /// under (`--shard-by time`), `None` for the default stride rule.
    /// Merged sidecars always carry `None`, so they stay byte-identical
    /// to a single-process run's regardless of how the fleet sharded.
    pub plan: Option<u64>,
}

impl SweepMeta {
    /// The sidecar path for `<dir>/<stem>.meta.json`.
    pub fn path_for(dir: &Path, stem: &str) -> PathBuf {
        dir.join(format!("{stem}.meta.json"))
    }

    /// Renders the sidecar's single JSON line (fixed field order, so
    /// a merged sidecar is byte-identical to a full run's; the `plan`
    /// field is omitted entirely when absent, preserving the exact
    /// pre-plan rendering).
    pub fn render(&self) -> String {
        let plan = self
            .plan
            .map_or(String::new(), |fp| format!(",\"plan\":\"{fp:016x}\""));
        format!(
            "{{\"schema\":\"{META_SCHEMA}\",\"seed\":{},\"spec_fingerprint\":\"{:016x}\",\"points\":{},\"shard\":\"{}\"{plan}}}",
            self.seed, self.spec_fingerprint, self.points, self.shard
        )
    }

    /// Writes the sidecar to `<dir>/<stem>.meta.json`.
    ///
    /// # Errors
    ///
    /// I/O errors creating or writing the file.
    pub fn write(&self, dir: &Path, stem: &str) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(Self::path_for(dir, stem), format!("{}\n", self.render()))
    }

    /// Loads and validates a sidecar.
    ///
    /// # Errors
    ///
    /// [`ArtifactError::Io`] when unreadable, [`ArtifactError::Malformed`]
    /// when the schema tag or any field is wrong.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| ArtifactError::Io(path.to_path_buf(), e))?;
        let bad = |reason: &str| ArtifactError::Malformed {
            path: path.to_path_buf(),
            line: 1,
            reason: reason.to_string(),
        };
        let obj = parse_flat_json(text.trim()).ok_or_else(|| bad("not a flat JSON object"))?;
        let field = |k: &str| obj.get(k).ok_or_else(|| bad(&format!("missing {k:?}")));
        match field("schema")? {
            JsonValue::Str(s) if s == META_SCHEMA => {}
            other => return Err(bad(&format!("schema {other:?}, expected {META_SCHEMA:?}"))),
        }
        let uint = |k: &str| -> Result<u64, ArtifactError> {
            match field(k)? {
                JsonValue::Num { raw, .. } => {
                    raw.parse().map_err(|_| bad(&format!("{k:?} is not a u64")))
                }
                _ => Err(bad(&format!("{k:?} is not a number"))),
            }
        };
        let spec_fingerprint = match field("spec_fingerprint")? {
            JsonValue::Str(s) => {
                u64::from_str_radix(s, 16).map_err(|_| bad("spec_fingerprint is not a hex u64"))?
            }
            _ => return Err(bad("spec_fingerprint is not a string")),
        };
        let shard: ShardSpec = match field("shard")? {
            JsonValue::Str(s) => s.parse().map_err(|e| bad(&format!("shard: {e}")))?,
            _ => return Err(bad("shard is not a string")),
        };
        let plan = match obj.get("plan") {
            None => None,
            Some(JsonValue::Str(s)) => Some(
                u64::from_str_radix(s, 16).map_err(|_| bad("plan is not a hex u64 fingerprint"))?,
            ),
            Some(_) => return Err(bad("plan is not a string")),
        };
        Ok(SweepMeta {
            seed: uint("seed")?,
            spec_fingerprint,
            points: uint("points")?,
            shard,
            plan,
        })
    }
}

/// Renders the CSV data row a [`crate::sink::CsvSink`] would write for
/// this record (without trailing newline).
pub fn record_csv_line(r: &SweepRecord) -> String {
    crate::sink::csv_row(r)
}

/// Renders the JSONL line a [`crate::sink::JsonlSink`] would write for
/// this record (without trailing newline).
pub fn record_jsonl_line(r: &SweepRecord) -> String {
    crate::sink::jsonl_row(r)
}

/// Parses one `JsonlSink`-format artifact line back into a
/// [`SweepRecord`].
///
/// Strict: every required column must be present and well-typed.
/// Integer columns (`index`, `d`, `k`, `shots`, `failures`, `seed`) are
/// parsed from their raw digits, so 64-bit seeds survive exactly.
///
/// # Errors
///
/// A human-readable reason (callers wrap it with file/line context).
pub fn parse_record_line(line: &str) -> Result<SweepRecord, String> {
    let obj = parse_flat_json(line).ok_or("not a flat JSON object")?;
    let field = |k: &str| obj.get(k).ok_or_else(|| format!("missing key {k:?}"));
    let uint = |k: &str| -> Result<u64, String> {
        match field(k)? {
            JsonValue::Num { raw, .. } => raw
                .parse()
                .map_err(|_| format!("{k:?} is not an unsigned integer: {raw:?}")),
            other => Err(format!("{k:?} is not a number: {other:?}")),
        }
    };
    let string = |k: &str| -> Result<String, String> {
        match field(k)? {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("{k:?} is not a string: {other:?}")),
        }
    };
    let float = |k: &str| -> Result<f64, String> {
        match field(k)? {
            JsonValue::Num { value, .. } => Ok(*value),
            other => Err(format!("{k:?} is not a number: {other:?}")),
        }
    };

    let setup_name = string("setup")?;
    let setup = Setup::ALL
        .into_iter()
        .find(|s| s.to_string() == setup_name)
        .ok_or_else(|| format!("unknown setup {setup_name:?}"))?;
    let basis = match string("basis")?.as_str() {
        "z" => Basis::Z,
        "x" => Basis::X,
        other => return Err(format!("unknown basis {other:?}")),
    };
    let decoder_name = string("decoder")?;
    let decoder = DecoderKind::parse(&decoder_name)
        .ok_or_else(|| format!("unknown decoder {decoder_name:?}"))?;
    let knob = match (field("knob")?, field("knob_value")?) {
        (JsonValue::Null, JsonValue::Null) => None,
        (JsonValue::Str(name), JsonValue::Num { value, .. }) => Some(KnobSetting {
            name: name.clone(),
            value: *value,
        }),
        (a, b) => return Err(format!("inconsistent knob columns: {a:?} / {b:?}")),
    };
    let program = match field("program")? {
        JsonValue::Null => None,
        JsonValue::Str(name) => Some(name.clone()),
        other => return Err(format!("\"program\" is not a string: {other:?}")),
    };
    let d = uint("d")? as usize;
    let rounds_col = uint("rounds")? as usize;
    let point = SweepPoint {
        setup,
        basis,
        d,
        p: float("p")?,
        k: uint("k")? as usize,
        // The artifact stores the *effective* round count; `rounds = d`
        // is the spec's `None` convention and renders identically.
        rounds: (rounds_col != d).then_some(rounds_col),
        decoder,
        shots: uint("shots")?,
        knob,
        program,
    };
    Ok(SweepRecord {
        index: uint("index")? as usize,
        point,
        base_seed: uint("seed")?,
        shots: uint("shots")?,
        failures: uint("failures")?,
    })
}

/// One loaded (and internally validated) sweep-record artifact
/// directory: raw lines for verbatim re-emission plus parsed records.
pub struct RecordArtifact {
    /// The directory the artifact was loaded from.
    pub dir: PathBuf,
    /// Raw CSV data rows (header excluded), verbatim.
    pub csv_rows: Vec<String>,
    /// Raw JSONL lines, verbatim.
    pub jsonl_lines: Vec<String>,
    /// Parsed records, in file order.
    pub records: Vec<SweepRecord>,
    /// The `.meta.json` sidecar, when present.
    pub meta: Option<SweepMeta>,
}

/// Reads just a file's first line (the CSV header), without the
/// trailing newline.
fn read_header(path: &Path) -> Result<String, MergeError> {
    if !path.exists() {
        return Err(MergeError::MissingFile(path.to_path_buf()));
    }
    let wrap = |e: io::Error| MergeError::Artifact(ArtifactError::Io(path.to_path_buf(), e));
    let mut line = String::new();
    io::BufReader::new(std::fs::File::open(path).map_err(wrap)?)
        .read_line(&mut line)
        .map_err(wrap)?;
    while line.ends_with(['\n', '\r']) {
        line.pop();
    }
    Ok(line)
}

fn read_lines(path: &Path) -> Result<Vec<String>, MergeError> {
    if !path.exists() {
        return Err(MergeError::MissingFile(path.to_path_buf()));
    }
    let file = std::fs::File::open(path)
        .map_err(|e| MergeError::Artifact(ArtifactError::Io(path.to_path_buf(), e)))?;
    io::BufReader::new(file)
        .lines()
        .collect::<io::Result<Vec<String>>>()
        .map_err(|e| MergeError::Artifact(ArtifactError::Io(path.to_path_buf(), e)))
}

/// Loads `<dir>/<stem>.{csv,jsonl}` (+ optional `.meta.json`) and
/// checks internal consistency:
///
/// - the CSV header is exactly [`RECORD_COLUMNS`];
/// - CSV row count equals JSONL line count;
/// - every JSONL line parses strictly as a record, and re-rendering the
///   parsed record reproduces both the JSONL line and the CSV row
///   byte-for-byte (so the two files agree on every column, including
///   the derived `rate` / `std_error`);
/// - all rows carry the same seed, equal to the sidecar's (when
///   present).
///
/// # Errors
///
/// Typed [`MergeError`]s for every violated invariant.
pub fn load_record_artifact(dir: &Path, stem: &str) -> Result<RecordArtifact, MergeError> {
    let csv_path = dir.join(format!("{stem}.csv"));
    let jsonl_path = dir.join(format!("{stem}.jsonl"));
    let mut csv_lines = read_lines(&csv_path)?;
    let jsonl_lines = read_lines(&jsonl_path)?;

    let expected_header = RECORD_COLUMNS.join(",");
    if csv_lines.first().map(String::as_str) != Some(expected_header.as_str()) {
        return Err(MergeError::SchemaMismatch(format!(
            "{} does not start with the sweep-record header {expected_header:?}",
            csv_path.display()
        )));
    }
    let csv_rows: Vec<String> = csv_lines.drain(..).skip(1).collect();
    if csv_rows.len() != jsonl_lines.len() {
        return Err(MergeError::SchemaMismatch(format!(
            "{} has {} rows but {} has {} lines",
            csv_path.display(),
            csv_rows.len(),
            jsonl_path.display(),
            jsonl_lines.len()
        )));
    }

    let meta = {
        let meta_path = SweepMeta::path_for(dir, stem);
        if meta_path.exists() {
            Some(SweepMeta::load(&meta_path)?)
        } else {
            None
        }
    };

    let mut records = Vec::with_capacity(jsonl_lines.len());
    let mut seed: Option<u64> = meta.map(|m| m.seed);
    for (i, line) in jsonl_lines.iter().enumerate() {
        let record = parse_record_line(line).map_err(|reason| ArtifactError::Malformed {
            path: jsonl_path.clone(),
            line: i + 1,
            reason,
        })?;
        let rendered = record_jsonl_line(&record);
        if &rendered != line {
            return Err(ArtifactError::Malformed {
                path: jsonl_path.clone(),
                line: i + 1,
                reason: format!("line is not in canonical sink form (expected {rendered:?})"),
            }
            .into());
        }
        let expected_csv = record_csv_line(&record);
        if csv_rows[i] != expected_csv {
            return Err(MergeError::SchemaMismatch(format!(
                "{}:{} disagrees with {}:{} (CSV row {:?}, JSONL implies {:?})",
                csv_path.display(),
                i + 2,
                jsonl_path.display(),
                i + 1,
                csv_rows[i],
                expected_csv
            )));
        }
        match seed {
            None => seed = Some(record.base_seed),
            Some(expected) if record.base_seed != expected => {
                return Err(ArtifactError::SeedMismatch {
                    path: jsonl_path.clone(),
                    line: i + 1,
                    found: record.base_seed,
                    expected,
                }
                .into());
            }
            Some(_) => {}
        }
        records.push(record);
    }

    Ok(RecordArtifact {
        dir: dir.to_path_buf(),
        csv_rows,
        jsonl_lines,
        records,
        meta,
    })
}

/// Checks that `records` hold exactly the global indices shard `shard`
/// owns out of `total`, in ascending order: record `j` must have index
/// `shard.index + j * shard.count`.
fn validate_shard_indices(
    artifact: &RecordArtifact,
    shard: ShardSpec,
    total: usize,
) -> Result<(), MergeError> {
    if artifact.records.len() != shard.len_of(total) {
        return Err(MergeError::IndexMismatch(format!(
            "{}: shard {shard} of {total} points must hold {} records, found {}",
            artifact.dir.display(),
            shard.len_of(total),
            artifact.records.len()
        )));
    }
    for (j, r) in artifact.records.iter().enumerate() {
        let expected = shard.index + j * shard.count;
        if r.index != expected {
            return Err(MergeError::IndexMismatch(format!(
                "{}: record {j} has global index {}, shard {shard} expects {expected}",
                artifact.dir.display(),
                r.index
            )));
        }
    }
    Ok(())
}

/// Outcome of a successful [`merge_artifacts`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeReport {
    /// Total merged data rows.
    pub rows: usize,
    /// How many shard directories were interleaved.
    pub shards: usize,
    /// The common base seed (`None` for an empty merge).
    pub seed: Option<u64>,
    /// Whether `.meta.json` sidecars were present (and a merged sidecar
    /// written).
    pub meta: bool,
}

/// Merges N shard artifact directories (passed in shard order: the
/// `i`-th directory must hold shard `i/N`) back into the artifacts an
/// unsharded run would have written under `out_dir`.
///
/// Validates each shard (see [`load_record_artifact`]), that all shards
/// agree on seed and — when `.meta.json` sidecars are present — on
/// spec fingerprint, total point count, and plan fingerprint, and that
/// the shards' global indices recompose exactly `0..total` (the default
/// stride interleave, or any disjoint cover when the sidecars carry an
/// explicit plan fingerprint). Rows are re-emitted verbatim in global
/// index order, so the merged CSV/JSONL are byte-identical to a full
/// run's (this is what the canonical-form check in the loader
/// guarantees); the merged artifact is also a valid `--resume` cache.
///
/// # Errors
///
/// Typed [`MergeError`]s; the `sweep-merge` binary exits 2 on any.
pub fn merge_artifacts(
    shard_dirs: &[PathBuf],
    stem: &str,
    out_dir: &Path,
) -> Result<MergeReport, MergeError> {
    merge_artifacts_with_plan(shard_dirs, stem, out_dir, None)
}

/// [`merge_artifacts`] with an explicit [`ShardPlan`] to validate
/// *exact* ownership against (`sweep-merge --plan`): beyond the
/// disjoint-cover checks, every record must sit on precisely the shard
/// the plan assigned it to, and the plan's fingerprint must match the
/// sidecars'. Passing a stride plan (or `None`) requires the default
/// stride layout.
///
/// # Errors
///
/// Typed [`MergeError`]s; the `sweep-merge` binary exits 2 on any.
pub fn merge_artifacts_with_plan(
    shard_dirs: &[PathBuf],
    stem: &str,
    out_dir: &Path,
    plan: Option<&ShardPlan>,
) -> Result<MergeReport, MergeError> {
    assert!(!shard_dirs.is_empty(), "merge of zero shard directories");
    // Dispatch on the first shard's CSV header: sweep-record artifacts
    // get full semantic validation; any other schema (the analytic
    // binaries' `Table` artifacts, sharded by row index) merges
    // structurally. Only the header line is read here — each path then
    // loads its shards in full.
    if read_header(&shard_dirs[0].join(format!("{stem}.csv")))? != RECORD_COLUMNS.join(",") {
        if plan.is_some() && plan.and_then(ShardPlan::fingerprint).is_some() {
            return Err(MergeError::MetaMismatch(format!(
                "{stem}: generic table artifacts are always stride-sharded; --plan does not apply"
            )));
        }
        return merge_generic(shard_dirs, stem, out_dir);
    }
    let count = shard_dirs.len();
    let artifacts: Vec<RecordArtifact> = shard_dirs
        .iter()
        .map(|dir| load_record_artifact(dir, stem))
        .collect::<Result<_, _>>()?;
    let total: usize = artifacts.iter().map(|a| a.records.len()).sum();

    // Cross-shard identity: seeds always; fingerprints, point counts,
    // and plan fingerprints through the sidecars when present
    // (all-or-none).
    let with_meta = artifacts.iter().filter(|a| a.meta.is_some()).count();
    if with_meta != 0 && with_meta != count {
        return Err(MergeError::MetaMismatch(format!(
            "{with_meta} of {count} shards have a .meta.json sidecar; need all or none"
        )));
    }
    let mut seed: Option<u64> = None;
    for (i, a) in artifacts.iter().enumerate() {
        let shard = ShardSpec::new(i, count).expect("i < count");
        if let Some(meta) = a.meta {
            if meta.shard != shard {
                return Err(MergeError::MetaMismatch(format!(
                    "{}: sidecar says shard {}, but it was passed as shard {shard}",
                    a.dir.display(),
                    meta.shard
                )));
            }
            if meta.points as usize != total {
                return Err(MergeError::MetaMismatch(format!(
                    "{}: sidecar says {} total points, shards sum to {total}",
                    a.dir.display(),
                    meta.points
                )));
            }
            let reference = artifacts[0].meta.expect("all-or-none checked above");
            if meta.spec_fingerprint != reference.spec_fingerprint {
                return Err(MergeError::MetaMismatch(format!(
                    "{}: spec fingerprint {:016x} differs from {}'s {:016x} — shards of different sweeps",
                    a.dir.display(),
                    meta.spec_fingerprint,
                    artifacts[0].dir.display(),
                    reference.spec_fingerprint
                )));
            }
            if meta.plan != reference.plan {
                return Err(MergeError::MetaMismatch(format!(
                    "{}: plan fingerprint {:?} differs from {}'s {:?} — shards of different plans",
                    a.dir.display(),
                    meta.plan.map(|fp| format!("{fp:016x}")),
                    artifacts[0].dir.display(),
                    reference.plan.map(|fp| format!("{fp:016x}")),
                )));
            }
        }
        let a_seed = a
            .meta
            .map(|m| m.seed)
            .or(a.records.first().map(|r| r.base_seed));
        match (seed, a_seed) {
            (None, s) => seed = s,
            (Some(expected), Some(found)) if found != expected => {
                return Err(MergeError::MetaMismatch(format!(
                    "{}: seed {found} differs from other shards' seed {expected}",
                    a.dir.display()
                )));
            }
            _ => {}
        }
    }
    // Reconcile the sidecars' plan fingerprint with any explicit plan.
    let meta_plan_fp = artifacts[0].meta.and_then(|m| m.plan);
    let arg_plan_fp = plan.and_then(ShardPlan::fingerprint);
    if let Some(p) = plan {
        if p.count() != count {
            return Err(MergeError::MetaMismatch(format!(
                "plan has {} shards, {count} directories passed",
                p.count()
            )));
        }
        if let Some(points) = p.points() {
            if points != total {
                return Err(MergeError::MetaMismatch(format!(
                    "plan covers {points} points, shards sum to {total}"
                )));
            }
        }
        if with_meta == count && arg_plan_fp != meta_plan_fp {
            return Err(MergeError::MetaMismatch(format!(
                "plan fingerprint {:?} does not match the sidecars' {:?}",
                arg_plan_fp.map(|fp| format!("{fp:016x}")),
                meta_plan_fp.map(|fp| format!("{fp:016x}")),
            )));
        }
    }

    let planned = meta_plan_fp.is_some() || arg_plan_fp.is_some();
    if planned {
        // Arbitrary disjoint cover: per-shard strictly ascending, union
        // exactly 0..total; with an explicit plan, exact ownership too.
        let mut cover: Vec<Option<(usize, usize)>> = vec![None; total];
        for (i, a) in artifacts.iter().enumerate() {
            let mut prev: Option<usize> = None;
            for (j, r) in a.records.iter().enumerate() {
                if prev.is_some_and(|p| r.index <= p) {
                    return Err(MergeError::IndexMismatch(format!(
                        "{}: record {j} has global index {} out of ascending order",
                        a.dir.display(),
                        r.index
                    )));
                }
                prev = Some(r.index);
                if r.index >= total {
                    return Err(MergeError::IndexMismatch(format!(
                        "{}: record {j} has global index {} beyond the {total}-point grid",
                        a.dir.display(),
                        r.index
                    )));
                }
                if let Some((other, _)) = cover[r.index] {
                    return Err(MergeError::IndexMismatch(format!(
                        "{}: global index {} already emitted by {}",
                        a.dir.display(),
                        r.index,
                        artifacts[other].dir.display()
                    )));
                }
                if let Some(p) = plan {
                    if p.owner_of(r.index) != Some(i) {
                        return Err(MergeError::IndexMismatch(format!(
                            "{}: global index {} belongs to shard {:?} under the plan, found on shard {i}",
                            a.dir.display(),
                            r.index,
                            p.owner_of(r.index)
                        )));
                    }
                }
                cover[r.index] = Some((i, j));
            }
        }
        // Disjointness + counts guarantee full coverage, but say which
        // index is missing rather than relying on that arithmetic.
        let cover: Vec<(usize, usize)> = cover
            .into_iter()
            .enumerate()
            .map(|(g, c)| {
                c.ok_or_else(|| {
                    MergeError::IndexMismatch(format!("no shard emitted global index {g}"))
                })
            })
            .collect::<Result<_, _>>()?;
        let header = RECORD_COLUMNS.join(",");
        let pick = |rows: fn(&RecordArtifact) -> &[String]| -> Vec<&str> {
            cover
                .iter()
                .map(|&(i, j)| rows(&artifacts[i])[j].as_str())
                .collect()
        };
        write_rows(
            &out_dir.join(format!("{stem}.csv")),
            Some(&header),
            &pick(|a| &a.csv_rows),
        )?;
        write_rows(
            &out_dir.join(format!("{stem}.jsonl")),
            None,
            &pick(|a| &a.jsonl_lines),
        )?;
    } else {
        for (i, a) in artifacts.iter().enumerate() {
            let shard = ShardSpec::new(i, count).expect("i < count");
            validate_shard_indices(a, shard, total)?;
        }
        let header = RECORD_COLUMNS.join(",");
        let csv_rows: Vec<&[String]> = artifacts.iter().map(|a| a.csv_rows.as_slice()).collect();
        let jsonl_rows: Vec<&[String]> =
            artifacts.iter().map(|a| a.jsonl_lines.as_slice()).collect();
        write_interleaved(
            &out_dir.join(format!("{stem}.csv")),
            Some(&header),
            &csv_rows,
        )?;
        write_interleaved(&out_dir.join(format!("{stem}.jsonl")), None, &jsonl_rows)?;
    }
    if let Some(meta) = artifacts[0].meta {
        SweepMeta {
            shard: ShardSpec::FULL,
            plan: None,
            ..meta
        }
        .write(out_dir, stem)
        .map_err(|e| MergeError::Io(SweepMeta::path_for(out_dir, stem), e))?;
    }
    Ok(MergeReport {
        rows: total,
        shards: count,
        seed,
        meta: with_meta == count,
    })
}

/// Rewrites a JSON-lines sweep artifact down to its longest valid
/// prefix: the leading run of lines that parse strictly as canonical
/// sweep records. A child process killed mid-write leaves at most one
/// torn final line; the supervisor salvages the file so the restarted
/// child's strict `--resume` loader accepts it. Returns
/// `(kept, dropped)` line counts; the file is only rewritten when
/// something was dropped.
///
/// # Errors
///
/// I/O errors reading or rewriting the file.
pub fn salvage_jsonl(path: &Path) -> io::Result<(usize, usize)> {
    let text = std::fs::read_to_string(path)?;
    let lines: Vec<&str> = text.lines().collect();
    let mut kept = 0;
    for line in &lines {
        match parse_record_line(line) {
            Ok(r) if record_jsonl_line(&r) == *line => kept += 1,
            _ => break,
        }
    }
    let dropped = lines.len() - kept;
    if dropped > 0 || (kept > 0 && !text.ends_with('\n')) {
        let mut salvaged = String::with_capacity(text.len());
        for line in &lines[..kept] {
            salvaged.push_str(line);
            salvaged.push('\n');
        }
        std::fs::write(path, salvaged)?;
    }
    Ok((kept, dropped))
}

/// Writes the shards' rows interleaved back into global order — global
/// row `g` is row `g / N` of shard `g % N` — behind an optional header.
/// The single merge writer for both the record-schema and structural
/// paths, so the interleave rule cannot diverge between them.
fn write_interleaved(
    path: &Path,
    header: Option<&str>,
    shard_rows: &[&[String]],
) -> Result<(), MergeError> {
    let count = shard_rows.len();
    let total: usize = shard_rows.iter().map(|rows| rows.len()).sum();
    let wrap = |e: io::Error| MergeError::Io(path.to_path_buf(), e);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(wrap)?;
    }
    let mut w = io::BufWriter::new(std::fs::File::create(path).map_err(wrap)?);
    if let Some(h) = header {
        writeln!(w, "{h}").map_err(wrap)?;
    }
    for g in 0..total {
        writeln!(w, "{}", shard_rows[g % count][g / count]).map_err(wrap)?;
    }
    w.flush().map_err(wrap)
}

/// Writes an explicit row sequence (already in global order — the
/// planned-merge path resolves each global index to its shard row
/// before calling this) behind an optional header.
fn write_rows(path: &Path, header: Option<&str>, rows: &[&str]) -> Result<(), MergeError> {
    let wrap = |e: io::Error| MergeError::Io(path.to_path_buf(), e);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(wrap)?;
    }
    let mut w = io::BufWriter::new(std::fs::File::create(path).map_err(wrap)?);
    if let Some(h) = header {
        writeln!(w, "{h}").map_err(wrap)?;
    }
    for row in rows {
        writeln!(w, "{row}").map_err(wrap)?;
    }
    w.flush().map_err(wrap)
}

/// Structural merge for non-record artifacts (`Table`-schema CSV/JSONL
/// sharded by row index): headers must agree, per-shard row counts must
/// match the interleaving shape, and rows are woven back round-robin.
fn merge_generic(
    shard_dirs: &[PathBuf],
    stem: &str,
    out_dir: &Path,
) -> Result<MergeReport, MergeError> {
    let count = shard_dirs.len();
    let mut headers: Vec<String> = Vec::with_capacity(count);
    let mut csv_rows: Vec<Vec<String>> = Vec::with_capacity(count);
    let mut jsonl_rows: Vec<Vec<String>> = Vec::with_capacity(count);
    for dir in shard_dirs {
        let csv_path = dir.join(format!("{stem}.csv"));
        let mut csv = read_lines(&csv_path)?;
        let jsonl = read_lines(&dir.join(format!("{stem}.jsonl")))?;
        if csv.is_empty() {
            return Err(MergeError::SchemaMismatch(format!(
                "{} has no header row",
                csv_path.display()
            )));
        }
        let header = csv.remove(0);
        if csv.len() != jsonl.len() {
            return Err(MergeError::SchemaMismatch(format!(
                "{}: {} CSV rows vs {} JSONL lines",
                dir.display(),
                csv.len(),
                jsonl.len()
            )));
        }
        headers.push(header);
        csv_rows.push(csv);
        jsonl_rows.push(jsonl);
    }
    if let Some(other) = headers.iter().position(|h| h != &headers[0]) {
        return Err(MergeError::SchemaMismatch(format!(
            "{} and {} have different CSV headers",
            shard_dirs[0].display(),
            shard_dirs[other].display()
        )));
    }
    let total: usize = csv_rows.iter().map(Vec::len).sum();
    for (i, rows) in csv_rows.iter().enumerate() {
        let shard = ShardSpec::new(i, count).expect("i < count");
        if rows.len() != shard.len_of(total) {
            return Err(MergeError::IndexMismatch(format!(
                "{}: shard {shard} of {total} rows must hold {} rows, found {}",
                shard_dirs[i].display(),
                shard.len_of(total),
                rows.len()
            )));
        }
    }
    let csv_slices: Vec<&[String]> = csv_rows.iter().map(Vec::as_slice).collect();
    let jsonl_slices: Vec<&[String]> = jsonl_rows.iter().map(Vec::as_slice).collect();
    write_interleaved(
        &out_dir.join(format!("{stem}.csv")),
        Some(&headers[0]),
        &csv_slices,
    )?;
    write_interleaved(&out_dir.join(format!("{stem}.jsonl")), None, &jsonl_slices)?;
    Ok(MergeReport {
        rows: total,
        shards: count,
        seed: None,
        meta: false,
    })
}

/// Optional expectations for [`verify_artifact`] (all `None` checks
/// only internal consistency).
#[derive(Clone, Copy, Debug, Default)]
pub struct VerifyExpectations {
    /// Required data-row count.
    pub rows: Option<usize>,
    /// Required uniform base seed.
    pub seed: Option<u64>,
    /// Required shot count on every row.
    pub shots: Option<u64>,
}

/// Outcome of a successful [`verify_artifact`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyReport {
    /// Data rows found.
    pub rows: usize,
    /// The uniform base seed (`None` for an empty artifact without
    /// sidecar).
    pub seed: Option<u64>,
}

/// Verifies one sweep-record artifact directory: everything
/// [`load_record_artifact`] checks (row counts, strict parsing, seed
/// column, byte-level CSV↔JSONL agreement), plus global-index
/// consistency against the sidecar's shard coordinates (dense `0..rows`
/// when no sidecar is present) and any explicit [`VerifyExpectations`].
///
/// This replaces CI's former python artifact check; the `sweep-merge`
/// binary exposes it as `--verify` and exits 2 on any error.
///
/// # Errors
///
/// Typed [`MergeError`]s for every violated invariant.
pub fn verify_artifact(
    dir: &Path,
    stem: &str,
    expect: &VerifyExpectations,
) -> Result<VerifyReport, MergeError> {
    let artifact = load_record_artifact(dir, stem)?;
    let rows = artifact.records.len();
    let (shard, total) = match artifact.meta {
        Some(meta) => (meta.shard, meta.points as usize),
        None => (ShardSpec::FULL, rows),
    };
    if artifact.meta.and_then(|m| m.plan).is_some() && shard != ShardSpec::FULL {
        // A planned shard owns an arbitrary subset; without the plan we
        // can still require strictly ascending in-range indices.
        let mut prev: Option<usize> = None;
        for (j, r) in artifact.records.iter().enumerate() {
            if r.index >= total || prev.is_some_and(|p| r.index <= p) {
                return Err(MergeError::IndexMismatch(format!(
                    "{}: record {j} has global index {} (planned shard needs ascending indices below {total})",
                    artifact.dir.display(),
                    r.index
                )));
            }
            prev = Some(r.index);
        }
    } else {
        validate_shard_indices(&artifact, shard, total)?;
    }
    if let Some(expected) = expect.rows {
        if rows != expected {
            return Err(MergeError::Expectation(format!(
                "{}: {rows} rows, expected {expected}",
                artifact.dir.display()
            )));
        }
    }
    let seed = artifact
        .meta
        .map(|m| m.seed)
        .or(artifact.records.first().map(|r| r.base_seed));
    if let Some(expected) = expect.seed {
        // An artifact with no rows and no sidecar has no seed at all —
        // that must fail an explicit seed expectation, not pass it
        // vacuously (a gutted artifact is exactly what --verify exists
        // to catch).
        match seed {
            Some(found) if found == expected => {}
            Some(found) => {
                return Err(MergeError::Expectation(format!(
                    "{}: seed {found}, expected {expected}",
                    artifact.dir.display()
                )));
            }
            None => {
                return Err(MergeError::Expectation(format!(
                    "{}: empty artifact carries no seed, expected {expected}",
                    artifact.dir.display()
                )));
            }
        }
    }
    if let Some(expected) = expect.shots {
        if artifact.records.is_empty() {
            return Err(MergeError::Expectation(format!(
                "{}: empty artifact cannot satisfy --expect-shots {expected}",
                artifact.dir.display()
            )));
        }
        if let Some(r) = artifact.records.iter().find(|r| r.shots != expected) {
            return Err(MergeError::Expectation(format!(
                "{}: record {} ran {} shots, expected {expected}",
                artifact.dir.display(),
                r.index,
                r.shots
            )));
        }
    }
    Ok(VerifyReport { rows, seed })
}

/// A parsed flat-JSON value (no nested containers — the record schema
/// is flat by construction). Numbers keep their raw digits so 64-bit
/// integers (seeds) round-trip exactly through `u64`, not `f64`.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum JsonValue {
    /// A string literal.
    Str(String),
    /// A number, as both lossy float and exact source text.
    Num {
        /// The `f64` interpretation.
        value: f64,
        /// The raw token, for exact integer parsing.
        raw: String,
    },
    /// A boolean literal.
    Bool(bool),
    /// The `null` literal.
    Null,
}

/// Parses one flat JSON object (`{"key":value,...}` with string,
/// number, boolean, and null values). Returns `None` on any syntax it
/// doesn't recognize.
pub(crate) fn parse_flat_json(line: &str) -> Option<std::collections::HashMap<String, JsonValue>> {
    let mut chars = line.trim().chars().peekable();
    let mut out = std::collections::HashMap::new();
    if chars.next()? != '{' {
        return None;
    }
    loop {
        match chars.peek()? {
            '}' => {
                chars.next();
                return chars.next().is_none().then_some(out);
            }
            ',' => {
                chars.next();
            }
            _ => {}
        }
        let key = parse_string(&mut chars)?;
        if chars.next()? != ':' {
            return None;
        }
        let value = parse_value(&mut chars)?;
        out.insert(key, value);
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut s = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(s),
            '\\' => match chars.next()? {
                '"' => s.push('"'),
                '\\' => s.push('\\'),
                'n' => s.push('\n'),
                'r' => s.push('\r'),
                't' => s.push('\t'),
                'u' => {
                    let code: String = (0..4).filter_map(|_| chars.next()).collect();
                    let v = u32::from_str_radix(&code, 16).ok()?;
                    s.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => s.push(c),
        }
    }
}

fn parse_value(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<JsonValue> {
    match *chars.peek()? {
        '"' => Some(JsonValue::Str(parse_string(chars)?)),
        'n' => {
            for expect in "null".chars() {
                if chars.next()? != expect {
                    return None;
                }
            }
            Some(JsonValue::Null)
        }
        't' | 'f' => {
            let word = if *chars.peek()? == 't' {
                "true"
            } else {
                "false"
            };
            for expect in word.chars() {
                if chars.next()? != expect {
                    return None;
                }
            }
            Some(JsonValue::Bool(word == "true"))
        }
        _ => {
            let mut raw = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || "+-.eE".contains(c) {
                    raw.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            raw.parse().ok().map(|value| JsonValue::Num { value, raw })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{CsvSink, JsonlSink, RecordSink};

    fn record(index: usize, d: usize, seed: u64) -> SweepRecord {
        SweepRecord {
            index,
            point: SweepPoint {
                setup: Setup::CompactInterleaved,
                basis: Basis::Z,
                d,
                p: 2e-3,
                k: 10,
                rounds: None,
                decoder: DecoderKind::Mwpm,
                shots: 500,
                knob: None,
                program: None,
            },
            base_seed: seed,
            shots: 500,
            failures: (index as u64 * 7) % 41,
        }
    }

    fn write_artifact(dir: &Path, stem: &str, records: &[SweepRecord], meta: Option<SweepMeta>) {
        std::fs::create_dir_all(dir).unwrap();
        let mut csv = CsvSink::new(Vec::new()).unwrap();
        let mut jsonl = JsonlSink::new(Vec::new());
        for r in records {
            csv.write(r).unwrap();
            jsonl.write(r).unwrap();
        }
        std::fs::write(dir.join(format!("{stem}.csv")), csv.into_inner()).unwrap();
        std::fs::write(dir.join(format!("{stem}.jsonl")), jsonl.into_inner()).unwrap();
        if let Some(meta) = meta {
            meta.write(dir, stem).unwrap();
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("vlq-merge-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_line_round_trips_exactly() {
        let mut r = record(3, 5, u64::MAX - 7); // a seed f64 cannot hold
        r.point.knob = Some(KnobSetting {
            name: "cavity-t1".to_string(),
            value: 1.5e-3,
        });
        r.point.program = Some("ghz4".to_string());
        let line = record_jsonl_line(&r);
        let parsed = parse_record_line(&line).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(record_jsonl_line(&parsed), line);
    }

    #[test]
    fn truncated_and_garbage_lines_are_hard_errors() {
        for bad in ["", "not json", "{\"d\":3", "{\"truncated\":", "{}"] {
            assert!(parse_record_line(bad).is_err(), "{bad:?} should fail");
        }
        // A syntactically-valid object with a wrong type is also fatal.
        let mut line = record_jsonl_line(&record(0, 3, 1));
        line = line.replace("\"failures\":0", "\"failures\":\"zero\"");
        assert!(parse_record_line(&line).is_err());
    }

    #[test]
    fn meta_round_trips() {
        let dir = tmp("meta");
        let meta = SweepMeta {
            seed: u64::MAX - 1,
            spec_fingerprint: 0x0123_4567_89ab_cdef,
            points: 12,
            shard: ShardSpec { index: 2, count: 3 },
            plan: None,
        };
        meta.write(&dir, "fig11").unwrap();
        let loaded = SweepMeta::load(&SweepMeta::path_for(&dir, "fig11")).unwrap();
        assert_eq!(loaded, meta);
        // A plan fingerprint round-trips too, and planless rendering is
        // byte-identical to the pre-plan schema.
        assert!(!meta.render().contains("plan"));
        let planned = SweepMeta {
            plan: Some(0xdead_beef_0042_1111),
            ..meta
        };
        planned.write(&dir, "fig11p").unwrap();
        let loaded = SweepMeta::load(&SweepMeta::path_for(&dir, "fig11p")).unwrap();
        assert_eq!(loaded, planned);
        assert!(planned
            .render()
            .ends_with(",\"plan\":\"deadbeef00421111\"}"));
    }

    #[test]
    fn merge_interleaves_back_to_the_full_artifact() {
        let base = tmp("merge-ok");
        let full: Vec<SweepRecord> = (0..7).map(|i| record(i, 3 + 2 * (i % 3), 9)).collect();
        let fp = 0xfeed_beef_u64;
        let count = 3;
        let mut dirs = Vec::new();
        for i in 0..count {
            let dir = base.join(format!("shard{i}"));
            let records: Vec<SweepRecord> = full
                .iter()
                .filter(|r| r.index % count == i)
                .cloned()
                .collect();
            let meta = SweepMeta {
                seed: 9,
                spec_fingerprint: fp,
                points: full.len() as u64,
                shard: ShardSpec::new(i, count).unwrap(),
                plan: None,
            };
            write_artifact(&dir, "fig11", &records, Some(meta));
            dirs.push(dir);
        }
        let out = base.join("merged");
        let report = merge_artifacts(&dirs, "fig11", &out).unwrap();
        assert_eq!(report.rows, 7);
        assert_eq!(report.seed, Some(9));
        assert!(report.meta);

        let reference = base.join("reference");
        write_artifact(
            &reference,
            "fig11",
            &full,
            Some(SweepMeta {
                seed: 9,
                spec_fingerprint: fp,
                points: 7,
                shard: ShardSpec::FULL,
                plan: None,
            }),
        );
        for file in ["fig11.csv", "fig11.jsonl", "fig11.meta.json"] {
            assert_eq!(
                std::fs::read(out.join(file)).unwrap(),
                std::fs::read(reference.join(file)).unwrap(),
                "{file} differs from the unsharded artifact"
            );
        }
        verify_artifact(
            &out,
            "fig11",
            &VerifyExpectations {
                rows: Some(7),
                seed: Some(9),
                shots: Some(500),
            },
        )
        .unwrap();
    }

    #[test]
    fn merge_rejects_seed_and_fingerprint_mismatches() {
        let base = tmp("merge-bad");
        let mk = |name: &str, records: &[SweepRecord], meta: Option<SweepMeta>| {
            let dir = base.join(name);
            write_artifact(&dir, "s", records, meta);
            dir
        };
        let meta = |seed, fp, shard| SweepMeta {
            seed,
            spec_fingerprint: fp,
            points: 2,
            shard,
            plan: None,
        };
        let s0 = ShardSpec::new(0, 2).unwrap();
        let s1 = ShardSpec::new(1, 2).unwrap();

        // Seed mismatch between shards.
        let a = mk("a0", &[record(0, 3, 1)], Some(meta(1, 5, s0)));
        let b = mk("b1", &[record(1, 3, 2)], Some(meta(2, 5, s1)));
        let err = merge_artifacts(&[a.clone(), b], "s", &base.join("out1")).unwrap_err();
        assert!(matches!(err, MergeError::MetaMismatch(_)), "{err}");

        // Fingerprint mismatch.
        let b = mk("b2", &[record(1, 3, 1)], Some(meta(1, 6, s1)));
        let err = merge_artifacts(&[a.clone(), b], "s", &base.join("out2")).unwrap_err();
        assert!(matches!(err, MergeError::MetaMismatch(_)), "{err}");

        // Wrong shard position.
        let b = mk("b3", &[record(1, 3, 1)], Some(meta(1, 5, s0)));
        let err = merge_artifacts(&[a.clone(), b], "s", &base.join("out3")).unwrap_err();
        assert!(matches!(err, MergeError::MetaMismatch(_)), "{err}");

        // Index gap: shard 1 carries an even index.
        let b = mk("b4", &[record(2, 3, 1)], Some(meta(1, 5, s1)));
        let err = merge_artifacts(&[a, b], "s", &base.join("out4")).unwrap_err();
        assert!(matches!(err, MergeError::IndexMismatch(_)), "{err}");
    }

    #[test]
    fn planned_shards_merge_back_to_the_full_artifact() {
        let base = tmp("merge-plan");
        let full: Vec<SweepRecord> = (0..7).map(|i| record(i, 3 + 2 * (i % 3), 9)).collect();
        let fp = 0xfeed_beef_u64;
        // A deliberately non-stride cover: contiguous runs per shard.
        let owners: Vec<u32> = vec![0, 0, 0, 1, 1, 2, 2];
        let plan = ShardPlan::Explicit { count: 3, owners };
        let plan_fp = plan.fingerprint().unwrap();
        let mut dirs = Vec::new();
        for i in 0..3 {
            let dir = base.join(format!("shard{i}"));
            let records: Vec<SweepRecord> = full
                .iter()
                .filter(|r| plan.owner_of(r.index) == Some(i))
                .cloned()
                .collect();
            let meta = SweepMeta {
                seed: 9,
                spec_fingerprint: fp,
                points: full.len() as u64,
                shard: ShardSpec::new(i, 3).unwrap(),
                plan: Some(plan_fp),
            };
            write_artifact(&dir, "fig11", &records, Some(meta));
            // Each planned shard verifies standalone (ascending check).
            verify_artifact(&dir, "fig11", &VerifyExpectations::default()).unwrap();
            dirs.push(dir);
        }
        let out = base.join("merged");
        let report = merge_artifacts_with_plan(&dirs, "fig11", &out, Some(&plan)).unwrap();
        assert_eq!(report.rows, 7);
        assert_eq!(report.seed, Some(9));

        // The merged artifact is byte-identical to the unsharded run's,
        // including the sidecar (plan field dropped on merge).
        let reference = base.join("reference");
        write_artifact(
            &reference,
            "fig11",
            &full,
            Some(SweepMeta {
                seed: 9,
                spec_fingerprint: fp,
                points: 7,
                shard: ShardSpec::FULL,
                plan: None,
            }),
        );
        for file in ["fig11.csv", "fig11.jsonl", "fig11.meta.json"] {
            assert_eq!(
                std::fs::read(out.join(file)).unwrap(),
                std::fs::read(reference.join(file)).unwrap(),
                "{file} differs from the unsharded artifact"
            );
        }
        // Without the explicit plan the sidecar fingerprints still gate
        // the merge into the disjoint-cover path.
        let out2 = base.join("merged2");
        merge_artifacts(&dirs, "fig11", &out2).unwrap();
        assert_eq!(
            std::fs::read(out.join("fig11.jsonl")).unwrap(),
            std::fs::read(out2.join("fig11.jsonl")).unwrap()
        );
        // A mismatched plan is rejected.
        let wrong = ShardPlan::Explicit {
            count: 3,
            owners: vec![0, 1, 2, 0, 1, 2, 0],
        };
        let err = merge_artifacts_with_plan(&dirs, "fig11", &base.join("out-bad"), Some(&wrong))
            .unwrap_err();
        assert!(matches!(err, MergeError::MetaMismatch(_)), "{err}");
    }

    #[test]
    fn planned_merge_rejects_overlap_and_gaps() {
        let base = tmp("merge-plan-bad");
        let fp = 0x1234_u64;
        let plan = ShardPlan::Explicit {
            count: 2,
            owners: vec![0, 1, 0, 1],
        };
        let plan_fp = plan.fingerprint().unwrap();
        let meta = |i: usize, points: u64| SweepMeta {
            seed: 9,
            spec_fingerprint: fp,
            points,
            shard: ShardSpec::new(i, 2).unwrap(),
            plan: Some(plan_fp),
        };
        let mk = |name: &str, idxs: &[usize], m: SweepMeta| {
            let dir = base.join(name);
            let records: Vec<SweepRecord> = idxs.iter().map(|&i| record(i, 3, 9)).collect();
            write_artifact(&dir, "s", &records, Some(m));
            dir
        };
        // Overlap: index 2 emitted by both shards (and 3 by neither, so
        // the totals still balance — the duplicate must be what trips).
        let a = mk("a", &[0, 2], meta(0, 4));
        let b = mk("b", &[1, 2], meta(1, 4));
        let err = merge_artifacts(&[a, b], "s", &base.join("o1")).unwrap_err();
        assert!(matches!(err, MergeError::IndexMismatch(_)), "{err}");
        // Out-of-range: index 3 beyond a 3-point grid (2 missing).
        let a = mk("a2", &[0, 3], meta(0, 3));
        let b = mk("b2", &[1], meta(1, 3));
        let err = merge_artifacts(&[a, b], "s", &base.join("o2")).unwrap_err();
        assert!(matches!(err, MergeError::IndexMismatch(_)), "{err}");
        // Descending order within a shard.
        let a3 = base.join("a3");
        let recs = vec![record(2, 3, 9), record(0, 3, 9)];
        write_artifact(&a3, "s", &recs, Some(meta(0, 3)));
        let b = mk("b3", &[1], meta(1, 3));
        let err = merge_artifacts(&[a3, b], "s", &base.join("o3")).unwrap_err();
        assert!(matches!(err, MergeError::IndexMismatch(_)), "{err}");
    }

    #[test]
    fn salvage_truncates_to_longest_valid_prefix() {
        let dir = tmp("salvage");
        let records: Vec<SweepRecord> = (0..4).map(|i| record(i, 3 + 2 * i, 7)).collect();
        write_artifact(&dir, "s", &records, None);
        let path = dir.join("s.jsonl");

        // Intact file: nothing dropped, bytes untouched.
        let before = std::fs::read(&path).unwrap();
        assert_eq!(salvage_jsonl(&path).unwrap(), (4, 0));
        assert_eq!(std::fs::read(&path).unwrap(), before);

        // Torn final line (killed mid-write): dropped, rest kept.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 15]).unwrap();
        assert_eq!(salvage_jsonl(&path).unwrap(), (3, 1));
        let cache = crate::resume::ResumeCache::load_jsonl(&path).expect("salvaged file strict");
        assert_eq!(cache.len(), 3);

        // Garbage mid-file: everything from the bad line on is dropped.
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        lines[1] = "{\"not\":\"a record\"}".to_string();
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        assert_eq!(salvage_jsonl(&path).unwrap(), (1, 3));
        assert_eq!(
            crate::resume::ResumeCache::load_jsonl(&path).unwrap().len(),
            1
        );
    }

    #[test]
    fn verify_rejects_truncated_and_tampered_artifacts() {
        let dir = tmp("verify-bad");
        let records: Vec<SweepRecord> = (0..3).map(|i| record(i, 3, 4)).collect();
        write_artifact(&dir, "s", &records, None);
        verify_artifact(&dir, "s", &VerifyExpectations::default()).unwrap();

        // Truncate the final JSONL line mid-object.
        let jsonl = dir.join("s.jsonl");
        let text = std::fs::read_to_string(&jsonl).unwrap();
        std::fs::write(&jsonl, &text[..text.len() - 20]).unwrap();
        let err = verify_artifact(&dir, "s", &VerifyExpectations::default()).unwrap_err();
        assert!(
            matches!(
                err,
                MergeError::Artifact(ArtifactError::Malformed { line: 3, .. })
            ),
            "{err}"
        );

        // Tamper with a CSV cell: CSV no longer agrees with JSONL.
        std::fs::write(&jsonl, &text).unwrap();
        let csv = dir.join("s.csv");
        let tampered = std::fs::read_to_string(&csv)
            .unwrap()
            .replace(",500,", ",501,");
        std::fs::write(&csv, tampered).unwrap();
        let err = verify_artifact(&dir, "s", &VerifyExpectations::default()).unwrap_err();
        assert!(matches!(err, MergeError::SchemaMismatch(_)), "{err}");
    }

    #[test]
    fn empty_artifact_fails_explicit_seed_and_shots_expectations() {
        let dir = tmp("verify-empty");
        write_artifact(&dir, "s", &[], None);
        // Internally consistent, so expectation-free verify passes...
        let report = verify_artifact(&dir, "s", &VerifyExpectations::default()).unwrap();
        assert_eq!(report.rows, 0);
        assert_eq!(report.seed, None);
        // ...but a gutted artifact must not satisfy explicit
        // expectations vacuously.
        for expect in [
            VerifyExpectations {
                seed: Some(2020),
                ..Default::default()
            },
            VerifyExpectations {
                shots: Some(200),
                ..Default::default()
            },
        ] {
            let err = verify_artifact(&dir, "s", &expect).unwrap_err();
            assert!(matches!(err, MergeError::Expectation(_)), "{err}");
        }
    }

    #[test]
    fn generic_table_artifacts_merge_round_robin() {
        use crate::artifact::Table;
        let base = tmp("merge-table");
        let mut full = Table::new(["name", "x"]);
        for i in 0..5 {
            full.row([format!("row{i}").into(), (i as f64 * 0.5).into()]);
        }
        let reference = base.join("reference");
        full.write_dir(&reference, "t").unwrap();
        let count = 2;
        let mut dirs = Vec::new();
        for i in 0..count {
            let dir = base.join(format!("shard{i}"));
            full.shard(ShardSpec::new(i, count).unwrap())
                .write_dir(&dir, "t")
                .unwrap();
            dirs.push(dir);
        }
        let out = base.join("merged");
        let report = merge_artifacts(&dirs, "t", &out).unwrap();
        assert_eq!(report.rows, 5);
        assert!(!report.meta);
        for file in ["t.csv", "t.jsonl"] {
            assert_eq!(
                std::fs::read(out.join(file)).unwrap(),
                std::fs::read(reference.join(file)).unwrap(),
                "{file} differs from the unsharded table artifact"
            );
        }
        // Shards passed in the wrong order (sizes 2,3 instead of 3,2)
        // violate the interleaving shape and are a typed error.
        let err = merge_artifacts(&[dirs[1].clone(), dirs[0].clone()], "t", &out).unwrap_err();
        assert!(matches!(err, MergeError::IndexMismatch(_)), "{err}");
    }

    #[test]
    fn flat_json_parser_handles_escapes_and_types() {
        let obj =
            parse_flat_json("{\"a\":\"x\\\"y\",\"b\":-1.5e-3,\"c\":null,\"d\":true}").unwrap();
        assert_eq!(obj["a"], JsonValue::Str("x\"y".to_string()));
        assert_eq!(
            obj["b"],
            JsonValue::Num {
                value: -1.5e-3,
                raw: "-1.5e-3".to_string()
            }
        );
        assert_eq!(obj["c"], JsonValue::Null);
        assert_eq!(obj["d"], JsonValue::Bool(true));
        assert!(parse_flat_json("{\"a\":1} trailing").is_none());
    }
}
