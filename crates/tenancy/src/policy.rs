//! Pluggable cavity-page replacement policies.
//!
//! When a tenant faults a qubit into a full stack, the scheduler asks
//! its [`ReplacementPolicy`] which resident page to evict. The policy
//! sees one [`PageView`] per candidate — residency timestamps, usage
//! recency, error-correction staleness, and the owning tenant's
//! priority/deadline — and returns the index of the victim.
//!
//! # Contract
//!
//! * `victim` is called with a non-empty, deterministic candidate list
//!   (ascending physical mode order) and must return an index into it.
//!   Returning anything else is a bug in the policy and panics the
//!   scheduler.
//! * Policies must be pure functions of the views: no interior state,
//!   no randomness. The merge is replayed to produce byte-identical
//!   schedules across runs and worker counts, and a stateful policy
//!   would break that contract.
//! * Qubits pinned by the faulting instruction and qubits with ops in
//!   flight are excluded *before* the call — every candidate offered is
//!   legal to evict.

use vlq::arch::address::StackCoord;
use vlq::machine::LogicalId;

/// One eviction candidate as the policy sees it.
#[derive(Clone, Copy, Debug)]
pub struct PageView {
    /// Owning tenant's admission index.
    pub tenant: usize,
    /// Owning tenant's scheduling priority (higher = more important).
    pub tenant_priority: u32,
    /// Owning tenant's completion deadline in timesteps, if any.
    pub tenant_deadline: Option<u64>,
    /// The resident qubit (global id space).
    pub qubit: LogicalId,
    /// The stack holding the page.
    pub stack: StackCoord,
    /// Physical cavity mode within the stack.
    pub mode: u8,
    /// When the page last entered the transmon layer.
    pub paged_in_at: u64,
    /// Last timestep a logical operation used the qubit.
    pub last_use: u64,
    /// Last timestep the qubit received error correction.
    pub last_ec: u64,
    /// The faulting instruction's start timestep.
    pub now: u64,
}

impl PageView {
    /// Scheduler cycles since the qubit's last error correction.
    pub fn staleness(&self) -> u64 {
        self.now.saturating_sub(self.last_ec)
    }
}

/// A cavity-page replacement policy (see the module docs for the
/// contract).
pub trait ReplacementPolicy {
    /// Stable lowercase name used in artifacts and CLI flags.
    fn name(&self) -> &'static str;

    /// Picks the victim among `pages` (non-empty, ascending mode
    /// order); returns an index into the slice.
    fn victim(&self, pages: &[PageView]) -> usize;
}

/// The machine's native policy: evict the page with the most refresh
/// slack (the most recently error-corrected qubit), so the pages
/// closest to their `k`-cycle refresh deadline stay resident.
#[derive(Clone, Copy, Debug, Default)]
pub struct RefreshDeadline;

impl ReplacementPolicy for RefreshDeadline {
    fn name(&self) -> &'static str {
        "refresh-deadline"
    }

    fn victim(&self, pages: &[PageView]) -> usize {
        best_index(pages, |p| (p.last_ec, u64::from(u8::MAX - p.mode)))
    }
}

/// Classic least-recently-used: evict the page whose qubit has gone
/// longest without a logical operation. Blind to refresh deadlines —
/// an idle-but-fresh page and an idle-and-stale page look identical.
#[derive(Clone, Copy, Debug, Default)]
pub struct Lru;

impl ReplacementPolicy for Lru {
    fn name(&self) -> &'static str {
        "lru"
    }

    fn victim(&self, pages: &[PageView]) -> usize {
        best_index(pages, |p| {
            (u64::MAX - p.last_use, u64::from(u8::MAX - p.mode))
        })
    }
}

/// Deadline-aware priority eviction: victims come from the
/// lowest-priority tenants first; within a priority class, tenants with
/// no deadline (then the loosest deadline) pay first; ties break toward
/// the most refresh slack, then the lowest mode.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeadlinePriority;

impl ReplacementPolicy for DeadlinePriority {
    fn name(&self) -> &'static str {
        "deadline-priority"
    }

    fn victim(&self, pages: &[PageView]) -> usize {
        best_index(pages, |p| {
            (
                u32::MAX - p.tenant_priority,
                p.tenant_deadline.map_or(u64::MAX, |d| d),
                p.last_ec,
                u64::from(u8::MAX - p.mode),
            )
        })
    }
}

/// Index of the candidate with the lexicographically largest key; ties
/// keep the earliest candidate (lowest mode, given ascending order).
fn best_index<K: Ord>(pages: &[PageView], key: impl Fn(&PageView) -> K) -> usize {
    assert!(!pages.is_empty(), "victim() called with no candidates");
    let mut best = 0;
    let mut best_key = key(&pages[0]);
    for (i, p) in pages.iter().enumerate().skip(1) {
        let k = key(p);
        if k > best_key {
            best = i;
            best_key = k;
        }
    }
    best
}

/// The registered replacement policies, as a closed enum for CLI
/// parsing and sweep grids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`RefreshDeadline`] (the default; matches the machine's native
    /// refresh scheduling pressure).
    RefreshDeadline,
    /// [`Lru`].
    Lru,
    /// [`DeadlinePriority`].
    DeadlinePriority,
}

impl PolicyKind {
    /// Every registered policy, in CLI/report order.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::RefreshDeadline,
        PolicyKind::Lru,
        PolicyKind::DeadlinePriority,
    ];

    /// Stable lowercase name (matches the policy's
    /// [`ReplacementPolicy::name`]).
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::RefreshDeadline => "refresh-deadline",
            PolicyKind::Lru => "lru",
            PolicyKind::DeadlinePriority => "deadline-priority",
        }
    }

    /// Parses a policy name (the inverse of [`PolicyKind::name`]).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        PolicyKind::ALL.into_iter().find(|p| p.name() == s)
    }

    /// Instantiates the policy.
    pub fn build(self) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::RefreshDeadline => Box::new(RefreshDeadline),
            PolicyKind::Lru => Box::new(Lru),
            PolicyKind::DeadlinePriority => Box::new(DeadlinePriority),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(
        mode: u8,
        last_use: u64,
        last_ec: u64,
        priority: u32,
        deadline: Option<u64>,
    ) -> PageView {
        PageView {
            tenant: 0,
            tenant_priority: priority,
            tenant_deadline: deadline,
            qubit: LogicalId(mode as u32),
            stack: StackCoord::new(0, 0),
            mode,
            paged_in_at: 0,
            last_use,
            last_ec,
            now: 100,
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.build().name(), kind.name());
        }
        assert_eq!(PolicyKind::parse("fifo"), None);
    }

    #[test]
    fn refresh_deadline_evicts_freshest() {
        let pages = [view(0, 50, 90, 0, None), view(1, 50, 99, 0, None)];
        assert_eq!(RefreshDeadline.victim(&pages), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pages = [view(0, 10, 99, 0, None), view(1, 90, 10, 0, None)];
        assert_eq!(Lru.victim(&pages), 0);
    }

    #[test]
    fn deadline_priority_protects_high_priority() {
        let mut high = view(0, 10, 10, 5, Some(200));
        high.tenant = 1;
        let low = view(1, 90, 99, 0, None);
        assert_eq!(DeadlinePriority.victim(&[high, low]), 1);
    }

    #[test]
    fn ties_break_toward_lowest_mode() {
        let pages = [view(0, 5, 5, 0, None), view(1, 5, 5, 0, None)];
        assert_eq!(RefreshDeadline.victim(&pages), 0);
        assert_eq!(Lru.victim(&pages), 0);
        assert_eq!(DeadlinePriority.victim(&pages), 0);
    }
}
