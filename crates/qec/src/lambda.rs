//! Error-suppression (Λ) analysis.
//!
//! Below threshold the logical error rate decays exponentially with code
//! distance: `LER(d) ≈ A / Λ^((d+1)/2)`. The paper reads this off
//! Figure 11 ("the slopes for each code distance ... are stable,
//! indicating each scheme improves at a similar rate, post error
//! threshold, and showing that the logical error rate decays
//! exponentially with d"). This module quantifies it: Λ per setup from
//! LER measurements at consecutive distances.

use vlq_math::stats::BinomialEstimate;
use vlq_surface::schedule::{Basis, MemorySpec, Setup};

use crate::{run_memory_experiment, DecoderKind, ExperimentConfig};

/// One Λ estimate between two consecutive odd distances.
#[derive(Clone, Copy, Debug)]
pub struct LambdaPoint {
    /// Smaller distance.
    pub d_low: usize,
    /// Larger distance (`d_low + 2`).
    pub d_high: usize,
    /// LER at `d_low`.
    pub ler_low: f64,
    /// LER at `d_high`.
    pub ler_high: f64,
    /// Suppression factor `ler_low / ler_high` (= Λ for the
    /// one-step-in-d convention `LER ∝ Λ^(-(d+1)/2)`).
    pub lambda: f64,
}

/// Estimates Λ for a setup at physical rate `p` from distances
/// `d, d+2, ...`.
///
/// Returns one [`LambdaPoint`] per consecutive pair. Λ > 1 indicates the
/// experiment operates below threshold.
pub fn lambda_scan(
    setup: Setup,
    p: f64,
    k: usize,
    distances: &[usize],
    shots: u64,
    seed: u64,
) -> Vec<LambdaPoint> {
    let lers: Vec<(usize, BinomialEstimate)> = distances
        .iter()
        .map(|&d| {
            let spec = MemorySpec::standard(setup, d, k, Basis::Z);
            let cfg = ExperimentConfig::new(spec, p)
                .with_shots(shots)
                .with_seed(seed ^ (d as u64))
                .with_decoder(DecoderKind::Mwpm);
            (d, run_memory_experiment(&cfg).estimate)
        })
        .collect();
    lers.windows(2)
        .map(|w| {
            let (d_low, lo) = (w[0].0, w[0].1.rate());
            let (d_high, hi) = (w[1].0, w[1].1.rate());
            LambdaPoint {
                d_low,
                d_high,
                ler_low: lo,
                ler_high: hi,
                lambda: if hi > 0.0 { lo / hi } else { f64::INFINITY },
            }
        })
        .collect()
}

/// Geometric mean of the Λ points (a single suppression figure).
pub fn mean_lambda(points: &[LambdaPoint]) -> Option<f64> {
    if points.is_empty()
        || points
            .iter()
            .any(|p| !p.lambda.is_finite() || p.lambda <= 0.0)
    {
        return None;
    }
    let log_sum: f64 = points.iter().map(|p| p.lambda.ln()).sum();
    Some((log_sum / points.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_lambda_above_one_below_threshold() {
        // At p = 2e-3 (well below the baseline threshold) the suppression
        // factor between d=3 and d=5 must exceed 1 decisively.
        let pts = lambda_scan(Setup::Baseline, 2e-3, 1, &[3, 5], 20_000, 3);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].lambda > 1.5, "lambda {}", pts[0].lambda);
        let m = mean_lambda(&pts).unwrap();
        assert!((m - pts[0].lambda).abs() < 1e-12);
    }

    #[test]
    fn lambda_below_one_above_threshold() {
        // Far above threshold, more distance hurts: lambda < 1.
        let pts = lambda_scan(Setup::Baseline, 3e-2, 1, &[3, 5], 8_000, 4);
        assert!(pts[0].lambda < 1.1, "lambda {}", pts[0].lambda);
    }

    #[test]
    fn mean_lambda_edge_cases() {
        assert!(mean_lambda(&[]).is_none());
        let p = LambdaPoint {
            d_low: 3,
            d_high: 5,
            ler_low: 1e-2,
            ler_high: 0.0,
            lambda: f64::INFINITY,
        };
        assert!(mean_lambda(&[p]).is_none());
    }
}
