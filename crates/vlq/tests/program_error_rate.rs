//! Program-level fidelity regressions for the `FrameExecutor` backend
//! and the program sweeps built on it.

use vlq::arch::geometry::Embedding;
use vlq::decoder::DecoderKind;
use vlq::exec::{memory_schedule, Executor, FrameExecutor, FramePrepared, ProgramSweepExecutor};
use vlq::isa::{Instr, Schedule};
use vlq::machine::{LogicalId, MachineConfig, RefreshPolicy};
use vlq::program::{compile, LogicalCircuit};
use vlq::qec::{run_memory_experiment, Boundary, ExperimentConfig};
use vlq::surface::schedule::{Basis, MemorySpec, Setup};
use vlq::sweep::{SweepEngine, SweepSpec};
use vlq_arch::address::{ModeIndex, StackCoord, VirtAddr};

fn natural_int_machine(d: usize) -> MachineConfig {
    let mut cfg = MachineConfig::compact_demo();
    cfg.embedding = Embedding::Natural;
    cfg.refresh = RefreshPolicy::Interleaved;
    cfg.k = 3;
    cfg.d = d;
    cfg
}

/// The acceptance regression: GHZ-4's program-level logical error rate
/// decreases monotonically with code distance at p = 1e-3 (seeded, so
/// the comparison is exact-reproducible).
#[test]
fn ghz4_error_rate_decreases_with_distance() {
    let mut rates = Vec::new();
    for d in [3usize, 5, 7] {
        let compiled =
            compile(&LogicalCircuit::ghz(4), natural_int_machine(d)).expect("ghz4 compiles");
        let report = FrameExecutor::at_scale(1e-3)
            .with_decoder(DecoderKind::Mwpm)
            .with_shots(1200)
            .with_seed(2020)
            .run(&compiled.schedule)
            .expect("valid schedule");
        rates.push((d, report.failures, report.logical_error_rate()));
    }
    for pair in rates.windows(2) {
        let ((d_lo, f_lo, r_lo), (d_hi, f_hi, r_hi)) = (pair[0], pair[1]);
        assert!(
            r_lo > r_hi,
            "rate(d={d_lo}) = {r_lo:.4e} ({f_lo} fails) !> rate(d={d_hi}) = {r_hi:.4e} ({f_hi} fails)"
        );
    }
}

/// The degenerate program (one idle qubit, one refresh pass, no
/// measurement) replayed under `Boundary::Full` samples the *same*
/// prepared memory-experiment blocks that `run_memory_experiment`
/// does: its failure rate must match the sum of the two guard sectors'
/// memory-experiment rates. The same schedule under the default
/// mid-circuit boundary strips the prep/readout boundary noise, so its
/// rate must come out strictly below that bridge value.
#[test]
fn single_block_schedule_matches_memory_experiment_rates() {
    let p = 2e-3;
    let shots = 30_000u64;
    let config = natural_int_machine(3);
    let rounds = 3usize;

    // Hand-built schedule: page in, one refresh block, end-of-program
    // state check (no measurement, so both sectors count).
    let mut schedule = Schedule::new(config);
    let q = LogicalId(0);
    let addr = VirtAddr::new(StackCoord::new(0, 0), ModeIndex(0));
    schedule.push(Instr::PageIn {
        qubit: q,
        addr,
        t: 0,
    });
    schedule.push(Instr::RefreshRound {
        stack: addr.stack,
        qubit: q,
        rounds,
        t: 1,
    });
    let frame = FrameExecutor::at_scale(p)
        .with_shots(shots)
        .with_boundary(Boundary::Full)
        .run(&schedule)
        .expect("valid schedule");

    // Reference: the memory experiment in each basis, same spec.
    let rate_of = |basis: Basis| {
        let mut spec = MemorySpec::standard(Setup::NaturalInterleaved, 3, 3, basis);
        spec.rounds = rounds;
        run_memory_experiment(
            &ExperimentConfig::new(spec, p)
                .with_shots(shots)
                .with_decoder(DecoderKind::UnionFind),
        )
        .logical_error_rate()
    };
    let expected = rate_of(Basis::Z) + rate_of(Basis::X);
    let got = frame.logical_error_rate();
    assert!(
        (got - expected).abs() < 0.35 * expected.max(1e-3),
        "frame replay {got:.4e} vs memory experiments {expected:.4e}"
    );

    // The boundary-light replay of the identical schedule counts only
    // the three rounds of steady-state exposure.
    let mid = FrameExecutor::at_scale(p)
        .with_shots(shots)
        .run(&schedule)
        .expect("valid schedule")
        .logical_error_rate();
    assert!(
        mid < got,
        "mid-circuit replay {mid:.4e} !< full-boundary replay {got:.4e}"
    );
}

/// `memory_schedule` really is the memory experiment as a program: the
/// machine pages one qubit in, refreshes it every cycle, and measures.
#[test]
fn memory_schedule_replays_noiselessly() {
    let schedule = memory_schedule(natural_int_machine(3), 15);
    let report = FrameExecutor::at_scale(0.0)
        .with_shots(128)
        .run(&schedule)
        .expect("valid schedule");
    assert_eq!(report.failures, 0);
}

/// Program points run on the work-stealing engine with the same
/// determinism contract as memory sweeps: identical records for any
/// worker count.
#[test]
fn program_sweep_runs_on_the_engine() {
    let spec = SweepSpec::new()
        .programs(["ghz3", "teleport"])
        .setups([Setup::NaturalInterleaved])
        .distances([3])
        .ks([3])
        .decoders([DecoderKind::UnionFind])
        .error_rates([3e-3])
        .shots(300)
        .base_seed(7);
    assert_eq!(spec.len(), 2);
    let serial = SweepEngine::serial()
        .run(&spec, &ProgramSweepExecutor::default(), &mut [])
        .expect("no sinks, no io errors");
    let parallel = SweepEngine::with_workers(4)
        .run(&spec, &ProgramSweepExecutor::default(), &mut [])
        .expect("no sinks, no io errors");
    assert_eq!(serial, parallel);
    assert_eq!(serial.len(), 2);
    assert_eq!(serial[0].point.program.as_deref(), Some("ghz3"));
    assert_eq!(serial[1].point.program.as_deref(), Some("teleport"));
    for r in &serial {
        assert_eq!(r.shots, 300);
        assert!(r.rate() < 1.0);
    }
}

/// The program-sweep path shards like every other sweep: `--shard i/N`
/// semantics (global point numbering, per-point seeds) recompose the
/// full run exactly, for any per-shard worker count.
#[test]
fn program_sweep_shards_recompose_the_full_run() {
    let spec = SweepSpec::new()
        .programs(["ghz3", "teleport", "ghz4"])
        .setups([Setup::NaturalInterleaved])
        .distances([3])
        .ks([3])
        .decoders([DecoderKind::UnionFind])
        .error_rates([3e-3])
        .shots(200)
        .base_seed(7);
    let full = SweepEngine::with_workers(2)
        .run(&spec, &ProgramSweepExecutor::default(), &mut [])
        .expect("no sinks, no io errors");
    assert_eq!(full.len(), 3);
    for count in [2usize, 3] {
        let mut recomposed: Vec<Option<vlq_sweep::SweepRecord>> = vec![None; full.len()];
        for index in 0..count {
            let shard = vlq_sweep::ShardSpec::new(index, count).unwrap();
            let records = SweepEngine::with_workers(1 + index)
                .run_opts(
                    &spec,
                    &ProgramSweepExecutor::default(),
                    &mut [],
                    &vlq_sweep::ResumeCache::new(),
                    &vlq_sweep::RunOptions {
                        shard,
                        index_offset: 0,
                        plan: None,
                    },
                )
                .expect("no sinks, no io errors");
            for r in records {
                assert!(shard.owns(r.index));
                assert!(recomposed[r.index].replace(r).is_none());
            }
        }
        let recomposed: Vec<vlq_sweep::SweepRecord> =
            recomposed.into_iter().map(Option::unwrap).collect();
        assert_eq!(recomposed, full, "{count} program shards diverge");
    }
}

/// A chunked engine run and a direct prepared replay agree when the
/// chunk boundaries line up (chunk seeds come from the point, so one
/// whole-point chunk equals one direct call with that seed).
#[test]
fn chunk_seeding_is_schedule_independent() {
    let spec = SweepSpec::new()
        .programs(["ghz3"])
        .setups([Setup::NaturalInterleaved])
        .distances([3])
        .ks([3])
        .decoders([DecoderKind::UnionFind])
        .error_rates([5e-3])
        .shots(200)
        .base_seed(11);
    let records = SweepEngine::serial()
        .run(&spec, &ProgramSweepExecutor::default(), &mut [])
        .expect("no sinks");
    let pt = &records[0].point;
    let compiled = compile(
        &LogicalCircuit::ghz(3),
        vlq::exec::machine_config_for_point(pt, 3),
    )
    .expect("compiles");
    let prepared = FramePrepared::new(compiled.schedule, pt.p, pt.decoder, Boundary::MidCircuit);
    let direct = prepared.run_failures(200, pt.chunk_seed(11, 0));
    assert_eq!(records[0].failures, direct);
}
