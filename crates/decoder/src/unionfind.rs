//! Weighted Union-Find decoder (Delfosse-Nickerson style).
//!
//! Clusters grow outward from defects in weight units; odd clusters keep
//! growing until they merge with another odd cluster or touch the
//! boundary. Once every cluster is neutral, defects are paired *within*
//! their cluster by shortest paths, which determines the predicted
//! logical flip. Union-Find trades a little accuracy for near-linear
//! decoding time; the `decoder` Criterion bench and the `fig11
//! --decoder uf` ablation quantify the trade against exact MWPM.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::graph::{DecodingGraph, BOUNDARY};
use crate::Decoder;

/// Per-node `(neighbor, weight, flips_observable)` contact lists recorded
/// while growing clusters.
type GrowthForest = Vec<Vec<(usize, f64, bool)>>;

/// The static decoding-graph adjacency list: per-node
/// `(neighbor, weight, flips_observable)` entries. Same shape as a
/// [`GrowthForest`], but fixed at construction rather than per decode.
type AdjacencyList = Vec<Vec<(usize, f64, bool)>>;

/// The Union-Find decoder.
#[derive(Clone, Debug)]
pub struct UnionFindDecoder {
    adjacency: AdjacencyList,
    num_nodes: usize,
}

struct Dsu {
    parent: Vec<usize>,
    /// Defect-count parity per root.
    parity: Vec<bool>,
    /// Whether the cluster has absorbed the boundary.
    boundary: Vec<bool>,
}

impl Dsu {
    fn new(n: usize, defects: &[usize]) -> Self {
        let mut parity = vec![false; n + 1];
        for &d in defects {
            parity[d] = true;
        }
        Dsu {
            parent: (0..=n).collect(),
            parity,
            boundary: (0..=n).map(|i| i == n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        self.parent[rb] = ra;
        let p = self.parity[ra] ^ self.parity[rb];
        self.parity[ra] = p;
        let bd = self.boundary[ra] || self.boundary[rb];
        self.boundary[ra] = bd;
    }

    fn is_neutral(&mut self, x: usize) -> bool {
        let r = self.find(x);
        !self.parity[r] || self.boundary[r]
    }
}

impl UnionFindDecoder {
    /// Builds a decoder for a sector graph.
    pub fn new(graph: &DecodingGraph) -> Self {
        UnionFindDecoder {
            adjacency: graph.adjacency(),
            num_nodes: graph.num_nodes(),
        }
    }

    /// Grows clusters until all are neutral; returns the union-find
    /// structure and, for every node reached, the defect it was reached
    /// from with path parity (a growth forest).
    fn grow(&self, defects: &[usize]) -> (Dsu, GrowthForest) {
        let n = self.num_nodes;
        let boundary_node = n;
        let mut dsu = Dsu::new(n, defects);
        // Multi-source Dijkstra-style growth: each defect grows a region;
        // when two regions meet (edge fully covered from both sides, here
        // approximated by first contact), the clusters merge.
        let mut owner = vec![usize::MAX; n + 1]; // which defect reached it
        let mut dist = vec![f64::INFINITY; n + 1];
        let mut parity = vec![false; n + 1]; // obs parity from owner
        let mut heap: BinaryHeap<GrowItem> = BinaryHeap::new();
        for &d in defects {
            owner[d] = d;
            dist[d] = 0.0;
            heap.push(GrowItem {
                dist: 0.0,
                node: d,
                src: d,
            });
        }
        // Edges (in adjacency order) actually used to connect regions:
        // recorded for the pairing pass.
        let mut contacts: Vec<Vec<(usize, f64, bool)>> = vec![Vec::new(); n + 1];
        while let Some(GrowItem {
            dist: dcur,
            node,
            src,
        }) = heap.pop()
        {
            if owner[node] != src && owner[node] != usize::MAX {
                continue;
            }
            if node == boundary_node {
                continue;
            }
            for &(nb, w, obs) in &self.adjacency[node] {
                let nbi = if nb == BOUNDARY { boundary_node } else { nb };
                let nd = dcur + w;
                if owner[nbi] == usize::MAX {
                    owner[nbi] = src;
                    dist[nbi] = nd;
                    parity[nbi] = parity[node] ^ obs;
                    dsu.union(src, nbi);
                    if nbi != boundary_node {
                        heap.push(GrowItem {
                            dist: nd,
                            node: nbi,
                            src,
                        });
                    }
                } else if dsu.find(owner[nbi]) != dsu.find(src) {
                    // Two regions touch: merge their clusters and record
                    // the contact (total path defect->defect parity).
                    let contact_parity = parity[node] ^ obs ^ parity[nbi];
                    let contact_dist = nd + dist[nbi];
                    let other = owner[nbi];
                    dsu.union(src, other);
                    contacts[src].push((other, contact_dist, contact_parity));
                    contacts[other].push((src, contact_dist, contact_parity));
                }
            }
            // Stop early if every defect's cluster is neutral.
            if defects.iter().all(|&d| dsu.is_neutral(d)) {
                break;
            }
        }
        // Boundary contacts: a region that reached the boundary records a
        // contact to the virtual boundary defect (usize::MAX marker kept
        // implicit via dsu.boundary).
        let mut boundary_contact: Vec<Option<(f64, bool)>> = vec![None; n + 1];
        if owner[boundary_node] != usize::MAX {
            boundary_contact[owner[boundary_node]] =
                Some((dist[boundary_node], parity[boundary_node]));
        }
        // Fold boundary contact info into contacts of that defect.
        for (d, bc) in boundary_contact.iter().enumerate() {
            if let Some((bd, bp)) = bc {
                contacts[d].push((boundary_node, *bd, *bp));
            }
        }
        (dsu, contacts)
    }

    /// Predicts the logical flip by pairing defects within clusters along
    /// the recorded contact forest.
    fn pair_and_predict(
        &self,
        defects: &[usize],
        dsu: &mut Dsu,
        contacts: &[Vec<(usize, f64, bool)>],
    ) -> bool {
        let boundary_node = self.num_nodes;
        // Group defects by cluster root. Ordered map so pairing runs in
        // a deterministic cluster order (hash order would vary between
        // otherwise-identical decoders).
        let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &d in defects {
            by_root.entry(dsu.find(d)).or_default().push(d);
        }
        let mut flip = false;
        for (_, members) in by_root {
            // Pair members greedily along contact edges (spanning-tree
            // peeling): repeatedly take the cheapest contact between two
            // unpaired members; leftovers go to the boundary contact.
            let mut unpaired: std::collections::BTreeSet<usize> = members.iter().copied().collect();
            let mut pairs: Vec<(usize, usize, f64, bool)> = Vec::new();
            for &m in &members {
                for &(other, d, p) in &contacts[m] {
                    if other != boundary_node && m < other {
                        pairs.push((m, other, d, p));
                    }
                }
            }
            pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(Ordering::Equal));
            for (a, b, _, p) in pairs {
                if unpaired.contains(&a) && unpaired.contains(&b) {
                    unpaired.remove(&a);
                    unpaired.remove(&b);
                    flip ^= p;
                }
            }
            // Remaining defects: send to boundary via their recorded (or
            // nearest) boundary parity.
            for m in unpaired {
                if let Some(&(_, _, p)) = contacts[m]
                    .iter()
                    .find(|(other, _, _)| *other == boundary_node)
                {
                    flip ^= p;
                } else {
                    // Fall back to a direct Dijkstra to the boundary.
                    flip ^= self.boundary_parity(m);
                }
            }
        }
        flip
    }

    /// Dijkstra fallback: observable parity of the shortest path from a
    /// node to the boundary.
    fn boundary_parity(&self, src: usize) -> bool {
        let n = self.num_nodes;
        let mut dist = vec![f64::INFINITY; n + 1];
        let mut parity = vec![false; n + 1];
        let mut heap = BinaryHeap::new();
        dist[src] = 0.0;
        heap.push(GrowItem {
            dist: 0.0,
            node: src,
            src,
        });
        while let Some(GrowItem { dist: d, node, .. }) = heap.pop() {
            if node == n {
                return parity[n];
            }
            if d > dist[node] {
                continue;
            }
            for &(nb, w, obs) in &self.adjacency[node] {
                let nbi = if nb == BOUNDARY { n } else { nb };
                if d + w < dist[nbi] {
                    dist[nbi] = d + w;
                    parity[nbi] = parity[node] ^ obs;
                    heap.push(GrowItem {
                        dist: d + w,
                        node: nbi,
                        src,
                    });
                }
            }
        }
        false
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, defects: &[usize]) -> bool {
        if defects.is_empty() {
            return false;
        }
        let (mut dsu, contacts) = self.grow(defects);
        self.pair_and_predict(defects, &mut dsu, &contacts)
    }
}

struct GrowItem {
    dist: f64,
    node: usize,
    src: usize,
}

impl PartialEq for GrowItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for GrowItem {}
impl PartialOrd for GrowItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GrowItem {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DecodingGraph;
    use crate::mwpm::MwpmDecoder;
    use vlq_arch::params::HardwareParams;
    use vlq_circuit::noise::NoiseModel;
    use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

    fn graph_for(d: usize, p: f64) -> DecodingGraph {
        let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
        let mc = memory_circuit(spec, &HardwareParams::baseline());
        let noisy = NoiseModel::baseline_at_scale(p).apply(&mc.circuit);
        DecodingGraph::build(&noisy, &mc.z_detectors)
    }

    #[test]
    fn empty_defects_no_flip() {
        let g = graph_for(3, 1e-3);
        let dec = UnionFindDecoder::new(&g);
        assert!(!dec.decode(&[]));
    }

    #[test]
    fn agrees_with_mwpm_on_single_faults() {
        let g = graph_for(3, 1e-3);
        let uf = UnionFindDecoder::new(&g);
        let mw = MwpmDecoder::new(&g);
        for (&(a, b), _) in g.iter_edges() {
            let defects: Vec<usize> = if b == crate::graph::BOUNDARY {
                vec![a]
            } else {
                vec![a, b]
            };
            assert_eq!(
                uf.decode(&defects),
                mw.decode(&defects),
                "disagree on edge ({a},{b})"
            );
        }
    }

    #[test]
    fn mostly_agrees_with_mwpm_on_random_sparse_defects() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let g = graph_for(5, 2e-3);
        let uf = UnionFindDecoder::new(&g);
        let mw = MwpmDecoder::new(&g);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut agree = 0;
        let trials = 200;
        for _ in 0..trials {
            // Sparse random defect sets (2-4 defects).
            let k = rng.random_range(1..3usize) * 2;
            let mut defects: Vec<usize> = Vec::new();
            while defects.len() < k {
                let d = rng.random_range(0..g.num_nodes());
                if !defects.contains(&d) {
                    defects.push(d);
                }
            }
            if uf.decode(&defects) == mw.decode(&defects) {
                agree += 1;
            }
        }
        // UF is approximate, but on sparse defects it should agree with
        // MWPM the vast majority of the time.
        assert!(agree * 10 >= trials * 8, "agreement {agree}/{trials}");
    }
}
