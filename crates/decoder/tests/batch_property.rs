//! `decode_batch` must be bit-identical to per-lane `decode` — for both
//! decoders, at several distances, with matched, mismatched, and absent
//! scratch (the mismatch paths must silently fall back, never differ).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use vlq_arch::params::HardwareParams;
use vlq_circuit::noise::NoiseModel;
use vlq_decoder::{Decoder, DecoderKind, DecoderScratch, DecodingGraph, UfScratch};
use vlq_surface::schedule::{memory_circuit, Basis, MemorySpec, Setup};

fn graph_for(d: usize, p: f64) -> DecodingGraph {
    let spec = MemorySpec::standard(Setup::Baseline, d, 1, Basis::Z);
    let mc = memory_circuit(spec, &HardwareParams::baseline());
    let noisy = NoiseModel::baseline_at_scale(p).apply(&mc.circuit);
    DecodingGraph::build(&noisy, &mc.z_detectors)
}

/// Random defect lists for `lanes` lanes (empty lists included).
fn random_defect_lists(rng: &mut SmallRng, lanes: usize, num_nodes: usize) -> Vec<Vec<usize>> {
    (0..lanes)
        .map(|_| {
            let k = rng.random_range(0..7usize);
            let mut defects: Vec<usize> = Vec::new();
            while defects.len() < k {
                let d = rng.random_range(0..num_nodes);
                if !defects.contains(&d) {
                    defects.push(d);
                }
            }
            defects.sort_unstable();
            defects
        })
        .collect()
}

fn packed_per_lane_decode(decoder: &dyn Decoder, lists: &[Vec<usize>]) -> Vec<u64> {
    let words = lists.len().div_ceil(64);
    let mut out = vec![0u64; words];
    for (lane, defects) in lists.iter().enumerate() {
        if decoder.decode(defects) {
            out[lane / 64] |= 1u64 << (lane % 64);
        }
    }
    out
}

#[test]
fn decode_batch_matches_per_lane_decode() {
    let mut rng = SmallRng::seed_from_u64(2020);
    for d in [3usize, 5, 7] {
        let graph = graph_for(d, 2e-3);
        for kind in DecoderKind::ALL {
            let decoder = kind.build(&graph);
            let lists = random_defect_lists(&mut rng, 150, graph.num_nodes());
            let expected = packed_per_lane_decode(decoder.as_ref(), &lists);
            let words = lists.len().div_ceil(64);

            // Matched scratch (the native batch path), reused twice to
            // cover cross-batch state reset.
            let mut scratch = decoder.make_scratch();
            for _ in 0..2 {
                let mut out = vec![0u64; words];
                decoder.decode_batch(&lists, &mut scratch, &mut out);
                assert_eq!(out, expected, "{kind} d{d} native batch");
            }

            // Absent scratch: the fallback per-lane path.
            let mut out = vec![0u64; words];
            decoder.decode_batch(&lists, &mut DecoderScratch::None, &mut out);
            assert_eq!(out, expected, "{kind} d{d} fallback batch");
        }
    }
}

#[test]
fn wrong_sized_scratch_falls_back_not_fails() {
    let g3 = graph_for(3, 2e-3);
    let g5 = graph_for(5, 2e-3);
    let decoder = DecoderKind::UnionFind.build(&g5);
    let mut rng = SmallRng::seed_from_u64(4);
    let lists = random_defect_lists(&mut rng, 70, g5.num_nodes());
    let expected = packed_per_lane_decode(decoder.as_ref(), &lists);
    // Scratch built for the *wrong* graph: must fall back, bit-identical.
    let mut scratch = DecoderScratch::UnionFind(Box::new(UfScratch::new(g3.num_nodes())));
    let mut out = vec![0u64; lists.len().div_ceil(64)];
    decoder.decode_batch(&lists, &mut scratch, &mut out);
    assert_eq!(out, expected);
}
