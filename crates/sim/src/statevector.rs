//! Dense state-vector simulator for small systems.
//!
//! Supports arbitrary single- and two-qubit unitaries plus the shared
//! [`CliffordGate`] vocabulary, measurement, post-selection, and fidelity
//! computations. Capacity is capped at [`StateVector::MAX_QUBITS`] qubits
//! (the distance-3 transversal-CNOT tomography needs 18).

use crate::CliffordGate;
use vlq_pauli::{Pauli, PauliString};

/// A complex number (we avoid external dependencies for this small need).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number.
    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// Complex conjugate.
    pub fn conj(self) -> C64 {
        C64::new(self.re, -self.im)
    }

    /// Squared magnitude.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }
}

impl std::ops::Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Mul<f64> for C64 {
    type Output = C64;
    fn mul(self, rhs: f64) -> C64 {
        C64::new(self.re * rhs, self.im * rhs)
    }
}

impl std::ops::Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

/// A dense pure state on `n` qubits.
///
/// Qubit 0 is the least-significant bit of the basis-state index.
///
/// # Examples
///
/// ```
/// use vlq_sim::{CliffordGate, StateVector};
///
/// let mut sv = StateVector::new(2);
/// sv.apply(CliffordGate::H(0));
/// sv.apply(CliffordGate::Cnot(0, 1));
/// let p = sv.probability_of_bit(1, true);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, Debug)]
pub struct StateVector {
    n: usize,
    amps: Vec<C64>,
}

impl StateVector {
    /// Maximum supported qubit count (memory ~ 16 B * 2^n).
    pub const MAX_QUBITS: usize = 22;

    /// Creates `|0...0>` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > Self::MAX_QUBITS`.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= Self::MAX_QUBITS,
            "statevector limited to {} qubits",
            Self::MAX_QUBITS
        );
        let mut amps = vec![C64::ZERO; 1usize << n];
        amps[0] = C64::ONE;
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Borrow the amplitudes (length `2^n`).
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies an arbitrary single-qubit unitary `[[a, b], [c, d]]`
    /// (row-major: `new0 = a*old0 + b*old1`).
    pub fn apply_1q(&mut self, q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.n, "qubit {q} out of range");
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let j = i | bit;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies an arbitrary two-qubit unitary (4x4 row-major; basis order
    /// `|q1 q0>` = `{00, 01, 10, 11}` with `q0` the low bit).
    pub fn apply_2q(&mut self, q0: usize, q1: usize, m: [[C64; 4]; 4]) {
        assert!(q0 < self.n && q1 < self.n && q0 != q1, "bad qubit pair");
        let b0 = 1usize << q0;
        let b1 = 1usize << q1;
        for i in 0..self.amps.len() {
            if i & b0 == 0 && i & b1 == 0 {
                let idx = [i, i | b0, i | b1, i | b0 | b1];
                let old = [
                    self.amps[idx[0]],
                    self.amps[idx[1]],
                    self.amps[idx[2]],
                    self.amps[idx[3]],
                ];
                for (r, &target) in idx.iter().enumerate() {
                    let mut acc = C64::ZERO;
                    for (c, &o) in old.iter().enumerate() {
                        acc = acc + m[r][c] * o;
                    }
                    self.amps[target] = acc;
                }
            }
        }
    }

    /// Applies a Clifford gate.
    pub fn apply(&mut self, gate: CliffordGate) {
        use CliffordGate::*;
        let inv_sqrt2 = std::f64::consts::FRAC_1_SQRT_2;
        let o = C64::ZERO;
        let l = C64::ONE;
        match gate {
            H(q) => self.apply_1q(
                q,
                [
                    [C64::new(inv_sqrt2, 0.0), C64::new(inv_sqrt2, 0.0)],
                    [C64::new(inv_sqrt2, 0.0), C64::new(-inv_sqrt2, 0.0)],
                ],
            ),
            S(q) => self.apply_1q(q, [[l, o], [o, C64::I]]),
            SDag(q) => self.apply_1q(q, [[l, o], [o, -C64::I]]),
            X(q) => self.apply_1q(q, [[o, l], [l, o]]),
            Y(q) => self.apply_1q(q, [[o, -C64::I], [C64::I, o]]),
            Z(q) => self.apply_1q(q, [[l, o], [o, -l]]),
            Cnot(c, t) => {
                let bc = 1usize << c;
                let bt = 1usize << t;
                for i in 0..self.amps.len() {
                    if i & bc != 0 && i & bt == 0 {
                        self.amps.swap(i, i | bt);
                    }
                }
            }
            Cz(a, b) => {
                let ba = 1usize << a;
                let bb = 1usize << b;
                for i in 0..self.amps.len() {
                    if i & ba != 0 && i & bb != 0 {
                        self.amps[i] = -self.amps[i];
                    }
                }
            }
            Swap(a, b) => {
                let ba = 1usize << a;
                let bb = 1usize << b;
                for i in 0..self.amps.len() {
                    if i & ba != 0 && i & bb == 0 {
                        self.amps.swap(i, (i & !ba) | bb);
                    }
                }
            }
            ISwap(a, b) => {
                // |01> -> i|10>, |10> -> i|01>.
                let ba = 1usize << a;
                let bb = 1usize << b;
                for i in 0..self.amps.len() {
                    if i & ba != 0 && i & bb == 0 {
                        let j = (i & !ba) | bb;
                        let (x, y) = (self.amps[i], self.amps[j]);
                        self.amps[i] = C64::I * y;
                        self.amps[j] = C64::I * x;
                    }
                }
            }
        }
    }

    /// Applies a sequence of Clifford gates.
    pub fn apply_all<I: IntoIterator<Item = CliffordGate>>(&mut self, gates: I) {
        for g in gates {
            self.apply(g);
        }
    }

    /// Applies `T = diag(1, e^{i pi/4})`.
    pub fn apply_t(&mut self, q: usize) {
        let phase = C64::new(
            std::f64::consts::FRAC_1_SQRT_2,
            std::f64::consts::FRAC_1_SQRT_2,
        );
        self.apply_1q(q, [[C64::ONE, C64::ZERO], [C64::ZERO, phase]]);
    }

    /// Applies a Pauli string (with its phase).
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(p.len(), self.n, "pauli length mismatch");
        for (q, site) in p.iter_support() {
            match site {
                Pauli::X => self.apply(CliffordGate::X(q)),
                Pauli::Y => self.apply(CliffordGate::Y(q)),
                Pauli::Z => self.apply(CliffordGate::Z(q)),
                Pauli::I => {}
            }
        }
        // Global phase from the string's sign: physically irrelevant for
        // state preparation, but kept for exact operator comparisons.
        let ph = match p.phase() {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            3 => -C64::I,
            _ => unreachable!(),
        };
        // iter_support applied Y with its own i bookkeeping; compensate so
        // the net operator equals the PauliString exactly.
        let mut y_count = 0usize;
        for q in 0..self.n {
            if p.pauli(q) == Pauli::Y {
                y_count += 1;
            }
        }
        let y_phase = match y_count % 4 {
            0 => C64::ONE,
            1 => C64::I,
            2 => -C64::ONE,
            _ => -C64::I,
        };
        // net = ph / y_phase (Y gates already contributed y_phase).
        let correction = ph * y_phase.conj(); // |y_phase| = 1
        if correction != C64::ONE {
            for a in &mut self.amps {
                *a = correction * *a;
            }
        }
    }

    /// Probability that `qubit` reads the given bit value in the Z basis.
    pub fn probability_of_bit(&self, qubit: usize, value: bool) -> f64 {
        let bit = 1usize << qubit;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| ((i & bit) != 0) == value)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Projects `qubit` onto the given bit value and renormalizes.
    ///
    /// Returns the probability of that projection. If the probability is
    /// (numerically) zero the state is left unchanged and `0.0` returned.
    pub fn postselect_bit(&mut self, qubit: usize, value: bool) -> f64 {
        let p = self.probability_of_bit(qubit, value);
        if p < 1e-300 {
            return 0.0;
        }
        let bit = 1usize << qubit;
        let scale = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if ((i & bit) != 0) == value {
                *a = *a * scale;
            } else {
                *a = C64::ZERO;
            }
        }
        p
    }

    /// Measures `qubit` in the Z basis using `r` (uniform in `[0,1)`) to
    /// choose the branch; collapses and returns the outcome.
    pub fn measure_bit(&mut self, qubit: usize, r: f64) -> bool {
        let p1 = self.probability_of_bit(qubit, true);
        let outcome = r < p1;
        self.postselect_bit(qubit, outcome);
        outcome
    }

    /// Inner product `<self|other>`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.n, other.n, "dimension mismatch");
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc = acc + a.conj() * *b;
        }
        acc
    }

    /// Fidelity `|<self|other>|^2`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Expectation value of a Pauli string (must be Hermitian).
    pub fn pauli_expectation(&self, p: &PauliString) -> f64 {
        let mut moved = self.clone();
        moved.apply_pauli(p);
        self.inner_product(&moved).re
    }

    /// L2 norm of the state (should be 1 for valid states).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Projects onto the +1 eigenspace of a Hermitian Pauli operator
    /// (`(I + P)/2`) and renormalizes. Returns the pre-projection
    /// probability of the +1 outcome.
    ///
    /// Used to prepare code states: projecting a product state onto every
    /// stabilizer yields the encoded logical state.
    ///
    /// # Panics
    ///
    /// Panics if the operator's phase is imaginary (not Hermitian).
    pub fn project_pauli_plus(&mut self, p: &PauliString) -> f64 {
        assert!(
            p.phase().is_multiple_of(2),
            "projector requires a Hermitian Pauli"
        );
        let mut moved = self.clone();
        moved.apply_pauli(p);
        for (a, b) in self.amps.iter_mut().zip(moved.amps.iter()) {
            *a = (*a + *b) * 0.5;
        }
        let norm = self.norm();
        if norm < 1e-300 {
            return 0.0;
        }
        let inv = 1.0 / norm;
        for a in &mut self.amps {
            *a = *a * inv;
        }
        norm * norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(s: &str) -> PauliString {
        PauliString::from_str_sign(s).unwrap()
    }

    #[test]
    fn fresh_state_norm_one() {
        let sv = StateVector::new(3);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
        assert!((sv.probability_of_bit(0, false) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_superposition() {
        let mut sv = StateVector::new(1);
        sv.apply(CliffordGate::H(0));
        assert!((sv.probability_of_bit(0, true) - 0.5).abs() < 1e-12);
        sv.apply(CliffordGate::H(0));
        assert!((sv.probability_of_bit(0, false) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_pair_probabilities() {
        let mut sv = StateVector::new(2);
        sv.apply(CliffordGate::H(0));
        sv.apply(CliffordGate::Cnot(0, 1));
        let amps = sv.amplitudes();
        assert!((amps[0b00].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((amps[0b11].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!(amps[0b01].abs() < 1e-12 && amps[0b10].abs() < 1e-12);
    }

    #[test]
    fn iswap_matrix_action() {
        // iSWAP |01> = i |10> (qubit 0 is the low bit: |01> means q0=1).
        let mut sv = StateVector::new(2);
        sv.apply(CliffordGate::X(0)); // state |01> (q1=0, q0=1) = index 1
        sv.apply(CliffordGate::ISwap(0, 1));
        let amps = sv.amplitudes();
        assert!(amps[0b01].abs() < 1e-12);
        assert!((amps[0b10] - C64::I).abs() < 1e-12);
        // iSWAP |11> = |11>.
        let mut sv = StateVector::new(2);
        sv.apply(CliffordGate::X(0));
        sv.apply(CliffordGate::X(1));
        sv.apply(CliffordGate::ISwap(0, 1));
        assert!((sv.amplitudes()[0b11] - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn iswap_equals_swap_cz_ss() {
        // Verify the decomposition used by the tableau: iSWAP =
        // SWAP · CZ · (S⊗S) (rightmost applied first).
        for basis in 0..4usize {
            let mut a = StateVector::new(2);
            let mut b = StateVector::new(2);
            for q in 0..2 {
                if (basis >> q) & 1 == 1 {
                    a.apply(CliffordGate::X(q));
                    b.apply(CliffordGate::X(q));
                }
            }
            a.apply(CliffordGate::ISwap(0, 1));
            b.apply(CliffordGate::S(0));
            b.apply(CliffordGate::S(1));
            b.apply(CliffordGate::Cz(0, 1));
            b.apply(CliffordGate::Swap(0, 1));
            for i in 0..4 {
                assert!(
                    (a.amplitudes()[i] - b.amplitudes()[i]).abs() < 1e-12,
                    "mismatch at basis {basis}, index {i}"
                );
            }
        }
    }

    #[test]
    fn postselect_and_measure() {
        let mut sv = StateVector::new(2);
        sv.apply(CliffordGate::H(0));
        sv.apply(CliffordGate::Cnot(0, 1));
        let p = sv.postselect_bit(0, true);
        assert!((p - 0.5).abs() < 1e-12);
        assert!((sv.probability_of_bit(1, true) - 1.0).abs() < 1e-12);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn measure_branches() {
        let mut sv = StateVector::new(1);
        sv.apply(CliffordGate::H(0));
        let outcome = sv.measure_bit(0, 0.99); // r > 0.5 -> outcome false
        assert!(!outcome);
        assert!((sv.probability_of_bit(0, false) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauli_expectation_values() {
        let mut sv = StateVector::new(2);
        sv.apply(CliffordGate::H(0));
        sv.apply(CliffordGate::Cnot(0, 1));
        assert!((sv.pauli_expectation(&ps("+XX")) - 1.0).abs() < 1e-10);
        assert!((sv.pauli_expectation(&ps("+ZZ")) - 1.0).abs() < 1e-10);
        assert!((sv.pauli_expectation(&ps("+YY")) + 1.0).abs() < 1e-10);
        assert!(sv.pauli_expectation(&ps("+ZI")).abs() < 1e-10);
    }

    #[test]
    fn t_gate_phases() {
        let mut sv = StateVector::new(1);
        sv.apply(CliffordGate::H(0));
        sv.apply_t(0);
        sv.apply_t(0); // T^2 = S
        let mut sv2 = StateVector::new(1);
        sv2.apply(CliffordGate::H(0));
        sv2.apply(CliffordGate::S(0));
        assert!((sv.fidelity(&sv2) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn apply_pauli_exact_operator() {
        // -iY |0> = -i (i|1>) = |1>... check exact amplitude: Y|0> = i|1>.
        let mut sv = StateVector::new(1);
        sv.apply_pauli(&ps("+Y"));
        assert!((sv.amplitudes()[1] - C64::I).abs() < 1e-12);
        let mut sv = StateVector::new(1);
        sv.apply_pauli(&ps("-Y"));
        assert!((sv.amplitudes()[1] + C64::I).abs() < 1e-12);
        // XZ as a string: phase convention X then Z: (XZ)|0> = X|0> = |1>.
        let mut sv = StateVector::new(1);
        sv.apply_pauli(&ps("+X"));
        assert!((sv.amplitudes()[1] - C64::ONE).abs() < 1e-12);
    }

    #[test]
    fn complex_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a.conj(), C64::new(1.0, -2.0));
        assert!((a - a).abs() < 1e-15);
    }
}
