//! The work-stealing sweep engine.
//!
//! Expanded grid points are split into fixed-size shot chunks, pushed
//! onto a shared injector deque, and drained by a pool of workers that
//! keep small local deques and steal from each other when both their
//! deque and the injector run dry. Parallelism therefore spans
//! *configs × shots*: a scan of many small configs saturates the pool
//! just as well as one huge config.
//!
//! Determinism: chunk boundaries and per-chunk seeds depend only on the
//! spec and the engine's `chunk_shots` (never on worker count or steal
//! order), and per-point failure counts are sums of per-chunk counts —
//! a commutative reduction — so any schedule produces identical
//! records. The engine additionally buffers out-of-order completions
//! and emits records to sinks in expansion order, making file artifacts
//! byte-identical across runs.

use std::collections::VecDeque;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex, OnceLock};
use std::time::Instant;

use vlq_telemetry::{Metric, ProgressReporter, Recorder};

use crate::plan::ShardPlan;
use crate::shard::ShardSpec;
use crate::sink::{RecordSink, SweepRecord};
use crate::spec::{SweepPoint, SweepSpec};

/// Runs the domain side of a sweep: turning a point into a prepared
/// experiment once, then running seeded shot chunks against it.
///
/// The engine guarantees `prepare` is called at most once per point
/// (workers share the result), and that `run_chunk` sees chunk seeds
/// derived deterministically from the spec.
pub trait SweepExecutor: Sync {
    /// Expensive per-point state shared by all of the point's chunks
    /// (e.g. a noisy circuit plus its decoder).
    type Prepared: Send + Sync;

    /// Builds the per-point state.
    fn prepare(&self, point: &SweepPoint) -> Self::Prepared;

    /// Runs `shots` seeded shots, returning the failure count.
    fn run_chunk(
        &self,
        prepared: &Self::Prepared,
        point: &SweepPoint,
        shots: u64,
        seed: u64,
    ) -> u64;

    /// [`SweepExecutor::run_chunk`] with a telemetry sink. Executors
    /// that can report domain metrics (decoder statistics, phase
    /// timings) override this; the default ignores the recorder, so
    /// recording never changes failure counts — only what gets
    /// observed along the way.
    fn run_chunk_recorded(
        &self,
        prepared: &Self::Prepared,
        point: &SweepPoint,
        shots: u64,
        seed: u64,
        recorder: &Recorder,
    ) -> u64 {
        let _ = recorder;
        self.run_chunk(prepared, point, shots, seed)
    }
}

/// One unit of schedulable work: a chunk of one point's shots.
#[derive(Clone, Copy, Debug)]
struct Task {
    point: usize,
    chunk: u64,
    shots: u64,
}

/// How many tasks a worker moves from the injector to its local deque
/// per refill. Small enough to keep late stealers fed, large enough to
/// amortize the injector lock.
const REFILL_BATCH: usize = 4;

/// Cross-cutting options of one engine run (see
/// [`SweepEngine::run_opts`]).
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Which shard of the globally-numbered point grid to run
    /// (default: the full `0/1` shard).
    pub shard: ShardSpec,
    /// Global index of the spec's first point. Binaries that stream
    /// several specs into one artifact (fig12's panels) advance this by
    /// each spec's full length so `index` stays globally unique — the
    /// invariant `sweep-merge` interleaves by.
    pub index_offset: usize,
    /// Optional explicit shard plan (`--shard-by time`). When set, it
    /// overrides the stride rule: this run owns the global indices the
    /// plan assigns to `shard.index`. `shard.count` must equal the
    /// plan's shard count; per-point seeding is unchanged, so any
    /// disjoint-cover plan recomposes byte-identically.
    pub plan: Option<ShardPlan>,
}

impl RunOptions {
    /// Whether this run owns global point index `g`: the plan's
    /// assignment when a plan is set, the stride rule otherwise.
    pub fn owns(&self, g: usize) -> bool {
        match &self.plan {
            Some(plan) => plan.owner_of(g) == Some(self.shard.index),
            None => self.shard.owns(g),
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            shard: ShardSpec::FULL,
            index_offset: 0,
            plan: None,
        }
    }
}

/// The work-stealing orchestration engine.
#[derive(Clone, Debug)]
pub struct SweepEngine {
    /// Worker thread count (clamped to ≥ 1).
    pub workers: usize,
    /// Shots per task chunk. Part of the deterministic schedule-
    /// independent chunking; changing it re-chunks (and re-seeds) the
    /// sweep.
    pub chunk_shots: u64,
    /// Whether to report progress (completed/total, ETA) on stderr.
    pub progress: bool,
    /// Telemetry sink shared by every worker (disabled by default).
    /// Deterministic work counters (points, chunks, shots, failures,
    /// plus whatever the executor's `run_chunk_recorded` reports)
    /// aggregate identically for any worker count; wall/steal/occupancy
    /// metrics are runtime-class and never enter machine-readable
    /// reports.
    pub recorder: Recorder,
}

impl Default for SweepEngine {
    fn default() -> Self {
        SweepEngine {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            chunk_shots: 1024,
            progress: false,
            recorder: Recorder::disabled(),
        }
    }
}

struct Shared<'a, E: SweepExecutor> {
    executor: &'a E,
    points: &'a [SweepPoint],
    base_seed: u64,
    prepared: Vec<OnceLock<E::Prepared>>,
    injector: Mutex<VecDeque<Task>>,
    locals: Vec<Mutex<VecDeque<Task>>>,
    failures: Vec<AtomicU64>,
    chunks_left: Vec<AtomicUsize>,
    recorder: &'a Recorder,
    /// Per-point busy nanoseconds, summed across the point's chunks
    /// (runtime-class; feeds the per-point wall-time histogram and any
    /// timing-aware sink).
    point_nanos: Vec<AtomicU64>,
    /// Whether a sink asked for per-point wall times (so workers time
    /// chunks even without a telemetry recorder).
    time_points: bool,
}

impl<E: SweepExecutor> Shared<'_, E> {
    /// Claims the next task for worker `me`: local deque first (LIFO
    /// for cache warmth), then an injector refill, then stealing FIFO
    /// from the other workers.
    fn next_task(&self, me: usize) -> Option<Task> {
        if let Some(t) = self.locals[me].lock().expect("local deque").pop_back() {
            return Some(t);
        }
        {
            let mut injector = self.injector.lock().expect("injector");
            if !injector.is_empty() {
                let first = injector.pop_front();
                let mut local = self.locals[me].lock().expect("local deque");
                for _ in 1..REFILL_BATCH {
                    match injector.pop_front() {
                        Some(t) => local.push_back(t),
                        None => break,
                    }
                }
                return first;
            }
        }
        for off in 1..self.locals.len() {
            let victim = (me + off) % self.locals.len();
            if let Some(t) = self.locals[victim]
                .lock()
                .expect("victim deque")
                .pop_front()
            {
                self.recorder.incr(Metric::SweepSteals);
                return Some(t);
            }
        }
        None
    }

    fn run_worker(&self, me: usize, done: &mpsc::Sender<usize>) {
        let timing = self.recorder.is_enabled() || self.time_points;
        while let Some(task) = self.next_task(me) {
            let start = timing.then(Instant::now);
            let point = &self.points[task.point];
            let prepared = self.prepared[task.point].get_or_init(|| self.executor.prepare(point));
            let seed = point.chunk_seed(self.base_seed, task.chunk);
            let failures =
                self.executor
                    .run_chunk_recorded(prepared, point, task.shots, seed, self.recorder);
            self.failures[task.point].fetch_add(failures, Ordering::Relaxed);
            self.recorder.incr(Metric::SweepChunks);
            if let Some(start) = start {
                let ns = start.elapsed().as_nanos() as u64;
                self.recorder.add(Metric::SweepBusyNanos, ns);
                self.point_nanos[task.point].fetch_add(ns, Ordering::Relaxed);
            }
            if self.chunks_left[task.point].fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last chunk of this point; the receiver may already be
                // gone if a sink error aborted the run.
                let _ = done.send(task.point);
            }
        }
    }
}

/// Reorder buffer: emits completed records to sinks in expansion order.
///
/// Slots are *local* positions in the (possibly sharded) point list;
/// the records themselves carry global indices.
struct InOrderEmitter<'s, 'r> {
    sinks: &'s mut [&'r mut dyn RecordSink],
    pending: Vec<Option<(SweepRecord, u64)>>,
    next: usize,
    emitted: Vec<SweepRecord>,
}

impl<'s, 'r> InOrderEmitter<'s, 'r> {
    fn new(total: usize, sinks: &'s mut [&'r mut dyn RecordSink]) -> Self {
        InOrderEmitter {
            sinks,
            pending: (0..total).map(|_| None).collect(),
            next: 0,
            emitted: Vec::with_capacity(total),
        }
    }

    fn complete(&mut self, slot: usize, record: SweepRecord, nanos: u64) -> io::Result<()> {
        debug_assert!(self.pending[slot].is_none(), "point completed twice");
        self.pending[slot] = Some((record, nanos));
        while self.next < self.pending.len() {
            match self.pending[self.next].take() {
                Some((r, ns)) => {
                    for sink in self.sinks.iter_mut() {
                        sink.write_timed(&r, ns)?;
                    }
                    self.emitted.push(r);
                    self.next += 1;
                }
                None => break,
            }
        }
        Ok(())
    }
}

impl SweepEngine {
    /// A single-threaded engine (useful for determinism baselines).
    pub fn serial() -> Self {
        SweepEngine {
            workers: 1,
            ..SweepEngine::default()
        }
    }

    /// An engine with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        SweepEngine {
            workers: workers.max(1),
            ..SweepEngine::default()
        }
    }

    /// Enables or disables stderr progress reporting.
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    /// Attaches a telemetry recorder shared by every worker.
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Runs the spec to completion, streaming records to `sinks` in
    /// expansion order and returning them in the same order.
    ///
    /// Errors are sink I/O errors only; the sweep itself cannot fail.
    pub fn run<E: SweepExecutor>(
        &self,
        spec: &SweepSpec,
        executor: &E,
        sinks: &mut [&mut dyn RecordSink],
    ) -> io::Result<Vec<SweepRecord>> {
        self.run_opts(
            spec,
            executor,
            sinks,
            &crate::resume::ResumeCache::new(),
            &RunOptions::default(),
        )
    }

    /// Runs an explicit point list (already expanded) under `base_seed`.
    pub fn run_points<E: SweepExecutor>(
        &self,
        points: &[SweepPoint],
        base_seed: u64,
        executor: &E,
        sinks: &mut [&mut dyn RecordSink],
    ) -> io::Result<Vec<SweepRecord>> {
        let entries: Vec<(usize, SweepPoint)> = points.iter().cloned().enumerate().collect();
        self.run_entries(&entries, base_seed, executor, sinks, &|_| None)
    }

    /// Runs the spec, reusing completed points from a
    /// [`crate::resume::ResumeCache`] (loaded from a previous run's
    /// JSONL artifact). Cached points are
    /// emitted without running any shots; because per-point seeds are
    /// schedule-independent, the merged record stream — and therefore
    /// the final artifacts — is byte-identical to a full fresh run.
    pub fn run_resumable<E: SweepExecutor>(
        &self,
        spec: &SweepSpec,
        executor: &E,
        sinks: &mut [&mut dyn RecordSink],
        cache: &crate::resume::ResumeCache,
    ) -> io::Result<Vec<SweepRecord>> {
        self.run_opts(spec, executor, sinks, cache, &RunOptions::default())
    }

    /// Runs one shard of the spec, optionally resuming from `cache` and
    /// numbering points from `opts.index_offset`.
    ///
    /// Points are numbered globally — `index_offset` plus their
    /// position in the spec's expansion — and the shard owns exactly
    /// those with `global_index % shard.count == shard.index`
    /// ([`ShardSpec::owns`]). Per-chunk seeds depend only on the base
    /// seed and point coordinates, so a shard computes byte-for-byte
    /// the records the full run would have computed for its points, and
    /// `sweep-merge` can interleave N shard artifacts back into the
    /// unsharded artifact.
    pub fn run_opts<E: SweepExecutor>(
        &self,
        spec: &SweepSpec,
        executor: &E,
        sinks: &mut [&mut dyn RecordSink],
        cache: &crate::resume::ResumeCache,
        opts: &RunOptions,
    ) -> io::Result<Vec<SweepRecord>> {
        let entries: Vec<(usize, SweepPoint)> = spec
            .expand()
            .into_iter()
            .enumerate()
            .map(|(i, pt)| (opts.index_offset + i, pt))
            .filter(|(g, _)| opts.owns(*g))
            .collect();
        self.run_entries(&entries, spec.base_seed, executor, sinks, &|pt| {
            cache.failures_for(pt, spec.base_seed)
        })
    }

    /// Runs `(global_index, point)` entries; the core of every `run_*`
    /// front-end. Emission (and the returned records) follow entry
    /// order, which all callers keep ascending in global index.
    fn run_entries<E: SweepExecutor>(
        &self,
        entries: &[(usize, SweepPoint)],
        base_seed: u64,
        executor: &E,
        sinks: &mut [&mut dyn RecordSink],
        cached: &dyn Fn(&SweepPoint) -> Option<u64>,
    ) -> io::Result<Vec<SweepRecord>> {
        let indices: Vec<usize> = entries.iter().map(|(g, _)| *g).collect();
        let points: Vec<SweepPoint> = entries.iter().map(|(_, pt)| pt.clone()).collect();
        let points = &points[..];
        let workers = self.workers.max(1);
        let chunk_shots = self.chunk_shots.max(1);
        let run_start = self.recorder.is_enabled().then(Instant::now);

        // Chunk every point; zero-shot and cache-satisfied points
        // complete immediately.
        let mut tasks: VecDeque<Task> = VecDeque::new();
        let mut chunks_left: Vec<AtomicUsize> = Vec::with_capacity(points.len());
        let prefilled: Vec<Option<u64>> = points.iter().map(cached).collect();
        for (i, pt) in points.iter().enumerate() {
            let n_chunks = if prefilled[i].is_some() {
                0
            } else {
                pt.shots.div_ceil(chunk_shots)
            };
            for chunk in 0..n_chunks {
                let shots = chunk_shots.min(pt.shots - chunk * chunk_shots);
                tasks.push_back(Task {
                    point: i,
                    chunk,
                    shots,
                });
            }
            chunks_left.push(AtomicUsize::new(n_chunks as usize));
        }

        let time_points = sinks.iter().any(|s| s.wants_timing());
        let shared = Shared {
            executor,
            points,
            base_seed,
            prepared: (0..points.len()).map(|_| OnceLock::new()).collect(),
            injector: Mutex::new(tasks),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            failures: (0..points.len()).map(|_| AtomicU64::new(0)).collect(),
            chunks_left,
            recorder: &self.recorder,
            point_nanos: (0..points.len()).map(|_| AtomicU64::new(0)).collect(),
            time_points,
        };

        let (tx, rx) = mpsc::channel::<usize>();
        let mut emitter = InOrderEmitter::new(points.len(), sinks);
        let mut progress = ProgressReporter::new(self.progress, points.len());
        let mut io_result = Ok(());

        std::thread::scope(|scope| {
            let shared = &shared;
            for w in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || shared.run_worker(w, &tx));
            }
            drop(tx);

            // Zero-chunk points (no shots, or satisfied from the resume
            // cache) never pass through a worker.
            let mut completed = 0usize;
            for (i, pt) in points.iter().enumerate() {
                let record = match prefilled[i] {
                    Some(failures) => SweepRecord {
                        index: indices[i],
                        point: pt.clone(),
                        base_seed,
                        shots: pt.shots,
                        failures,
                    },
                    None if pt.shots == 0 => SweepRecord {
                        index: indices[i],
                        point: pt.clone(),
                        base_seed,
                        shots: 0,
                        failures: 0,
                    },
                    None => continue,
                };
                self.recorder.incr(Metric::SweepPoints);
                self.recorder.add(Metric::SweepShots, record.shots);
                self.recorder.add(Metric::SweepFailures, record.failures);
                if let Err(e) = emitter.complete(i, record, 0) {
                    io_result = Err(e);
                    return;
                }
                completed += 1;
            }

            while let Ok(point_idx) = rx.recv() {
                let record = SweepRecord {
                    index: indices[point_idx],
                    point: points[point_idx].clone(),
                    base_seed,
                    shots: points[point_idx].shots,
                    failures: shared.failures[point_idx].load(Ordering::Acquire),
                };
                self.recorder.incr(Metric::SweepPoints);
                self.recorder.add(Metric::SweepShots, record.shots);
                self.recorder.add(Metric::SweepFailures, record.failures);
                let nanos = shared.point_nanos[point_idx].load(Ordering::Relaxed);
                if self.recorder.is_enabled() {
                    self.recorder.observe(Metric::SweepPointNanos, nanos);
                }
                if let Err(e) = emitter.complete(point_idx, record, nanos) {
                    io_result = Err(e);
                    // Workers keep draining tasks; their sends fail
                    // silently once the receiver drops.
                    return;
                }
                completed += 1;
                progress.update(completed);
            }
        });

        if let Some(start) = run_start {
            self.recorder
                .add(Metric::SweepWallNanos, start.elapsed().as_nanos() as u64);
        }
        io_result?;
        for sink in emitter.sinks.iter_mut() {
            sink.finish()?;
        }
        debug_assert_eq!(emitter.emitted.len(), points.len());
        Ok(emitter.emitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{splitmix64, SweepSpec};

    /// Synthetic executor: failures are a pure function of
    /// (point fingerprint, chunk seed), so any schedule must agree.
    struct HashExecutor;

    impl SweepExecutor for HashExecutor {
        type Prepared = u64;

        fn prepare(&self, point: &SweepPoint) -> u64 {
            point.fingerprint()
        }

        fn run_chunk(&self, prepared: &u64, _point: &SweepPoint, shots: u64, seed: u64) -> u64 {
            splitmix64(*prepared ^ seed) % (shots + 1)
        }
    }

    fn demo_spec() -> SweepSpec {
        SweepSpec::new()
            .distances([3, 5, 7])
            .error_rates([1e-3, 2e-3, 5e-3, 1e-2])
            .shots(5000)
            .base_seed(42)
    }

    #[test]
    fn engine_completes_all_points_in_order() {
        let spec = demo_spec();
        let records = SweepEngine::with_workers(4)
            .run(&spec, &HashExecutor, &mut [])
            .unwrap();
        assert_eq!(records.len(), 12);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.shots, 5000);
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let spec = demo_spec();
        let serial = SweepEngine::serial()
            .run(&spec, &HashExecutor, &mut [])
            .unwrap();
        for workers in [2, 4, 8] {
            let parallel = SweepEngine::with_workers(workers)
                .run(&spec, &HashExecutor, &mut [])
                .unwrap();
            assert_eq!(serial, parallel, "{workers} workers diverged from serial");
        }
    }

    #[test]
    fn zero_shot_points_yield_empty_records() {
        let spec = SweepSpec::new().shots(0);
        let records = SweepEngine::default()
            .run(&spec, &HashExecutor, &mut [])
            .unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].shots, 0);
        assert_eq!(records[0].failures, 0);
        assert_eq!(records[0].rate(), 0.0);
    }

    #[test]
    fn resumed_run_reuses_cached_points_and_matches_fresh_run() {
        let spec = demo_spec();
        let engine = SweepEngine::with_workers(4);
        let fresh = engine.run(&spec, &HashExecutor, &mut []).unwrap();

        // Round-trip the first half of the records through a JSONL
        // artifact, then resume: cached points must come back verbatim
        // and the merged stream must equal the fresh run's.
        let mut sink = crate::sink::JsonlSink::new(Vec::new());
        for r in &fresh[..6] {
            use crate::sink::RecordSink;
            sink.write(r).unwrap();
        }
        let dir = std::env::temp_dir().join("vlq-engine-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("partial.jsonl");
        std::fs::write(&path, sink.into_inner()).unwrap();
        let cache = crate::resume::ResumeCache::load_jsonl(&path).expect("strict parse");
        assert_eq!(cache.len(), 6);

        struct PanicOnCached;
        impl SweepExecutor for PanicOnCached {
            type Prepared = u64;
            fn prepare(&self, point: &SweepPoint) -> u64 {
                point.fingerprint()
            }
            fn run_chunk(&self, prepared: &u64, pt: &SweepPoint, shots: u64, seed: u64) -> u64 {
                assert!(pt.d == 7, "cached point {pt:?} was re-run");
                HashExecutor.run_chunk(prepared, pt, shots, seed)
            }
        }
        // demo_spec: d in {3,5,7} x 4 rates; records 0..6 cover d=3 and
        // half of d=5... (records 0..6 are d=3 x4 + d=5 x2).
        let resumed = engine
            .run_resumable(
                &SweepSpec {
                    distances: vec![3, 7],
                    ..spec.clone()
                },
                &PanicOnCached,
                &mut [],
                &cache,
            )
            .unwrap();
        assert_eq!(resumed.len(), 8);
        // d=3 rows came from the cache and match the fresh run.
        for (r, f) in resumed[..4].iter().zip(&fresh[..4]) {
            assert_eq!(r.failures, f.failures);
            assert_eq!(r.shots, f.shots);
        }
        // Full resume over the original spec reproduces it exactly.
        let full_cache_sink = {
            let mut s = crate::sink::JsonlSink::new(Vec::new());
            for r in &fresh {
                use crate::sink::RecordSink;
                s.write(r).unwrap();
            }
            s.into_inner()
        };
        std::fs::write(&path, full_cache_sink).unwrap();
        let cache = crate::resume::ResumeCache::load_jsonl(&path).unwrap();
        struct NeverRun;
        impl SweepExecutor for NeverRun {
            type Prepared = ();
            fn prepare(&self, _point: &SweepPoint) {}
            fn run_chunk(&self, _p: &(), pt: &SweepPoint, _shots: u64, _seed: u64) -> u64 {
                panic!("fully-cached sweep ran a chunk for {pt:?}")
            }
        }
        let replayed = engine
            .run_resumable(&spec, &NeverRun, &mut [], &cache)
            .unwrap();
        assert_eq!(replayed, fresh);
    }

    #[test]
    fn sharded_runs_partition_the_full_run() {
        let spec = demo_spec();
        let engine = SweepEngine::with_workers(3);
        let full = engine.run(&spec, &HashExecutor, &mut []).unwrap();
        for count in [1, 2, 3, 5] {
            let mut merged: Vec<Option<SweepRecord>> = vec![None; full.len()];
            for index in 0..count {
                let opts = RunOptions {
                    shard: ShardSpec::new(index, count).unwrap(),
                    index_offset: 0,
                    plan: None,
                };
                let recs = engine
                    .run_opts(
                        &spec,
                        &HashExecutor,
                        &mut [],
                        &crate::resume::ResumeCache::new(),
                        &opts,
                    )
                    .unwrap();
                assert_eq!(recs.len(), opts.shard.len_of(full.len()));
                for r in recs {
                    assert_eq!(r.index % count, index, "record in wrong shard");
                    assert!(merged[r.index].replace(r).is_none(), "duplicate index");
                }
            }
            let merged: Vec<SweepRecord> = merged.into_iter().map(Option::unwrap).collect();
            assert_eq!(merged, full, "{count} shards do not recompose the full run");
        }
    }

    #[test]
    fn explicit_plan_partitions_identically_to_full_run() {
        // An arbitrary (non-stride) disjoint cover must recompose the
        // full run record-for-record, because seeds are positional.
        let spec = demo_spec();
        let engine = SweepEngine::with_workers(3);
        let full = engine.run(&spec, &HashExecutor, &mut []).unwrap();
        let owners: Vec<u32> = (0..full.len() as u32).map(|g| (g / 5) % 3).collect();
        let plan = ShardPlan::Explicit { count: 3, owners };
        let mut merged: Vec<Option<SweepRecord>> = vec![None; full.len()];
        for index in 0..3 {
            let opts = RunOptions {
                shard: ShardSpec::new(index, 3).unwrap(),
                index_offset: 0,
                plan: Some(plan.clone()),
            };
            let recs = engine
                .run_opts(
                    &spec,
                    &HashExecutor,
                    &mut [],
                    &crate::resume::ResumeCache::new(),
                    &opts,
                )
                .unwrap();
            assert_eq!(recs.len(), plan.shard_len(index).unwrap());
            for r in recs {
                assert_eq!(plan.owner_of(r.index), Some(index), "record in wrong shard");
                assert!(merged[r.index].replace(r).is_none(), "duplicate index");
            }
        }
        let merged: Vec<SweepRecord> = merged.into_iter().map(Option::unwrap).collect();
        assert_eq!(merged, full, "planned shards do not recompose the full run");
    }

    #[test]
    fn index_offset_renumbers_globally() {
        let spec = SweepSpec::new().distances([3, 5]).error_rates([1e-3]);
        let engine = SweepEngine::serial();
        let opts = RunOptions {
            shard: ShardSpec::FULL,
            index_offset: 10,
            plan: None,
        };
        let recs = engine
            .run_opts(
                &spec,
                &HashExecutor,
                &mut [],
                &crate::resume::ResumeCache::new(),
                &opts,
            )
            .unwrap();
        assert_eq!(
            recs.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![10, 11]
        );
        // Offsets shift the shard decision too: with 2 shards, offset
        // 10 puts the first point on shard 0 (10 % 2 == 0).
        let opts = RunOptions {
            shard: ShardSpec::new(1, 2).unwrap(),
            index_offset: 10,
            plan: None,
        };
        let recs = engine
            .run_opts(
                &spec,
                &HashExecutor,
                &mut [],
                &crate::resume::ResumeCache::new(),
                &opts,
            )
            .unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].index, 11);
        assert_eq!(recs[0].point.d, 5);
    }

    #[test]
    fn ragged_final_chunk_covers_all_shots() {
        // shots not a multiple of chunk_shots: the task shot counts must
        // sum to the requested total.
        struct CountingExecutor;
        impl SweepExecutor for CountingExecutor {
            type Prepared = ();
            fn prepare(&self, _point: &SweepPoint) {}
            fn run_chunk(&self, _p: &(), _pt: &SweepPoint, shots: u64, _seed: u64) -> u64 {
                shots // every shot "fails" => failures == shots iff coverage is exact
            }
        }
        let spec = SweepSpec::new().shots(2500);
        let engine = SweepEngine {
            chunk_shots: 1024,
            ..SweepEngine::with_workers(3)
        };
        let records = engine.run(&spec, &CountingExecutor, &mut []).unwrap();
        assert_eq!(records[0].failures, 2500);
        assert_eq!(records[0].rate(), 1.0);
    }
}
