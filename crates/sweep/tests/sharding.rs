//! Property-style seeded tests of the sharding contract: for random
//! small `SweepSpec`s, every shard count, and any worker count, the
//! concatenation of shard records equals the full run's records, shard
//! artifacts merge back byte-identically, and `--shard` composes with
//! `--resume`.

use std::path::PathBuf;

use vlq_decoder::DecoderKind;
use vlq_surface::schedule::{Basis, Setup};
use vlq_sweep::{
    merge_artifacts, splitmix64, CsvSink, JsonlSink, RecordSink, ResumeCache, RunOptions,
    ShardSpec, SweepEngine, SweepExecutor, SweepMeta, SweepPoint, SweepRecord, SweepSpec,
};

/// Synthetic executor: failures are a pure function of (point
/// fingerprint, chunk seed), so every schedule and every shard must
/// agree with the full run.
struct HashExecutor;

impl SweepExecutor for HashExecutor {
    type Prepared = u64;

    fn prepare(&self, point: &SweepPoint) -> u64 {
        point.fingerprint()
    }

    fn run_chunk(&self, prepared: &u64, _point: &SweepPoint, shots: u64, seed: u64) -> u64 {
        splitmix64(*prepared ^ seed) % (shots + 1)
    }
}

/// A deterministic "random" small spec drawn from `seed`.
fn random_spec(seed: u64) -> SweepSpec {
    let mut state = seed;
    let mut next = |m: u64| {
        state = splitmix64(state);
        state % m
    };
    let setups = [
        Setup::Baseline,
        Setup::CompactInterleaved,
        Setup::NaturalAllAtOnce,
    ];
    let n_setups = 1 + next(2) as usize;
    let n_d = 1 + next(3) as usize;
    let n_rates = 1 + next(3) as usize;
    let decoders: Vec<DecoderKind> = DecoderKind::ALL
        .into_iter()
        .take(1 + next(2) as usize)
        .collect();
    let basis = if next(2) == 0 { Basis::Z } else { Basis::X };
    SweepSpec::new()
        .setups(setups.into_iter().take(n_setups))
        .bases([basis])
        .distances((0..n_d).map(|i| 3 + 2 * i))
        .ks([1 + next(4) as usize])
        .decoders(decoders)
        .error_rates((0..n_rates).map(|i| 1e-3 * (i + 1) as f64))
        .shots(200 + next(2000))
        .base_seed(splitmix64(seed ^ 0xabcd))
}

fn run_full(spec: &SweepSpec, workers: usize) -> Vec<SweepRecord> {
    SweepEngine::with_workers(workers)
        .run(spec, &HashExecutor, &mut [])
        .unwrap()
}

fn run_shard(
    spec: &SweepSpec,
    shard: ShardSpec,
    workers: usize,
    cache: &ResumeCache,
) -> Vec<SweepRecord> {
    SweepEngine::with_workers(workers)
        .run_opts(
            spec,
            &HashExecutor,
            &mut [],
            cache,
            &RunOptions {
                shard,
                index_offset: 0,
                plan: None,
            },
        )
        .unwrap()
}

#[test]
fn shards_concatenate_to_the_full_run_for_random_specs() {
    for trial in 0..8u64 {
        let spec = random_spec(0x5eed_0000 + trial);
        let full = run_full(&spec, 2);
        assert_eq!(full.len(), spec.len());
        for count in [1usize, 2, 3, 5] {
            let mut recomposed: Vec<Option<SweepRecord>> = vec![None; full.len()];
            for index in 0..count {
                let shard = ShardSpec::new(index, count).unwrap();
                // Worker count varies per shard, like machines would.
                let records = run_shard(&spec, shard, 1 + (index % 3), &ResumeCache::new());
                assert_eq!(records.len(), shard.len_of(full.len()), "trial {trial}");
                for r in records {
                    assert!(shard.owns(r.index));
                    assert!(
                        recomposed[r.index].replace(r).is_none(),
                        "duplicate global index (trial {trial})"
                    );
                }
            }
            let recomposed: Vec<SweepRecord> = recomposed.into_iter().map(Option::unwrap).collect();
            assert_eq!(
                recomposed, full,
                "trial {trial}: {count} shards diverge from the full run"
            );
        }
    }
}

/// Writes a run's records as a real artifact directory (CSV + JSONL +
/// sidecar), exactly like a figure binary's `--out`.
fn write_artifact(dir: &PathBuf, stem: &str, records: &[SweepRecord], meta: SweepMeta) {
    std::fs::create_dir_all(dir).unwrap();
    let mut csv = CsvSink::new(Vec::new()).unwrap();
    let mut jsonl = JsonlSink::new(Vec::new());
    for r in records {
        csv.write(r).unwrap();
        jsonl.write(r).unwrap();
    }
    std::fs::write(dir.join(format!("{stem}.csv")), csv.into_inner()).unwrap();
    std::fs::write(dir.join(format!("{stem}.jsonl")), jsonl.into_inner()).unwrap();
    meta.write(dir, stem).unwrap();
}

#[test]
fn shard_artifacts_merge_byte_identically_for_random_specs() {
    let base = std::env::temp_dir().join("vlq-sharding-proptest");
    let _ = std::fs::remove_dir_all(&base);
    for trial in 0..4u64 {
        let spec = random_spec(0xa5a5_0000 + trial);
        let full = run_full(&spec, 3);
        let meta_of = |shard: ShardSpec| SweepMeta {
            seed: spec.base_seed,
            spec_fingerprint: vlq_sweep::combine_fingerprints(0, spec.fingerprint()),
            points: spec.len() as u64,
            shard,
            plan: None,
        };
        let reference = base.join(format!("t{trial}-reference"));
        write_artifact(&reference, "scan", &full, meta_of(ShardSpec::FULL));

        for count in [2usize, 3] {
            let mut dirs = Vec::new();
            for index in 0..count {
                let shard = ShardSpec::new(index, count).unwrap();
                let records = run_shard(&spec, shard, 1 + index, &ResumeCache::new());
                let dir = base.join(format!("t{trial}-n{count}-s{index}"));
                write_artifact(&dir, "scan", &records, meta_of(shard));
                dirs.push(dir);
            }
            let out = base.join(format!("t{trial}-n{count}-merged"));
            let report = merge_artifacts(&dirs, "scan", &out).unwrap();
            assert_eq!(report.rows, full.len());
            assert_eq!(report.seed, Some(spec.base_seed));
            for file in ["scan.csv", "scan.jsonl", "scan.meta.json"] {
                assert_eq!(
                    std::fs::read(out.join(file)).unwrap(),
                    std::fs::read(reference.join(file)).unwrap(),
                    "trial {trial}, {count} shards: {file} is not byte-identical"
                );
            }
        }
    }
}

#[test]
fn shard_composes_with_resume() {
    /// Refuses to compute anything: every point must come from the
    /// resume cache.
    struct NeverRun;
    impl SweepExecutor for NeverRun {
        type Prepared = ();
        fn prepare(&self, _point: &SweepPoint) {}
        fn run_chunk(&self, _p: &(), pt: &SweepPoint, _shots: u64, _seed: u64) -> u64 {
            panic!("resumed shard re-ran {pt:?}")
        }
    }

    let base = std::env::temp_dir().join("vlq-sharding-resume");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    for trial in 0..4u64 {
        let spec = random_spec(0xbeef_0000 + trial);
        let full = run_full(&spec, 2);

        // A full-run artifact is a valid cache for any shard...
        let mut jsonl = JsonlSink::new(Vec::new());
        for r in &full {
            jsonl.write(r).unwrap();
        }
        let path = base.join(format!("t{trial}.jsonl"));
        std::fs::write(&path, jsonl.into_inner()).unwrap();
        let cache = ResumeCache::load_jsonl_expecting(&path, spec.base_seed).unwrap();
        for count in [2usize, 3, 5] {
            for index in 0..count {
                let shard = ShardSpec::new(index, count).unwrap();
                let resumed = SweepEngine::with_workers(2)
                    .run_opts(
                        &spec,
                        &NeverRun,
                        &mut [],
                        &cache,
                        &RunOptions {
                            shard,
                            index_offset: 0,
                            plan: None,
                        },
                    )
                    .unwrap();
                let expected: Vec<SweepRecord> = full
                    .iter()
                    .filter(|r| shard.owns(r.index))
                    .cloned()
                    .collect();
                assert_eq!(resumed, expected, "trial {trial}, shard {shard}");
            }
        }

        // ...and a single shard's artifact resumes exactly its own
        // points of a sharded rerun.
        let shard = ShardSpec::new(1, 3).unwrap();
        let shard_records = run_shard(&spec, shard, 2, &ResumeCache::new());
        let mut jsonl = JsonlSink::new(Vec::new());
        for r in &shard_records {
            jsonl.write(r).unwrap();
        }
        let path = base.join(format!("t{trial}-shard.jsonl"));
        std::fs::write(&path, jsonl.into_inner()).unwrap();
        let cache = ResumeCache::load_jsonl_expecting(&path, spec.base_seed).unwrap();
        let resumed = SweepEngine::serial()
            .run_opts(
                &spec,
                &NeverRun,
                &mut [],
                &cache,
                &RunOptions {
                    shard,
                    index_offset: 0,
                    plan: None,
                },
            )
            .unwrap();
        assert_eq!(resumed, shard_records, "trial {trial}");
    }
}
