//! Logical-operation cost model (timesteps of `d` rounds each).

/// Rounds of syndrome extraction per logical timestep (one timestep = `d`
/// rounds, the paper's convention).
pub const TIMESTEP_ROUNDS: &str = "d";

/// A logical operation with its latency in timesteps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LogicalOp {
    /// Transversal CNOT between two logical qubits in the same stack
    /// (paper §III-B): one timestep.
    TransversalCnot,
    /// Lattice-surgery CNOT via merge/split with an ancilla patch
    /// (Figures 4/9): six timesteps.
    LatticeSurgeryCnot,
    /// Move a patch any distance through free patches/modes: one
    /// timestep (grow), with the shrink absorbed into the next step.
    Move,
    /// Transversal CNOT on qubits in *different* stacks: move one qubit
    /// into the target stack, apply the transversal CNOT (2 timesteps),
    /// optionally move it back (3 total). This variant counts the
    /// round trip.
    MoveTransversalCnotReturn,
    /// Same without the return move.
    MoveTransversalCnot,
    /// Patch merge (one timestep) — half of a surgery CNOT.
    Merge,
    /// Patch split (one timestep).
    Split,
    /// Logical measurement (destructive data readout): one timestep.
    Measure,
    /// Logical initialization (|0> or |+>): one timestep.
    Initialize,
    /// Magic-state consumption (T gate by teleportation): one
    /// transversal interaction with the factory output plus a
    /// measurement, two timesteps total.
    ConsumeMagic,
}

impl LogicalOp {
    /// Latency in timesteps (each `d` error-correction rounds).
    pub fn timesteps(self) -> usize {
        match self {
            LogicalOp::TransversalCnot => 1,
            LogicalOp::LatticeSurgeryCnot => 6,
            LogicalOp::Move => 1,
            LogicalOp::MoveTransversalCnot => 2,
            LogicalOp::MoveTransversalCnotReturn => 3,
            LogicalOp::Merge | LogicalOp::Split => 1,
            LogicalOp::Measure | LogicalOp::Initialize => 1,
            LogicalOp::ConsumeMagic => 2,
        }
    }

    /// The paper's headline speedup of the transversal CNOT over lattice
    /// surgery.
    pub fn transversal_speedup() -> usize {
        LogicalOp::LatticeSurgeryCnot.timesteps() / LogicalOp::TransversalCnot.timesteps()
    }
}

/// The six-step lattice-surgery CNOT decomposition of Figures 4 and 9,
/// as a sequence of primitive operations (useful for schedule displays
/// and for checking the latency adds up).
pub fn surgery_cnot_sequence() -> Vec<(LogicalOp, &'static str)> {
    vec![
        (LogicalOp::Initialize, "create ancilla |0> patch"),
        (LogicalOp::Merge, "merge A and T (measure X parity)"),
        (LogicalOp::Split, "split A from T"),
        (LogicalOp::Merge, "merge A and C (measure Z parity)"),
        (LogicalOp::Split, "split A from C"),
        (LogicalOp::Measure, "measure A in the X basis"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_speedup_is_6x() {
        assert_eq!(LogicalOp::TransversalCnot.timesteps(), 1);
        assert_eq!(LogicalOp::LatticeSurgeryCnot.timesteps(), 6);
        assert_eq!(LogicalOp::transversal_speedup(), 6);
    }

    #[test]
    fn surgery_sequence_sums_to_six() {
        let total: usize = surgery_cnot_sequence()
            .iter()
            .map(|(op, _)| op.timesteps())
            .sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn consume_magic_matches_teleportation_cost() {
        // T by teleportation: transversal interaction + measurement.
        assert_eq!(
            LogicalOp::ConsumeMagic.timesteps(),
            LogicalOp::TransversalCnot.timesteps() + LogicalOp::Measure.timesteps()
        );
    }

    #[test]
    fn cross_stack_transversal_still_beats_surgery() {
        // Even with a move there and back, the transversal path (3 steps)
        // beats lattice surgery (6 steps) — the paper's §III-B point.
        assert!(
            LogicalOp::MoveTransversalCnotReturn.timesteps()
                < LogicalOp::LatticeSurgeryCnot.timesteps()
        );
        assert_eq!(LogicalOp::MoveTransversalCnot.timesteps(), 2);
    }
}
